(* Ablation benchmarks for the design choices DESIGN.md calls out:
   evaluator access paths and join ordering, the preprocessing step of
   the SCC algorithm, and its selection criterion. *)

open Relational

let ms ns = Int64.to_float ns /. 1e6

let time f =
  let x, ns = Coordination.Stats.timed f in
  (x, ms ns)

(* --------------------------- Evaluator ---------------------------- *)

(* A join whose syntactic order is adversarial: the big Edge relation
   comes first, the single-row Mark atoms last.  Greedy planning starts
   from the selective atoms and walks the join through indexes; the
   fixed orders pay for starting blind. *)
let evaluator ?(rows = 3_000) () =
  Printf.printf "\n== Ablation: evaluator access path and join order ==\n";
  Printf.printf
    "(Edge(x,y), Edge(y,z), Mark(z) with |Edge| = %d and |Mark| = 1, \
     selective atom written last)\n"
    rows;
  let db = Database.create () in
  ignore (Database.create_table' db "Edge" [ "a"; "b" ]);
  ignore (Database.create_table' db "Mark" [ "a" ]);
  let rng = Prng.create 99 in
  for _ = 1 to rows do
    Database.insert db "Edge"
      [ Value.Int (Prng.int rng rows); Value.Int (Prng.int rng rows) ]
  done;
  (* Mark one value that is guaranteed to appear as an edge target. *)
  let target =
    match Relation.to_list (Database.relation db "Edge") with
    | t :: _ -> t.(1)
    | [] -> Value.Int 0
  in
  Database.insert db "Mark" [ target ];
  let body =
    Cq.make
      [
        { Cq.rel = "Edge"; args = [| Term.Var "x"; Term.Var "y" |] };
        { Cq.rel = "Edge"; args = [| Term.Var "y"; Term.Var "z" |] };
        { Cq.rel = "Mark"; args = [| Term.Var "z" |] };
      ]
  in
  (* Warm the indexes so the scan variant is not unfairly charged for
     building them. *)
  ignore (Eval.find_first db body);
  Series.start "ablation_evaluator"
    [ "variant"; "time_ms"; "tuples_scanned"; "found" ];
  let run plan label =
    let c0 = Database.snapshot_counters db in
    let result, t = time (fun () -> Eval.find_first ~plan db body) in
    let d = Counters.diff ~before:c0 ~after:(Database.snapshot_counters db) in
    Printf.printf "  %-22s %10.3f ms   %9d tuples   (found: %b)\n" label t
      d.tuples_scanned (Option.is_some result);
    Series.row "ablation_evaluator"
      [
        label;
        Printf.sprintf "%.3f" t;
        string_of_int d.tuples_scanned;
        string_of_bool (Option.is_some result);
      ]
  in
  run Eval.Compiled "compiled + cache";
  run Eval.Greedy_indexed "greedy + index";
  run Eval.Fixed_indexed "fixed order + index";
  run Eval.Fixed_scan "fixed order + scan"

(* Figure-4-style probe stream: the coordination algorithms issue long
   runs of structurally identical queries that differ only in their
   constants (each suffix candidate grounds the same body shape with its
   members' topics).  This is exactly what the plan cache is for: one
   compilation serves the whole stream.  Interpreted evaluation re-plans
   per probe; compiled-nocache re-compiles per probe; compiled+cache
   compiles once. *)
let evaluator_batch ?(rows = 20_000) ?(probes = 2_000) () =
  Printf.printf "\n== Ablation: compiled plans over isomorphic probe streams ==\n";
  Printf.printf
    "(%d satisfiability probes of Posts(x,T1), Posts(y,T2), Posts(z,T3) \
     with fresh constants per probe, table of %d rows)\n"
    probes rows;
  let db = Database.create () in
  let topics = 100 in
  ignore (Workload.Social.install_posts ~rows ~topics db);
  let topic rng = Term.str (Workload.Social.topic (Prng.int rng topics)) in
  let bodies =
    let rng = Prng.create 4242 in
    List.init probes (fun _ ->
        Cq.make
          [
            { Cq.rel = "Posts"; args = [| Term.Var "x"; topic rng |] };
            { Cq.rel = "Posts"; args = [| Term.Var "y"; topic rng |] };
            { Cq.rel = "Posts"; args = [| Term.Var "z"; topic rng |] };
          ])
  in
  (* Warm the topic index once for everyone. *)
  ignore (Eval.satisfiable db (List.hd bodies));
  Series.start "ablation_evaluator_batch"
    [ "variant"; "time_ms"; "plan_hits"; "plan_misses"; "tuples_scanned" ];
  let run plan label =
    let c0 = Database.snapshot_counters db in
    let sat, t =
      time (fun () ->
          List.fold_left
            (fun acc body -> if Eval.satisfiable ~plan db body then acc + 1 else acc)
            0 bodies)
    in
    let d = Counters.diff ~before:c0 ~after:(Database.snapshot_counters db) in
    Printf.printf
      "  %-22s %10.3f ms   %5d hits  %5d misses  %9d tuples   (%d sat)\n"
      label t d.plan_hits d.plan_misses d.tuples_scanned sat;
    Series.row "ablation_evaluator_batch"
      [
        label;
        Printf.sprintf "%.3f" t;
        string_of_int d.plan_hits;
        string_of_int d.plan_misses;
        string_of_int d.tuples_scanned;
      ]
  in
  run Eval.Greedy_indexed "interpreted";
  run Eval.Compiled_nocache "compiled, no cache";
  run Eval.Compiled "compiled + cache"

(* ------------------------- Preprocessing -------------------------- *)

(* Preprocessing is not just a speed-up: it restores applicability.
   Each user's postcondition has a second, apparent candidate head
   offered by a "ghost" query whose own postcondition is unsatisfiable.
   Without the iterative removal the set looks unsafe and the algorithm
   must refuse; with it, the ghosts disappear and coordination
   proceeds. *)
let preprocess ?(rows = 20_000) ?(n = 40) () =
  Printf.printf "\n== Ablation: SCC preprocessing (unsatisfiable posts) ==\n";
  Printf.printf
    "(chain of %d queries + %d ghost queries that make the set look unsafe)\n"
    n n;
  let db = Database.create () in
  ignore (Workload.Social.install_posts ~rows db);
  let rng = Prng.create 7 in
  let base = Workload.Listgen.queries rng ~n in
  let ghosts =
    List.init n (fun i ->
        Entangled.Query.make
          ~name:(Printf.sprintf "ghost%d" i)
          ~post:[ { Cq.rel = "Zz"; args = [| Term.int 1 |] } ]
          ~head:
            [
              {
                Cq.rel = "R";
                args = [| Term.const (Workload.Listgen.user i); Term.Var "g" |];
              };
            ]
          [ { Cq.rel = "Posts"; args = [| Term.Var "g"; Term.Var "t" |] } ])
  in
  let input = base @ ghosts in
  let run preprocess =
    match Coordination.Scc_algo.solve ~preprocess db input with
    | Error (Coordination.Scc_algo.Not_safe ws) ->
      Printf.sprintf "REFUSED as unsafe (%d witnesses)" (List.length ws)
    | Ok outcome ->
      Printf.sprintf "solved: size %d, %.3f ms, %d probes"
        (match outcome.solution with
        | Some s -> Entangled.Solution.size s
        | None -> 0)
        (ms outcome.stats.total_ns)
        outcome.stats.db_probes
  in
  Printf.printf "  with preprocessing:    %s\n" (run true);
  Printf.printf "  without preprocessing: %s\n" (run false)

(* --------------------------- Selection ---------------------------- *)

let selection ?(rows = 20_000) ?(n = 60) () =
  Printf.printf "\n== Ablation: selection criterion ==\n";
  Printf.printf "(chain of %d queries; Largest needs all candidates, \
                 First_found stops at the first sink)\n" n;
  let db = Database.create () in
  ignore (Workload.Social.install_posts ~rows db);
  let rng = Prng.create 11 in
  let input = Workload.Listgen.queries rng ~n in
  let run selection label =
    match Coordination.Scc_algo.solve ~selection db input with
    | Error _ -> ()
    | Ok outcome ->
      Printf.printf "  %-12s %10.3f ms  %4d probes  solution size %d\n" label
        (ms outcome.stats.total_ns) outcome.stats.db_probes
        (match outcome.solution with
        | Some s -> Entangled.Solution.size s
        | None -> 0)
  in
  run Coordination.Scc_algo.Largest "largest";
  run Coordination.Scc_algo.First_found "first-found"

(* --------------------------- Minimization ------------------------- *)

(* When all chain members share one topic, the combined suffix queries
   are n copies of the same atom up to variable renaming: their core is
   a single atom.  Minimization trades a homomorphism search for far
   smaller joins. *)
let minimize ?(rows = 82_168) ?(n = 30) () =
  Printf.printf "\n== Ablation: combined-query minimization (CQ cores) ==\n";
  Printf.printf
    "(chain of %d queries over one shared topic: each suffix query's core \
     is a single atom)\n"
    n;
  let db = Database.create () in
  ignore (Workload.Social.install_posts ~rows ~topics:1 db);
  let rng = Prng.create 21 in
  let input = Workload.Listgen.queries ~topics:1 rng ~n in
  let run minimize label =
    match Coordination.Scc_algo.solve ~minimize db input with
    | Error _ -> ()
    | Ok outcome ->
      Printf.printf "  %-18s %10.3f ms  (ground %8.3f ms, solution %d)\n" label
        (ms outcome.stats.total_ns)
        (ms outcome.stats.ground_ns)
        (match outcome.solution with
        | Some s -> Entangled.Solution.size s
        | None -> 0)
  in
  run false "as unified";
  run true "minimized cores"

(* ---------------------------- Parallel ---------------------------- *)

let parallel ?(rows = 600) ?(users = 150) () =
  Printf.printf "\n== Ablation: parallel value loop (Section 6.2 future work) ==\n";
  Printf.printf
    "(cascade instance: %d values, %d chained queries; cleaning dominates.\n\
    \ total = whole solve; loop = the parallelisable per-value phase.\n\
    \ this machine reports %d usable core(s): with a single core, extra\n\
    \ domains can only add synchronisation overhead — correctness of the\n\
    \ parallel path is what this ablation checks there)\n"
    rows users
    (Domain.recommended_domain_count ());
  let db = Relational.Database.create () in
  ignore (Workload.Flights.install_flights db ~rows);
  ignore (Workload.Flights.install_complete_friends db ~users);
  let queries = Workload.Flights.cascade_queries ~users in
  let seq =
    match Coordination.Consistent.solve db Workload.Flights.config queries with
    | Ok o -> o
    | Error _ -> failwith "sequential failed"
  in
  Printf.printf "  sequential            total %9.3f ms   loop %9.3f ms   (%d members)\n"
    (ms seq.stats.total_ns) (ms seq.stats.unify_ns)
    (List.length seq.members);
  List.iter
    (fun domains ->
      match
        Coordination.Parallel.solve ~domains db Workload.Flights.config queries
      with
      | Error _ -> ()
      | Ok par ->
        Printf.printf
          "  %d domain(s)           total %9.3f ms   loop %9.3f ms   (agrees: %b)\n"
          domains (ms par.stats.total_ns) (ms par.stats.unify_ns)
          (par.chosen_value = seq.chosen_value && par.members = seq.members))
    [ 1; 2; 4; 8 ]

(* ---------------------------- Realistic --------------------------- *)

(* The paper closes Section 6.2 arguing that its two stress tests are
   "absolutely worst possible scenarios" and that "in a more realistic
   setting with a more restricted coordination instance, the algorithm
   will perform very well".  This ablation quantifies that claim: same
   table and user count, but users pin destinations/sources the way
   travellers actually do. *)
let realistic ?(rows = 500) ?(users = 50) () =
  Printf.printf "\n== Ablation: worst case vs realistic constraints (Section 6.2) ==\n";
  Printf.printf "(%d flights, %d users; realistic users pin dest/source 70%% \
                 of the time)\n" rows users;
  let run label queries db =
    match Coordination.Consistent.solve db Workload.Flights.config queries with
    | Error _ -> ()
    | Ok outcome ->
      Printf.printf
        "  %-12s %10.3f ms   %5d values examined   %3d coordinated\n" label
        (ms outcome.stats.total_ns) outcome.stats.candidates
        (List.length outcome.members)
  in
  let db_worst, worst = Workload.Flights.make_worst_case ~rows ~users in
  run "worst case" worst db_worst;
  let db_real = Database.create () in
  ignore (Workload.Flights.install_flights db_real ~rows);
  ignore (Workload.Flights.install_complete_friends db_real ~users);
  let rng = Prng.create 17 in
  let realistic_queries =
    Workload.Flights.constrained_queries rng ~users ~rows ~constrain_fraction:0.7
  in
  run "realistic" realistic_queries db_real

(* -------------------------- Observability ------------------------- *)

(* The observability layer promises near-zero cost when nothing is
   armed: every instrumentation site is one mutable-bool load and a
   branch.  Measure the same SCC solve disarmed, with metrics on, and
   with each serializing sink writing into an in-memory buffer, plus a
   direct ns/call figure for a disarmed [with_span]. *)
let observability ?(rows = 20_000) ?(n = 40) ?(repeats = 5) ?(iters = 25) () =
  Printf.printf "\n== Ablation: observability overhead (traced vs untraced) ==\n";
  Printf.printf
    "(chain of %d queries, table of %d rows; paired ratios over %d runs \
     of %d solves per variant)\n"
    n rows repeats iters;
  let db = Database.create () in
  ignore (Workload.Social.install_posts ~rows db);
  let rng = Prng.create 13 in
  let input = Workload.Listgen.queries rng ~n in
  let was_metrics = Obs.metrics_on () in
  Obs.set_metrics false;
  (* Warm plan cache and indexes so every variant sees the same state. *)
  ignore (Coordination.Scc_algo.solve db input);
  (* Each sample times a loop of [iters] solves: single solves on the
     CI workload are a few hundred microseconds, where scheduler jitter
     alone swamps the <5% armed-overhead budget the gate enforces.  The
     variants are sampled round-robin — every repeat visits all of them
     — so slow machine-wide drift (frequency scaling, noisy CI
     neighbours) lands on every variant instead of biasing whichever
     one happened to run last. *)
  let iter_ts = Array.make iters 0.0 in
  let sample () =
    (* Settle major-GC debt left by the previous variant (ring arrays,
       sink buffers) so each timed loop pays for its own allocation
       only. *)
    Gc.full_major ();
    (* Time each solve individually and keep the trimmed mean of the
       fastest half: scheduler preemptions and GC slices land on single
       iterations and would otherwise charge a random variant for a
       burst it did not cause.  The armed paths allocate nothing on the
       probe hot path (the alloc gate holds them to it), so discarding
       burst-hit iterations does not hide a real cost. *)
    for k = 0 to iters - 1 do
      let _, t = time (fun () -> ignore (Coordination.Scc_algo.solve db input)) in
      iter_ts.(k) <- t
    done;
    Array.sort compare iter_ts;
    let half = max 1 (iters / 2) in
    let s = ref 0.0 in
    for k = 0 to half - 1 do
      s := !s +. iter_ts.(k)
    done;
    !s /. float_of_int half
  in
  let sink_buf = Buffer.create (1 lsl 16) in
  let sink_sample mk =
    Buffer.clear sink_buf;
    Obs.with_sink (mk (Buffer.add_string sink_buf)) sample
  in
  (* label, gated by the bench gate's overhead cap, one timed sample *)
  let variants =
    [|
      ("disarmed", false, sample);
      ( "registry", true,
        fun () ->
          Obs.set_metrics true;
          Fun.protect ~finally:(fun () -> Obs.set_metrics false) sample );
      ( "flight recorder", true,
        fun () ->
          Obs.Flight_recorder.arm ();
          Fun.protect ~finally:Obs.Flight_recorder.disarm sample );
      ( "registry+recorder", true,
        fun () ->
          Obs.Flight_recorder.arm ();
          Obs.set_metrics true;
          Fun.protect
            ~finally:(fun () ->
              Obs.set_metrics false;
              Obs.Flight_recorder.disarm ())
            sample );
      ("jsonl sink", false, fun () -> sink_sample Obs.jsonl_sink);
      ("chrome sink", false, fun () -> sink_sample Obs.chrome_sink);
    |]
  in
  (* Paired measurement: on a shared box, machine-wide drift (frequency
     scaling, noisy neighbours) over the seconds the full matrix takes
     dwarfs the <5% budget the gate enforces, and no aggregate over
     independently-pooled samples — min, median — cancels it.  So each
     armed sample is divided by a fresh disarmed sample taken
     immediately before it; drift moves both ends of a pair together
     and the ratio survives.  The median of the paired ratios is what
     the gate sees. *)
  let n_var = Array.length variants in
  let vsamples = Array.init n_var (fun _ -> Array.make repeats 0.0) in
  let ratios = Array.init n_var (fun _ -> Array.make repeats 1.0) in
  for rep = 0 to repeats - 1 do
    vsamples.(0).(rep) <- sample ();
    for i = 1 to n_var - 1 do
      let _, _, sampler = variants.(i) in
      let d = sample () in
      let a = sampler () in
      vsamples.(i).(rep) <- a;
      ratios.(i).(rep) <- a /. d
    done
  done;
  let med xs =
    let s = Array.copy xs in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  (* [armed_overhead_ratio] is populated only for the always-on
     variants (registry, flight recorder, both): those are the
     configurations the layer promises to keep under 5%, and the bench
     gate enforces that cap on this column's median.  The serializing
     sinks are debugging tools, priced separately under [vs_disarmed]
     only. *)
  Series.start "ablation_observability"
    [ "variant"; "time_ms"; "vs_disarmed"; "armed_overhead_ratio" ];
  Array.iteri
    (fun i (label, gated, _) ->
      let t = med vsamples.(i) in
      let r = if i = 0 then 1.0 else med ratios.(i) in
      Printf.printf "  %-18s %10.3f ms   (%+.1f%% vs disarmed)\n" label t
        ((r -. 1.0) *. 100.0);
      let ratio = Printf.sprintf "%.3f" r in
      Series.row "ablation_observability"
        [ label; Printf.sprintf "%.3f" t; ratio; (if gated then ratio else "") ])
    variants;
  (* Disarmed with_span, measured directly: the per-site cost the rest
     of the engine pays everywhere. *)
  let calls = 10_000_000 in
  let _, span_ms =
    time (fun () ->
        for _ = 1 to calls do
          Obs.with_span "noop" (fun () -> ()) |> Sys.opaque_identity
        done)
  in
  let ns_per_call = span_ms *. 1e6 /. float_of_int calls in
  Printf.printf "  disarmed with_span      %10.2f ns/call\n" ns_per_call;
  Series.row "ablation_observability"
    [ "with_span ns/call"; Printf.sprintf "%.2f" ns_per_call; ""; "" ];
  Obs.set_metrics was_metrics

(* --------------------------- Resilience --------------------------- *)

(* The resilience layer promises the same near-zero disarmed cost as
   Obs: an unguarded probe pays one option load and a branch.  Measure
   the same SCC solve with no guard, with an armed-but-idle guard (no
   limits, no faults — the pure middleware toll), and under seeded chaos
   with enough retry budget that the answer is unchanged. *)
let resilience ?(rows = 20_000) ?(n = 40) ?(repeats = 5) () =
  Printf.printf "\n== Ablation: resilience guard (disarmed vs armed vs chaos) ==\n";
  Printf.printf
    "(chain of %d queries, table of %d rows; best of %d runs per variant)\n"
    n rows repeats;
  let db = Database.create () in
  ignore (Workload.Social.install_posts ~rows db);
  let rng = Prng.create 29 in
  let input = Workload.Listgen.queries rng ~n in
  (* Warm plan cache and indexes so every variant sees the same state. *)
  ignore (Coordination.Scc_algo.solve db input);
  let measure () =
    let best = ref infinity in
    for _ = 1 to repeats do
      let _, t = time (fun () -> ignore (Coordination.Scc_algo.solve db input)) in
      if t < !best then best := t
    done;
    !best
  in
  Series.start "ablation_resilience"
    [ "variant"; "time_ms"; "vs_baseline"; "attempts"; "retries" ];
  let report label t base usage =
    let attempts, retries =
      match usage with
      | None -> (0, 0)
      | Some u -> (u.Resilient.attempts, u.Resilient.retries)
    in
    Printf.printf
      "  %-18s %10.3f ms   (%+.1f%% vs no guard)   %6d attempts  %5d retries\n"
      label t
      ((t -. base) /. base *. 100.0)
      attempts retries;
    Series.row "ablation_resilience"
      [
        label;
        Printf.sprintf "%.3f" t;
        Printf.sprintf "%.3f" (t /. base);
        string_of_int attempts;
        string_of_int retries;
      ]
  in
  Database.set_guard db None;
  let base = measure () in
  report "no guard" base base None;
  let idle = Resilient.arm Resilient.default_config in
  Database.set_guard db (Some idle);
  let t_idle = measure () in
  report "armed, idle" t_idle base (Some (Resilient.usage idle));
  let chaos =
    Resilient.arm
      {
        Resilient.default_config with
        max_attempts = 1000;
        faults =
          Some
            {
              Resilient.fault_defaults with
              fault_seed = 1;
              transient_rate = 0.2;
            };
      }
  in
  Database.set_guard db (Some chaos);
  let t_chaos = measure () in
  report "chaos 20%" t_chaos base (Some (Resilient.usage chaos));
  Database.set_guard db None

(* ----------------------------- Online ----------------------------- *)

let online ?(rows = 20_000) ?(n = 60) () =
  Printf.printf "\n== Ablation: online vs batch evaluation ==\n";
  Printf.printf
    "(%d chain queries streamed head-first: everything pends until the \
     post-free tail arrives and the whole chain fires at once)\n"
    n;
  let db = Database.create () in
  ignore (Workload.Social.install_posts ~rows db);
  let rng = Prng.create 3 in
  let queries = Workload.Listgen.queries rng ~n in
  (* Batch: one evaluation over the whole set. *)
  let (), batch_ms =
    time (fun () -> ignore (Coordination.Scc_algo.solve db queries))
  in
  Printf.printf "  batch (one solve):      %10.3f ms\n" batch_ms;
  let engine = Coordination.Online.create db in
  let fired = ref 0 in
  let (), online_ms =
    time (fun () ->
        List.iter
          (fun q ->
            match Coordination.Online.submit engine q with
            | Coordination.Online.Coordinated c ->
              fired := !fired + List.length c.Coordination.Online.queries
            | Coordination.Online.Pending
            | Coordination.Online.Rejected_unsafe _ -> ())
          queries)
  in
  Printf.printf
    "  online (%3d submits):   %10.3f ms   (%d queries satisfied, %d pending)\n"
    n online_ms !fired
    (Coordination.Online.pending_count engine)

(* Pool-growth scaling: a stream of mutually independent queries — each
   one's postcondition names a partner that never arrives, so nothing
   ever fires and the pool only grows.  Per-submit latency then isolates
   the engine's own maintenance cost: the full-rebuild mode re-derives
   the coordination graph and components of the whole pool on every
   submission (superlinear total), while the incremental mode probes its
   persistent atom index and touches one union-find entry (flat). *)
let online_scaling ?(rows = 2_000) ?(pools = [ 1_000; 10_000 ]) () =
  Printf.printf
    "\n== Ablation: online engine scaling (full rebuild vs incremental) ==\n";
  Printf.printf
    "(independent queries streamed eagerly: nothing fires, the pool only \
     grows; per-submit latency isolates engine maintenance)\n";
  Series.start "ablation_online_scaling"
    [ "mode"; "pool"; "p50_us"; "p95_us"; "total_ms" ];
  let topics = 50 in
  let query i =
    let const fmt j = Term.Const (Value.Str (Printf.sprintf fmt j)) in
    Entangled.Query.make
      ~name:(Printf.sprintf "s%d" i)
      ~post:[ { Cq.rel = "R"; args = [| const "p%d" i; Term.Var "y" |] } ]
      ~head:[ { Cq.rel = "R"; args = [| const "u%d" i; Term.Var "x" |] } ]
      [
        {
          Cq.rel = "Posts";
          args =
            [|
              Term.Var "x";
              Term.Const (Value.Str (Workload.Social.topic (i mod topics)));
            |];
        };
      ]
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int (n - 1)))))
  in
  List.iter
    (fun n ->
      List.iter
        (fun (label, mode) ->
          let db = Database.create () in
          ignore (Workload.Social.install_posts ~rows ~topics db);
          let engine = Coordination.Online.create ~mode db in
          let lat = Array.make (max n 1) 0.0 in
          let t0 = Coordination.Stats.now_ns () in
          for i = 0 to n - 1 do
            let s0 = Coordination.Stats.now_ns () in
            ignore (Coordination.Online.submit engine (query i));
            lat.(i) <-
              Int64.to_float (Int64.sub (Coordination.Stats.now_ns ()) s0)
              /. 1e3
          done;
          let total = ms (Int64.sub (Coordination.Stats.now_ns ()) t0) in
          Array.sort compare lat;
          let p50 = percentile lat 0.5 and p95 = percentile lat 0.95 in
          Printf.printf
            "  %-13s pool %6d:  p50 %8.2f us   p95 %8.2f us   total \
             %10.3f ms   (%d pending)\n"
            label n p50 p95 total
            (Coordination.Online.pending_count engine);
          Series.row "ablation_online_scaling"
            [
              label;
              string_of_int n;
              Printf.sprintf "%.2f" p50;
              Printf.sprintf "%.2f" p95;
              Printf.sprintf "%.3f" total;
            ])
        [
          ("full-rebuild", Coordination.Online.Full_rebuild);
          ("incremental", Coordination.Online.Incremental);
        ])
    pools

(* ------------------------- Parallel scaling ----------------------- *)

(* The component-sharded batch executor, under the paper's client-server
   regime: every probe pays an emulated round trip (a true blocking
   sleep), so independent components on different domains overlap their
   waits even on a single core — exactly the headroom the executor is
   built to exploit.  Each run re-solves the same pairgen batch and is
   checked against the 1-domain answer. *)
let parallel_scaling ?(rows = 2_000) ?(pools = [ 1_000; 10_000 ])
    ?(probe_latency = 0.0002) () =
  Printf.printf "\n== Ablation: component-sharded executor scaling ==\n";
  Printf.printf
    "(independent coordination pairs, %.1f ms emulated round trip per \
     probe;\n\
    \ pool = query count, one 2-query component per pair; speedup is \
     against\n\
    \ the 1-domain run of the same pool)\n"
    (probe_latency *. 1e3);
  Series.start "ablation_parallel_scaling"
    [ "domains"; "pool"; "candidates"; "total_ms"; "speedup" ];
  List.iter
    (fun pool ->
      let pairs = pool / 2 in
      let baseline = ref None in
      let reference = ref None in
      List.iter
        (fun domains ->
          let db, queries = Workload.Pairgen.make ~rows ~seed:11 pairs in
          Database.set_probe_latency db probe_latency;
          match Coordination.Executor.solve_scc ~domains db queries with
          | Error _ -> failwith "parallel_scaling: unsafe workload?"
          | Ok outcome ->
            let total = ms outcome.stats.total_ns in
            let members =
              match outcome.solution with
              | Some s -> s.Entangled.Solution.members
              | None -> []
            in
            (match !reference with
            | None -> reference := Some (outcome.stats.candidates, members)
            | Some (c, m) ->
              if c <> outcome.stats.candidates || m <> members then
                Printf.printf "  !! domains=%d disagrees with 1-domain run\n"
                  domains);
            let speedup =
              match !baseline with
              | None ->
                baseline := Some total;
                1.0
              | Some b -> b /. total
            in
            Printf.printf
              "  %d domain(s)   pool %6d:  total %10.3f ms   speedup \
               %5.2fx   (%d candidates)\n"
              domains pool total speedup outcome.stats.candidates;
            Series.row "ablation_parallel_scaling"
              [
                string_of_int domains;
                string_of_int pool;
                string_of_int outcome.stats.candidates;
                Printf.sprintf "%.3f" total;
                Printf.sprintf "%.2f" speedup;
              ])
        [ 1; 2; 4; 8 ])
    pools

(* ------------------------- Sharded online ------------------------- *)

(* The domain-sharded ONLINE engine under the same client-server regime
   as [parallel_scaling]: every probe pays an emulated blocking round
   trip, so per-shard flushes overlap their waits across domains even
   on one core.  The stream is pairgen reordered all-firsts-then-all-
   seconds — the pending pool peaks at pool/2 entries before any pair
   can fire, so routing, migration bookkeeping and flush all run at
   full pool size.  Submissions go through [submit_all] in batches (the
   service regime: a server drains a socket backlog per round).

   Two series feed the gate:
   - [ablation_online_sharded]: the (domains x pool) grid with
     amortized per-submit p50/p95, total wall time and throughput.
   - [ablation_online_sharded_gate]: one row per pool carrying
     [sharded_submit_speedup], the 4-domain/1-domain aggregate submit
     throughput ratio.  CI enforces its floor (>= 2.5x at 100k pool)
     with gate.exe --sharded-speedup-floor. *)
let online_sharded ?(rows = 2_000) ?(pools = [ 100_000; 300_000 ])
    ?(domain_counts = [ 1; 2; 4; 8 ]) ?(probe_latency = 0.0001)
    ?(batch = 1_024) () =
  Printf.printf "\n== Ablation: domain-sharded online engine ==\n";
  Printf.printf
    "(independent coordination pairs streamed firsts-then-seconds in \
     batches of %d,\n\
    \ %.2f ms emulated round trip per probe; pool = total submissions, \
     pending\n\
    \ peaks at pool/2; speedup is against the 1-domain run of the same \
     pool)\n"
    batch (probe_latency *. 1e3);
  Series.start "ablation_online_sharded"
    [
      (* total_wall carries no unit suffix on purpose: it is wall time
         dominated by emulated probe sleeps, too load-sensitive for the
         gate's timing tolerance — the gated signal is the speedup
         ratio in ablation_online_sharded_gate. *)
      "domains"; "pool"; "migrations"; "p50_us"; "p95_us"; "total_wall";
      "throughput_per_s";
    ];
  Series.start "ablation_online_sharded_gate"
    [ "pool"; "sharded_submit_speedup" ];
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int (n - 1)))))
  in
  let rec chunks n = function
    | [] -> []
    | l ->
      let rec take k acc rest =
        match rest with
        | [] -> (List.rev acc, [])
        | _ when k = 0 -> (List.rev acc, rest)
        | x :: tl -> take (k - 1) (x :: acc) tl
      in
      let c, rest = take n [] l in
      c :: chunks n rest
  in
  List.iter
    (fun pool ->
      let pairs = pool / 2 in
      let baseline = ref None in
      let reference = ref None in
      let gate_speedup = ref None in
      List.iter
        (fun domains ->
          let db, queries = Workload.Pairgen.make ~rows ~seed:11 pairs in
          (* All pair-firsts, then all pair-seconds: nothing fires
             until the second phase, so the pool peaks at [pairs]. *)
          let firsts, seconds =
            List.partition
              (fun q -> q.Entangled.Query.name.[0] = 'a')
              queries
          in
          Database.set_probe_latency db probe_latency;
          let engine = Coordination.Online_sharded.create ~domains db in
          let samples = ref [] in
          let t0 = Coordination.Stats.now_ns () in
          List.iter
            (fun qs ->
              let s0 = Coordination.Stats.now_ns () in
              ignore (Coordination.Online_sharded.submit_all engine qs);
              let per_submit_us =
                Int64.to_float
                  (Int64.sub (Coordination.Stats.now_ns ()) s0)
                /. 1e3
                /. float_of_int (List.length qs)
              in
              samples := per_submit_us :: !samples)
            (chunks batch firsts @ chunks batch seconds);
          ignore (Coordination.Online_sharded.flush engine);
          let total = ms (Int64.sub (Coordination.Stats.now_ns ()) t0) in
          let satisfied =
            Coordination.Online_sharded.total_coordinated engine
          in
          let pending = Coordination.Online_sharded.pending_count engine in
          (match !reference with
          | None -> reference := Some (satisfied, pending)
          | Some (s, p) ->
            if s <> satisfied || p <> pending then
              Printf.printf "  !! domains=%d disagrees with 1-domain run\n"
                domains);
          let speedup =
            match !baseline with
            | None ->
              baseline := Some total;
              1.0
            | Some b -> b /. total
          in
          if domains = 4 then gate_speedup := Some speedup;
          let lat = Array.of_list !samples in
          Array.sort compare lat;
          let p50 = percentile lat 0.5 and p95 = percentile lat 0.95 in
          let throughput = float_of_int pool /. (total /. 1e3) in
          let migrations =
            Coordination.Online_sharded.migrations engine
          in
          Printf.printf
            "  %d domain(s)   pool %7d:  p50 %8.2f us   p95 %8.2f us   \
             total %10.3f ms   %9.0f submits/s   speedup %5.2fx   (%d \
             coordinated, %d migrations)\n"
            domains pool p50 p95 total throughput speedup satisfied
            migrations;
          Series.row "ablation_online_sharded"
            [
              string_of_int domains;
              string_of_int pool;
              string_of_int migrations;
              Printf.sprintf "%.2f" p50;
              Printf.sprintf "%.2f" p95;
              Printf.sprintf "%.3f" total;
              Printf.sprintf "%.0f" throughput;
            ])
        domain_counts;
      match !gate_speedup with
      | None -> ()
      | Some s ->
        Series.row "ablation_online_sharded_gate"
          [ string_of_int pool; Printf.sprintf "%.2f" s ])
    pools

(* ----------------------------- Storage ---------------------------- *)

(* Row store vs columnar store on the repeat-probe path: the same
   compiled plan, the same candidate streams, the same counters — only
   the data layout differs.  Measured through [Eval.Prepared], the raw
   probe loop with no per-probe scaffolding, the regime a coordination
   server lives in: one shape, millions of executions, constants
   swapped per probe.

   Two numbers feed the bench gate:
   - [columnar_speedup]: median-of-best row/columnar time ratio.  The
     gate enforces the storage engine's acceptance floor (>= 3x).
   - [columnar_minor_words_per_probe]: minor-heap words allocated per columnar
     probe, measured over a separate pass with nothing boxed inside the
     loop.  Steady state this is 0.00 and the gate keeps it there; the
     row store's figure is reported alongside but not gated (it is
     whatever the boxed-tuple path costs).

   Timing and allocation are measured in separate passes: [now_ns] and
   [Gc.minor_words] both box their results, so the pass that counts
   words must not call the clock per probe. *)
let storage ?(rows = 100_000) ?(topics = 100) ?(timing_probes = 2_000)
    ?(alloc_probes = 10_000) ?(repeats = 5) () =
  Printf.printf "\n== Ablation: storage backend (row vs columnar cursor) ==\n";
  Printf.printf
    "(Posts(x,T1), Posts(x,T2) count probes with constants swapped per \
     probe;\n\
    \ table of %d rows, %d topics -> ~%d candidates per probe; best of %d \
     runs)\n"
    rows topics (rows / topics) repeats;
  let make backend =
    let db = Database.create ~backend () in
    ignore (Workload.Social.install_posts ~rows ~topics db);
    Database.warm_indexes db;
    db
  in
  let db_row = make Database.Row in
  let db_col = make Database.Columnar in
  let topic_term i = Term.str (Workload.Social.topic i) in
  let body =
    Cq.make
      [
        { Cq.rel = "Posts"; args = [| Term.Var "x"; topic_term 0 |] };
        { Cq.rel = "Posts"; args = [| Term.Var "x"; topic_term 1 |] };
      ]
  in
  let topic_vals =
    Array.init topics (fun i -> Value.Str (Workload.Social.topic i))
  in
  (* Even probes are satisfiable (T1 = T2), odd ones empty — both still
     walk the full first posting. *)
  let run_probe prep i =
    Eval.Prepared.set_param prep 0 topic_vals.(i mod topics);
    Eval.Prepared.set_param prep 1 topic_vals.((i + (i land 1)) mod topics);
    Eval.Prepared.count prep
  in
  let measure db =
    let prep = Eval.Prepared.make db body in
    for i = 0 to 99 do
      ignore (run_probe prep i)
    done;
    let best_ns = ref infinity in
    let solutions = ref 0 in
    for _ = 1 to repeats do
      let s = ref 0 in
      let t0 = Coordination.Stats.now_ns () in
      for i = 0 to timing_probes - 1 do
        s := !s + run_probe prep i
      done;
      let t = Int64.to_float (Int64.sub (Coordination.Stats.now_ns ()) t0) in
      solutions := !s;
      if t < !best_ns then best_ns := t
    done;
    (* Allocation pass: no clock, no boxing inside the loop. *)
    let w0 = Gc.minor_words () in
    for i = 0 to alloc_probes - 1 do
      ignore (run_probe prep i)
    done;
    let w1 = Gc.minor_words () in
    let words = (w1 -. w0) /. float_of_int alloc_probes in
    (!best_ns /. 1e3 /. float_of_int timing_probes, !best_ns /. 1e6, words,
     !solutions)
  in
  let row_us, row_ms, row_words, row_solutions = measure db_row in
  let col_us, col_ms, col_words, col_solutions = measure db_col in
  let speedup = row_us /. col_us in
  Printf.printf
    "  row store             %10.3f us/probe   %10.1f words/probe\n" row_us
    row_words;
  Printf.printf
    "  columnar cursor       %10.3f us/probe   %10.2f words/probe\n" col_us
    col_words;
  Printf.printf "  speedup               %10.2fx           (agree: %b)\n"
    speedup
    (row_solutions = col_solutions);
  if row_solutions <> col_solutions then
    Printf.printf "  !! backends disagree: row %d vs columnar %d solutions\n"
      row_solutions col_solutions;
  Series.start "ablation_storage"
    [
      "rows"; "probes"; "row_probe_us"; "columnar_probe_us";
      "columnar_speedup"; "row_total_ms"; "columnar_total_ms";
      "row_alloc_words"; "columnar_minor_words_per_probe";
    ];
  Series.row "ablation_storage"
    [
      string_of_int rows;
      string_of_int timing_probes;
      Printf.sprintf "%.3f" row_us;
      Printf.sprintf "%.3f" col_us;
      Printf.sprintf "%.2f" speedup;
      Printf.sprintf "%.3f" row_ms;
      Printf.sprintf "%.3f" col_ms;
      Printf.sprintf "%.1f" row_words;
      Printf.sprintf "%.2f" col_words;
    ]

(* ------------------------------ Durability ------------------------ *)

(* The price of the write-ahead log: the online_scaling pool-growth
   stream (independent queries, nothing fires, per-submit latency
   isolates maintenance cost) run against the durable engine under
   each fsync policy.  Snapshots are disabled so the measurement is
   pure journaling.  The committed acceptance number is the
   page-cache-bound ratio wal-nofsync / no-wal, emitted as its own
   series for the bench gate to cap — only for pools large enough to
   amortize first-submit warmup (small-pool ratios are plan-cache
   noise).  A fsync-bound variant's cost belongs to the disk, not to
   the engine, so wal-fsync is reported but not gated. *)
let durability ?(rows = 2_000) ?(pools = [ 500; 2_000 ]) () =
  Printf.printf "\n== Ablation: durability (WAL append + fsync policy) ==\n";
  Printf.printf
    "(pool-growth submit stream; wal variants journal every admission; \
     snapshots off)\n";
  Series.start "ablation_durability"
    [ "variant"; "pool"; "p50_us"; "p95_us"; "total_ms" ];
  Series.start "ablation_durability_overhead"
    [ "pool"; "nofsync_wal_overhead_x" ];
  let topics = 50 in
  let query i =
    let const fmt j = Term.Const (Value.Str (Printf.sprintf fmt j)) in
    Entangled.Query.make
      ~name:(Printf.sprintf "s%d" i)
      ~post:[ { Cq.rel = "R"; args = [| const "p%d" i; Term.Var "y" |] } ]
      ~head:[ { Cq.rel = "R"; args = [| const "u%d" i; Term.Var "x" |] } ]
      [
        {
          Cq.rel = "Posts";
          args =
            [|
              Term.Var "x";
              Term.Const (Value.Str (Workload.Social.topic (i mod topics)));
            |];
        };
      ]
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int (n - 1)))))
  in
  let wal_dir =
    let k = ref 0 in
    fun () ->
      incr k;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "entangle-bench-wal-%d-%d" (Unix.getpid ()) !k)
  in
  let rm_rf d =
    if Sys.file_exists d then begin
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Sys.rmdir d
    end
  in
  List.iter
    (fun n ->
      let baseline_total = ref 0.0 in
      List.iter
        (fun (label, wal) ->
          let db, engine, cleanup =
            match wal with
            | None ->
              let db = Database.create () in
              (db, Coordination.Online.create db, fun () -> ())
            | Some fsync ->
              let dir = wal_dir () in
              let t, db, engine =
                Durable.create_engine
                  (Durable.config ~fsync ~snapshot_every:0 dir)
              in
              ( db,
                engine,
                fun () ->
                  Durable.close t;
                  rm_rf dir )
          in
          ignore (Workload.Social.install_posts ~rows ~topics db);
          let lat = Array.make (max n 1) 0.0 in
          let t0 = Coordination.Stats.now_ns () in
          for i = 0 to n - 1 do
            let s0 = Coordination.Stats.now_ns () in
            ignore (Coordination.Online.submit engine (query i));
            lat.(i) <-
              Int64.to_float (Int64.sub (Coordination.Stats.now_ns ()) s0)
              /. 1e3
          done;
          let total = ms (Int64.sub (Coordination.Stats.now_ns ()) t0) in
          cleanup ();
          Array.sort compare lat;
          let p50 = percentile lat 0.5 and p95 = percentile lat 0.95 in
          Printf.printf
            "  %-13s pool %6d:  p50 %8.2f us   p95 %8.2f us   total \
             %10.3f ms\n"
            label n p50 p95 total;
          Series.row "ablation_durability"
            [
              label;
              string_of_int n;
              Printf.sprintf "%.2f" p50;
              Printf.sprintf "%.2f" p95;
              Printf.sprintf "%.3f" total;
            ];
          if label = "no-wal" then baseline_total := total
          else if label = "wal-nofsync" && !baseline_total > 0.0 && n >= 1_000
          then begin
            let ratio = total /. !baseline_total in
            Printf.printf "  %-13s pool %6d:  %.2fx the no-wal run\n"
              "(overhead)" n ratio;
            Series.row "ablation_durability_overhead"
              [ string_of_int n; Printf.sprintf "%.3f" ratio ]
          end)
        [
          ("no-wal", None);
          ("wal-nofsync", Some Durable.Never);
          ("wal-group-64", Some (Durable.Every_n 64));
          ("wal-fsync", Some Durable.Always);
        ])
    pools

(* ------------------------------ Service --------------------------- *)

(* The price of the wire: the durability ablation's independent-query
   submit stream, re-run through `entangle serve`'s frame protocol —
   JSON encode, length-prefixed frame, socket round trip, JSON decode —
   with the requests fanned in from 1, 8 or 64 concurrent sessions.
   Server and clients share one thread (the server's step loop is
   public), so the latency numbers include the full protocol path but
   no scheduler handoff; what the fan-in axis isolates is the cost of
   session multiplexing itself.  The committed acceptance number is the
   ratio wal-nofsync / no-wal of total service time — the service-layer
   analogue of the durability gate, capped loosely because it stacks
   journaling on top of protocol cost.  The raw columns are
   deliberately kept out of the gate's timing families (percentiles
   sit under the microsecond noise floor; the wall total is unsuffixed)
   — socket syscall wall clock swings well past the gate's tolerance
   run to run, and the portable number is the ratio. *)
let service ?(rows = 2_000) ?(requests = 512) ?(clients = [ 1; 8; 64 ]) () =
  Printf.printf "\n== Ablation: service (frame protocol, session fan-in) ==\n";
  Printf.printf
    "(independent submit stream over the socket; %d requests round-robined \
     across the sessions; wal variant journals every admission)\n"
    requests;
  Series.start "ablation_service"
    [
      "variant"; "clients"; "requests"; "p50_us"; "p95_us"; "p99_us";
      "total_wall";
    ];
  Series.start "ablation_service_overhead"
    [ "clients"; "nofsync_service_overhead_x" ];
  let topics = 50 in
  let query_src i =
    let const fmt j = Term.Const (Value.Str (Printf.sprintf fmt j)) in
    Entangled.Parser.query_to_string
      (Entangled.Query.make
         ~name:(Printf.sprintf "s%d" i)
         ~post:[ { Cq.rel = "R"; args = [| const "p%d" i; Term.Var "y" |] } ]
         ~head:[ { Cq.rel = "R"; args = [| const "u%d" i; Term.Var "x" |] } ]
         [
           {
             Cq.rel = "Posts";
             args =
               [|
                 Term.Var "x";
                 Term.Const (Value.Str (Workload.Social.topic (i mod topics)));
               |];
           };
         ])
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int (n - 1)))))
  in
  let wal_dir =
    let k = ref 0 in
    fun () ->
      incr k;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "entangle-bench-srv-%d-%d" (Unix.getpid ()) !k)
  in
  let rm_rf d =
    if Sys.file_exists d then begin
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Sys.rmdir d
    end
  in
  List.iter
    (fun nclients ->
      let baseline_total = ref 0.0 in
      List.iter
        (fun (label, wal) ->
          let db, engine, durable, cleanup =
            match wal with
            | None ->
              let db = Database.create () in
              (db, Coordination.Online.create db, None, fun () -> ())
            | Some fsync ->
              let dir = wal_dir () in
              let t, db, engine =
                Durable.create_engine
                  (Durable.config ~fsync ~snapshot_every:0 dir)
              in
              ( db,
                engine,
                Some t,
                fun () ->
                  Durable.close t;
                  rm_rf dir )
          in
          ignore (Workload.Social.install_posts ~rows ~topics db);
          let cfg =
            {
              (Server.default_config (Server.Tcp ("127.0.0.1", 0))) with
              Server.max_pending = requests + 1;
            }
          in
          let srv =
            Server.create cfg
              { Server.db; engine = Server.Sequential engine; durable; guard = None }
          in
          let conns =
            Array.init nclients (fun _ ->
                Server.Client.connect
                  (Server.Tcp ("127.0.0.1", Server.port srv)))
          in
          let lat = Array.make (max requests 1) 0.0 in
          let t0 = Coordination.Stats.now_ns () in
          for i = 0 to requests - 1 do
            let conn = conns.(i mod nclients) in
            let s0 = Coordination.Stats.now_ns () in
            Server.Client.send conn
              (Server.Json.Obj
                 [
                   ("id", Server.Json.Int i);
                   ("op", Server.Json.Str "submit");
                   ("query", Server.Json.Str (query_src i));
                 ]);
            let rec await () =
              match Server.Client.try_recv conn with
              | Some f when Server.Json.str_mem "notify" f = None -> f
              | Some _ -> await ()
              | None ->
                ignore (Server.step ~timeout:0.01 srv);
                await ()
            in
            ignore (await ());
            lat.(i) <-
              Int64.to_float (Int64.sub (Coordination.Stats.now_ns ()) s0)
              /. 1e3
          done;
          let total = ms (Int64.sub (Coordination.Stats.now_ns ()) t0) in
          Array.iter Server.Client.close conns;
          for _ = 1 to 3 do
            ignore (Server.step ~timeout:0.0 srv)
          done;
          Server.stop srv;
          cleanup ();
          Array.sort compare lat;
          let p50 = percentile lat 0.5
          and p95 = percentile lat 0.95
          and p99 = percentile lat 0.99 in
          Printf.printf
            "  %-13s %3d clients:  p50 %8.2f us   p95 %8.2f us   p99 \
             %8.2f us   total %10.3f ms\n"
            label nclients p50 p95 p99 total;
          Series.row "ablation_service"
            [
              label;
              string_of_int nclients;
              string_of_int requests;
              Printf.sprintf "%.2f" p50;
              Printf.sprintf "%.2f" p95;
              Printf.sprintf "%.2f" p99;
              Printf.sprintf "%.3f" total;
            ];
          if label = "no-wal" then baseline_total := total
          else if label = "wal-nofsync" && !baseline_total > 0.0 then begin
            let ratio = total /. !baseline_total in
            Printf.printf "  %-13s %3d clients:  %.2fx the no-wal run\n"
              "(overhead)" nclients ratio;
            Series.row "ablation_service_overhead"
              [ string_of_int nclients; Printf.sprintf "%.3f" ratio ]
          end)
        [ ("no-wal", None); ("wal-nofsync", Some Durable.Never) ])
    clients

let run_all ?(fast = false) () =
  if fast then begin
    evaluator ~rows:1_000 ();
    evaluator_batch ~rows:5_000 ~probes:300 ();
    preprocess ~rows:5_000 ~n:15 ();
    selection ~rows:5_000 ~n:20 ();
    minimize ~rows:5_000 ~n:12 ();
    realistic ~rows:100 ~users:20 ();
    parallel ~rows:150 ~users:40 ();
    online ~rows:5_000 ~n:20 ();
    online_scaling ~rows:1_000 ~pools:[ 200; 1_000 ] ();
    parallel_scaling ~rows:1_000 ();
    observability ~rows:5_000 ~n:15 ~repeats:3 ();
    resilience ~rows:5_000 ~n:15 ~repeats:3 ();
    storage ~repeats:3 ();
    durability ~rows:1_000 ~pools:[ 200; 1_000 ] ();
    service ~rows:1_000 ~requests:256 ~clients:[ 1; 8 ] ()
  end
  else begin
    evaluator ();
    evaluator_batch ();
    preprocess ();
    selection ();
    minimize ();
    realistic ();
    parallel ();
    online ();
    online_scaling ();
    parallel_scaling ();
    observability ();
    resilience ();
    storage ();
    durability ();
    service ()
  end
