(* Shared sink for benchmark series.  Figures and ablations record the
   tables they print here as well; `--csv DIR` drains them per figure
   and `--json FILE` drains everything at once, so external tooling can
   track the numbers without scraping stdout. *)

(* name -> header :: rows, rows kept in reverse insertion order *)
let tables : (string, string list list) Hashtbl.t = Hashtbl.create 8

(* name -> key/value metrics attached to a series (e.g. probe-latency
   percentiles from the Obs histograms), reverse insertion order *)
let table_metrics : (string, (string * string) list) Hashtbl.t =
  Hashtbl.create 8

let start name columns =
  Hashtbl.replace tables name [ columns ];
  Hashtbl.remove table_metrics name

let row name values =
  match Hashtbl.find_opt tables name with
  | Some rows -> Hashtbl.replace tables name (values :: rows)
  | None -> ()

let rows name =
  match Hashtbl.find_opt tables name with
  | Some rows -> List.rev rows
  | None -> []

let metric name key value =
  let existing = Option.value ~default:[] (Hashtbl.find_opt table_metrics name) in
  Hashtbl.replace table_metrics name ((key, value) :: existing)

let metrics name =
  match Hashtbl.find_opt table_metrics name with
  | Some kvs -> List.rev kvs
  | None -> []

let names () = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tables [])

(* ------------------------------ JSON ------------------------------ *)

(* All cell values are already strings; numbers among them are emitted
   bare so consumers get real JSON numbers, everything else is quoted. *)

let is_number s =
  s <> "" && match float_of_string_opt s with Some _ -> true | None -> false

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_cell b s = if is_number s then Buffer.add_string b s else add_string b s

let add_list b add xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string b ", ";
      add b x)
    xs;
  Buffer.add_char b ']'

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ",\n";
      let columns, data =
        match rows name with [] -> ([], []) | cols :: data -> (cols, data)
      in
      Buffer.add_string b "  ";
      add_string b name;
      Buffer.add_string b ": {\"columns\": ";
      add_list b add_string columns;
      Buffer.add_string b ", \"rows\": ";
      add_list b (fun b r -> add_list b add_cell r) data;
      (match metrics name with
      | [] -> ()
      | kvs ->
        Buffer.add_string b ", \"metrics\": {";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            add_string b k;
            Buffer.add_string b ": ";
            add_cell b v)
          kvs;
        Buffer.add_char b '}');
      Buffer.add_char b '}')
    (names ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  output_string oc (to_json ());
  close_out oc;
  Printf.printf "(wrote %s)\n" path
