(* Reproduction harness for every experimental figure of the paper's
   Section 6 (Figures 4-8).  Each function prints the same series the
   paper plots; EXPERIMENTS.md records measured-vs-paper shapes. *)

let ms ns = Int64.to_float ns /. 1e6

let header title columns =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (String.concat "  " columns);
  Printf.printf "%s\n" (String.make (String.length (String.concat "  " columns)) '-')

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Optional CSV sink: `--csv DIR` makes every figure also write
   DIR/fig<N>.csv with the same series, for external plotting. *)
let csv_dir : string option ref = ref None

(* Emulated per-probe round-trip latency (seconds); `--probe-latency-ms`.
   With a latency in the MySQL/JDBC range, total figure times become
   probe-dominated, which is the regime the paper measured. *)
let probe_latency_s : float ref = ref 0.0

(* The series themselves live in {!Series} so `--json` can drain them
   too.  Each series gets a fresh metrics window: probe-latency
   percentiles from the evaluator's Obs histogram are attached to the
   series at finish, so BENCH json carries p50/p95/p99 per figure. *)
let csv_start name columns =
  Obs.reset_metrics ();
  Series.start name columns

let attach_probe_metrics name =
  if Obs.metrics_on () then
    match Obs.Histogram.find "eval.probe_ns" with
    | Some h when Obs.Histogram.count h > 0 ->
      let us p = Obs.Histogram.percentile h p /. 1e3 in
      Series.metric name "probes" (string_of_int (Obs.Histogram.count h));
      Series.metric name "probe_p50_us" (Printf.sprintf "%.1f" (us 0.50));
      Series.metric name "probe_p95_us" (Printf.sprintf "%.1f" (us 0.95));
      Series.metric name "probe_p99_us" (Printf.sprintf "%.1f" (us 0.99));
      Series.metric name "probe_max_us"
        (Printf.sprintf "%.1f"
           (Int64.to_float (Obs.Histogram.max_value h) /. 1e3))
    | Some _ | None -> ()

let csv_row = Series.row

let csv_finish name =
  attach_probe_metrics name;
  match !csv_dir with
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Relational.Csv_io.write_string (Series.rows name));
    close_out oc;
    Printf.printf "(wrote %s)\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Figure 4: SCC algorithm on the list structure                      *)
(* ------------------------------------------------------------------ *)

let figure4 ?(rows = Workload.Social.slashdot_row_count)
    ?(sizes = List.init 10 (fun i -> 10 * (i + 1))) () =
  header
    (Printf.sprintf "Figure 4: list structure, table of %d rows" rows)
    [ "queries"; "total_ms"; "graph_ms"; "ground_ms"; "probes"; "solution" ];
  csv_start "fig4"
    [ "queries"; "total_ms"; "graph_ms"; "ground_ms"; "probes"; "solution" ];
  let db = Relational.Database.create () in
  Relational.Database.set_probe_latency db !probe_latency_s;
  let posts = Workload.Social.install_posts ~rows db in
  (* Warm the topic index so the first data point is not charged for the
     one-time index build. *)
  ignore
    (Relational.Relation.count_matching posts ~col:1
       (Relational.Value.str (Workload.Social.topic 0)));
  List.iter
    (fun n ->
      let rng = Prng.create (1000 + n) in
      let queries = Workload.Listgen.queries rng ~n in
      match Coordination.Scc_algo.solve db queries with
      | Error _ -> Printf.printf "%7d  UNSAFE?!\n" n
      | Ok outcome ->
        let s = outcome.stats in
        let sol =
          match outcome.solution with
          | Some sol -> Entangled.Solution.size sol
          | None -> 0
        in
        Printf.printf "%7d  %8.3f  %8.3f  %9.3f  %6d  %8d\n" n
          (ms s.total_ns) (ms s.graph_ns) (ms s.ground_ns) s.db_probes sol;
        csv_row "fig4"
          [
            string_of_int n;
            Printf.sprintf "%.3f" (ms s.total_ns);
            Printf.sprintf "%.3f" (ms s.graph_ns);
            Printf.sprintf "%.3f" (ms s.ground_ns);
            string_of_int s.db_probes;
            string_of_int sol;
          ])
    sizes;
  csv_finish "fig4"

(* ------------------------------------------------------------------ *)
(* Figure 5: SCC algorithm on scale-free networks                     *)
(* ------------------------------------------------------------------ *)

let figure5 ?(rows = Workload.Social.slashdot_row_count) ?(seeds = 10)
    ?(sizes = List.init 10 (fun i -> 10 * (i + 1))) () =
  header
    (Printf.sprintf "Figure 5: scale-free structure, avg over %d seeds" seeds)
    [ "queries"; "total_ms(avg)"; "graph_ms(avg)"; "probes(avg)"; "solution(avg)" ];
  csv_start "fig5" [ "queries"; "total_ms"; "graph_ms"; "probes"; "solution" ];
  let db = Relational.Database.create () in
  Relational.Database.set_probe_latency db !probe_latency_s;
  ignore (Workload.Social.install_posts ~rows db);
  List.iter
    (fun n ->
      let runs =
        List.init seeds (fun s ->
            let rng = Prng.create ((s * 7919) + n) in
            let g = Workload.Scale_free.generate rng ~nodes:n ~edges_per_node:2 in
            let queries = Workload.Netgen.queries_of_graph rng g in
            match Coordination.Scc_algo.solve db queries with
            | Error _ -> (0.0, 0.0, 0, 0)
            | Ok outcome ->
              ( ms outcome.stats.total_ns,
                ms outcome.stats.graph_ns,
                outcome.stats.db_probes,
                match outcome.solution with
                | Some sol -> Entangled.Solution.size sol
                | None -> 0 ))
      in
      let totals = List.map (fun (t, _, _, _) -> t) runs in
      let graphs = List.map (fun (_, g, _, _) -> g) runs in
      let probes = List.map (fun (_, _, p, _) -> float_of_int p) runs in
      let sols = List.map (fun (_, _, _, s) -> float_of_int s) runs in
      Printf.printf "%7d  %13.3f  %13.3f  %11.1f  %13.1f\n" n (mean totals)
        (mean graphs) (mean probes) (mean sols);
      csv_row "fig5"
        [
          string_of_int n;
          Printf.sprintf "%.3f" (mean totals);
          Printf.sprintf "%.3f" (mean graphs);
          Printf.sprintf "%.1f" (mean probes);
          Printf.sprintf "%.1f" (mean sols);
        ])
    sizes;
  csv_finish "fig5"

(* ------------------------------------------------------------------ *)
(* Figure 6: graph construction + preprocessing only                  *)
(* ------------------------------------------------------------------ *)

let figure6 ?(seeds = 10) ?(sizes = List.init 10 (fun i -> 100 * (i + 1))) () =
  header
    (Printf.sprintf "Figure 6: graph processing time, avg over %d seeds" seeds)
    [ "queries"; "graph_ms(avg)" ];
  csv_start "fig6" [ "queries"; "graph_ms" ];
  (* The database is irrelevant here (no grounding happens), but the
     bodies still reference Posts; a small table suffices. *)
  let db = Relational.Database.create () in
  ignore (Workload.Social.install_posts ~rows:1000 db);
  List.iter
    (fun n ->
      let runs =
        List.init seeds (fun s ->
            let rng = Prng.create ((s * 104729) + n) in
            let g = Workload.Scale_free.generate rng ~nodes:n ~edges_per_node:2 in
            let queries = Workload.Netgen.queries_of_graph rng g in
            match Coordination.Scc_algo.solve ~graph_only:true db queries with
            | Error _ -> 0.0
            | Ok outcome -> ms outcome.stats.graph_ns)
      in
      Printf.printf "%7d  %13.3f\n" n (mean runs);
      csv_row "fig6" [ string_of_int n; Printf.sprintf "%.3f" (mean runs) ])
    sizes;
  csv_finish "fig6"

(* ------------------------------------------------------------------ *)
(* Figure 7: consistent algorithm vs number of possible values        *)
(* ------------------------------------------------------------------ *)

let figure7 ?(users = 50) ?(sizes = List.init 10 (fun i -> 100 * (i + 1))) () =
  header
    (Printf.sprintf
       "Figure 7: consistent algorithm, %d queries, all-unique flights table"
       users)
    [ "values"; "total_ms"; "probes"; "members"; "cleaning_rounds" ];
  csv_start "fig7" [ "values"; "total_ms"; "probes"; "members"; "cleaning_rounds" ];
  List.iter
    (fun rows ->
      let db, queries = Workload.Flights.make_worst_case ~rows ~users in
      Relational.Database.set_probe_latency db !probe_latency_s;
      match Coordination.Consistent.solve db Workload.Flights.config queries with
      | Error _ -> Printf.printf "%6d  ERROR\n" rows
      | Ok outcome ->
        Printf.printf "%6d  %8.3f  %6d  %7d  %15d\n" rows
          (ms outcome.stats.total_ns) outcome.stats.db_probes
          (List.length outcome.members)
          outcome.stats.cleaning_rounds;
        csv_row "fig7"
          [
            string_of_int rows;
            Printf.sprintf "%.3f" (ms outcome.stats.total_ns);
            string_of_int outcome.stats.db_probes;
            string_of_int (List.length outcome.members);
            string_of_int outcome.stats.cleaning_rounds;
          ])
    sizes;
  csv_finish "fig7"

(* ------------------------------------------------------------------ *)
(* Figure 8: consistent algorithm vs number of queries                *)
(* ------------------------------------------------------------------ *)

let figure8 ?(rows = 100) ?(sizes = List.init 10 (fun i -> 10 * (i + 1))) () =
  header
    (Printf.sprintf
       "Figure 8: consistent algorithm, flights table of %d rows" rows)
    [ "queries"; "total_ms"; "probes"; "members" ];
  csv_start "fig8" [ "queries"; "total_ms"; "probes"; "members" ];
  List.iter
    (fun users ->
      let db, queries = Workload.Flights.make_worst_case ~rows ~users in
      Relational.Database.set_probe_latency db !probe_latency_s;
      match Coordination.Consistent.solve db Workload.Flights.config queries with
      | Error _ -> Printf.printf "%7d  ERROR\n" users
      | Ok outcome ->
        Printf.printf "%7d  %8.3f  %6d  %7d\n" users
          (ms outcome.stats.total_ns) outcome.stats.db_probes
          (List.length outcome.members);
        csv_row "fig8"
          [
            string_of_int users;
            Printf.sprintf "%.3f" (ms outcome.stats.total_ns);
            string_of_int outcome.stats.db_probes;
            string_of_int (List.length outcome.members);
          ])
    sizes;
  csv_finish "fig8"

let run_all ?(fast = false) () =
  if fast then begin
    figure4 ~rows:10_000 ~sizes:[ 10; 30; 50 ] ();
    figure5 ~rows:10_000 ~seeds:3 ~sizes:[ 10; 30; 50 ] ();
    figure6 ~seeds:3 ~sizes:[ 100; 300; 500 ] ();
    figure7 ~sizes:[ 100; 300; 500 ] ();
    figure8 ~sizes:[ 10; 30; 50 ] ()
  end
  else begin
    figure4 ();
    figure5 ();
    figure6 ();
    figure7 ();
    figure8 ()
  end
