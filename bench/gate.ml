(* Bench regression gate.

   Compares a fresh `entangle-bench --json` dump against the committed
   baseline (BENCH_eval.json).  Three column families are enforced, by
   median over each series' rows:

   - timing columns (`_ms`/`_us`/`_ns` suffix): fail when the fresh
     median got more than --tolerance slower than the baseline.
     Columns whose baseline median is below a per-unit noise floor are
     skipped — sub-millisecond medians regress by scheduler jitter
     alone.
   - speedup columns (`_speedup` suffix — deliberately not the bare
     `speedup` of the parallel-scaling series, which depends on the
     machine's core count): fail when the fresh median drops below an
     absolute floor (--speedup-floor, default 3.0).  An absolute floor
     rather than a baseline ratio: these are committed acceptance
     ratios (the columnar storage engine must stay >= 3x the row
     store) and ratios of two timings are far more portable across
     machines than either timing, but not so stable that losing a lead
     over an unusually good baseline run should fail CI.
   - allocation columns (`minor_words_per_probe` suffix): fail when
     the fresh median exceeds the baseline by more than --alloc-slack
     words (default 0.5).  Allocation counts are exact and
     deterministic, so the slack only absorbs measurement boxing
     amortized across the probe loop; a single boxed value per probe
     (2-3 words) is a real regression and fails.
   - overhead columns (`overhead_ratio` suffix): fail when the fresh
     median exceeds an absolute cap (--overhead-cap, default 1.05).
     These are armed-vs-disarmed ratios of the always-on telemetry
     (metrics registry, flight recorder): the observability layer's
     committed promise is <5% on hot paths, and like the speedup
     floors a ratio of two same-machine timings ports across hardware
     where raw timings do not.

   - WAL overhead columns (`wal_overhead_x` suffix): fail when the
     fresh median exceeds an absolute cap (--wal-overhead-cap, default
     3.0).  The durability ablation commits the page-cache-bound ratio
     of a journaling submit stream over the plain engine (fsync-bound
     variants are reported but deliberately not gated — their cost is
     the disk's); like the other ratio families it ports across
     machines where raw timings do not.

   - service overhead columns (`service_overhead_x` suffix): fail when
     the fresh median exceeds an absolute cap (--service-overhead-cap,
     default 5.0).  The service ablation commits the ratio of a
     journaling submit stream over the plain one, both through the
     frame protocol; the cap is looser than the WAL cap because the
     journal rides on top of protocol cost here, and a socket round
     trip amplifies small absolute regressions into large ratios.

     gate.exe --baseline BENCH_eval.json --fresh bench.json [--tolerance 0.25]
       [--speedup-floor 3.0] [--alloc-slack 0.5] [--overhead-cap 1.05]
       [--wal-overhead-cap 3.0] [--service-overhead-cap 5.0]

   The parser below covers exactly the JSON Series.to_json emits
   (objects, arrays, numbers, strings); it is not a general-purpose
   JSON reader. *)

type json =
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'u' ->
          (* \uXXXX: the emitter only writes these for control bytes;
             keep the raw escape, the gate never compares them. *)
          for _ = 1 to 4 do
            advance ()
          done
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (elements [])
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------- Series access -------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load path =
  match parse_json (read_file path) with
  | Obj series -> series
  | _ -> raise (Parse_error (path ^ ": top level is not an object"))

let strings = function
  | List vs ->
    List.map (function Str s -> s | Num f -> string_of_float f | _ -> "") vs
  | _ -> []

let columns_of = function
  | Obj fields -> (
    match List.assoc_opt "columns" fields with
    | Some c -> strings c
    | None -> [])
  | _ -> []

let rows_of = function
  | Obj fields -> (
    match List.assoc_opt "rows" fields with
    | Some (List rows) -> List.map (function List r -> r | _ -> []) rows
    | _ -> [])
  | _ -> []

let median xs =
  match List.sort compare xs with
  | [] -> None
  | sorted -> Some (List.nth sorted (List.length sorted / 2))

let column_median series name =
  let columns = columns_of series in
  let idx = ref (-1) in
  List.iteri (fun i c -> if c = name then idx := i) columns;
  if !idx < 0 then None
  else
    rows_of series
    |> List.filter_map (fun row ->
           match List.nth_opt row !idx with Some (Num f) -> Some f | _ -> None)
    |> median

type rule =
  | Timing of float  (* noise floor in the column's own unit *)
  | Speedup          (* fresh median must stay above the absolute floor *)
  | Sharded_speedup  (* fresh median must stay above the sharded floor *)
  | Alloc            (* fresh median must stay within slack of baseline *)
  | Overhead         (* fresh median must stay below the absolute cap *)
  | Wal_overhead     (* fresh median must stay below the WAL cap *)
  | Service_overhead (* fresh median must stay below the service cap *)

(* Sub-noise-floor medians are skipped: a 25% "regression" of 40
   microseconds is scheduler jitter, not a slowdown.  The
   sharded_submit_speedup test must run before the generic _speedup
   suffix it also matches: the online engine's 4-domain throughput
   ratio has its own floor (--sharded-speedup-floor, default 2.5) —
   a whole-engine flush pipeline cannot match the storage engine's
   3x bar on a single core, but it must beat 2.5x or sharding is not
   pulling its weight. *)
let rule_of_column name =
  let suffixed s = String.length name >= String.length s
    && String.sub name (String.length name - String.length s) (String.length s) = s
  in
  if suffixed "minor_words_per_probe" then Some Alloc
  else if suffixed "service_overhead_x" then Some Service_overhead
  else if suffixed "wal_overhead_x" then Some Wal_overhead
  else if suffixed "overhead_ratio" then Some Overhead
  else if suffixed "sharded_submit_speedup" then Some Sharded_speedup
  else if suffixed "_speedup" then Some Speedup
  else if suffixed "_ms" then Some (Timing 1.0)
  else if suffixed "_us" then Some (Timing 1000.0)
  else if suffixed "_ns" then Some (Timing 1_000_000.0)
  else None

let () =
  let baseline_path = ref "BENCH_eval.json" in
  let fresh_path = ref "" in
  let tolerance = ref 0.25 in
  let speedup_floor = ref 3.0 in
  let sharded_speedup_floor = ref 2.5 in
  let alloc_slack = ref 0.5 in
  let overhead_cap = ref 1.05 in
  let wal_overhead_cap = ref 3.0 in
  let service_overhead_cap = ref 5.0 in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline_path, "FILE  committed baseline");
      ("--fresh", Arg.Set_string fresh_path, "FILE  freshly generated dump");
      ("--tolerance", Arg.Set_float tolerance,
       "T  fail when median(fresh) > median(baseline) * (1+T)  (default 0.25)");
      ("--speedup-floor", Arg.Set_float speedup_floor,
       "S  fail when a *_speedup median drops below S  (default 3.0)");
      ("--sharded-speedup-floor", Arg.Set_float sharded_speedup_floor,
       "S  fail when a *sharded_submit_speedup median drops below S \
        (default 2.5)");
      ("--alloc-slack", Arg.Set_float alloc_slack,
       "W  fail when a *minor_words_per_probe median exceeds baseline + W \
        words  (default 0.5)");
      ("--overhead-cap", Arg.Set_float overhead_cap,
       "C  fail when an *overhead_ratio median exceeds C  (default 1.05)");
      ("--wal-overhead-cap", Arg.Set_float wal_overhead_cap,
       "C  fail when a *wal_overhead_x median exceeds C  (default 3.0)");
      ("--service-overhead-cap", Arg.Set_float service_overhead_cap,
       "C  fail when a *service_overhead_x median exceeds C  (default 5.0)");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "gate.exe --baseline BENCH_eval.json --fresh bench.json [--tolerance T]";
  if !fresh_path = "" then (
    prerr_endline "gate.exe: --fresh is required";
    exit 2);
  let baseline = load !baseline_path and fresh = load !fresh_path in
  let failures = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (name, base_series) ->
      match List.assoc_opt name fresh with
      | None ->
        failures := Printf.sprintf "%s: series missing from fresh run" name
                    :: !failures
      | Some fresh_series ->
        List.iter
          (fun col ->
            match rule_of_column col with
            | None -> ()
            | Some rule -> (
              match
                (column_median base_series col, column_median fresh_series col)
              with
              | None, _ | _, None -> ()
              | Some b, Some f -> (
                match rule with
                | Timing floor when b < floor ->
                  Printf.printf
                    "  %-32s %-30s base %12.3f  (below noise floor, skipped)\n"
                    name col b
                | Timing _ ->
                  incr checked;
                  let ratio = f /. b in
                  Printf.printf
                    "  %-32s %-30s base %12.3f  fresh %12.3f  %+6.1f%%\n" name
                    col b f ((ratio -. 1.0) *. 100.0);
                  if ratio > 1.0 +. !tolerance then
                    failures :=
                      Printf.sprintf
                        "%s.%s slowed down %.1f%% (median %.3f -> %.3f, \
                         tolerance %.0f%%)"
                        name col
                        ((ratio -. 1.0) *. 100.0)
                        b f (!tolerance *. 100.0)
                      :: !failures
                | Speedup ->
                  incr checked;
                  Printf.printf
                    "  %-32s %-30s base %12.2fx fresh %12.2fx (floor %.1fx)\n"
                    name col b f !speedup_floor;
                  if f < !speedup_floor then
                    failures :=
                      Printf.sprintf
                        "%s.%s speedup %.2fx is below the %.1fx floor \
                         (baseline %.2fx)"
                        name col f !speedup_floor b
                      :: !failures
                | Sharded_speedup ->
                  incr checked;
                  Printf.printf
                    "  %-32s %-30s base %12.2fx fresh %12.2fx (floor %.1fx)\n"
                    name col b f !sharded_speedup_floor;
                  if f < !sharded_speedup_floor then
                    failures :=
                      Printf.sprintf
                        "%s.%s sharded submit speedup %.2fx is below the \
                         %.1fx floor (baseline %.2fx): the online engine \
                         is no longer scaling across domains"
                        name col f !sharded_speedup_floor b
                      :: !failures
                | Alloc ->
                  incr checked;
                  Printf.printf
                    "  %-32s %-30s base %12.2f  fresh %12.2f  (slack %.1f \
                     words)\n"
                    name col b f !alloc_slack;
                  if f > b +. !alloc_slack then
                    failures :=
                      Printf.sprintf
                        "%s.%s allocates %.2f minor words per probe \
                         (baseline %.2f, slack %.1f): the probe path is no \
                         longer allocation-free"
                        name col f b !alloc_slack
                      :: !failures
                | Wal_overhead ->
                  incr checked;
                  Printf.printf
                    "  %-32s %-30s base %12.3fx fresh %12.3fx (cap %.2fx)\n"
                    name col b f !wal_overhead_cap;
                  if f > !wal_overhead_cap then
                    failures :=
                      Printf.sprintf
                        "%s.%s page-cache WAL overhead %.3fx exceeds the \
                         %.2fx cap (baseline %.3fx): journaling is taxing \
                         the submit path"
                        name col f !wal_overhead_cap b
                      :: !failures
                | Service_overhead ->
                  incr checked;
                  Printf.printf
                    "  %-32s %-30s base %12.3fx fresh %12.3fx (cap %.2fx)\n"
                    name col b f !service_overhead_cap;
                  if f > !service_overhead_cap then
                    failures :=
                      Printf.sprintf
                        "%s.%s journaled service overhead %.3fx exceeds the \
                         %.2fx cap (baseline %.3fx): the WAL is taxing the \
                         request path"
                        name col f !service_overhead_cap b
                      :: !failures
                | Overhead ->
                  incr checked;
                  Printf.printf
                    "  %-32s %-30s base %12.3fx fresh %12.3fx (cap %.2fx)\n"
                    name col b f !overhead_cap;
                  if f > !overhead_cap then
                    failures :=
                      Printf.sprintf
                        "%s.%s armed overhead %.3fx exceeds the %.2fx cap \
                         (baseline %.3fx): always-on telemetry is taxing the \
                         hot path"
                        name col f !overhead_cap b
                      :: !failures)))
          (columns_of base_series))
    baseline;
  Printf.printf "bench gate: %d column medians checked against %s\n" !checked
    !baseline_path;
  match List.rev !failures with
  | [] -> print_endline "bench gate: OK"
  | fs ->
    List.iter (fun f -> Printf.eprintf "bench gate: FAIL %s\n" f) fs;
    exit 1
