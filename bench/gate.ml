(* Bench regression gate.

   Compares a fresh `entangle-bench --json` dump against the committed
   baseline (BENCH_eval.json) and fails when any timing column of any
   series got more than --tolerance slower (by median over the series'
   rows).  Timing columns are recognized by their `_ms`/`_us`/`_ns`
   suffix; shape columns (sizes, counts, speedups) are ignored, and so
   are columns whose baseline median is below a per-unit noise floor —
   sub-millisecond medians regress by scheduler jitter alone.

     gate.exe --baseline BENCH_eval.json --fresh bench.json [--tolerance 0.25]

   The parser below covers exactly the JSON Series.to_json emits
   (objects, arrays, numbers, strings); it is not a general-purpose
   JSON reader. *)

type json =
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'u' ->
          (* \uXXXX: the emitter only writes these for control bytes;
             keep the raw escape, the gate never compares them. *)
          for _ = 1 to 4 do
            advance ()
          done
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (elements [])
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------- Series access -------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load path =
  match parse_json (read_file path) with
  | Obj series -> series
  | _ -> raise (Parse_error (path ^ ": top level is not an object"))

let strings = function
  | List vs ->
    List.map (function Str s -> s | Num f -> string_of_float f | _ -> "") vs
  | _ -> []

let columns_of = function
  | Obj fields -> (
    match List.assoc_opt "columns" fields with
    | Some c -> strings c
    | None -> [])
  | _ -> []

let rows_of = function
  | Obj fields -> (
    match List.assoc_opt "rows" fields with
    | Some (List rows) -> List.map (function List r -> r | _ -> []) rows
    | _ -> [])
  | _ -> []

let median xs =
  match List.sort compare xs with
  | [] -> None
  | sorted -> Some (List.nth sorted (List.length sorted / 2))

let column_median series name =
  let columns = columns_of series in
  let idx = ref (-1) in
  List.iteri (fun i c -> if c = name then idx := i) columns;
  if !idx < 0 then None
  else
    rows_of series
    |> List.filter_map (fun row ->
           match List.nth_opt row !idx with Some (Num f) -> Some f | _ -> None)
    |> median

(* Sub-noise-floor medians are skipped: a 25% "regression" of 40
   microseconds is scheduler jitter, not a slowdown. *)
let timing_column name =
  let suffixed s = String.length name > String.length s
    && String.sub name (String.length name - String.length s) (String.length s) = s
  in
  if suffixed "_ms" then Some 1.0
  else if suffixed "_us" then Some 1000.0
  else if suffixed "_ns" then Some 1_000_000.0
  else None

let () =
  let baseline_path = ref "BENCH_eval.json" in
  let fresh_path = ref "" in
  let tolerance = ref 0.25 in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline_path, "FILE  committed baseline");
      ("--fresh", Arg.Set_string fresh_path, "FILE  freshly generated dump");
      ("--tolerance", Arg.Set_float tolerance,
       "T  fail when median(fresh) > median(baseline) * (1+T)  (default 0.25)");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "gate.exe --baseline BENCH_eval.json --fresh bench.json [--tolerance T]";
  if !fresh_path = "" then (
    prerr_endline "gate.exe: --fresh is required";
    exit 2);
  let baseline = load !baseline_path and fresh = load !fresh_path in
  let failures = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (name, base_series) ->
      match List.assoc_opt name fresh with
      | None ->
        failures := Printf.sprintf "%s: series missing from fresh run" name
                    :: !failures
      | Some fresh_series ->
        List.iter
          (fun col ->
            match timing_column col with
            | None -> ()
            | Some floor -> (
              match
                (column_median base_series col, column_median fresh_series col)
              with
              | Some b, Some f when b >= floor ->
                incr checked;
                let ratio = f /. b in
                Printf.printf "  %-32s %-14s base %12.3f  fresh %12.3f  %+6.1f%%\n"
                  name col b f ((ratio -. 1.0) *. 100.0);
                if ratio > 1.0 +. !tolerance then
                  failures :=
                    Printf.sprintf
                      "%s.%s slowed down %.1f%% (median %.3f -> %.3f, \
                       tolerance %.0f%%)"
                      name col
                      ((ratio -. 1.0) *. 100.0)
                      b f (!tolerance *. 100.0)
                    :: !failures
              | Some b, Some _ ->
                Printf.printf "  %-32s %-14s base %12.3f  (below noise floor, \
                               skipped)\n"
                  name col b
              | None, _ | _, None -> ()))
          (columns_of base_series))
    baseline;
  Printf.printf "bench gate: %d timing medians checked against %s\n" !checked
    !baseline_path;
  match List.rev !failures with
  | [] -> print_endline "bench gate: OK"
  | fs ->
    List.iter (fun f -> Printf.eprintf "bench gate: FAIL %s\n" f) fs;
    exit 1
