(* Benchmark driver.

   With no arguments, regenerates every figure of the paper's evaluation
   (Figures 4-8), runs the ablation studies, and finishes with quick
   Bechamel micro-benchmarks.  Individual pieces:

     dune exec bench/main.exe -- --figure 4
     dune exec bench/main.exe -- --ablation evaluator
     dune exec bench/main.exe -- --bechamel
     dune exec bench/main.exe -- --fast        (reduced sizes, for CI) *)

let usage =
  "main.exe [--fast] [--figure N]... [--ablation \
   evaluator|preprocess|selection|minimize|realistic|parallel|online|\
   online-scaling|parallel-scaling|observability|resilience|storage|\
   durability|service]... \
   [--bechamel] \
   [--figures-only] [--json FILE]"

let () =
  let figures = ref [] in
  let ablations = ref [] in
  let bechamel_only = ref false in
  let figures_only = ref false in
  let fast = ref false in
  let json_path = ref None in
  let spec =
    [
      ("--figure", Arg.Int (fun n -> figures := n :: !figures),
       "N  run only figure N (4..8); repeatable");
      ("--ablation", Arg.String (fun s -> ablations := s :: !ablations),
       "NAME  run only this ablation (evaluator|preprocess|selection)");
      ("--bechamel", Arg.Set bechamel_only, " run only the micro-benchmarks");
      ("--figures-only", Arg.Set figures_only, " skip ablations and bechamel");
      ("--fast", Arg.Set fast, " reduced sizes (CI-friendly)");
      ("--csv", Arg.String (fun d -> Figures.csv_dir := Some d),
       "DIR  also write each figure's series to DIR/fig<N>.csv");
      ("--json", Arg.String (fun f -> json_path := Some f),
       "FILE  write every figure/ablation series run as one JSON file");
      ("--probe-latency-ms",
       Arg.Float (fun x -> Figures.probe_latency_s := x /. 1000.0),
       "MS  emulate a per-probe client-server round trip of MS \
        milliseconds (the paper's MySQL/JDBC regime)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  (* Metrics stay on for the whole run: the histograms feed each
     figure's probe-latency percentiles in `--json` output.  The
     `observability` ablation toggles this itself to measure overhead. *)
  Obs.set_metrics true;
  let fast = !fast in
  let ran_something = ref false in
  List.iter
    (fun n ->
      ran_something := true;
      match n with
      | 4 -> if fast then Figures.figure4 ~rows:10_000 ~sizes:[ 10; 30; 50 ] () else Figures.figure4 ()
      | 5 -> if fast then Figures.figure5 ~rows:10_000 ~seeds:3 ~sizes:[ 10; 30; 50 ] () else Figures.figure5 ()
      | 6 -> if fast then Figures.figure6 ~seeds:3 ~sizes:[ 100; 300 ] () else Figures.figure6 ()
      | 7 -> if fast then Figures.figure7 ~sizes:[ 100; 300 ] () else Figures.figure7 ()
      | 8 -> if fast then Figures.figure8 ~sizes:[ 10; 30; 50 ] () else Figures.figure8 ()
      | n -> Printf.eprintf "no figure %d (the paper has figures 4-8)\n" n)
    (List.rev !figures);
  List.iter
    (fun name ->
      ran_something := true;
      match name with
      | "evaluator" ->
        if fast then begin
          Ablations.evaluator ~rows:1_000 ();
          Ablations.evaluator_batch ~rows:5_000 ~probes:300 ()
        end
        else begin
          Ablations.evaluator ();
          Ablations.evaluator_batch ()
        end
      | "preprocess" ->
        if fast then Ablations.preprocess ~rows:5_000 ~n:15 ()
        else Ablations.preprocess ()
      | "selection" ->
        if fast then Ablations.selection ~rows:5_000 ~n:20 ()
        else Ablations.selection ()
      | "minimize" ->
        if fast then Ablations.minimize ~rows:5_000 ~n:12 ()
        else Ablations.minimize ()
      | "realistic" ->
        if fast then Ablations.realistic ~rows:100 ~users:20 ()
        else Ablations.realistic ()
      | "parallel" ->
        if fast then Ablations.parallel ~rows:150 ~users:40 ()
        else Ablations.parallel ()
      | "online" ->
        if fast then Ablations.online ~rows:5_000 ~n:20 ()
        else Ablations.online ()
      | "online-scaling" ->
        if fast then
          Ablations.online_scaling ~rows:1_000 ~pools:[ 200; 1_000 ] ()
        else Ablations.online_scaling ()
      | "parallel-scaling" ->
        if fast then Ablations.parallel_scaling ~rows:1_000 ()
        else Ablations.parallel_scaling ()
      | "online-sharded" ->
        (* 100k pool even in fast mode: the sharded-throughput gate is
           only meaningful at the acceptance pool size. *)
        if fast then
          Ablations.online_sharded ~rows:1_000 ~pools:[ 100_000 ]
            ~domain_counts:[ 1; 2; 4 ] ()
        else Ablations.online_sharded ()
      | "observability" ->
        if fast then Ablations.observability ~rows:5_000 ~n:15 ~repeats:13 ~iters:50 ()
        else Ablations.observability ()
      | "resilience" ->
        if fast then Ablations.resilience ~rows:5_000 ~n:15 ~repeats:3 ()
        else Ablations.resilience ()
      | "durability" ->
        if fast then Ablations.durability ~rows:1_000 ~pools:[ 200; 1_000 ] ()
        else Ablations.durability ()
      | "service" ->
        if fast then
          Ablations.service ~rows:1_000 ~requests:256 ~clients:[ 1; 8 ] ()
        else Ablations.service ()
      | "storage" ->
        (* 100k rows even in fast mode: the speedup and allocation gates
           are only meaningful at the acceptance workload size. *)
        if fast then Ablations.storage ~repeats:3 ()
        else Ablations.storage ()
      | s -> Printf.eprintf "unknown ablation %s\n" s)
    (List.rev !ablations);
  if !bechamel_only then begin
    ran_something := true;
    Micro.run_all ()
  end;
  if not !ran_something then begin
    Figures.run_all ~fast ();
    if not !figures_only then begin
      Ablations.run_all ~fast ();
      Micro.run_all ()
    end
  end;
  Option.iter Series.write_json !json_path
