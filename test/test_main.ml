let () =
  Alcotest.run "entangle"
    [
      ("relational", Test_relational.suite);
      ("column-store", Test_column_store.suite);
      ("eval", Test_eval.suite);
      ("plan", Test_plan.suite);
      ("graphs", Test_graphs.suite);
      ("entangled", Test_entangled.suite);
      ("algorithms", Test_algorithms.suite);
      ("single-connected", Test_single_connected.suite);
      ("extensions", Test_extensions.suite);
      ("online-incremental", Test_online_incremental.suite);
      ("online-sharded", Test_online_sharded.suite);
      ("containment", Test_containment.suite);
      ("proposition-1", Test_prop1.suite);
      ("sat", Test_sat.suite);
      ("workload", Test_workload.suite);
      ("obs", Test_obs.suite);
      ("resilient", Test_resilient.suite);
      ("durable", Test_durable.suite);
      ("server", Test_server.suite);
      ("executor", Test_executor.suite);
    ]
