(* The sharded online engine against the sequential oracle.

   The sharded engine partitions the live pool by bucket group across
   per-shard incremental engines; the sequential incremental engine is
   the differential oracle.  Equality must be exact at every domain
   count — pending entries (with ids), component partition, satisfied
   count, fired sets in order, the final store, and every deterministic
   stats counter — for any interleaving of submissions, batches,
   flushes, withdrawals and external inserts, with and without seeded
   chaos faults.  CI sweeps SHARDED_DOMAINS × CHAOS_SEED; locally the
   driver sweeps domains 1/2/4 itself. *)

open Relational
open Entangled
open Helpers
module Online = Coordination.Online
module Sharded = Coordination.Online_sharded
module Stats = Coordination.Stats

let domain_counts =
  match
    int_of_string_opt (try Sys.getenv "SHARDED_DOMAINS" with Not_found -> "")
  with
  | Some k when k >= 1 -> [ k ]
  | Some _ | None -> [ 1; 2; 4 ]

let chaos_seed =
  match int_of_string_opt (try Sys.getenv "CHAOS_SEED" with Not_found -> "")
  with
  | Some s -> s
  | None -> 42

let chaos_rate =
  match
    float_of_string_opt (try Sys.getenv "CHAOS_FAULT_RATE" with Not_found -> "")
  with
  | Some r when r >= 0.0 && r < 1.0 -> r
  | Some _ | None -> 0.3

(* Transient faults with effectively unlimited retries: every probe
   eventually succeeds, so the chaos run must equal the fault-free one
   exactly, whatever order the shards issue probes in. *)
let chaos_config =
  {
    Resilient.default_config with
    max_attempts = 1000;
    faults =
      Some
        {
          Resilient.fault_defaults with
          fault_seed = chaos_seed;
          transient_rate = chaos_rate;
        };
  }

(* ------------------------ differential driver --------------------- *)

let dests = [| "Zurich"; "Paris"; "Athens"; "Nowhere" |]

let mk_db () =
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  List.iter
    (fun (f, d) -> Database.insert db "F" [ vi f; vs d ])
    [ (101, "Zurich"); (102, "Zurich"); (200, "Paris"); (300, "Athens") ];
  db

(* Constants draw from a 4-value pool so partners, multi-member
   components, cross-shard collisions (hence migrations) and unsafe
   postconditions all occur; an occasional var-first postcondition
   exercises the wildcard bucket routing. *)
let random_query rng i =
  let g k = cs (Printf.sprintf "g%d" k) in
  let post =
    let roll = Prng.int rng 10 in
    if roll < 6 then [ atom "R" [ g (Prng.int rng 4); var "y" ] ]
    else if roll < 7 then [ atom "R" [ var "w"; var "y" ] ]
    else []
  in
  Query.make
    ~name:(Printf.sprintf "q%d" i)
    ~post
    ~head:[ atom "R" [ g (Prng.int rng 4); var "x" ] ]
    [ atom "F" [ var "x"; cs dests.(Prng.int rng (Array.length dests)) ] ]

let fired_names (c : Online.coordinated) =
  List.map (fun q -> q.Query.name) c.Online.queries

let submission_repr = function
  | Online.Coordinated c -> "fired " ^ String.concat "," (fired_names c)
  | Online.Pending -> "pending"
  | Online.Rejected_unsafe ws ->
    "rejected "
    ^ String.concat ","
        (List.map (fun (a, b) -> Printf.sprintf "%d/%d" a b) ws)

let entry_repr (id, q) = Printf.sprintf "%d:%s" id q.Query.name

let run_differential ~seed ~domains ~eager ~consume ~chaos =
  let rng = Prng.create seed in
  let db_seq = mk_db () and db_sh = mk_db () in
  let oracle =
    Online.create ~eager ~consume ~mode:Online.Incremental db_seq
  in
  let sharded = Sharded.create ~eager ~consume ~domains db_sh in
  let guards =
    if not chaos then []
    else begin
      let gs = Resilient.arm chaos_config and gh = Resilient.arm chaos_config in
      Database.set_guard db_seq (Some gs);
      Database.set_guard db_sh (Some gh);
      [ gs; gh ]
    end
  in
  ignore guards;
  let ctx step m =
    Printf.sprintf "seed %d domains %d step %d: %s" seed domains step m
  in
  let check_sync step =
    Alcotest.(check (list string))
      (ctx step "pending")
      (List.map entry_repr (Online.pending_entries oracle))
      (List.map entry_repr (Sharded.pending_entries sharded));
    Alcotest.(check (list (list int)))
      (ctx step "components")
      (Online.components oracle)
      (Sharded.components sharded);
    Alcotest.(check int) (ctx step "satisfied")
      (Online.total_coordinated oracle)
      (Sharded.total_coordinated sharded);
    Alcotest.(check int) (ctx step "next_id") (Online.next_id oracle)
      (Sharded.next_id sharded)
  in
  let next_fid = ref 1000 in
  for step = 1 to 50 do
    let roll = Prng.int rng 12 in
    if roll < 6 then begin
      let q = random_query rng step in
      Alcotest.(check string)
        (ctx step "submission")
        (submission_repr (Online.submit oracle q))
        (submission_repr (Sharded.submit sharded q))
    end
    else if roll < 8 then begin
      let batch = List.init (1 + Prng.int rng 3) (fun j ->
          random_query rng ((1000 * step) + j))
      in
      Alcotest.(check (list (list string)))
        (ctx step "submit_all")
        (List.map fired_names (Online.submit_all oracle batch))
        (List.map fired_names (Sharded.submit_all sharded batch))
    end
    else if roll < 9 then
      Alcotest.(check (list (list string)))
        (ctx step "flush")
        (List.map fired_names (Online.flush oracle))
        (List.map fired_names (Sharded.flush sharded))
    else if roll < 10 then begin
      (* Withdraw a live id (ids are allocated identically on both
         sides), or a dead one — both must agree either way. *)
      let id =
        match Online.pending_entries oracle with
        | [] -> 0
        | live -> fst (List.nth live (Prng.int rng (List.length live)))
      in
      Alcotest.(check bool)
        (ctx step "withdraw")
        (Online.withdraw oracle id)
        (Sharded.withdraw sharded id)
    end
    else begin
      (* An external insert: both stores move, and every shard's cached
         component verdicts must be dropped, like the oracle's. *)
      incr next_fid;
      let dest = dests.(Prng.int rng 3) in
      Database.insert db_seq "F" [ vi !next_fid; vs dest ];
      Database.insert db_sh "F" [ vi !next_fid; vs dest ]
    end;
    check_sync step
  done;
  Alcotest.(check (list (list string)))
    (ctx 1000 "final flush")
    (List.map fired_names (Online.flush oracle))
    (List.map fired_names (Sharded.flush sharded));
  check_sync 1000;
  let tuples db =
    List.sort Tuple.compare (Relation.to_list (Database.relation db "F"))
  in
  Alcotest.(check (list tuple_t))
    (ctx 1001 "final store") (tuples db_seq) (tuples db_sh);
  Alcotest.(check bool)
    (ctx 1002 "deterministic stats counters equal")
    true
    (Stats.same_counters (Online.stats oracle) (Sharded.stats sharded));
  Database.set_guard db_seq None;
  Database.set_guard db_sh None

let grid = [ (true, false); (false, false); (true, true); (false, true) ]

let test_differential () =
  List.iter
    (fun domains ->
      List.iter
        (fun seed ->
          List.iter
            (fun (eager, consume) ->
              run_differential ~seed ~domains ~eager ~consume ~chaos:false)
            grid)
        [ chaos_seed; chaos_seed + 1; chaos_seed + 2 ])
    domain_counts

let test_differential_chaos () =
  List.iter
    (fun domains ->
      List.iter
        (fun (eager, consume) ->
          run_differential ~seed:chaos_seed ~domains ~eager ~consume
            ~chaos:true)
        grid)
    domain_counts

(* --------------------------- migration ---------------------------- *)

(* Two entries with disjoint bucket groups land on different shards;
   a third whose atoms touch both groups must migrate one group into
   the other's shard, after which the fused component coordinates
   exactly as the oracle says. *)
let test_migration_merges_components () =
  let q name ~post ~head =
    Query.make ~name
      ~post:(List.map (fun c -> atom "R" [ cs c; var "y" ]) post)
      ~head:[ atom "R" [ cs head; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  let qs =
    [
      q "a" ~post:[] ~head:"u1";
      q "b" ~post:[] ~head:"u2";
      q "link" ~post:[ "u1"; "u2" ] ~head:"u3";
    ]
  in
  let db_sh = mk_db () in
  let sharded = Sharded.create ~eager:false ~domains:2 db_sh in
  List.iter (fun q -> ignore (Sharded.submit sharded q)) qs;
  Alcotest.(check bool)
    "distinct groups were sharded apart then merged" true
    (Sharded.migrations sharded > 0);
  let oracle = Online.create ~eager:false (mk_db ()) in
  List.iter (fun q -> ignore (Online.submit oracle q)) qs;
  Alcotest.(check (list (list int)))
    "fused partition agrees" (Online.components oracle)
    (Sharded.components sharded);
  Alcotest.(check (list (list string)))
    "fused component fires identically"
    (List.map fired_names (Online.flush oracle))
    (List.map fired_names (Sharded.flush sharded))

(* ------------------------- degraded flush ------------------------- *)

(* Under an exhausted probe budget every shard degrades rather than
   fires; degraded components stay dirty, so disarming and flushing
   again must converge to exactly the oracle's result. *)
let test_degraded_flush_converges () =
  let pool =
    [
      Query.make ~name:"qa"
        ~post:[ atom "R" [ cs "C"; var "x" ] ]
        ~head:[ atom "R" [ cs "G"; var "x" ] ]
        [ atom "F" [ var "x"; cs "Zurich" ] ];
      Query.make ~name:"qb" ~post:[]
        ~head:[ atom "R" [ cs "C"; var "y" ] ]
        [ atom "F" [ var "y"; cs "Zurich" ] ];
    ]
  in
  let db_sh = mk_db () in
  let sharded = Sharded.create ~eager:false ~domains:2 db_sh in
  List.iter (fun q -> ignore (Sharded.submit sharded q)) pool;
  let guard =
    Resilient.arm { Resilient.default_config with max_probes = Some 0 }
  in
  Database.set_guard db_sh (Some guard);
  Alcotest.(check int) "degraded flush fires nothing" 0
    (List.length (Sharded.flush sharded));
  Alcotest.(check bool) "degradation reported" true
    (Sharded.last_degradation sharded <> None);
  Database.set_guard db_sh None;
  let oracle = Online.create ~eager:false (mk_db ()) in
  List.iter (fun q -> ignore (Online.submit oracle q)) pool;
  Alcotest.(check (list (list string)))
    "disarmed flush converges to the oracle"
    (List.map fired_names (Online.flush oracle))
    (List.map fired_names (Sharded.flush sharded));
  Alcotest.(check bool) "degradation cleared" true
    (Sharded.last_degradation sharded = None)

(* ----------------------- journal equivalence ---------------------- *)

(* The sharded journal record stream must be byte-equivalent to the
   sequential engine's, so lib/durable can log a sharded engine without
   knowing it is sharded. *)
let record_repr = function
  | Online.Journal.Submitted { id; query } ->
    Printf.sprintf "submitted %d %s" id query.Query.name
  | Online.Journal.Rejected { id } -> Printf.sprintf "rejected %d" id
  | Online.Journal.Retired { ids } ->
    "retired " ^ String.concat "," (List.map string_of_int ids)
  | Online.Journal.Consumed { deletions } ->
    "consumed "
    ^ String.concat ","
        (List.map
           (fun (r, t) -> Format.asprintf "%s:%a" r Tuple.pp t)
           deletions)
  | Online.Journal.Op_end { fired; _ } -> Printf.sprintf "op_end %d" fired

let test_journal_stream_equivalent () =
  List.iter
    (fun domains ->
      let rng = Prng.create 7 in
      let db_seq = mk_db () and db_sh = mk_db () in
      let oracle = Online.create ~consume:true db_seq in
      let sharded = Sharded.create ~consume:true ~domains db_sh in
      let log_seq = ref [] and log_sh = ref [] in
      Online.set_journal oracle (Some (fun r -> log_seq := r :: !log_seq));
      Sharded.set_journal sharded (Some (fun r -> log_sh := r :: !log_sh));
      for step = 1 to 30 do
        let q = random_query rng step in
        ignore (Online.submit oracle q);
        ignore (Sharded.submit sharded q)
      done;
      ignore (Online.flush oracle);
      ignore (Sharded.flush sharded);
      Alcotest.(check (list string))
        (Printf.sprintf "domains %d: identical journal streams" domains)
        (List.rev_map record_repr !log_seq)
        (List.rev_map record_repr !log_sh))
    domain_counts

let suite =
  [
    Alcotest.test_case "differential: sharded == sequential oracle" `Quick
      test_differential;
    Alcotest.test_case "differential under seeded chaos faults" `Quick
      test_differential_chaos;
    Alcotest.test_case "migration merges cross-shard components" `Quick
      test_migration_merges_components;
    Alcotest.test_case "degraded flush stays dirty and converges" `Quick
      test_degraded_flush_converges;
    Alcotest.test_case "journal streams byte-equivalent" `Quick
      test_journal_stream_equivalent;
  ]
