(* The component-sharded multicore batch executor: differential tests
   proving executor ≡ sequential — same solution, same stats counters,
   same trace events — across seeds, algorithms and domain counts, plus
   pool unit tests and a chaos case where one shard exhausts its budget
   and only that shard degrades. *)

open Relational
open Entangled
module Executor = Coordination.Executor
module Scc = Coordination.Scc_algo
module Stats = Coordination.Stats

let seeds = [ 1; 2; 3; 4; 5 ]
let domain_counts = [ 1; 2; 4 ]

let pairgen seed =
  Workload.Pairgen.make ~rows:400 ~topics:20 ~p_unsat:0.3 ~p_dependent:0.4
    ~seed 12

let solution_str queries = function
  | None -> "none"
  | Some s -> Format.asprintf "%a" (Solution.pp queries) s

let degraded_str = function
  | None -> "none"
  | Some d -> Format.asprintf "%a" Resilient.pp_degradation d

(* Trace items reduced to their deterministic parts: kind, name, depth
   and args — never timestamps. *)
(* [plan_hit] is dropped from span signatures: which probe compiles a
   plan shape first depends on shard execution order, so hit/miss
   attribution shifts between runs while the totals stay deterministic
   — those are compared through the stats counters instead. *)
let item_sig = function
  | Obs.Span s ->
    Format.asprintf "span %s depth=%d %s" s.Obs.name s.Obs.depth
      (String.concat ","
         (List.filter_map
            (fun (k, v) ->
              if k = "plan_hit" then None
              else
                Some
                  (k ^ "="
                  ^
                  match v with
                  | Obs.Str s -> s
                  | Obs.Int i -> string_of_int i
                  | Obs.Float f -> Printf.sprintf "%g" f
                  | Obs.Bool b -> string_of_bool b))
            s.Obs.args))
  | Obs.Event e ->
    Format.asprintf "event %s depth=%d" e.Obs.ev_name e.Obs.ev_depth

let traced f =
  let sink, drain = Obs.memory_sink () in
  let result = Obs.with_sink sink f in
  (result, List.map item_sig (drain ()))

(* ------------------------- SCC differential ----------------------- *)

let check_scc_seed ~selection seed =
  let sequential, seq_trace =
    let db, queries = pairgen seed in
    traced (fun () -> Scc.solve ~selection db queries)
  in
  let seq =
    match sequential with Ok o -> o | Error _ -> Alcotest.fail "safe workload"
  in
  List.iter
    (fun domains ->
      let parallel, par_trace =
        let db, queries = pairgen seed in
        traced (fun () -> Executor.solve_scc ~selection ~domains db queries)
      in
      let par =
        match parallel with
        | Ok o -> o
        | Error _ -> Alcotest.fail "safe workload (parallel)"
      in
      let label fmt =
        Printf.sprintf "seed %d domains %d: %s" seed domains fmt
      in
      Alcotest.(check string)
        (label "solution")
        (solution_str seq.Scc.queries seq.Scc.solution)
        (solution_str par.Scc.queries par.Scc.solution);
      Alcotest.(check string)
        (label "degraded")
        (degraded_str seq.Scc.degraded)
        (degraded_str par.Scc.degraded);
      Alcotest.(check bool)
        (label "stats counters")
        true
        (Stats.same_counters seq.Scc.stats par.Scc.stats);
      if selection = Scc.Largest then
        Alcotest.(check (list string)) (label "trace") seq_trace par_trace)
    domain_counts

let test_scc_differential () =
  List.iter (check_scc_seed ~selection:Scc.Largest) seeds

let test_scc_first_found () =
  (* First_found: the merged answer is still the sequential one, but
     sibling shards may over-probe, so only the solution is compared. *)
  List.iter
    (fun seed ->
      let db, queries = pairgen seed in
      let seq =
        match Scc.solve ~selection:Scc.First_found db queries with
        | Ok o -> o
        | Error _ -> Alcotest.fail "safe workload"
      in
      List.iter
        (fun domains ->
          let db, queries = pairgen seed in
          match
            Executor.solve_scc ~selection:Scc.First_found ~domains db queries
          with
          | Error _ -> Alcotest.fail "safe workload (parallel)"
          | Ok par ->
            Alcotest.(check string)
              (Printf.sprintf "seed %d domains %d first-found" seed domains)
              (solution_str seq.Scc.queries seq.Scc.solution)
              (solution_str par.Scc.queries par.Scc.solution))
        domain_counts)
    seeds

(* ------------------------ Gupta differential ---------------------- *)

let test_gupta_differential () =
  List.iter
    (fun seed ->
      (* Gupta needs a unique set — a single SCC — so the workload is a
         ring, not independent pairs. *)
      let gen () = Workload.Pairgen.ring ~rows:400 ~topics:20 ~seed 10 in
      let db, queries = gen () in
      let seq =
        match Coordination.Gupta.solve db queries with
        | Ok o -> o
        | Error _ -> Alcotest.fail "safe+unique workload"
      in
      let counters_ref = ref None in
      List.iter
        (fun domains ->
          let db, queries = gen () in
          match Executor.solve_gupta ~domains db queries with
          | Error _ -> Alcotest.fail "safe+unique workload (parallel)"
          | Ok par ->
            Alcotest.(check string)
              (Printf.sprintf "seed %d domains %d solution" seed domains)
              (solution_str seq.Coordination.Gupta.queries
                 seq.Coordination.Gupta.solution)
              (solution_str par.Coordination.Gupta.queries
                 par.Coordination.Gupta.solution);
            (* Parallel stats have a documented per-shard shape; they
               must still be identical across domain counts. *)
            (match !counters_ref with
            | None -> counters_ref := Some par.Coordination.Gupta.stats
            | Some first ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d domains %d counters stable" seed
                   domains)
                true
                (Stats.same_counters first par.Coordination.Gupta.stats)))
        domain_counts)
    seeds

(* ---------------------- Consistent differential ------------------- *)

let test_consistent_differential () =
  let config = Workload.Flights.config in
  (* A fresh database per run: the plan cache is per-database, so
     reusing one db would shift plan hits/misses between the sequential
     baseline and the parallel runs. *)
  let seq =
    let db, queries = Workload.Flights.make_worst_case ~rows:60 ~users:12 in
    match Coordination.Consistent.solve ~selection:`Largest db config queries with
    | Ok o -> o
    | Error _ -> Alcotest.fail "consistent solve failed"
  in
  List.iter
    (fun domains ->
      let db, queries = Workload.Flights.make_worst_case ~rows:60 ~users:12 in
      match Executor.solve_consistent ~domains db config queries with
      | Error _ -> Alcotest.fail "parallel consistent solve failed"
      | Ok par ->
        let open Coordination.Consistent in
        Alcotest.(check bool)
          (Printf.sprintf "domains %d members" domains)
          true
          (par.members = seq.members);
        Alcotest.(check bool)
          (Printf.sprintf "domains %d chosen value" domains)
          true
          (par.chosen_value = seq.chosen_value);
        Alcotest.(check bool)
          (Printf.sprintf "domains %d candidates" domains)
          true
          (par.candidates = seq.candidates);
        Alcotest.(check bool)
          (Printf.sprintf "domains %d choices" domains)
          true
          (par.choices = seq.choices);
        Alcotest.(check bool)
          (Printf.sprintf "domains %d counters" domains)
          true
          (Stats.same_counters seq.stats par.stats))
    domain_counts

(* ----------------------- Chaos: shard budgets --------------------- *)

(* One big component (a 6-query chain, 6 SCCs) next to three pairs.
   With a probe budget of 8 split over the 4 shards, only the chain's
   shard runs dry: everything else completes and the merged outcome
   reports exactly the chain's tail unprobed — identically for every
   domain count. *)
let chain_and_pairs () =
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  Database.insert db "F" [ Value.Int 1; Value.Str "Zurich" ];
  let atom rel args = { Cq.rel; args = Array.of_list args } in
  let cs s = Term.Const (Value.Str s) in
  let var v = Term.Var v in
  let chain =
    List.init 6 (fun i ->
        let post =
          if i < 5 then [ atom "R" [ cs (Printf.sprintf "c%d" (i + 1)); var "x" ] ]
          else []
        in
        Query.make
          ~name:(Printf.sprintf "c%d" i)
          ~post
          ~head:[ atom "R" [ cs (Printf.sprintf "c%d" i); var "x" ] ]
          [ atom "F" [ var "x"; cs "Zurich" ] ])
  in
  let pairs =
    List.concat
      (List.init 3 (fun i ->
           let ua = Printf.sprintf "pa%d" i and ub = Printf.sprintf "pb%d" i in
           [
             Query.make ~name:ua
               ~post:[ atom "R" [ cs ub; var "x" ] ]
               ~head:[ atom "R" [ cs ua; var "x" ] ]
               [ atom "F" [ var "x"; cs "Zurich" ] ];
             Query.make ~name:ub
               ~post:[ atom "R" [ cs ua; var "y" ] ]
               ~head:[ atom "R" [ cs ub; var "y" ] ]
               [ atom "F" [ var "y"; cs "Zurich" ] ];
           ]))
  in
  (db, chain @ pairs)

let test_chaos_shard_budget () =
  let reference = ref None in
  List.iter
    (fun domains ->
      let db, queries = chain_and_pairs () in
      let g =
        Resilient.arm
          { Resilient.default_config with max_probes = Some 8 }
      in
      Database.set_guard db (Some g);
      Resilient.start_solve g;
      let outcome =
        Fun.protect
          ~finally:(fun () -> Database.set_guard db None)
          (fun () ->
            match Executor.solve_scc ~domains db queries with
            | Ok o -> o
            | Error _ -> Alcotest.fail "safe workload")
      in
      (match outcome.Scc.degraded with
      | None -> Alcotest.fail "expected the chain shard to degrade"
      | Some d ->
        (* Chain queries are indexes 0..5; every unprobed member must
           come from the chain — the pair shards kept their budgets. *)
        List.iter
          (fun members ->
            List.iter
              (fun q ->
                Alcotest.(check bool)
                  "unprobed members in the chain shard" true (q < 6))
              members)
          d.Resilient.unprobed);
      (* A coordinating set is still found: the pair shards completed,
         and the chain shard's probed prefix may legally contribute a
         candidate too — but never an unprobed query. *)
      (match outcome.Scc.solution with
      | None -> Alcotest.fail "pairs should still coordinate"
      | Some s ->
        let unprobed =
          match outcome.Scc.degraded with
          | None -> []
          | Some d -> List.concat d.Resilient.unprobed
        in
        Alcotest.(check bool)
          "solution avoids unprobed queries" true
          (List.for_all
             (fun q -> not (List.mem q unprobed))
             s.Solution.members));
      let snapshot =
        Format.asprintf "%s / %s"
          (solution_str outcome.Scc.queries outcome.Scc.solution)
          (degraded_str outcome.Scc.degraded)
      in
      match !reference with
      | None -> reference := Some snapshot
      | Some first ->
        Alcotest.(check string)
          (Printf.sprintf "domains %d deterministic degradation" domains)
          first snapshot)
    domain_counts

(* ----------------------- Online parallel flush -------------------- *)

let online_stream () =
  let db, queries = pairgen 7 in
  (db, queries)

let test_online_parallel_flush () =
  let run domains =
    let db, queries = online_stream () in
    let engine =
      Coordination.Online.create ~eager:false ~consume:true
        ~mode:Coordination.Online.Incremental db
    in
    List.iter
      (fun q -> ignore (Coordination.Online.submit engine q))
      queries;
    let fired = Coordination.Online.flush ?domains engine in
    let names =
      List.map
        (fun (c : Coordination.Online.coordinated) ->
          String.concat "," (List.map (fun q -> q.Query.name) c.queries))
        fired
    in
    ( names,
      Coordination.Online.pending_count engine,
      Database.total_tuples db,
      (Coordination.Online.stats engine).Stats.db_probes,
      (Coordination.Online.stats engine).Stats.candidates )
  in
  let seq_names, seq_pending, seq_tuples, seq_probes, seq_cands = run None in
  Alcotest.(check bool) "something fired" true (seq_names <> []);
  List.iter
    (fun domains ->
      let names, pending, tuples, probes, cands = run (Some domains) in
      let label fmt = Printf.sprintf "domains %d: %s" domains fmt in
      Alcotest.(check (list string)) (label "fired sets") seq_names names;
      Alcotest.(check int) (label "pending") seq_pending pending;
      Alcotest.(check int) (label "store") seq_tuples tuples;
      Alcotest.(check int) (label "probes") seq_probes probes;
      Alcotest.(check int) (label "candidates") seq_cands cands)
    domain_counts

(* ----------------------------- Pool units ------------------------- *)

let test_pool_order () =
  let weights = Array.init 17 (fun i -> (i * 7) mod 13) in
  let results =
    Executor.Pool.map ~domains:4 ~weights (fun i -> (i * i) + 1)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "task order" ((i * i) + 1) v
      | Error _ -> Alcotest.fail "no task raised")
    results

let test_pool_exception () =
  let weights = Array.make 5 1 in
  let results =
    Executor.Pool.map ~domains:2 ~weights (fun i ->
        if i = 3 then failwith "boom" else i)
  in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 3, Error (Failure m) -> Alcotest.(check string) "carried" "boom" m
      | 3, _ -> Alcotest.fail "task 3 should have failed"
      | _, Ok v -> Alcotest.(check int) "others fine" i v
      | _, Error _ -> Alcotest.fail "only task 3 raised")
    results

let test_pool_weights_irrelevant () =
  (* Whatever the weights (and so the deal/steal order), results land
     in task order. *)
  List.iter
    (fun weights ->
      let results =
        Executor.Pool.map ~domains:3 ~weights (fun i -> 2 * i)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "task order" (2 * i) v
          | Error _ -> Alcotest.fail "no task raised")
        results)
    [ Array.make 9 0; Array.init 9 (fun i -> i); Array.init 9 (fun i -> 9 - i) ]

let test_pool_empty () =
  Alcotest.(check int)
    "empty batch" 0
    (Array.length (Executor.Pool.map ~domains:4 ~weights:[||] (fun i -> i)))

let suite =
  [
    Alcotest.test_case "scc: executor ≡ sequential (5 seeds × 3 domain counts)"
      `Quick test_scc_differential;
    Alcotest.test_case "scc: first-found returns the sequential answer" `Quick
      test_scc_first_found;
    Alcotest.test_case "gupta: executor ≡ sequential solution" `Quick
      test_gupta_differential;
    Alcotest.test_case "consistent: executor ≡ sequential outcome" `Quick
      test_consistent_differential;
    Alcotest.test_case "chaos: only the over-budget shard degrades" `Quick
      test_chaos_shard_budget;
    Alcotest.test_case "online: parallel flush ≡ sequential flush" `Quick
      test_online_parallel_flush;
    Alcotest.test_case "pool: results in task order" `Quick test_pool_order;
    Alcotest.test_case "pool: exceptions captured per task" `Quick
      test_pool_exception;
    Alcotest.test_case "pool: steal order never changes results" `Quick
      test_pool_weights_irrelevant;
    Alcotest.test_case "pool: empty batch" `Quick test_pool_empty;
  ]
