(* Unit tests for the relational substrate: values, schemas, tuples,
   relations, databases, the growable vector, and CSV I/O. *)

open Relational
open Helpers

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = -1) v);
  Alcotest.(check int) "fold" (List.fold_left ( + ) 0 (Vec.to_list v))
    (Vec.fold_left ( + ) 0 v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index 100 out of bounds [0,100)")
    (fun () -> ignore (Vec.get v 100));
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_of_list () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "roundtrip" [ 3; 1; 4; 1; 5 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Vec.to_array v)

let test_value_order () =
  let values = [ vi 2; vi 1; vs "b"; vs "a"; Value.bool true; Value.bool false ] in
  let sorted = List.sort Value.compare values in
  Alcotest.(check (list value_t)) "order"
    [ vi 1; vi 2; vs "a"; vs "b"; Value.bool false; Value.bool true ]
    sorted

let test_value_string_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.check value_t
        (Value.to_string v)
        v
        (Value.of_string (Value.to_string v)))
    [ vi 0; vi (-17); vi 123456; vs "Zurich"; Value.bool true; Value.bool false ]

let test_value_pp_quotes () =
  Alcotest.(check string) "identifier" "Zurich" (Value.to_string (vs "Zurich"));
  Alcotest.(check string) "quoted" "'New York'" (Value.to_string (vs "New York"))

let test_schema () =
  let s = Schema.make "F" [ "fid"; "dest" ] in
  Alcotest.(check string) "name" "F" (Schema.name s);
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check int) "index" 1 (Schema.index_of s "dest");
  Alcotest.(check bool) "mem" true (Schema.mem_attribute s "fid");
  Alcotest.(check bool) "not mem" false (Schema.mem_attribute s "nope");
  Alcotest.(check string) "attribute" "dest" (Schema.attribute s 1);
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.make: duplicate attribute \"a\" in X") (fun () ->
      ignore (Schema.make "X" [ "a"; "a" ]))

let test_tuple () =
  let t = tup [ vi 1; vs "x" ] in
  Alcotest.(check int) "arity" 2 (Tuple.arity t);
  Alcotest.check value_t "get" (vs "x") (Tuple.get t 1);
  Alcotest.check tuple_t "project" (tup [ vs "x"; vi 1 ]) (Tuple.project t [ 1; 0 ]);
  Alcotest.(check bool) "equal" true (Tuple.equal t (tup [ vi 1; vs "x" ]));
  Alcotest.(check bool) "hash-consistent"
    true
    (Tuple.hash t = Tuple.hash (tup [ vi 1; vs "x" ]));
  Alcotest.(check int) "compare shorter" (-1)
    (compare (Tuple.compare (tup [ vi 1 ]) t) 0)

let test_relation_set_semantics () =
  let r = Relation.create (Schema.make "F" [ "fid"; "dest" ]) in
  Alcotest.(check bool) "first insert" true
    (Relation.insert r (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check bool) "duplicate" false
    (Relation.insert r (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check int) "cardinal" 1 (Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Relation.mem r (tup [ vi 1; vs "Zurich" ]))

let test_relation_lookup () =
  let r = Relation.create (Schema.make "F" [ "fid"; "dest" ]) in
  Relation.insert_list r
    [
      tup [ vi 1; vs "Zurich" ];
      tup [ vi 2; vs "Zurich" ];
      tup [ vi 3; vs "Paris" ];
    ];
  let zurich = Relation.lookup r ~col:1 (vs "Zurich") in
  Alcotest.(check int) "lookup count" 2 (List.length zurich);
  Alcotest.(check int) "count_matching" 2
    (Relation.count_matching r ~col:1 (vs "Zurich"));
  Alcotest.(check int) "count absent" 0
    (Relation.count_matching r ~col:1 (vs "Rome"));
  (* Index stays consistent across later inserts. *)
  ignore (Relation.insert r (tup [ vi 4; vs "Zurich" ]));
  Alcotest.(check int) "post-insert index" 3
    (Relation.count_matching r ~col:1 (vs "Zurich"))

let test_relation_distinct () =
  let r = Relation.create (Schema.make "F" [ "fid"; "dest" ]) in
  Relation.insert_list r
    [ tup [ vi 1; vs "A" ]; tup [ vi 2; vs "A" ]; tup [ vi 3; vs "B" ] ];
  Alcotest.(check int) "distinct dests" 2
    (Value.Set.cardinal (Relation.distinct_values r ~col:1));
  Alcotest.(check int) "distinct projection" 2
    (Tuple.Set.cardinal (Relation.distinct_projection r ~cols:[ 1 ]));
  Alcotest.(check int) "active domain" 5
    (Value.Set.cardinal (Relation.active_domain r))

let test_relation_delete () =
  let r = Relation.create (Schema.make "F" [ "fid"; "dest" ]) in
  Relation.insert_list r
    [
      tup [ vi 1; vs "Zurich" ];
      tup [ vi 2; vs "Zurich" ];
      tup [ vi 3; vs "Paris" ];
    ];
  (* Warm the index, then delete through it. *)
  Alcotest.(check int) "zurich pre" 2 (Relation.count_matching r ~col:1 (vs "Zurich"));
  Alcotest.(check bool) "delete" true (Relation.delete r (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check bool) "absent now" false (Relation.delete r (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r);
  Alcotest.(check int) "zurich post" 1 (Relation.count_matching r ~col:1 (vs "Zurich"));
  Alcotest.(check int) "lookup filtered" 1
    (List.length (Relation.lookup r ~col:1 (vs "Zurich")));
  Alcotest.(check bool) "mem gone" false (Relation.mem r (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check int) "scan skips dead" 2 (List.length (Relation.to_list r));
  (* Reinsert after delete works. *)
  Alcotest.(check bool) "reinsert" true (Relation.insert r (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check int) "back to 3" 3 (Relation.cardinal r);
  Alcotest.(check int) "zurich again" 2
    (Relation.count_matching r ~col:1 (vs "Zurich"))

let test_relation_delete_compaction () =
  let r = Relation.create (Schema.make "N" [ "v" ]) in
  for i = 0 to 99 do
    ignore (Relation.insert r (tup [ vi i ]))
  done;
  ignore (Relation.lookup r ~col:0 (vi 0));
  (* Delete 60% — forces a compaction along the way. *)
  for i = 0 to 59 do
    ignore (Relation.delete r (tup [ vi i ]))
  done;
  Alcotest.(check int) "forty left" 40 (Relation.cardinal r);
  Alcotest.(check bool) "survivor present" true (Relation.mem r (tup [ vi 99 ]));
  Alcotest.(check bool) "victim gone" false (Relation.mem r (tup [ vi 10 ]));
  Alcotest.(check int) "index consistent after compaction" 1
    (Relation.count_matching r ~col:0 (vi 80));
  Alcotest.(check int) "distinct values" 40
    (Value.Set.cardinal (Relation.distinct_values r ~col:0))

let test_relation_delete_under_eval () =
  (* Choose-1 semantics sees inventory disappear. *)
  let db = flights_db () in
  let q = Cq.make [ atom "F" [ var "x"; cs "Zurich" ] ] in
  Alcotest.(check int) "two zurich flights" 2 (Eval.count db q);
  ignore (Relation.delete (Database.relation db "F") (tup [ vi 101; vs "Zurich" ]));
  Alcotest.(check int) "one left" 1 (Eval.count db q);
  ignore (Relation.delete (Database.relation db "F") (tup [ vi 102; vs "Zurich" ]));
  Alcotest.(check bool) "sold out" false (Eval.satisfiable db q)

let test_relation_arity_check () =
  let r = Relation.create (Schema.make "F" [ "fid"; "dest" ]) in
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Relation F: tuple arity 1, expected 2") (fun () ->
      ignore (Relation.insert r (tup [ vi 1 ])))

let test_database () =
  let db = flights_db () in
  Alcotest.(check int) "two tables" 2 (List.length (Database.relations db));
  Alcotest.(check int) "tuples" 7 (Database.total_tuples db);
  Alcotest.(check bool) "mem" true (Database.mem_relation db "F");
  Database.drop_table db "H";
  Alcotest.(check bool) "dropped" false (Database.mem_relation db "H");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Database.relation db "H"));
  Alcotest.check_raises "double create"
    (Invalid_argument "Database.create_table: F already exists") (fun () ->
      ignore (Database.create_table' db "F" [ "x" ]))

let test_database_probes () =
  let db = flights_db () in
  Alcotest.(check int) "initially zero" 0 (Database.probes db);
  Database.count_probe db;
  Database.count_probe db;
  Alcotest.(check int) "counted" 2 (Database.probes db);
  Database.reset_probes db;
  Alcotest.(check int) "reset" 0 (Database.probes db)

let test_csv_roundtrip () =
  let rows =
    [
      [ "fid"; "dest" ];
      [ "1"; "Zurich" ];
      [ "2"; "New, York" ];
      [ "3"; "say \"hi\"" ];
      [ "4"; "two\nlines" ];
    ]
  in
  let parsed = Csv_io.parse_string (Csv_io.write_string rows) in
  Alcotest.(check (list (list string))) "roundtrip" rows parsed

let test_csv_crlf () =
  let parsed = Csv_io.parse_string "a,b\r\n1,2\r\n" in
  Alcotest.(check (list (list string))) "crlf" [ [ "a"; "b" ]; [ "1"; "2" ] ] parsed

let test_csv_relation_roundtrip () =
  let db = flights_db () in
  let path = Filename.temp_file "entangle_test" ".csv" in
  Csv_io.save_relation (Database.relation db "F") ~path;
  let db2 = Database.create () in
  let r =
    Csv_io.load_relation db2 ~schema:(Schema.make "F" [ "fid"; "dest" ]) ~path
  in
  Sys.remove path;
  Alcotest.(check int) "same cardinality" 4 (Relation.cardinal r);
  Alcotest.(check bool) "same content" true
    (Relation.mem r (tup [ vi 101; vs "Zurich" ]))

let test_csv_header_mismatch () =
  let path = Filename.temp_file "entangle_test" ".csv" in
  let oc = open_out path in
  output_string oc "wrong,header\n1,2\n";
  close_out oc;
  let db = Database.create () in
  let raised =
    try
      ignore
        (Csv_io.load_relation db ~schema:(Schema.make "F" [ "fid"; "dest" ]) ~path);
      false
    with Csv_io.Parse_error (1, _) -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "parse error" true raised

(* data_version is a per-database stamp: two live databases must move
   independently, and only actual content changes move it. *)
let test_data_version_per_database () =
  let a = Database.create () in
  let b = Database.create () in
  let a0 = Database.data_version a and b0 = Database.data_version b in
  ignore (Database.create_table' a "F" [ "fid"; "dest" ]);
  Alcotest.(check bool) "create bumps a" true (Database.data_version a > a0);
  Alcotest.(check int) "create leaves b alone" b0 (Database.data_version b);
  let a1 = Database.data_version a in
  Database.insert a "F" [ vi 1; vs "Zurich" ];
  Alcotest.(check bool) "insert bumps a" true (Database.data_version a > a1);
  Alcotest.(check int) "insert leaves b alone" b0 (Database.data_version b);
  let a2 = Database.data_version a in
  (* duplicate insert and absent delete are no-ops: stamp must not move *)
  Database.insert a "F" [ vi 1; vs "Zurich" ];
  ignore (Relation.delete (Database.relation a "F") (tup [ vi 99; vs "x" ]));
  Alcotest.(check int) "no-op mutations don't bump" a2 (Database.data_version a);
  ignore (Relation.delete (Database.relation a "F") (tup [ vi 1; vs "Zurich" ]));
  Alcotest.(check bool) "delete bumps a" true (Database.data_version a > a2);
  (* the other direction: mutating b never moves a *)
  let a3 = Database.data_version a in
  ignore (Database.create_table' b "G" [ "x" ]);
  Database.insert b "G" [ vi 7 ];
  Alcotest.(check bool) "b moved" true (Database.data_version b > b0);
  Alcotest.(check int) "b's mutations leave a alone" a3 (Database.data_version a);
  (* worker views share the owner's stamp *)
  let wv = Database.worker_view a in
  Alcotest.(check int) "worker view shares stamp" a3 (Database.data_version wv);
  Database.insert a "F" [ vi 2; vs "Paris" ];
  Alcotest.(check int) "stamp stays shared after mutation"
    (Database.data_version a) (Database.data_version wv)

(* Observed statistics on relations: monotone insert/delete tallies
   (surviving compaction), first-column distinct counts, and the
   estimate_bucket cardinality estimate. *)
let relation_stats_test ~columnar () =
  let r = Relation.create ~columnar (Schema.make "F" [ "fid"; "dest" ]) in
  Alcotest.(check int) "no inserts yet" 0 (Relation.inserts r);
  Alcotest.(check int) "empty estimate" 0 (Relation.estimate_bucket r ~col:0);
  for i = 1 to 8 do
    ignore (Relation.insert r (tup [ vi i; vs "Zurich" ]))
  done;
  ignore (Relation.insert r (tup [ vi 1; vs "Zurich" ]));
  (* duplicate *)
  Alcotest.(check int) "8 inserts, duplicate ignored" 8 (Relation.inserts r);
  Alcotest.(check int) "0 deletes" 0 (Relation.deletes r);
  Alcotest.(check int) "distinct fids" 8 (Relation.distinct_count r ~col:0);
  Alcotest.(check int) "distinct dests" 1 (Relation.distinct_count r ~col:1);
  Alcotest.(check int) "uniform bucket" 1 (Relation.estimate_bucket r ~col:0);
  Alcotest.(check int) "skewed bucket" 8 (Relation.estimate_bucket r ~col:1);
  (* delete 6 of 8: forces a compaction (dead > live/2), counters and
     estimates must survive the rebuild *)
  for i = 1 to 6 do
    ignore (Relation.delete r (tup [ vi i; vs "Zurich" ]))
  done;
  ignore (Relation.delete r (tup [ vi 99; vs "nowhere" ]));
  (* absent *)
  Alcotest.(check int) "6 deletes, absent ignored" 6 (Relation.deletes r);
  Alcotest.(check int) "inserts still monotone" 8 (Relation.inserts r);
  Alcotest.(check int) "cardinal after compaction" 2 (Relation.cardinal r);
  Alcotest.(check int) "distinct fids after compaction" 2
    (Relation.distinct_count r ~col:0);
  Alcotest.(check int) "estimate after compaction" 1
    (Relation.estimate_bucket r ~col:0);
  (* ceil division: 3 tuples over 2 distinct first args -> 2 *)
  ignore (Relation.insert r (tup [ vi 7; vs "Paris" ]));
  Alcotest.(check int) "ceil estimate" 2 (Relation.estimate_bucket r ~col:0)

let test_relation_stats_row () = relation_stats_test ~columnar:false ()
let test_relation_stats_columnar () = relation_stats_test ~columnar:true ()

let arbitrary_value =
  QCheck.Gen.(
    oneof
      [
        map Value.int (int_range (-100) 100);
        map Value.str (oneofl [ "a"; "b"; "Zurich"; "Paris"; "x y" ]);
        map Value.bool bool;
      ])

let value_arb = QCheck.make ~print:Value.to_string arbitrary_value

let suite =
  [
    Alcotest.test_case "vec basics" `Quick test_vec_basics;
    Alcotest.test_case "vec of_list" `Quick test_vec_of_list;
    Alcotest.test_case "value order" `Quick test_value_order;
    Alcotest.test_case "value string roundtrip" `Quick test_value_string_roundtrip;
    Alcotest.test_case "value pp quoting" `Quick test_value_pp_quotes;
    Alcotest.test_case "schema" `Quick test_schema;
    Alcotest.test_case "tuple" `Quick test_tuple;
    Alcotest.test_case "relation set semantics" `Quick test_relation_set_semantics;
    Alcotest.test_case "relation indexed lookup" `Quick test_relation_lookup;
    Alcotest.test_case "relation distinct" `Quick test_relation_distinct;
    Alcotest.test_case "relation delete" `Quick test_relation_delete;
    Alcotest.test_case "relation delete compaction" `Quick
      test_relation_delete_compaction;
    Alcotest.test_case "relation delete under eval" `Quick
      test_relation_delete_under_eval;
    Alcotest.test_case "relation arity check" `Quick test_relation_arity_check;
    Alcotest.test_case "database" `Quick test_database;
    Alcotest.test_case "database probes" `Quick test_database_probes;
    Alcotest.test_case "data_version is per-database" `Quick
      test_data_version_per_database;
    Alcotest.test_case "relation observed stats (row)" `Quick
      test_relation_stats_row;
    Alcotest.test_case "relation observed stats (columnar)" `Quick
      test_relation_stats_columnar;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv crlf" `Quick test_csv_crlf;
    Alcotest.test_case "csv relation roundtrip" `Quick test_csv_relation_roundtrip;
    Alcotest.test_case "csv header mismatch" `Quick test_csv_header_mismatch;
    qtest "value compare total order"
      QCheck.(triple value_arb value_arb value_arb)
      (fun (a, b, c) ->
        let sgn x = compare x 0 in
        (* antisymmetry and transitivity spot checks *)
        (not (Value.compare a b = 0) || Value.equal a b)
        && (not (Value.compare a b < 0 && Value.compare b c < 0)
           || Value.compare a c < 0)
        && sgn (Value.compare a b) = -sgn (Value.compare b a));
    qtest "value hash respects equality" QCheck.(pair value_arb value_arb)
      (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b);
    qtest "vec push/get agree with list"
      QCheck.(list small_int)
      (fun xs ->
        let v = Vec.of_list xs in
        List.length xs = Vec.length v && Vec.to_list v = xs);
    qtest "value of_string . to_string = id" value_arb (fun v ->
        (* Strings with spaces print quoted and parse back exactly. *)
        Value.equal v (Value.of_string (Value.to_string v)));
  ]
