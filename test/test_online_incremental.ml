(* The incremental online engine against its reference implementation.

   The engine's two modes (persistent atom-index/union-find/dirty
   tracking vs full graph rebuild per evaluation) must be
   observationally equivalent: same coordinated sets, same pool, same
   component partition, same satisfied counts, same database contents —
   for any interleaving of submissions, flushes and external inserts.
   The differential driver below checks exactly that on seeded random
   interleavings; the remaining cases pin the incremental machinery
   (dirty-component skipping, deep-chain traversal, inventory conflict
   reporting, stats folding) individually. *)

open Relational
open Entangled
open Helpers
module Online = Coordination.Online

(* ------------------------ differential driver --------------------- *)

let dests = [| "Zurich"; "Paris"; "Athens"; "Nowhere" |]

let mk_db () =
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  List.iter
    (fun (f, d) -> Database.insert db "F" [ vi f; vs d ])
    [ (101, "Zurich"); (102, "Zurich"); (200, "Paris"); (300, "Athens") ];
  db

(* Heads and posts draw constants from a 4-value pool, so partners,
   multi-member components and ambiguous (unsafe) postconditions all
   occur; "Nowhere" bodies keep some components pending forever. *)
let random_query rng i =
  let g k = cs (Printf.sprintf "g%d" k) in
  let post =
    if Prng.int rng 4 < 3 then [ atom "R" [ g (Prng.int rng 4); var "y" ] ]
    else []
  in
  Query.make
    ~name:(Printf.sprintf "q%d" i)
    ~post
    ~head:[ atom "R" [ g (Prng.int rng 4); var "x" ] ]
    [ atom "F" [ var "x"; cs dests.(Prng.int rng (Array.length dests)) ] ]

let fired_names (c : Online.coordinated) =
  List.map (fun q -> q.Query.name) c.Online.queries

let submission_repr = function
  | Online.Coordinated c -> "fired " ^ String.concat "," (fired_names c)
  | Online.Pending -> "pending"
  | Online.Rejected_unsafe ws ->
    "rejected "
    ^ String.concat ","
        (List.map (fun (a, b) -> Printf.sprintf "%d/%d" a b) ws)

let run_differential ~seed ~eager ~consume =
  let rng = Prng.create seed in
  let db_full = mk_db () and db_inc = mk_db () in
  let full =
    Online.create ~eager ~consume ~mode:Online.Full_rebuild db_full
  in
  let inc = Online.create ~eager ~consume ~mode:Online.Incremental db_inc in
  let check_sync step =
    let ctx m = Printf.sprintf "seed %d step %d: %s" seed step m in
    Alcotest.(check (list string))
      (ctx "pending")
      (List.map (fun q -> q.Query.name) (Online.pending full))
      (List.map (fun q -> q.Query.name) (Online.pending inc));
    Alcotest.(check (list (list int)))
      (ctx "components") (Online.components full) (Online.components inc);
    Alcotest.(check int) (ctx "satisfied")
      (Online.total_coordinated full)
      (Online.total_coordinated inc)
  in
  let next_fid = ref 1000 in
  for step = 1 to 40 do
    let roll = Prng.int rng 10 in
    if roll < 7 then begin
      let q = random_query rng step in
      let rf = Online.submit full q in
      let ri = Online.submit inc q in
      Alcotest.(check string)
        (Printf.sprintf "seed %d step %d: submission" seed step)
        (submission_repr rf) (submission_repr ri)
    end
    else if roll < 9 then begin
      let ff = Online.flush full in
      let fi = Online.flush inc in
      Alcotest.(check (list (list string)))
        (Printf.sprintf "seed %d step %d: flush" seed step)
        (List.map fired_names ff) (List.map fired_names fi)
    end
    else begin
      (* An external insert: both stores move, and every cached
         component verdict in the incremental engine must be dropped. *)
      incr next_fid;
      let dest = dests.(Prng.int rng 3) in
      Database.insert db_full "F" [ vi !next_fid; vs dest ];
      Database.insert db_inc "F" [ vi !next_fid; vs dest ]
    end;
    check_sync step
  done;
  let ff = Online.flush full in
  let fi = Online.flush inc in
  Alcotest.(check (list (list string)))
    (Printf.sprintf "seed %d: final flush" seed)
    (List.map fired_names ff) (List.map fired_names fi);
  check_sync 1000;
  let tuples db =
    List.sort Tuple.compare (Relation.to_list (Database.relation db "F"))
  in
  Alcotest.(check (list tuple_t))
    (Printf.sprintf "seed %d: final store" seed)
    (tuples db_full) (tuples db_inc)

let test_differential_modes () =
  List.iter
    (fun seed ->
      List.iter
        (fun (eager, consume) -> run_differential ~seed ~eager ~consume)
        [ (true, false); (false, false); (true, true); (false, true) ])
    [ 1; 2; 3; 4; 5 ]

(* --------------------------- submit_all --------------------------- *)

let chain_query i ~last =
  Query.make
    ~name:(Printf.sprintf "u%d" i)
    ~post:
      (if last then []
       else [ atom "R" [ cs (Printf.sprintf "u%d" (i + 1)); var "y" ] ])
    ~head:[ atom "R" [ cs (Printf.sprintf "u%d" i); var "x" ] ]
    [ atom "F" [ var "x"; cs "Zurich" ] ]

let test_submit_all_matches_deferred_flush () =
  let n = 8 in
  let queries = List.init n (fun i -> chain_query i ~last:(i = n - 1)) in
  let batch_of mode =
    let engine = Online.create ~mode (flights_db ()) in
    List.map fired_names (Online.submit_all engine queries)
  in
  let deferred =
    let engine = Online.create ~eager:false (flights_db ()) in
    List.iter (fun q -> ignore (Online.submit engine q)) queries;
    List.map fired_names (Online.flush engine)
  in
  let incremental = batch_of Online.Incremental in
  Alcotest.(check (list (list string)))
    "batch == enqueue-then-flush" deferred incremental;
  Alcotest.(check (list (list string)))
    "batch: incremental == full rebuild"
    (batch_of Online.Full_rebuild)
    incremental;
  Alcotest.(check int) "whole chain fired" n
    (List.length (List.concat incremental))

(* ------------------------- dirty tracking ------------------------- *)

(* A pair whose bodies are unsatisfiable grounds nothing but costs a
   database probe per evaluation.  A second flush with no intervening
   change must skip the (clean) component entirely — no new probes —
   while an external insert dirties it again. *)
let test_flush_skips_clean_components () =
  let db = flights_db () in
  let engine = Online.create ~eager:false db in
  let pair =
    [
      Query.make ~name:"a"
        ~post:[ atom "R" [ cs "B"; var "x" ] ]
        ~head:[ atom "R" [ cs "A"; var "x" ] ]
        [ atom "F" [ var "x"; cs "Nowhere" ] ];
      Query.make ~name:"b"
        ~post:[ atom "R" [ cs "A"; var "y" ] ]
        ~head:[ atom "R" [ cs "B"; var "y" ] ]
        [ atom "F" [ var "y"; cs "Nowhere" ] ];
    ]
  in
  List.iter (fun q -> ignore (Online.submit engine q)) pair;
  Alcotest.(check (list (list string))) "nothing fires" []
    (List.map fired_names (Online.flush engine));
  let probes_after_first = (Online.stats engine).Coordination.Stats.db_probes in
  Alcotest.(check bool) "first flush probed" true (probes_after_first > 0);
  ignore (Online.flush engine);
  Alcotest.(check int) "clean component skipped: no new probes"
    probes_after_first
    (Online.stats engine).Coordination.Stats.db_probes;
  (* Any store mutation invalidates cached verdicts. *)
  Database.insert db "F" [ vi 999; vs "Paris" ];
  ignore (Online.flush engine);
  Alcotest.(check bool) "store change re-evaluates" true
    ((Online.stats engine).Coordination.Stats.db_probes > probes_after_first)

(* --------------------------- deep chains -------------------------- *)

(* A chain-shaped pool tens of thousands of queries long: component
   discovery must not recurse (the previous DFS overflowed the call
   stack here) and the incremental partition must agree with the
   rebuilt one. *)
let test_components_deep_chain () =
  let n = 50_000 in
  let queries = List.init n (fun i -> chain_query i ~last:(i = n - 1)) in
  let partition_of mode =
    let engine = Online.create ~eager:false ~mode (Database.create ()) in
    List.iter (fun q -> ignore (Online.submit engine q)) queries;
    Online.components engine
  in
  let full = partition_of Online.Full_rebuild in
  Alcotest.(check int) "one component" 1 (List.length full);
  Alcotest.(check int) "all members" n (List.length (List.hd full));
  Alcotest.(check (list (list int)))
    "incremental partition agrees" full
    (partition_of Online.Incremental)

(* ------------------------ inventory conflicts --------------------- *)

let test_consume_double_spend_reported () =
  (* One Zurich flight; unification merges the pair's body variables, so
     both members ground onto the same tuple — one unit of inventory
     demanded twice. *)
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  Database.insert db "F" [ vi 101; vs "Zurich" ];
  Database.insert db "F" [ vi 200; vs "Paris" ];
  let engine = Online.create ~consume:true db in
  let gwyneth =
    Query.make ~name:"gwyneth"
      ~post:[ atom "R" [ cs "Chris"; var "x" ] ]
      ~head:[ atom "R" [ cs "Gwyneth"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  let chris =
    Query.make ~name:"chris" ~post:[]
      ~head:[ atom "R" [ cs "Chris"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ]
  in
  ignore (Online.submit engine gwyneth);
  (match Online.submit engine chris with
  | Online.Coordinated c ->
    Alcotest.(check int) "pair fires" 2 (List.length c.Online.queries)
  | _ -> Alcotest.fail "pair must coordinate");
  (match Online.last_inventory_conflict engine with
  | Some { double_spent = [ ("F", t) ]; missing = [] } ->
    Alcotest.(check tuple_t) "the shared tuple" (tup [ vi 101; vs "Zurich" ]) t
  | Some _ -> Alcotest.fail "unexpected conflict shape"
  | None -> Alcotest.fail "double spend must be reported");
  (* The tuple is booked once; the unrelated row survives. *)
  Alcotest.(check int) "inventory booked once" 1
    (Relation.cardinal (Database.relation db "F"));
  (* The next operation clears the report. *)
  ignore (Online.flush engine);
  Alcotest.(check bool) "conflict cleared" true
    (Online.last_inventory_conflict engine = None)

let test_consume_disjoint_inventory_no_conflict () =
  (* Two Zurich flights and no variable sharing: members book distinct
     tuples, so no conflict is recorded. *)
  let db = flights_db () in
  let engine = Online.create ~consume:true db in
  let a =
    Query.make ~name:"a"
      ~post:[ atom "R" [ cs "B"; var "y" ] ]
      ~head:[ atom "R" [ cs "A"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  let b =
    Query.make ~name:"b" ~post:[]
      ~head:[ atom "R" [ cs "B"; var "y" ] ]
      [ atom "H" [ var "y"; cs "Zurich" ] ]
  in
  ignore (Online.submit engine a);
  (match Online.submit engine b with
  | Online.Coordinated _ -> ()
  | _ -> Alcotest.fail "pair must coordinate");
  Alcotest.(check bool) "no conflict" true
    (Online.last_inventory_conflict engine = None)

(* --------------------------- stats fold --------------------------- *)

let test_stats_merge () =
  let open Coordination.Stats in
  let a = create () in
  a.db_probes <- 3;
  a.graph_ns <- 10L;
  a.candidates <- 2;
  a.plan_hits <- 1;
  a.tuples_scanned <- 7;
  let b = create () in
  b.db_probes <- 4;
  b.graph_ns <- 5L;
  b.unify_ns <- 2L;
  b.cleaning_rounds <- 1;
  b.plan_misses <- 6;
  merge ~into:a b;
  Alcotest.(check int) "probes" 7 a.db_probes;
  Alcotest.(check int64) "graph" 15L a.graph_ns;
  Alcotest.(check int64) "unify" 2L a.unify_ns;
  Alcotest.(check int) "candidates" 2 a.candidates;
  Alcotest.(check int) "cleaning" 1 a.cleaning_rounds;
  Alcotest.(check int) "hits" 1 a.plan_hits;
  Alcotest.(check int) "misses" 6 a.plan_misses;
  Alcotest.(check int) "scanned" 7 a.tuples_scanned;
  (* [from] is untouched. *)
  Alcotest.(check int) "source intact" 4 b.db_probes

(* A degraded flush must not haunt the next one: [last_degradation]
   reports the most recent operation only, so once the guard is gone
   and the retry succeeds the flag reads [None] again (regression test
   for a stale-flag bug — the flag used to survive the recovery). *)
let test_degradation_flag_cleared_on_recovery () =
  let db = mk_db () in
  let engine = Online.create ~eager:false db in
  let qa =
    Query.make ~name:"qa"
      ~post:[ atom "R" [ cs "C"; var "x" ] ]
      ~head:[ atom "R" [ cs "G"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  and qb =
    Query.make ~name:"qb" ~post:[]
      ~head:[ atom "R" [ cs "C"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ]
  in
  (match (Online.submit engine qa, Online.submit engine qb) with
  | Online.Pending, Online.Pending -> ()
  | _ -> Alcotest.fail "lazy submissions must enqueue");
  (* An exhausted probe budget degrades the flush and fires nothing. *)
  let guard =
    Resilient.arm { Resilient.default_config with max_probes = Some 0 }
  in
  Database.set_guard db (Some guard);
  Alcotest.(check int)
    "degraded flush fires nothing" 0
    (List.length (Online.flush engine));
  Alcotest.(check bool)
    "degradation reported" true
    (Online.last_degradation engine <> None);
  (* Guard gone: the component is still dirty, the pair fires, and the
     stale degradation flag is cleared by the successful operation. *)
  Database.set_guard db None;
  Alcotest.(check int) "pair fires" 1 (List.length (Online.flush engine));
  Alcotest.(check bool)
    "degradation cleared after recovery" true
    (Online.last_degradation engine = None)

let suite =
  [
    Alcotest.test_case "differential: incremental == full rebuild" `Quick
      test_differential_modes;
    Alcotest.test_case "submit_all == enqueue + flush, both modes" `Quick
      test_submit_all_matches_deferred_flush;
    Alcotest.test_case "flush skips clean components" `Quick
      test_flush_skips_clean_components;
    Alcotest.test_case "components survive deep chains" `Quick
      test_components_deep_chain;
    Alcotest.test_case "consume: double spend reported" `Quick
      test_consume_double_spend_reported;
    Alcotest.test_case "consume: disjoint inventory clean" `Quick
      test_consume_disjoint_inventory_no_conflict;
    Alcotest.test_case "stats merge sums every field" `Quick test_stats_merge;
    Alcotest.test_case "degradation flag cleared on recovery" `Quick
      test_degradation_flag_cleared_on_recovery;
  ]
