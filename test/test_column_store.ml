(* The columnar storage engine, tested differentially against the row
   store it mirrors.

   The row store is the oracle: a [Relation.create ~columnar:true]
   dual-writes every mutation into its {!Column_store} mirror, so after
   any operation sequence the two must agree on contents, live
   iteration order, per-column lookups and match counts.  On top of the
   store-level properties, whole solver runs — SCC, Gupta, consistent
   (sequential and parallel), online, and a budget-degraded solve — are
   replayed on a row and a columnar database and must produce identical
   solutions, identical deterministic stats (probes, plan hits/misses,
   tuples scanned) and identical degradation outcomes. *)

open Relational
open Helpers

(* A small value pool so random sequences collide: duplicate inserts,
   deletes of absent tuples, and repeated postings all get exercised. *)
let pool =
  [| vi 0; vi 1; vi 2; vi 3; vs "a"; vs "b"; vs "c"; Value.bool true |]

let random_tuple rng =
  [| pool.(Prng.int rng (Array.length pool)); pool.(Prng.int rng (Array.length pool)) |]

(* ------------------------------ Dict ------------------------------ *)

let test_dict_roundtrip () =
  let rng = Prng.create 7 in
  for _ = 1 to 500 do
    let v = pool.(Prng.int rng (Array.length pool)) in
    let id = Dict.intern v in
    Alcotest.check value_t "roundtrip" v (Dict.value id);
    Alcotest.(check int) "find agrees with intern" id (Dict.find v);
    Alcotest.(check bool) "mem_id" true (Dict.mem_id id)
  done;
  (* Interning is idempotent. *)
  let id1 = Dict.intern (vs "dict-idempotent") in
  let id2 = Dict.intern (vs "dict-idempotent") in
  Alcotest.(check int) "stable id" id1 id2

let test_dict_unknown () =
  (* [find] must not intern: an unseen value keeps reporting unknown. *)
  let v = vs "dict-never-interned" in
  Alcotest.(check int) "unknown" Dict.unknown (Dict.find v);
  Alcotest.(check int) "still unknown" Dict.unknown (Dict.find v);
  Alcotest.(check bool) "unknown id not decodable" false
    (Dict.mem_id Dict.unknown)

(* --------------------- store-level differential -------------------- *)

(* Replay a random insert/delete sequence and compare the mirror with
   its row-store oracle after every mutation. *)
let agree_after_ops seed =
  let r = Relation.create ~columnar:true (Schema.make "T" [ "a"; "b" ]) in
  let cs =
    match Relation.column_store r with
    | Some cs -> cs
    | None -> Alcotest.fail "columnar relation must expose its mirror"
  in
  let rng = Prng.create seed in
  let check_agreement () =
    Alcotest.(check int) "cardinal" (Relation.cardinal r) (Column_store.cardinal cs);
    Alcotest.(check (list tuple_t)) "contents and live order"
      (Relation.to_list r) (Column_store.to_list cs);
    Array.iter
      (fun v ->
        for col = 0 to 1 do
          Alcotest.(check (list tuple_t)) "lookup"
            (Relation.lookup r ~col v)
            (Column_store.lookup cs ~col v);
          Alcotest.(check int) "count_matching"
            (Relation.count_matching r ~col v)
            (Column_store.count_matching cs ~col v)
        done)
      pool
  in
  for step = 1 to 120 do
    let t = Tuple.make (Array.to_list (random_tuple rng)) in
    if Prng.int rng 3 = 0 then
      Alcotest.(check bool) "delete agrees" (Relation.mem r t)
        (Column_store.mem cs t)
      |> fun () -> ignore (Relation.delete r t)
    else ignore (Relation.insert r t);
    Alcotest.(check bool) "mem agrees" (Relation.mem r t)
      (Column_store.mem cs t);
    if step mod 10 = 0 then check_agreement ()
  done;
  check_agreement ();
  true

(* ---------------------- compaction invariants ---------------------- *)

let test_posting_prune_and_compact () =
  let r = Relation.create ~columnar:true (Schema.make "P" [ "k"; "v" ]) in
  let cs = Option.get (Relation.column_store r) in
  let n = 1_000 in
  for i = 0 to n - 1 do
    ignore (Relation.insert r [| vi i; vs "hot" |])
  done;
  Alcotest.(check int) "posting sees every row" n
    (Column_store.count_matching cs ~col:1 (vs "hot"));
  (* Kill 80% of the posting: the lazy prune (len > 2*count) and the
     whole-store compaction (dead > live) must both have fired. *)
  for i = 0 to n - 1 do
    if i mod 5 <> 0 then ignore (Relation.delete r [| vi i; vs "hot" |])
  done;
  let live = n / 5 in
  Alcotest.(check int) "live count" live (Column_store.cardinal cs);
  Alcotest.(check int) "posting count tracks deletes" live
    (Column_store.count_matching cs ~col:1 (vs "hot"));
  Alcotest.(check bool) "posting pruned: len <= 2 * count" true
    (Column_store.posting_length cs ~col:1 (vs "hot") <= 2 * live);
  Alcotest.(check bool) "store compacted: no dead majority" true
    (Column_store.physical_rows cs < n);
  (* Survivors keep insertion order. *)
  let expected =
    List.init live (fun j -> Tuple.make [ vi (5 * j); vs "hot" ])
  in
  Alcotest.(check (list tuple_t)) "insertion order survives compaction"
    expected (Column_store.to_list cs);
  (* Deleted tuples can come back, and land at the end of the order. *)
  Alcotest.(check bool) "reinsert" true (Relation.insert r [| vi 1; vs "hot" |]);
  Alcotest.(check bool) "reinserted tuple visible" true
    (Column_store.mem cs [| vi 1; vs "hot" |]);
  Alcotest.(check (list tuple_t)) "reinsert appends"
    (expected @ [ Tuple.make [ vi 1; vs "hot" ] ])
    (Column_store.to_list cs)

let test_explicit_compact_preserves_contents () =
  let r = Relation.create ~columnar:true (Schema.make "C" [ "a"; "b" ]) in
  let cs = Option.get (Relation.column_store r) in
  let rng = Prng.create 42 in
  for _ = 1 to 300 do
    ignore (Relation.insert r (random_tuple rng))
  done;
  for _ = 1 to 200 do
    ignore (Relation.delete r (random_tuple rng))
  done;
  let before = Column_store.to_list cs in
  Column_store.compact cs;
  Alcotest.(check (list tuple_t)) "compact is contents-invariant" before
    (Column_store.to_list cs);
  Alcotest.(check int) "compact leaves no dead rows"
    (Column_store.cardinal cs)
    (Column_store.physical_rows cs)

(* ----------------------- solver differentials ---------------------- *)

let same_stats = Coordination.Stats.same_counters

let render_solution queries = function
  | None -> "no solution"
  | Some s -> Format.asprintf "%a" (Entangled.Solution.pp queries) s

let render_degraded = function
  | None -> "not degraded"
  | Some d -> Format.asprintf "%a" Resilient.pp_degradation d

(* The Figure 1 flight/hotel instance on a chosen backend. *)
let flights_db ~backend =
  let db = Database.create ~backend () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  ignore (Database.create_table' db "H" [ "hid"; "loc" ]);
  List.iter
    (fun (f, d) -> Database.insert db "F" [ vi f; vs d ])
    [ (101, "Zurich"); (102, "Zurich"); (200, "Paris"); (300, "Athens") ];
  List.iter
    (fun (h, l) -> Database.insert db "H" [ vi h; vs l ])
    [ (7, "Paris"); (8, "Athens"); (9, "Zurich") ];
  db

(* A safe+unique pair for the Gupta baseline: A and B must share a
   Zurich flight. *)
let pair_queries () =
  let mk ?name ~post ~head body = Entangled.Query.make ?name ~post ~head body in
  [
    mk ~name:"a"
      ~post:[ atom "R" [ cs "B"; var "x" ] ]
      ~head:[ atom "R" [ cs "A"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ];
    mk ~name:"b"
      ~post:[ atom "R" [ cs "A"; var "y" ] ]
      ~head:[ atom "R" [ cs "B"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ];
  ]

let scc_fingerprint outcome =
  let open Coordination.Scc_algo in
  ( List.map (fun c -> c.covered) outcome.candidates,
    render_solution outcome.queries outcome.solution,
    render_degraded outcome.degraded )

let solve_scc backend seed =
  let db, queries =
    Workload.Listgen.make ~backend ~rows:1_000 ~seed 10
  in
  match Coordination.Scc_algo.solve db queries with
  | Error _ -> Alcotest.fail "listgen instances are safe"
  | Ok outcome -> outcome

let scc_differential seed =
  let row = solve_scc Database.Row seed in
  let col = solve_scc Database.Columnar seed in
  scc_fingerprint row = scc_fingerprint col
  && same_stats row.Coordination.Scc_algo.stats col.Coordination.Scc_algo.stats

let test_gupta_differential () =
  let run backend =
    match Coordination.Gupta.solve (flights_db ~backend) (pair_queries ()) with
    | Error _ -> Alcotest.fail "safe+unique"
    | Ok o -> o
  in
  let row = run Database.Row and col = run Database.Columnar in
  Alcotest.(check string) "solution"
    (render_solution row.Coordination.Gupta.queries row.solution)
    (render_solution col.Coordination.Gupta.queries col.solution);
  Alcotest.(check bool) "stats" true (same_stats row.stats col.stats)

let consistent_fingerprint (o : Coordination.Consistent.outcome) =
  ( o.members,
    o.candidates,
    Option.map (Format.asprintf "%a" Tuple.pp) o.chosen_value,
    List.map (fun (u, v) -> (Value.to_string u, Value.to_string v)) o.choices,
    render_degraded o.degraded )

let test_consistent_differential () =
  let run backend =
    let db, queries = Workload.Movies.make ~backend () in
    match Coordination.Consistent.solve db Workload.Movies.config queries with
    | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
    | Ok o -> o
  in
  let row = run Database.Row and col = run Database.Columnar in
  Alcotest.(check bool) "outcome" true
    (consistent_fingerprint row = consistent_fingerprint col);
  Alcotest.(check bool) "stats" true (same_stats row.stats col.stats)

let test_parallel_differential () =
  let run backend =
    let db, queries = Workload.Movies.make ~backend () in
    match
      Coordination.Parallel.solve ~domains:2 db Workload.Movies.config queries
    with
    | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
    | Ok o -> o
  in
  let row = run Database.Row and col = run Database.Columnar in
  Alcotest.(check bool) "outcome" true
    (consistent_fingerprint row = consistent_fingerprint col);
  Alcotest.(check bool) "stats" true (same_stats row.stats col.stats)

let test_online_differential () =
  let run backend =
    let db, queries =
      Workload.Listgen.make ~backend ~rows:1_000 ~seed:11 8
    in
    let engine = Coordination.Online.create ~mode:Coordination.Online.Incremental db in
    let fired =
      List.map
        (fun (c : Coordination.Online.coordinated) ->
          List.map (fun q -> q.Entangled.Query.name) c.queries)
        (Coordination.Online.submit_all engine queries)
    in
    (fired, Coordination.Online.stats engine)
  in
  let row_fired, row_stats = run Database.Row in
  let col_fired, col_stats = run Database.Columnar in
  Alcotest.(check (list (list string))) "fired sets" row_fired col_fired;
  Alcotest.(check bool) "stats" true (same_stats row_stats col_stats)

(* Degradation differential: an exhausted probe budget must cut both
   backends at the same point, leaving the same candidate prefix and the
   same unprobed components. *)
let test_degraded_differential () =
  let run backend =
    let db, queries =
      Workload.Listgen.make ~backend ~rows:1_000 ~seed:3 10
    in
    let g =
      Resilient.arm { Resilient.default_config with max_probes = Some 3 }
    in
    Resilient.start_solve g;
    Database.set_guard db (Some g);
    match Coordination.Scc_algo.solve db queries with
    | Error _ -> Alcotest.fail "listgen instances are safe"
    | Ok o -> o
  in
  let row = run Database.Row and col = run Database.Columnar in
  Alcotest.(check bool) "both degraded" true
    (row.Coordination.Scc_algo.degraded <> None
    && col.Coordination.Scc_algo.degraded <> None);
  Alcotest.(check bool) "same cut" true
    (scc_fingerprint row = scc_fingerprint col);
  Alcotest.(check bool) "stats" true
    (same_stats row.Coordination.Scc_algo.stats col.Coordination.Scc_algo.stats)

let suite =
  [
    Alcotest.test_case "dict: roundtrip" `Quick test_dict_roundtrip;
    Alcotest.test_case "dict: find does not intern" `Quick test_dict_unknown;
    qtest ~count:25 "row and columnar stores agree under random ops"
      QCheck.(int_range 0 10_000)
      agree_after_ops;
    Alcotest.test_case "posting prune + store compaction" `Quick
      test_posting_prune_and_compact;
    Alcotest.test_case "explicit compact preserves contents" `Quick
      test_explicit_compact_preserves_contents;
    qtest ~count:20 "scc solves identically on both backends"
      QCheck.(int_range 0 10_000)
      scc_differential;
    Alcotest.test_case "gupta solves identically on both backends" `Quick
      test_gupta_differential;
    Alcotest.test_case "consistent solves identically on both backends" `Quick
      test_consistent_differential;
    Alcotest.test_case "parallel consistent solves identically" `Quick
      test_parallel_differential;
    Alcotest.test_case "online engine fires identically on both backends"
      `Quick test_online_differential;
    Alcotest.test_case "budget degradation cuts both backends identically"
      `Quick test_degraded_differential;
  ]
