(* The service layer's differential proof.

   A server multiplexing N interleaved scripted clients must leave its
   engine in EXACTLY the state a sequential reference engine reaches
   when the same operation sequence is applied directly — pool (ids and
   names), component partition, satisfied count, next id and store
   contents.  The server is a single-threaded select loop with a public
   [step], so the tests drive server and in-process clients from one
   thread: send a frame, pump [step] until the response arrives, apply
   the same op to the reference, compare.  The same discipline covers a
   mid-stream server kill + restart over a WAL (stop without
   Durable.close, recover, continue over fresh sockets — the recovered
   service must converge to the reference) and abnormal disconnects (a
   client dying mid-frame or mid-notification must tear down exactly
   one session while every other session keeps being served). *)

open Relational
open Entangled
open Helpers
module Online = Coordination.Online
module Json = Server.Json

let chaos_seed =
  match int_of_string_opt (try Sys.getenv "CHAOS_SEED" with Not_found -> "")
  with
  | Some s -> s
  | None -> 42

let scratch_base =
  match Sys.getenv "CHAOS_WAL_DIR" with
  | dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir
  | exception Not_found -> Filename.get_temp_dir_name ()

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat scratch_base
      (Printf.sprintf "esrv-%d-%s-%d" (Unix.getpid ()) tag !dir_counter)
  in
  if Sys.file_exists d then
    Sys.readdir d |> Array.iter (fun n -> Sys.remove (Filename.concat d n))
  else Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Sys.readdir d |> Array.iter (fun n -> Sys.remove (Filename.concat d n));
    Unix.rmdir d
  end

(* ----------------------- observable state ------------------------- *)

type obs_state = {
  o_pending : (int * string) list;
  o_comps : int list list;
  o_satisfied : int;
  o_next_id : int;
  o_tables : (string * Tuple.t list) list;
}

let observe db engine =
  {
    o_pending =
      List.map
        (fun (id, q) -> (id, q.Query.name))
        (Online.pending_entries engine);
    o_comps = Online.components engine;
    o_satisfied = Online.total_coordinated engine;
    o_next_id = Online.next_id engine;
    o_tables =
      List.map
        (fun r ->
          (Relation.name r, List.sort Tuple.compare (Relation.to_list r)))
        (Database.relations db);
  }

let pp_obs ppf s =
  Format.fprintf ppf "pending=[%s] satisfied=%d next_id=%d tuples=[%s]"
    (String.concat ";"
       (List.map (fun (i, n) -> Printf.sprintf "%d:%s" i n) s.o_pending))
    s.o_satisfied s.o_next_id
    (String.concat ";"
       (List.map
          (fun (n, tups) -> Printf.sprintf "%s:%d" n (List.length tups))
          s.o_tables))

let obs_t = Alcotest.testable pp_obs ( = )

(* ------------------------ server plumbing ------------------------- *)

let loopback = "127.0.0.1"

let mk_server ?(max_pending = 1024) ?(max_sessions = 0) ?guard ?durable db
    engine =
  let cfg =
    {
      (Server.default_config (Server.Tcp (loopback, 0))) with
      Server.max_pending;
      max_sessions;
    }
  in
  Server.create cfg { Server.db; engine = Server.Sequential engine; durable; guard }

let connect srv = Server.Client.connect (Server.Tcp (loopback, Server.port srv))

(* Pump the server until [conn] yields the echoed (non-notify)
   response; notifications read along the way are returned too. *)
let rpc ?(ctx = "") srv conn req =
  Server.Client.send conn req;
  let rec go tries notifies =
    if tries > 2000 then Alcotest.failf "%s: no response after %d steps" ctx tries
    else
      match Server.Client.try_recv conn with
      | Some frame ->
        if Json.str_mem "notify" frame <> None then
          go tries (frame :: notifies)
        else (frame, List.rev notifies)
      | None ->
        ignore (Server.step ~timeout:0.01 srv);
        go (tries + 1) notifies
  in
  go 0 []

let rpc_ok ?ctx srv conn req =
  let resp, notifies = rpc ?ctx srv conn req in
  (match Json.mem "ok" resp with
  | Some (Json.Bool true) -> ()
  | _ ->
    Alcotest.failf "%s: request failed: %s"
      (Option.value ~default:"" ctx)
      (Json.to_string resp));
  (resp, notifies)

(* Pump until the client observes its own teardown or the data is
   drained; used after clean closes so sweep runs. *)
let pump ?(rounds = 5) srv =
  for _ = 1 to rounds do
    ignore (Server.step ~timeout:0.01 srv)
  done

(* --------------------------- scripted ops ------------------------- *)

let dests = [| "Zurich"; "Paris"; "Athens"; "Nowhere" |]

let random_query rng i =
  let g k = cs (Printf.sprintf "g%d" k) in
  let post =
    if Prng.int rng 4 < 3 then [ atom "R" [ g (Prng.int rng 4); var "y" ] ]
    else []
  in
  Query.make
    ~name:(Printf.sprintf "q%d" i)
    ~post
    ~head:[ atom "R" [ g (Prng.int rng 4); var "x" ] ]
    [ atom "F" [ var "x"; cs dests.(Prng.int rng (Array.length dests)) ] ]

type op = Submit of string | Flush | Insert of int * string

let gen_trace rng n =
  let next_fid = ref 1000 in
  List.init n (fun i ->
      let roll = Prng.int rng 10 in
      if roll < 7 then Submit (Parser.query_to_string (random_query rng i))
      else if roll < 9 then Flush
      else begin
        incr next_fid;
        Insert (!next_fid, dests.(Prng.int rng 3))
      end)

let req_of_op id = function
  | Submit src ->
    Json.Obj
      [ ("id", Json.Int id); ("op", Json.Str "submit"); ("query", Json.Str src) ]
  | Flush -> Json.Obj [ ("id", Json.Int id); ("op", Json.Str "flush") ]
  | Insert (fid, dest) ->
    Json.Obj
      [
        ("id", Json.Int id);
        ("op", Json.Str "insert");
        ("rel", Json.Str "F");
        ("tuple", Json.Arr [ Json.Int fid; Json.Str dest ]);
      ]

let apply_ref rdb rengine = function
  | Submit src -> ignore (Online.submit rengine (Parser.parse_query src))
  | Flush -> ignore (Online.flush rengine)
  | Insert (fid, dest) -> Database.insert rdb "F" [ vi fid; vs dest ]

let seed_facts = [ (101, "Zurich"); (102, "Zurich"); (200, "Paris") ]

(* Seed the schema over the wire on the server side (journaled when a
   WAL is attached) and directly on the reference side. *)
let seed_over_wire srv conn =
  ignore
    (rpc_ok ~ctx:"seed table" srv conn
       (Json.Obj
          [
            ("op", Json.Str "create_table");
            ("name", Json.Str "F");
            ("attrs", Json.Arr [ Json.Str "fid"; Json.Str "dest" ]);
          ]));
  List.iter
    (fun (f, d) ->
      ignore
        (rpc_ok ~ctx:"seed fact" srv conn
           (Json.Obj
              [
                ("op", Json.Str "insert");
                ("rel", Json.Str "F");
                ("tuple", Json.Arr [ Json.Int f; Json.Str d ]);
              ])))
    seed_facts

let seed_reference rdb =
  ignore (Database.create_table' rdb "F" [ "fid"; "dest" ]);
  List.iter
    (fun (f, d) -> Database.insert rdb "F" [ vi f; vs d ])
    seed_facts

let mk_reference ~consume () =
  let rdb = Database.create () in
  let rengine = Online.create ~eager:true ~consume rdb in
  seed_reference rdb;
  (rdb, rengine)

(* ------------------ differential: interleaved clients ------------- *)

let run_differential ~seed ~nclients ~consume () =
  let ctx = Printf.sprintf "diff-%d-%b" nclients consume in
  let db = Database.create () in
  let engine = Online.create ~eager:true ~consume db in
  let srv = mk_server db engine in
  let conns = Array.init nclients (fun _ -> connect srv) in
  let rdb, rengine = mk_reference ~consume () in
  seed_over_wire srv conns.(0);
  let trace = gen_trace (Prng.create seed) 40 in
  List.iteri
    (fun i op ->
      let conn = conns.(i mod nclients) in
      let resp, _ =
        rpc ~ctx:(Printf.sprintf "%s op %d" ctx i) srv conn (req_of_op i op)
      in
      (match Json.mem "ok" resp with
      | Some (Json.Bool _) -> ()
      | _ -> Alcotest.failf "%s op %d: malformed response" ctx i);
      apply_ref rdb rengine op;
      if i mod 10 = 0 then
        Alcotest.check obs_t
          (Printf.sprintf "%s after op %d" ctx i)
          (observe rdb rengine) (observe db engine))
    trace;
  Alcotest.check obs_t (ctx ^ ": final state") (observe rdb rengine)
    (observe db engine);
  Array.iter Server.Client.close conns;
  pump srv;
  Server.stop srv

let test_differential () =
  run_differential ~seed:chaos_seed ~nclients:4 ~consume:false ();
  run_differential ~seed:chaos_seed ~nclients:3 ~consume:true ()

(* ------------- differential: kill the server mid-stream ----------- *)

let test_kill_and_restart () =
  let dir = fresh_dir "kill" in
  let wal, db, engine =
    Durable.create_engine ~eager:true
      (Durable.config ~fsync:Durable.Always ~snapshot_every:5 dir)
  in
  let srv = mk_server ~durable:wal db engine in
  let nclients = 3 in
  let conns = Array.init nclients (fun _ -> connect srv) in
  let rdb, rengine = mk_reference ~consume:false () in
  seed_over_wire srv conns.(0);
  let trace = gen_trace (Prng.create chaos_seed) 30 in
  let first, rest =
    (List.filteri (fun i _ -> i < 15) trace, List.filteri (fun i _ -> i >= 15) trace)
  in
  List.iteri
    (fun i op ->
      ignore
        (rpc ~ctx:(Printf.sprintf "kill op %d" i) srv
           conns.(i mod nclients) (req_of_op i op));
      apply_ref rdb rengine op)
    first;
  (* Kill: sockets die, the WAL handle is NOT cleanly closed — the
     crash discipline the durable suite establishes, now driven from
     the socket side. *)
  Server.stop srv;
  let wal2, db2, engine2, report =
    match Durable.recover (Durable.config dir) with
    | Ok r -> r
    | Error m -> Alcotest.failf "kill-restart: recover failed: %s" m
  in
  Alcotest.(check bool)
    "clean tail after kill" true
    (report.Durable.truncation = None);
  Alcotest.check obs_t "recovered state sits on the kill boundary"
    (observe rdb rengine) (observe db2 engine2);
  let srv2 = mk_server ~durable:wal2 db2 engine2 in
  let conns2 = Array.init nclients (fun _ -> connect srv2) in
  List.iteri
    (fun i op ->
      ignore
        (rpc ~ctx:(Printf.sprintf "restart op %d" i) srv2
           conns2.(i mod nclients) (req_of_op (100 + i) op));
      apply_ref rdb rengine op)
    rest;
  Alcotest.check obs_t "restarted service converges to the reference"
    (observe rdb rengine) (observe db2 engine2);
  Array.iter Server.Client.close conns2;
  pump srv2;
  Server.stop srv2;
  Durable.close wal2;
  Durable.close wal;
  rm_rf dir

(* --------------- abnormal disconnects, SIGPIPE, EPIPE ------------- *)

let abnormal_count () =
  match Obs.Counter.find "server.abnormal_disconnects" with
  | Some c -> Obs.Counter.value c
  | None -> 0

(* A client dying mid-frame (partial length prefix on the wire, RST)
   must tear down that one session; a sibling session keeps being
   served by the same process. *)
let test_client_dies_mid_frame () =
  Obs.set_metrics true;
  let db = Database.create () in
  let engine = Online.create ~eager:true db in
  let srv = mk_server db engine in
  let survivor = connect srv in
  seed_over_wire srv survivor;
  let before = abnormal_count () in
  (* Raw socket: half a length prefix, then an abrupt RST close. *)
  let victim = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect victim
    (Unix.ADDR_INET (Unix.inet_addr_of_string loopback, Server.port srv));
  ignore (Unix.write_substring victim "\x00\x00" 0 2);
  pump srv;
  Unix.setsockopt_optint victim Unix.SO_LINGER (Some 0);
  Unix.close victim;
  pump ~rounds:10 srv;
  Alcotest.(check bool)
    "mid-frame death recorded as abnormal" true
    (abnormal_count () > before);
  (* The survivor is unaffected. *)
  let resp, _ =
    rpc_ok ~ctx:"survivor" srv survivor
      (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "status") ])
  in
  Alcotest.(check bool)
    "survivor still served" true
    (Json.str_mem "result" resp = Some "status");
  Server.Client.close survivor;
  pump srv;
  Server.stop srv;
  Obs.set_metrics false

(* A subscribed client dying before its notification is delivered must
   surface as EPIPE/ECONNRESET on that session only: the submitting
   session still gets its response and the fired set is intact. *)
let test_subscriber_dies_before_notify () =
  Obs.set_metrics true;
  let db = Database.create () in
  let engine = Online.create ~eager:true db in
  let srv = mk_server db engine in
  let submitter = connect srv in
  seed_over_wire srv submitter;
  let subscriber = connect srv in
  ignore
    (rpc_ok ~ctx:"subscribe" srv subscriber
       (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "subscribe") ]));
  let before = abnormal_count () in
  (* The subscriber dies abruptly; the server has not noticed yet. *)
  Server.Client.abort subscriber;
  let q1 = "qa: { R(G1, y) } R(G0, x) :- F(x, Zurich)." in
  let q2 = "qb: { R(G0, y) } R(G1, x) :- F(x, Zurich)." in
  ignore
    (rpc_ok ~ctx:"pend" srv submitter
       (Json.Obj
          [ ("id", Json.Int 2); ("op", Json.Str "submit");
            ("query", Json.Str q1) ]));
  let resp, _ =
    rpc_ok ~ctx:"fire" srv submitter
      (Json.Obj
         [ ("id", Json.Int 3); ("op", Json.Str "submit");
           ("query", Json.Str q2) ])
  in
  Alcotest.(check bool)
    "pair fired despite the dead subscriber" true
    (Json.str_mem "result" resp = Some "coordinated");
  pump ~rounds:10 srv;
  Alcotest.(check bool)
    "dead subscriber torn down abnormally" true
    (abnormal_count () > before);
  Alcotest.(check int) "set retired" 2 (Online.total_coordinated engine);
  Server.Client.close submitter;
  pump srv;
  Server.stop srv;
  Obs.set_metrics false

(* ---------------------- protocol edge cases ----------------------- *)

let test_overloaded () =
  let db = Database.create () in
  let engine = Online.create ~eager:true db in
  let srv = mk_server ~max_pending:1 db engine in
  let conn = connect srv in
  seed_over_wire srv conn;
  (* Two queries that cannot coordinate with each other. *)
  ignore
    (rpc_ok ~ctx:"first" srv conn
       (Json.Obj
          [
            ("id", Json.Int 1); ("op", Json.Str "submit");
            ("query", Json.Str "qa: { R(G1, y) } R(G0, x) :- F(x, Zurich).");
          ]));
  let resp, _ =
    rpc ~ctx:"second" srv conn
      (Json.Obj
         [
           ("id", Json.Int 2); ("op", Json.Str "submit");
           ("query", Json.Str "qb: { R(G3, y) } R(G2, x) :- F(x, Paris).");
         ])
  in
  Alcotest.(check bool)
    "typed overloaded refusal" true
    (Json.str_mem "error" resp = Some "overloaded");
  Alcotest.(check int) "pool stayed bounded" 1 (Online.pending_count engine);
  Server.Client.close conn;
  pump srv;
  Server.stop srv

let test_protocol_errors () =
  let db = Database.create () in
  let engine = Online.create ~eager:true db in
  let srv = mk_server db engine in
  let conn = connect srv in
  let expect_error ctx req code =
    let resp, _ = rpc ~ctx srv conn req in
    Alcotest.(check (option string))
      ctx (Some code)
      (Json.str_mem "error" resp)
  in
  expect_error "unknown op"
    (Json.Obj [ ("id", Json.Int 1); ("op", Json.Str "dance") ])
    "bad_op";
  expect_error "missing op" (Json.Obj [ ("id", Json.Int 2) ]) "missing_op";
  expect_error "missing query"
    (Json.Obj [ ("id", Json.Int 3); ("op", Json.Str "submit") ])
    "missing_query";
  expect_error "syntax error"
    (Json.Obj
       [ ("id", Json.Int 4); ("op", Json.Str "submit");
         ("query", Json.Str "not a query") ])
    "syntax";
  expect_error "insert into missing table"
    (Json.Obj
       [ ("id", Json.Int 5); ("op", Json.Str "insert");
         ("rel", Json.Str "Nope"); ("tuple", Json.Arr [ Json.Int 1 ]) ])
    "no_table";
  expect_error "retire unknown id"
    (Json.Obj
       [ ("id", Json.Int 6); ("op", Json.Str "retire");
         ("pool_id", Json.Int 42) ])
    "not_found";
  (* After every error the session is still alive. *)
  let resp, _ =
    rpc_ok ~ctx:"still alive" srv conn
      (Json.Obj [ ("id", Json.Int 7); ("op", Json.Str "status") ])
  in
  Alcotest.(check bool)
    "session survived the errors" true
    (Json.str_mem "result" resp = Some "status");
  Server.Client.close conn;
  pump srv;
  Server.stop srv

let test_json_roundtrip () =
  let cases =
    [
      {|null|};
      {|true|};
      {|[1,-2,3.5,"a\nb",{},[]]|};
      {|{"id":1,"op":"submit","q":"x \"quoted\" \\ done","n":null}|};
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error why -> Alcotest.failf "parse %s: %s" s why
      | Ok v -> (
        match Json.parse (Json.to_string v) with
        | Ok v' ->
          Alcotest.(check bool) ("roundtrip " ^ s) true (v = v')
        | Error why -> Alcotest.failf "reparse %s: %s" s why))
    cases;
  (match Json.parse "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  match Json.parse {|{"a":1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must not parse"

let suite =
  [
    Alcotest.test_case "json frames round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case
      "differential: interleaved clients == sequential reference" `Quick
      test_differential;
    Alcotest.test_case
      "differential: kill + restart over --wal converges" `Quick
      test_kill_and_restart;
    Alcotest.test_case "client dying mid-frame only kills its session"
      `Quick test_client_dies_mid_frame;
    Alcotest.test_case "subscriber dying before notify is a session event"
      `Quick test_subscriber_dies_before_notify;
    Alcotest.test_case "admission control returns typed overloaded" `Quick
      test_overloaded;
    Alcotest.test_case "protocol errors keep the session alive" `Quick
      test_protocol_errors;
  ]
