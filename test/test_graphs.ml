(* The graph substrate: digraph, Tarjan SCC + condensation, topological
   order, reachability, DOT export — unit cases plus qcheck invariants. *)

open Graphs

let test_digraph_basics () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 2;
  Alcotest.(check int) "parallel edges collapsed" 3 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succ" [ 1 ] (Digraph.successors g 0);
  Alcotest.(check (list int)) "pred" [ 0 ] (Digraph.predecessors g 1);
  Alcotest.(check bool) "self loop" true (Digraph.mem_edge g 2 2);
  Alcotest.(check int) "out degree" 1 (Digraph.out_degree g 2);
  Alcotest.(check int) "in degree" 2 (Digraph.in_degree g 2);
  Alcotest.check_raises "bad node"
    (Invalid_argument "Digraph: node 7 out of [0,4)") (fun () ->
      Digraph.add_edge g 7 0)

let test_transpose () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let t = Digraph.transpose g in
  Alcotest.(check bool) "reversed" true
    (Digraph.mem_edge t 1 0 && Digraph.mem_edge t 2 1);
  Alcotest.(check bool) "double transpose" true (Digraph.equal g (Digraph.transpose t))

let test_induced () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let s = Digraph.induced_subgraph g ~keep:(fun v -> v <> 2) in
  Alcotest.(check int) "edges dropped" 1 (Digraph.edge_count s);
  Alcotest.(check bool) "kept edge" true (Digraph.mem_edge s 0 1)

let test_scc_cycle () =
  (* 0 -> 1 -> 2 -> 0 cycle plus a tail 3 -> 0. *)
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 0); (3, 0) ] in
  let r = Scc.compute g in
  Alcotest.(check int) "two components" 2 r.count;
  Alcotest.(check bool) "cycle together" true
    (r.component.(0) = r.component.(1) && r.component.(1) = r.component.(2));
  Alcotest.(check bool) "tail separate" true (r.component.(3) <> r.component.(0));
  (* Our numbering is sinks-first: the cycle (the only sink) is 0. *)
  Alcotest.(check int) "sink id" 0 r.component.(0);
  Alcotest.(check bool) "not trivial" false (Scc.is_trivial r)

let test_scc_chain_deep () =
  (* A 50k-node chain must not blow the stack (iterative Tarjan). *)
  let n = 50_000 in
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_edge g i (i + 1)
  done;
  let r = Scc.compute g in
  Alcotest.(check int) "all singletons" n r.count;
  Alcotest.(check bool) "trivial" true (Scc.is_trivial r)

let test_condensation () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (4, 2) ] in
  let r = Scc.compute g in
  let c = Scc.condensation g r in
  Alcotest.(check int) "three components" 3 r.count;
  Alcotest.(check int) "condensed edges" 2 (Digraph.edge_count c);
  (* Condensation is a DAG: topological sort succeeds. *)
  Alcotest.(check int) "topo length" 3 (List.length (Topo.sort c))

let test_scc_masked () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 0); (2, 3) ] in
  let r = Scc.compute_masked g ~alive:(fun v -> v < 2) in
  Alcotest.(check int) "one live component" 1 r.count;
  Alcotest.(check int) "dead marker" (-1) r.component.(2)

let test_topo () =
  let g = Digraph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let order = Topo.sort g in
  Alcotest.(check bool) "valid order" true (Topo.is_topological_order g order);
  Alcotest.(check (list int)) "reverse" (List.rev order) (Topo.reverse_sort g)

let test_topo_cycle () =
  let g = Digraph.of_edges 2 [ (0, 1); (1, 0) ] in
  let raised = try ignore (Topo.sort g); false with Topo.Cycle _ -> true in
  Alcotest.(check bool) "cycle detected" true raised

let test_reach () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ] (Reach.reachable_list g 0);
  Alcotest.(check (list int)) "from 3" [ 3; 4 ] (Reach.reachable_list g 3);
  let masks = Reach.descendants_per_node g in
  Alcotest.(check bool) "self reachable" true masks.(4).(4)

let test_simple_paths () =
  (* Diamond: two simple paths 0 -> 3. *)
  let g = Digraph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "diamond" 2 (Reach.simple_path_count g 0 3 ~max:10);
  Alcotest.(check int) "capped" 2 (Reach.simple_path_count g 0 3 ~max:2);
  Alcotest.(check int) "single" 1 (Reach.simple_path_count g 1 3 ~max:10);
  Alcotest.(check int) "none" 0 (Reach.simple_path_count g 3 0 ~max:10)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  loop 0

let test_dot () =
  let g = Digraph.of_edges 2 [ (0, 1) ] in
  let s = Dot.to_string ~label:(fun v -> Printf.sprintf "q%d" v) ~highlight:(fun v -> v = 0) g in
  Alcotest.(check bool) "mentions edge" true (contains_substring s "n0 -> n1");
  Alcotest.(check bool) "label rendered" true (contains_substring s "label=\"q1\"");
  Alcotest.(check bool) "highlight rendered" true (contains_substring s "fillcolor")

(* Random graph generator for property tests. *)
let gen_graph =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* edges = list_size (int_range 0 30) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, edges))

let graph_arb =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    gen_graph

let test_union_find_basics () =
  let uf = Union_find.create () in
  Union_find.ensure uf 5;
  Alcotest.(check int) "cardinal" 6 (Union_find.cardinal uf);
  Alcotest.(check bool) "singletons" false (Union_find.same uf 0 1);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "united transitively" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "others untouched" false (Union_find.same uf 0 3);
  let r = Union_find.union uf 0 2 in
  Alcotest.(check int) "idempotent union returns root" r
    (Union_find.find uf 1);
  Alcotest.check_raises "unensured id"
    (Invalid_argument "Union_find: id 6 not ensured") (fun () ->
      ignore (Union_find.find uf 6))

(* The engine's dissolution pattern: reset every live member of a
   component, then re-union the survivors from adjacency. *)
let test_union_find_reset () =
  let uf = Union_find.create ~capacity:2 () in
  Union_find.ensure uf 4;
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  (* Dissolve {0,1,2}; survivors 1 and 2 stay connected, 0 leaves. *)
  Union_find.reset uf 0;
  Union_find.reset uf 1;
  Union_find.reset uf 2;
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "survivors reunited" true (Union_find.same uf 1 2);
  Alcotest.(check bool) "retired member detached" false
    (Union_find.same uf 0 1);
  Alcotest.(check bool) "other component intact" true (Union_find.same uf 3 4)

let test_union_find_deep () =
  (* A long union chain must not recurse: find is iterative with path
     halving. *)
  let n = 200_000 in
  let uf = Union_find.create () in
  Union_find.ensure uf (n - 1);
  for i = 0 to n - 2 do
    ignore (Union_find.union uf i (i + 1))
  done;
  Alcotest.(check bool) "ends connected" true (Union_find.same uf 0 (n - 1))

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "union-find basics" `Quick test_union_find_basics;
    Alcotest.test_case "union-find reset/dissolve" `Quick
      test_union_find_reset;
    Alcotest.test_case "union-find deep chain" `Quick test_union_find_deep;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "scc cycle" `Quick test_scc_cycle;
    Alcotest.test_case "scc deep chain (iterative)" `Quick test_scc_chain_deep;
    Alcotest.test_case "condensation" `Quick test_condensation;
    Alcotest.test_case "scc masked" `Quick test_scc_masked;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
    Alcotest.test_case "reachability" `Quick test_reach;
    Alcotest.test_case "simple path counting" `Quick test_simple_paths;
    Alcotest.test_case "dot export" `Quick test_dot;
    Helpers.qtest ~count:300 "scc is a partition" graph_arb (fun (n, es) ->
        let g = Digraph.of_edges n es in
        let r = Scc.compute g in
        let seen = Array.make n 0 in
        Array.iter (List.iter (fun v -> seen.(v) <- seen.(v) + 1)) r.members;
        Array.for_all (fun c -> c = 1) seen
        && Array.for_all (fun v -> v >= 0 && v < r.count) r.component);
    Helpers.qtest ~count:300 "condensation is acyclic and ids reverse-topo"
      graph_arb (fun (n, es) ->
        let g = Digraph.of_edges n es in
        let r = Scc.compute g in
        let c = Scc.condensation g r in
        (* Edges go from higher to lower component ids (sinks-first). *)
        let ok = ref true in
        Digraph.iter_edges (fun u v -> if u <= v then ok := false) c;
        !ok
        &&
        match Topo.sort c with _ -> true);
    Helpers.qtest ~count:300 "mutual reachability iff same component" graph_arb
      (fun (n, es) ->
        let g = Digraph.of_edges n es in
        let r = Scc.compute g in
        let reach = Reach.descendants_per_node g in
        let ok = ref true in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            let same = r.component.(u) = r.component.(v) in
            let mutual = reach.(u).(v) && reach.(v).(u) in
            if same <> mutual then ok := false
          done
        done;
        !ok);
    Helpers.qtest ~count:200 "topo order valid on condensations" graph_arb
      (fun (n, es) ->
        let g = Digraph.of_edges n es in
        let r = Scc.compute g in
        let c = Scc.condensation g r in
        Topo.is_topological_order c (Topo.sort c));
  ]
