(* The resilient execution layer: budgets, deadlines, fault injection,
   and graceful degradation (chaos harness).

   The differential tests are the heart: a seeded chaos run with enough
   retry budget must produce byte-for-byte the fault-free answer — same
   members, same candidates, same database probe count — because retries
   never re-execute a probe body and failed attempts never reach the
   engine.  Seeds and rates come from CHAOS_SEED / CHAOS_FAULT_RATE so
   CI can sweep a matrix without touching the code. *)

open Relational
open Entangled
open Helpers

let chaos_seed =
  match int_of_string_opt (try Sys.getenv "CHAOS_SEED" with Not_found -> "")
  with
  | Some s -> s
  | None -> 42

let chaos_rate =
  match
    float_of_string_opt (try Sys.getenv "CHAOS_FAULT_RATE" with Not_found -> "")
  with
  | Some r when r >= 0.0 && r < 1.0 -> r
  | Some _ | None -> 0.3

(* Transient faults only, effectively unlimited retries: every probe
   eventually succeeds, so degradation must never trigger. *)
let chaos_config =
  {
    Resilient.default_config with
    max_attempts = 1000;
    faults =
      Some
        {
          Resilient.fault_defaults with
          fault_seed = chaos_seed;
          transient_rate = chaos_rate;
        };
  }

let with_guard db cfg f =
  let g = Resilient.arm cfg in
  Database.set_guard db (Some g);
  Fun.protect
    ~finally:(fun () -> Database.set_guard db None)
    (fun () -> f g)

(* --------------------------- Guard units -------------------------- *)

let no_tuples () = 0

let expect_abort expected f =
  match f () with
  | _ -> Alcotest.failf "expected abort: %s" (Resilient.error_to_string expected)
  | exception Resilient.Abort e ->
    Alcotest.(check string)
      "abort reason"
      (Resilient.error_to_string expected)
      (Resilient.error_to_string e)

let test_probe_budget () =
  let g = Resilient.arm { Resilient.default_config with max_probes = Some 2 } in
  let hits = ref 0 in
  let probe () = Resilient.probe g ~tuples_scanned:no_tuples (fun () -> incr hits) in
  probe ();
  probe ();
  expect_abort (Resilient.Budget_exhausted Resilient.Max_probes) probe;
  Alcotest.(check int) "body ran exactly twice" 2 !hits;
  let u = Resilient.usage g in
  Alcotest.(check int) "attempts" 2 u.attempts;
  Alcotest.(check int) "ok" 2 u.probes_ok

let test_tuple_budget () =
  let g = Resilient.arm { Resilient.default_config with max_tuples = Some 5 } in
  let scanned = ref 0 in
  let probe () =
    Resilient.probe g ~tuples_scanned:(fun () -> !scanned) (fun () -> ())
  in
  probe ();
  (* The budget meters the delta from the first guarded probe. *)
  scanned := 10;
  expect_abort (Resilient.Budget_exhausted Resilient.Max_tuples) probe

let test_deadline () =
  let g = Resilient.arm { Resilient.default_config with deadline_ns = Some 0L } in
  expect_abort (Resilient.Budget_exhausted Resilient.Deadline) (fun () ->
      Resilient.probe g ~tuples_scanned:no_tuples (fun () -> ()))

let test_permanent_fault () =
  let g =
    Resilient.arm
      {
        Resilient.default_config with
        faults =
          Some
            {
              Resilient.fault_defaults with
              transient_rate = 0.0;
              permanent_rate = 1.0;
            };
      }
  in
  expect_abort
    (Resilient.Probe_failed { attempts = 1; permanent = true })
    (fun () -> Resilient.probe g ~tuples_scanned:no_tuples (fun () -> ()))

let test_retries_exhausted () =
  let g =
    Resilient.arm
      {
        Resilient.default_config with
        max_attempts = 3;
        faults =
          Some { Resilient.fault_defaults with transient_rate = 1.0 };
      }
  in
  let ran = ref false in
  expect_abort
    (Resilient.Probe_failed { attempts = 3; permanent = false })
    (fun () ->
      Resilient.probe g ~tuples_scanned:no_tuples (fun () -> ran := true));
  Alcotest.(check bool) "body never ran" false !ran;
  let u = Resilient.usage g in
  Alcotest.(check int) "three attempts" 3 u.attempts;
  Alcotest.(check int) "two retries" 2 u.retries;
  Alcotest.(check bool) "backoff charged" true (u.backoff_ns > 0L)

let test_injected_timeout_retries () =
  let g =
    Resilient.arm
      {
        Resilient.default_config with
        max_attempts = 3;
        probe_timeout_ns = Some 1_000L;
        faults =
          Some
            {
              Resilient.fault_defaults with
              latency_rate = 1.0;
              latency_ns = 2_000L;
            };
      }
  in
  expect_abort
    (Resilient.Probe_failed { attempts = 3; permanent = false })
    (fun () -> Resilient.probe g ~tuples_scanned:no_tuples (fun () -> ()));
  let u = Resilient.usage g in
  Alcotest.(check int) "every attempt timed out" 3 u.injected_timeouts;
  Alcotest.(check bool) "latency charged against the deadline" true
    (u.injected_latency_ns >= 6_000L)

let test_injector_deterministic () =
  let run () =
    let g =
      Resilient.arm
        {
          chaos_config with
          faults =
            Some
              {
                Resilient.fault_defaults with
                fault_seed = chaos_seed;
                transient_rate = 0.5;
              };
        }
    in
    for _ = 1 to 50 do
      Resilient.probe g ~tuples_scanned:no_tuples (fun () -> ())
    done;
    Resilient.usage g
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same attempts" a.attempts b.attempts;
  Alcotest.(check int) "same retries" a.retries b.retries;
  Alcotest.(check int) "same faults" a.transient_faults b.transient_faults;
  Alcotest.(check int64) "same backoff schedule" a.backoff_ns b.backoff_ns

(* ----------------------- Differential chaos ----------------------- *)

let members_of = function
  | None -> []
  | Some s -> s.Solution.members

(* A safe+unique pair over the shared flights store: A and B must agree
   on a Zurich flight. *)
let zurich_pair tag =
  [
    Query.make
      ~name:(tag ^ "_a")
      ~post:[ atom "R" [ cs (tag ^ "B"); var "x" ] ]
      ~head:[ atom "R" [ cs (tag ^ "A"); var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ];
    Query.make
      ~name:(tag ^ "_b")
      ~post:[ atom "R" [ cs (tag ^ "A"); var "y" ] ]
      ~head:[ atom "R" [ cs (tag ^ "B"); var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ];
  ]

(* Fault-free vs seeded-chaos run of the same solver on the same
   workload: answers and probe counts must be identical. *)
let check_differential name solve =
  let plain = solve None in
  let chaos = solve (Some chaos_config) in
  let members, probes, degraded = plain and members', probes', degraded' = chaos in
  Alcotest.(check (list int)) (name ^ ": same members") members members';
  Alcotest.(check int) (name ^ ": same db probes") probes probes';
  Alcotest.(check bool) (name ^ ": fault-free not degraded") false degraded;
  Alcotest.(check bool) (name ^ ": chaos run not degraded") false degraded'

let guarded db cfg f =
  match cfg with
  | None -> f ()
  | Some cfg -> with_guard db cfg (fun _ -> f ())

let test_differential_scc () =
  check_differential "scc" (fun cfg ->
      let db = Database.create () in
      let queries = figure1_queries db in
      guarded db cfg @@ fun () ->
      match Coordination.Scc_algo.solve db queries with
      | Error _ -> Alcotest.fail "figure 1 is safe"
      | Ok o ->
        (members_of o.solution, o.stats.db_probes, o.degraded <> None))

let test_differential_gupta () =
  check_differential "gupta" (fun cfg ->
      let db = flights_db () in
      guarded db cfg @@ fun () ->
      match Coordination.Gupta.solve db (zurich_pair "g") with
      | Error _ -> Alcotest.fail "pair is safe+unique"
      | Ok o -> (members_of o.solution, o.stats.db_probes, o.degraded <> None))

let test_differential_single_connected () =
  check_differential "single-connected" (fun cfg ->
      let db, queries = Workload.Listgen.make ~rows:50 ~topics:10 ~seed:7 6 in
      guarded db cfg @@ fun () ->
      match Coordination.Single_connected.solve db queries with
      | Error _ -> Alcotest.fail "list workload is single-connected"
      | Ok o -> (members_of o.solution, o.stats.db_probes, o.degraded <> None))

let test_differential_consistent () =
  check_differential "consistent" (fun cfg ->
      let db, queries = Workload.Flights.make_worst_case ~rows:40 ~users:8 in
      guarded db cfg @@ fun () ->
      match Coordination.Consistent.solve db Workload.Flights.config queries with
      | Error _ -> Alcotest.fail "flights workload solves"
      | Ok o -> (o.members, o.stats.db_probes, o.degraded <> None))

let test_differential_parallel () =
  check_differential "parallel" (fun cfg ->
      let db, queries = Workload.Flights.make_worst_case ~rows:40 ~users:8 in
      guarded db cfg @@ fun () ->
      match
        Coordination.Parallel.solve ~domains:3 db Workload.Flights.config
          queries
      with
      | Error _ -> Alcotest.fail "flights workload solves"
      | Ok o -> (o.members, o.stats.db_probes, o.degraded <> None))

let test_differential_brute () =
  check_differential "brute" (fun cfg ->
      let db = Database.create () in
      let queries = Query.rename_set (figure1_queries db) in
      guarded db cfg @@ fun () ->
      let o = Coordination.Brute.solve db queries in
      (members_of o.solution, o.stats.db_probes, o.degraded <> None))

let test_differential_online () =
  let run cfg =
    let db = Database.create () in
    let queries = figure1_queries db in
    let engine = Coordination.Online.create db in
    guarded db cfg @@ fun () ->
    let fired =
      List.map
        (fun q ->
          match Coordination.Online.submit engine q with
          | Coordination.Online.Coordinated c ->
            List.map (fun q -> q.Query.name) c.queries
          | Coordination.Online.Pending -> []
          | Coordination.Online.Rejected_unsafe _ ->
            Alcotest.fail "figure 1 stays safe")
        queries
    in
    (fired, Coordination.Online.pending_count engine)
  in
  let plain = run None and chaos = run (Some chaos_config) in
  Alcotest.(check (pair (list (list string)) int))
    "online: same firing schedule" plain chaos

(* -------------------- Degradation properties ---------------------- *)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let test_budget_prefix_consistent () =
  let solve db queries cfg =
    guarded db cfg @@ fun () ->
    match Coordination.Scc_algo.solve db queries with
    | Error _ -> Alcotest.fail "list workload is safe"
    | Ok o -> o
  in
  let db, queries = Workload.Listgen.make ~rows:50 ~topics:10 ~seed:3 8 in
  let full = solve db queries None in
  Alcotest.(check bool) "full run not degraded" true (full.degraded = None);
  let covered o =
    List.map (fun c -> c.Coordination.Scc_algo.covered) o.Coordination.Scc_algo.candidates
  in
  List.iter
    (fun k ->
      let partial =
        solve db queries
          (Some { Resilient.default_config with max_probes = Some k })
      in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d degrades" k)
        true
        (partial.degraded <> None);
      Alcotest.(check bool)
        (Printf.sprintf "budget %d: candidates are a prefix" k)
        true
        (is_prefix (covered partial) (covered full)))
    [ 1; 2; 4 ]

let test_parallel_degrades_on_prepare_abort () =
  let db, queries = Workload.Flights.make_worst_case ~rows:40 ~users:8 in
  with_guard db { Resilient.default_config with max_probes = Some 0 }
  @@ fun _ ->
  match
    Coordination.Parallel.solve ~domains:2 db Workload.Flights.config queries
  with
  | Error e -> Alcotest.failf "typed abort expected: %a" Coordination.Consistent.pp_error e
  | Ok o ->
    Alcotest.(check bool) "degraded" true (o.degraded <> None);
    Alcotest.(check (list int)) "no members claimed" [] o.members

(* -------------------- Online consume integrity -------------------- *)

let test_online_consume_abort_keeps_store () =
  let db = flights_db () in
  let engine = Coordination.Online.create ~consume:true db in
  let tuples0 = Database.total_tuples db in
  (* A zero-probe budget aborts every evaluation: nothing may fire, and
     with consume on, nothing may be deleted. *)
  (with_guard db { Resilient.default_config with max_probes = Some 0 }
   @@ fun _ ->
   List.iter
     (fun q ->
       match Coordination.Online.submit engine q with
       | Coordination.Online.Coordinated _ ->
         Alcotest.fail "cannot coordinate without probes"
       | Coordination.Online.Pending | Coordination.Online.Rejected_unsafe _ ->
         ())
     (zurich_pair "p"));
  Alcotest.(check bool) "degradation surfaced" true
    (Coordination.Online.last_degradation engine <> None);
  Alcotest.(check int) "no tuple consumed" tuples0 (Database.total_tuples db);
  Alcotest.(check int) "both queries still pending" 2
    (Coordination.Online.pending_count engine);
  (* Guard gone: the same pool fires and books its inventory. *)
  let fired = Coordination.Online.flush engine in
  Alcotest.(check int) "pair fires" 1 (List.length fired);
  Alcotest.(check bool) "flush cleared the degradation" true
    (Coordination.Online.last_degradation engine = None);
  Alcotest.(check int) "pool drained" 0
    (Coordination.Online.pending_count engine);
  Alcotest.(check bool) "inventory booked" true
    (Database.total_tuples db < tuples0)

let test_online_chaos_consume_matches () =
  let run cfg =
    let db = flights_db () in
    let engine = Coordination.Online.create ~consume:true db in
    guarded db cfg @@ fun () ->
    List.iter
      (fun q -> ignore (Coordination.Online.submit engine q))
      (zurich_pair "p" @ zurich_pair "q");
    ( Coordination.Online.total_coordinated engine,
      Coordination.Online.pending_count engine,
      Database.total_tuples db )
  in
  let plain = run None and chaos = run (Some chaos_config) in
  Alcotest.(check (triple int int int))
    "consume under chaos books the same inventory" plain chaos

(* ------------------------- Backoff schedule ------------------------ *)

(* The exponential-backoff schedule is part of the determinism
   contract: CI sweeps seeds, so two guards armed with the same config
   must charge byte-identical sleeps. *)

let backoff_config ?(jitter = Resilient.default_config.backoff_jitter) () =
  {
    Resilient.default_config with
    backoff_jitter = jitter;
    faults = Some { Resilient.fault_defaults with fault_seed = chaos_seed };
  }

let schedule cfg n =
  let g = Resilient.arm cfg in
  List.init n (Resilient.backoff_ns g)

let test_backoff_deterministic () =
  let a = schedule (backoff_config ()) 24
  and b = schedule (backoff_config ()) 24 in
  Alcotest.(check (list int64)) "same seed, same schedule" a b;
  let c =
    schedule
      {
        (backoff_config ()) with
        faults =
          Some { Resilient.fault_defaults with fault_seed = chaos_seed + 1 };
      }
      24
  in
  Alcotest.(check bool) "different seed perturbs the jitter" true (a <> c)

let test_backoff_monotone_and_capped () =
  (* Jitter off: the schedule is exactly base << min i 20. *)
  let base = Resilient.default_config.backoff_base_ns in
  let exact = schedule (backoff_config ~jitter:0.0 ()) 24 in
  List.iteri
    (fun i v ->
      Alcotest.(check int64)
        (Printf.sprintf "retry %d is base << %d" i (min i 20))
        (Int64.shift_left base (min i 20))
        v)
    exact;
  (* A jitter fraction <= 1/3 keeps each step's floor above the
     previous step's ceiling, so the jittered schedule stays monotone
     non-decreasing up to the cap. *)
  let jittered = schedule (backoff_config ~jitter:0.25 ()) 21 in
  let rec check_monotone i = function
    | a :: (b :: _ as rest) ->
      if a > b then
        Alcotest.failf "retry %d backoff %Ld > retry %d backoff %Ld" i a
          (i + 1) b;
      check_monotone (i + 1) rest
    | _ -> ()
  in
  check_monotone 0 jittered;
  (* Every jittered value lands in the [+/- 25%] envelope of its rung. *)
  List.iteri
    (fun i v ->
      let rung = Int64.to_float (Int64.shift_left base (min i 20)) in
      let lo = Int64.of_float (rung *. 0.75)
      and hi = Int64.of_float (rung *. 1.25) in
      if v < lo || v > hi then
        Alcotest.failf "retry %d backoff %Ld outside [%Ld, %Ld]" i v lo hi)
    jittered;
  (* Past the cap the rung stops growing; draws still jitter inside it. *)
  let capped = schedule (backoff_config ~jitter:0.0 ()) 30 in
  let at k = List.nth capped k in
  Alcotest.(check int64) "shift caps at 20" (at 20) (at 29)

let suite =
  [
    Alcotest.test_case "probe budget aborts typed" `Quick test_probe_budget;
    Alcotest.test_case "tuple budget meters the delta" `Quick test_tuple_budget;
    Alcotest.test_case "deadline aborts" `Quick test_deadline;
    Alcotest.test_case "permanent fault is fatal" `Quick test_permanent_fault;
    Alcotest.test_case "retries exhausted is typed, body never runs" `Quick
      test_retries_exhausted;
    Alcotest.test_case "injected latency beats the timeout" `Quick
      test_injected_timeout_retries;
    Alcotest.test_case "fault schedule is seed-deterministic" `Quick
      test_injector_deterministic;
    Alcotest.test_case "backoff schedule is seed-deterministic" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff is monotone, jitter-bounded, capped" `Quick
      test_backoff_monotone_and_capped;
    Alcotest.test_case "chaos == fault-free: scc" `Quick test_differential_scc;
    Alcotest.test_case "chaos == fault-free: gupta" `Quick
      test_differential_gupta;
    Alcotest.test_case "chaos == fault-free: single-connected" `Quick
      test_differential_single_connected;
    Alcotest.test_case "chaos == fault-free: consistent" `Quick
      test_differential_consistent;
    Alcotest.test_case "chaos == fault-free: parallel" `Quick
      test_differential_parallel;
    Alcotest.test_case "chaos == fault-free: brute" `Quick
      test_differential_brute;
    Alcotest.test_case "chaos == fault-free: online" `Quick
      test_differential_online;
    Alcotest.test_case "budget abort keeps a prefix of candidates" `Quick
      test_budget_prefix_consistent;
    Alcotest.test_case "parallel degrades on prepare abort" `Quick
      test_parallel_degrades_on_prepare_abort;
    Alcotest.test_case "consume: abort leaves the store untouched" `Quick
      test_online_consume_abort_keeps_store;
    Alcotest.test_case "consume: chaos books the same inventory" `Quick
      test_online_chaos_consume_matches;
  ]
