(* The durability layer's honesty contract, checked differentially.

   A durable engine journals every operation through a checksummed WAL
   (lib/durable); a never-crashed reference engine runs the same seeded
   trace with no WAL at all.  At every operation boundary we simulate a
   crash — copy the WAL directory aside — and later recover from the
   copy: the recovered pool (ids and names), component partition,
   satisfied count and store contents must equal the reference's state
   at exactly that boundary, for both storage backends and the
   eager/consume mode grid.  Torn, partial and bit-flipped tails
   (seeded through Resilient.Disk_fault) must recover to the previous
   boundary with a typed truncation report — never an exception, never
   a double-spent tuple.  CHAOS_SEED sweeps the trace seed in CI;
   CHAOS_WAL_DIR relocates the scratch space (failures leave it behind
   for artifact upload). *)

open Relational
open Entangled
open Helpers
module Online = Coordination.Online

let chaos_seed =
  match int_of_string_opt (try Sys.getenv "CHAOS_SEED" with Not_found -> "")
  with
  | Some s -> s
  | None -> 42

let scratch_base =
  match Sys.getenv "CHAOS_WAL_DIR" with
  | dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir
  | exception Not_found -> Filename.get_temp_dir_name ()

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat scratch_base
      (Printf.sprintf "ewal-%d-%s-%d" (Unix.getpid ()) tag !dir_counter)
  in
  if Sys.file_exists d then
    Sys.readdir d |> Array.iter (fun n -> Sys.remove (Filename.concat d n))
  else Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Sys.readdir d |> Array.iter (fun n -> Sys.remove (Filename.concat d n));
    Unix.rmdir d
  end

let copy_dir src dst =
  if not (Sys.file_exists dst) then Unix.mkdir dst 0o755;
  Sys.readdir src
  |> Array.iter (fun n ->
         let ic = open_in_bin (Filename.concat src n) in
         let data = really_input_string ic (in_channel_length ic) in
         close_in ic;
         let oc = open_out_bin (Filename.concat dst n) in
         output_string oc data;
         close_out oc)

(* ----------------------- observable state ------------------------- *)

type obs_state = {
  o_pending : (int * string) list;
  o_comps : int list list;
  o_satisfied : int;
  o_next_id : int;
  o_tables : (string * Tuple.t list) list;
}

let observe db engine =
  {
    o_pending =
      List.map
        (fun (id, q) -> (id, q.Query.name))
        (Online.pending_entries engine);
    o_comps = Online.components engine;
    o_satisfied = Online.total_coordinated engine;
    o_next_id = Online.next_id engine;
    o_tables =
      List.map
        (fun r ->
          (Relation.name r, List.sort Tuple.compare (Relation.to_list r)))
        (Database.relations db);
  }

let pp_obs ppf s =
  Format.fprintf ppf "pending=[%s] satisfied=%d next_id=%d tuples=[%s]"
    (String.concat ";"
       (List.map (fun (i, n) -> Printf.sprintf "%d:%s" i n) s.o_pending))
    s.o_satisfied s.o_next_id
    (String.concat ";"
       (List.map
          (fun (n, tups) -> Printf.sprintf "%s:%d" n (List.length tups))
          s.o_tables))

let obs_t = Alcotest.testable pp_obs ( = )

(* --------------------------- seeded traces ------------------------ *)

let dests = [| "Zurich"; "Paris"; "Athens"; "Nowhere" |]

let random_query rng i =
  let g k = cs (Printf.sprintf "g%d" k) in
  let post =
    if Prng.int rng 4 < 3 then [ atom "R" [ g (Prng.int rng 4); var "y" ] ]
    else []
  in
  Query.make
    ~name:(Printf.sprintf "q%d" i)
    ~post
    ~head:[ atom "R" [ g (Prng.int rng 4); var "x" ] ]
    [ atom "F" [ var "x"; cs dests.(Prng.int rng (Array.length dests)) ] ]

type op = Submit of Query.t | Flush | Insert of int * string

let gen_trace rng n =
  let next_fid = ref 1000 in
  List.init n (fun i ->
      let roll = Prng.int rng 10 in
      if roll < 7 then Submit (random_query rng i)
      else if roll < 9 then Flush
      else begin
        incr next_fid;
        Insert (!next_fid, dests.(Prng.int rng 3))
      end)

let seed_facts = [ (101, "Zurich"); (102, "Zurich"); (200, "Paris") ]

(* A durable side and a plain reference side run the same setup: the
   schema and seed facts flow through the journal on the durable side
   so recovery can rebuild them. *)
let seed_store ?wal db =
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  (match wal with
  | Some t -> Durable.journal_create_table t "F" [ "fid"; "dest" ]
  | None -> ());
  List.iter
    (fun (f, d) ->
      Database.insert db "F" [ vi f; vs d ];
      match wal with
      | Some t -> Durable.journal_insert t "F" [ vi f; vs d ]
      | None -> ())
    seed_facts

let apply_op ?wal db engine = function
  | Submit q -> ignore (Online.submit engine q)
  | Flush -> ignore (Online.flush engine)
  | Insert (fid, dest) ->
    Database.insert db "F" [ vi fid; vs dest ];
    (match wal with
    | Some t -> Durable.journal_insert t "F" [ vi fid; vs dest ]
    | None -> ())

let mk_reference ~backend ~eager ~consume =
  let db = Database.create ~backend () in
  let engine = Online.create ~eager ~consume db in
  seed_store db;
  (db, engine)

let recover_exn ?(ctx = "") dir =
  match Durable.recover (Durable.config dir) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: recover failed: %s" ctx msg

(* ---------------- crash points at every op boundary --------------- *)

(* Run a trace on a durable engine (periodic snapshots armed) next to
   the reference, copying the WAL directory at every operation
   boundary; then recover every copy and demand state equality with the
   reference at that boundary. *)
let run_crash_points ~seed ~backend ~eager ~consume () =
  let tag =
    Printf.sprintf "cp-%s-%b-%b"
      (Database.backend_to_string backend)
      eager consume
  in
  let dir = fresh_dir tag in
  let trace = gen_trace (Prng.create seed) 12 in
  let wal, db, engine =
    Durable.create_engine ~eager ~consume ~backend
      (Durable.config ~fsync:Durable.Always ~snapshot_every:4 dir)
  in
  seed_store ~wal db;
  let rdb, rengine = mk_reference ~backend ~eager ~consume in
  let copies = ref [] in
  let states = ref [] in
  let checkpoint k =
    let copy = fresh_dir (Printf.sprintf "%s-k%d" tag k) in
    copy_dir dir copy;
    copies := (k, copy) :: !copies;
    states := (k, observe rdb rengine) :: !states;
    Alcotest.check obs_t
      (Printf.sprintf "%s step %d: live == reference" tag k)
      (observe rdb rengine) (observe db engine)
  in
  checkpoint 0;
  List.iteri
    (fun i op ->
      apply_op ~wal db engine op;
      apply_op rdb rengine op;
      checkpoint (i + 1))
    trace;
  (* Recover every crash point; the recovered state must sit exactly on
     that operation boundary. *)
  List.iter
    (fun (k, copy) ->
      let t, rdb', rengine', report =
        recover_exn ~ctx:(Printf.sprintf "%s k%d" tag k) copy
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s k%d: clean tail" tag k)
        true
        (report.Durable.truncation = None);
      Alcotest.check obs_t
        (Printf.sprintf "%s k%d: recovered == reference" tag k)
        (List.assoc k !states) (observe rdb' rengine');
      Durable.close t;
      rm_rf copy)
    !copies;
  (* Continuation equivalence: a recovered engine must behave like the
     never-crashed reference from here on. *)
  let n = List.length trace in
  let final = fresh_dir (tag ^ "-final") in
  copy_dir dir final;
  let t, rdb', rengine', _ = recover_exn ~ctx:(tag ^ " final") final in
  let more = gen_trace (Prng.create (seed + 1)) 6 in
  List.iter
    (fun op ->
      apply_op ~wal:t rdb' rengine' op;
      apply_op rdb rengine op)
    more;
  Alcotest.check obs_t
    (Printf.sprintf "%s: continuation after recovery (n=%d)" tag n)
    (observe rdb rengine) (observe rdb' rengine');
  Durable.close t;
  Durable.close wal;
  rm_rf final;
  rm_rf dir

let test_crash_points () =
  List.iter
    (fun backend ->
      List.iter
        (fun (eager, consume) ->
          run_crash_points ~seed:chaos_seed ~backend ~eager ~consume ())
        [ (true, false); (true, true); (false, true) ])
    [ Database.Row; Database.Columnar ]

(* --------------------- torn and corrupt tails --------------------- *)

(* Same trace discipline, snapshots off so the whole history lives in
   one segment, recording the byte span each operation appended.  Then
   for every op we corrupt a copy inside that op's span (seeded torn
   write / lost tail / bit flip) and recover: the result must be the
   state one boundary earlier, reported as a truncation, never an
   exception. *)
let run_torn_tails ~seed ~backend ~consume () =
  let tag = Printf.sprintf "torn-%s-%b" (Database.backend_to_string backend) consume in
  let dir = fresh_dir tag in
  let trace = gen_trace (Prng.create seed) 12 in
  let wal, db, engine =
    Durable.create_engine ~eager:true ~consume ~backend
      (Durable.config ~fsync:Durable.Always ~snapshot_every:0 dir)
  in
  seed_store ~wal db;
  let rdb, rengine = mk_reference ~backend ~eager:true ~consume in
  let states = ref [ (0, observe rdb rengine) ] in
  let offsets = ref [ (0, Durable.wal_offset wal) ] in
  List.iteri
    (fun i op ->
      apply_op ~wal db engine op;
      apply_op rdb rengine op;
      states := (i + 1, observe rdb rengine) :: !states;
      offsets := (i + 1, Durable.wal_offset wal) :: !offsets)
    trace;
  let seg_name = Filename.basename (Durable.current_segment wal) in
  Durable.close wal;
  let frng = Prng.create (seed * 7919) in
  List.iteri
    (fun i _ ->
      let k = i + 1 in
      let before = List.assoc (k - 1) !offsets in
      let after = List.assoc k !offsets in
      if after > before then begin
        let copy = fresh_dir (Printf.sprintf "%s-k%d" tag k) in
        copy_dir dir copy;
        let fault = Resilient.Disk_fault.draw frng ~protect:before ~size:after in
        Resilient.Disk_fault.apply ~path:(Filename.concat copy seg_name) fault;
        let t, rdb', rengine', report =
          recover_exn ~ctx:(Printf.sprintf "%s k%d" tag k) copy
        in
        Alcotest.check obs_t
          (Format.asprintf "%s k%d (%a): recovered == previous boundary" tag k
             Resilient.Disk_fault.pp fault)
          (List.assoc (k - 1) !states)
          (observe rdb' rengine');
        (match fault with
        | Resilient.Disk_fault.Lost_tail _ ->
          (* Cut exactly on the boundary: a clean (shorter) tail. *)
          ()
        | _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s k%d: truncation reported" tag k)
            true
            (report.Durable.truncation <> None));
        Durable.close t;
        (* Recovering a recovered directory must be stable: same state,
           clean tail (the checkpoint quarantined the torn bytes). *)
        let t2, rdb2, rengine2, report2 =
          recover_exn ~ctx:(Printf.sprintf "%s k%d again" tag k) copy
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s k%d: second recovery clean" tag k)
          true
          (report2.Durable.truncation = None);
        Alcotest.check obs_t
          (Printf.sprintf "%s k%d: second recovery stable" tag k)
          (observe rdb' rengine') (observe rdb2 rengine2);
        Durable.close t2;
        rm_rf copy
      end)
    trace;
  rm_rf dir

let test_torn_tails () =
  run_torn_tails ~seed:chaos_seed ~backend:Database.Row ~consume:true ();
  run_torn_tails ~seed:chaos_seed ~backend:Database.Columnar ~consume:false ()

(* A deterministic two-query coordination: q1 waits, q2 closes the
   cycle and fires the pair. *)
let cycle_pair () =
  let q name mine theirs =
    Query.make ~name
      ~post:[ atom "R" [ cs theirs; var "y" ] ]
      ~head:[ atom "R" [ cs mine; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  (q "q1" "g0" "g1", q "q2" "g1" "g0")

let setup_cycle dir =
  let wal, db, engine =
    Durable.create_engine ~eager:true
      (Durable.config ~fsync:Durable.Always ~snapshot_every:0 dir)
  in
  seed_store ~wal db;
  let q1, q2 = cycle_pair () in
  let boundary0 = Durable.wal_offset wal in
  (match Online.submit engine q1 with
  | Online.Pending -> ()
  | r ->
    Alcotest.failf "q1 should pend, got %s"
      (match r with
      | Online.Coordinated _ -> "coordinated"
      | Online.Rejected_unsafe _ -> "rejected"
      | Online.Pending -> "pending"));
  let boundary1 = Durable.wal_offset wal in
  let state1 = observe db engine in
  (match Online.submit engine q2 with
  | Online.Coordinated _ -> ()
  | _ -> Alcotest.fail "q2 should fire the pair");
  let boundary2 = Durable.wal_offset wal in
  let state2 = observe db engine in
  let seg = Durable.current_segment wal in
  Durable.close wal;
  (seg, boundary0, boundary1, boundary2, state1, state2)

(* Cutting between complete records of a multi-record group must drop
   the whole group: a fired set either retires durably or never
   happened — the no-double-spend half of the contract. *)
let test_uncommitted_group () =
  let dir = fresh_dir "uncommitted" in
  let seg, _, b1, b2, state1, _ = setup_cycle dir in
  let ic = open_in_bin seg in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* First record of the final group: length prefix + lsn/kind/payload
     + crc. *)
  let payload_len =
    Int32.to_int (String.get_int32_le data b1) land 0xFFFFFFFF
  in
  let cut = b1 + 4 + 8 + 1 + payload_len + 4 in
  Alcotest.(check bool) "cut strictly inside the group" true (cut < b2);
  Resilient.Disk_fault.apply ~path:seg
    (Resilient.Disk_fault.Torn_write { keep = cut });
  let t, rdb, rengine, report = recover_exn ~ctx:"uncommitted" dir in
  (match report.Durable.truncation with
  | Some tr ->
    Alcotest.(check string)
      "reason" "trailing uncommitted group"
      (Durable.corruption_to_string tr.Durable.reason)
  | None -> Alcotest.fail "expected a truncation");
  Alcotest.check obs_t "whole group dropped" state1 (observe rdb rengine);
  Durable.close t;
  rm_rf dir

(* A garbage length prefix must read as corruption, not as an attempt
   to allocate a 2 GB record. *)
let test_garbage_length () =
  let dir = fresh_dir "garbage-len" in
  let seg, _, _, _, _, state2 = setup_cycle dir in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 seg in
  output_string oc "\xff\xff\xff\x7fjunkjunkjunkjunkjunk";
  close_out oc;
  let t, rdb, rengine, report = recover_exn ~ctx:"garbage-len" dir in
  (match report.Durable.truncation with
  | Some tr ->
    Alcotest.(check string)
      "reason" "garbage length prefix"
      (Durable.corruption_to_string tr.Durable.reason)
  | None -> Alcotest.fail "expected a truncation");
  Alcotest.check obs_t "valid prefix survives" state2 (observe rdb rengine);
  Durable.close t;
  rm_rf dir

(* A flipped byte inside the tail group fails its checksum. *)
let test_bad_crc () =
  let dir = fresh_dir "bad-crc" in
  let seg, _, b1, b2, state1, _ = setup_cycle dir in
  Resilient.Disk_fault.apply ~path:seg
    (Resilient.Disk_fault.Bit_flip { offset = (b1 + b2) / 2; mask = 0x10 });
  let t, rdb, rengine, report = recover_exn ~ctx:"bad-crc" dir in
  (match report.Durable.truncation with
  | Some tr ->
    Alcotest.(check bool)
      "reason is a checksum or structure failure" true
      (tr.Durable.reason = Durable.Bad_crc
      || tr.Durable.reason = Durable.Bad_length
      || tr.Durable.reason = Durable.Short_record)
  | None -> Alcotest.fail "expected a truncation");
  Alcotest.check obs_t "tail group dropped" state1 (observe rdb rengine);
  Durable.close t;
  rm_rf dir

(* ------------------------- snapshot protocol ---------------------- *)

(* Two forced snapshots, then the newest is corrupted: recovery must
   skip it with a reason and fall back to the older snapshot plus WAL
   replay — bit rot in one snapshot loses nothing. *)
let test_snapshot_fallback () =
  let dir = fresh_dir "snap-fallback" in
  let trace = gen_trace (Prng.create chaos_seed) 15 in
  let wal, db, engine =
    Durable.create_engine ~eager:true ~consume:true
      (Durable.config ~fsync:Durable.Always ~snapshot_every:0 dir)
  in
  seed_store ~wal db;
  let rdb, rengine = mk_reference ~backend:Database.Row ~eager:true ~consume:true in
  List.iteri
    (fun i op ->
      apply_op ~wal db engine op;
      apply_op rdb rengine op;
      if i = 4 || i = 9 then
        match Durable.snapshot wal with
        | Ok () -> ()
        | Error why -> Alcotest.failf "snapshot failed: %s" why)
    trace;
  Durable.close wal;
  let snaps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".img")
    |> List.sort String.compare
  in
  Alcotest.(check int) "two snapshots retained" 2 (List.length snaps);
  let newest = Filename.concat dir (List.nth snaps 1) in
  Resilient.Disk_fault.apply ~path:newest
    (Resilient.Disk_fault.Bit_flip { offset = 40; mask = 0x01 });
  let t, rdb', rengine', report = recover_exn ~ctx:"snap-fallback" dir in
  Alcotest.(check int)
    "corrupt snapshot skipped" 1
    (List.length report.Durable.snapshots_skipped);
  Alcotest.(check bool)
    "older snapshot loaded" true
    (report.Durable.snapshot_loaded <> None);
  Alcotest.check obs_t "state == reference" (observe rdb rengine)
    (observe rdb' rengine');
  Durable.close t;
  rm_rf dir

(* ---------------- snapshot-write failure injection ---------------- *)

let eacces = Unix.Unix_error (Unix.EACCES, "open", "snap")
let sorted_files dir = Sys.readdir dir |> Array.to_list |> List.sort String.compare

(* A failed snapshot write (full disk, EACCES) must surface as [Error],
   must not rotate the segment, and must not prune the journal it
   failed to supersede — recovery then replays the retained segments
   as if the snapshot was never attempted. *)
let test_snapshot_failure_retains_journal () =
  let dir = fresh_dir "snap-fail" in
  let trace = gen_trace (Prng.create chaos_seed) 12 in
  let wal, db, engine =
    Durable.create_engine ~eager:true ~consume:true
      (Durable.config ~fsync:Durable.Always ~snapshot_every:0 dir)
  in
  seed_store ~wal db;
  let rdb, rengine =
    mk_reference ~backend:Database.Row ~eager:true ~consume:true
  in
  let run ops =
    List.iter
      (fun op ->
        apply_op ~wal db engine op;
        apply_op rdb rengine op)
      ops
  in
  run (List.filteri (fun i _ -> i < 6) trace);
  (match Durable.snapshot wal with
  | Ok () -> ()
  | Error why -> Alcotest.failf "healthy snapshot failed: %s" why);
  let seg_after_good = Durable.current_segment wal in
  run (List.filteri (fun i _ -> i >= 6) trace);
  let before = sorted_files dir in
  Durable.inject_snapshot_failure (Some eacces);
  (match Durable.snapshot wal with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "injected snapshot failure must surface as Error");
  Durable.inject_snapshot_failure None;
  Alcotest.(check (list string))
    "no rotation, no prune, no partial file" before (sorted_files dir);
  Alcotest.(check string)
    "segment unrotated" seg_after_good
    (Durable.current_segment wal);
  (* The session keeps journaling; recovery replays the retained
     segments exactly. *)
  run (gen_trace (Prng.create (chaos_seed + 3)) 4);
  Durable.close wal;
  let t, rdb', rengine', report = recover_exn ~ctx:"snap-fail" dir in
  Alcotest.(check bool)
    "clean tail" true
    (report.Durable.truncation = None);
  Alcotest.check obs_t "recovered == reference" (observe rdb rengine)
    (observe rdb' rengine');
  Durable.close t;
  rm_rf dir

(* Recovery's own checkpoint snapshot failing must not lose state: with
   a clean tail recovery succeeds, reports the failure, and prunes
   nothing — the pre-existing files stay authoritative for the retry. *)
let test_checkpoint_failure_clean_tail () =
  let dir = fresh_dir "ckpt-fail" in
  let _, _, _, _, _, state2 = setup_cycle dir in
  let before = sorted_files dir in
  Durable.inject_snapshot_failure (Some eacces);
  let t, rdb, rengine, report = recover_exn ~ctx:"ckpt-clean" dir in
  Durable.inject_snapshot_failure None;
  (match report.Durable.checkpoint_failed with
  | Some _ -> ()
  | None -> Alcotest.fail "checkpoint failure must be reported");
  Alcotest.check obs_t "clean-tail recovery state intact" state2
    (observe rdb rengine);
  let after = sorted_files dir in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " retained") true (List.mem f after))
    before;
  Durable.close t;
  (* The fault cleared, the same directory checkpoints normally. *)
  let t2, rdb2, rengine2, report2 = recover_exn ~ctx:"ckpt-retry" dir in
  Alcotest.(check bool)
    "retry checkpoint succeeds" true
    (report2.Durable.checkpoint_failed = None);
  Alcotest.check obs_t "retry state stable" state2 (observe rdb2 rengine2);
  Durable.close t2;
  rm_rf dir

(* With a torn tail the checkpoint is what quarantines the corrupt
   bytes; if it cannot be written, recovery must refuse rather than
   append new groups behind bytes a later recovery will truncate. *)
let test_checkpoint_failure_torn_tail () =
  let dir = fresh_dir "ckpt-torn" in
  let seg, _, b1, b2, _, _ = setup_cycle dir in
  Resilient.Disk_fault.apply ~path:seg
    (Resilient.Disk_fault.Bit_flip { offset = (b1 + b2) / 2; mask = 0x10 });
  Durable.inject_snapshot_failure (Some eacces);
  (match Durable.recover (Durable.config dir) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn tail + failed checkpoint must refuse");
  Durable.inject_snapshot_failure None;
  let t, _, _, report = recover_exn ~ctx:"ckpt-torn-retry" dir in
  Alcotest.(check bool)
    "truncation quarantined on retry" true
    (report.Durable.truncation <> None);
  Durable.close t;
  rm_rf dir

(* Online.withdraw: a pending entry leaves the pool unsatisfied, double
   or unknown withdrawal is a polite [false], and the journaled
   eviction replays. *)
let test_withdraw_durable () =
  let dir = fresh_dir "withdraw" in
  let wal, db, engine =
    Durable.create_engine ~eager:true
      (Durable.config ~fsync:Durable.Always ~snapshot_every:0 dir)
  in
  seed_store ~wal db;
  let q1, q2 = cycle_pair () in
  let id1 = Online.next_id engine in
  (match Online.submit engine q1 with
  | Online.Pending -> ()
  | _ -> Alcotest.fail "q1 should pend");
  Alcotest.(check bool) "withdraw live id" true (Online.withdraw engine id1);
  Alcotest.(check bool)
    "withdraw again is false" false
    (Online.withdraw engine id1);
  Alcotest.(check bool)
    "withdraw unknown id is false" false
    (Online.withdraw engine 999);
  Alcotest.(check int) "pool empty" 0 (Online.pending_count engine);
  (match Online.submit engine q2 with
  | Online.Pending -> ()
  | _ -> Alcotest.fail "q2 must pend once q1 is withdrawn");
  Alcotest.(check int) "nothing fired" 0 (Online.total_coordinated engine);
  let live = observe db engine in
  Durable.close wal;
  let t, rdb', rengine', report = recover_exn ~ctx:"withdraw" dir in
  Alcotest.(check bool)
    "clean tail" true
    (report.Durable.truncation = None);
  Alcotest.check obs_t "withdrawal replayed" live (observe rdb' rengine');
  Durable.close t;
  rm_rf dir

(* A crash mid-snapshot leaves only a .tmp; recovery removes it and
   reports it, losing nothing. *)
let test_tmp_cleanup () =
  let dir = fresh_dir "tmp-clean" in
  let _, _, _, _, _, state2 = setup_cycle dir in
  let oc = open_out_bin (Filename.concat dir "snap-00000000000000000099.img.tmp") in
  output_string oc "half a snapshot";
  close_out oc;
  let t, rdb, rengine, report = recover_exn ~ctx:"tmp-clean" dir in
  Alcotest.(check (list string))
    "tmp reported" [ "snap-00000000000000000099.img.tmp" ]
    report.Durable.tmp_cleaned;
  Alcotest.check obs_t "state intact" state2 (observe rdb rengine);
  Durable.close t;
  rm_rf dir

(* ------------------------ unit-level checks ----------------------- *)

let test_crc32_vector () =
  Alcotest.(check int) "check value" 0xCBF43926 (Durable.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Durable.Crc32.string "")

let test_fsync_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Durable.fsync_policy_to_string p)
        true
        (Durable.fsync_policy_of_string (Durable.fsync_policy_to_string p)
        = Some p))
    [ Durable.Always; Durable.Never; Durable.Every_n 1; Durable.Every_n 64 ];
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Durable.fsync_policy_of_string s = None))
    [ "sometimes"; "every-n:0"; "every-n:-3"; "every-n:"; "every-n:x" ]

let test_create_refuses_existing () =
  let dir = fresh_dir "refuse" in
  let wal, _, _ = Durable.create_engine (Durable.config dir) in
  Durable.close wal;
  (match Durable.create_engine (Durable.config dir) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create_engine must refuse an existing WAL");
  rm_rf dir

let test_recover_empty_dir () =
  let dir = fresh_dir "empty" in
  (match Durable.recover (Durable.config dir) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recover of an empty dir must be an Error");
  rm_rf dir;
  match Durable.recover (Durable.config (Filename.concat scratch_base "ewal-nonexistent")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recover of a missing dir must be an Error"

(* The relaxed fsync policies journal the same bytes — only the sync
   cadence differs — so recovery from a flushed file is identical. *)
let test_fsync_policies_recover () =
  List.iter
    (fun fsync ->
      let dir = fresh_dir "policy" in
      let trace = gen_trace (Prng.create chaos_seed) 8 in
      let wal, db, engine =
        Durable.create_engine ~eager:true
          (Durable.config ~fsync ~snapshot_every:3 dir)
      in
      seed_store ~wal db;
      let rdb, rengine =
        mk_reference ~backend:Database.Row ~eager:true ~consume:false
      in
      List.iter
        (fun op ->
          apply_op ~wal db engine op;
          apply_op rdb rengine op)
        trace;
      Durable.close wal;
      let t, rdb', rengine', _ =
        recover_exn ~ctx:(Durable.fsync_policy_to_string fsync) dir
      in
      Alcotest.check obs_t
        (Durable.fsync_policy_to_string fsync)
        (observe rdb rengine) (observe rdb' rengine');
      Durable.close t;
      rm_rf dir)
    [ Durable.Never; Durable.Every_n 2 ]

let test_open_or_recover () =
  let dir = fresh_dir "open-or" in
  (match Durable.open_or_recover (Durable.config dir) with
  | Ok (t, db, engine, None) ->
    seed_store ~wal:t db;
    let q1, q2 = cycle_pair () in
    ignore (Online.submit engine q1);
    ignore (Online.submit engine q2);
    Durable.close t
  | Ok (_, _, _, Some _) -> Alcotest.fail "fresh dir must not recover"
  | Error msg -> Alcotest.fail msg);
  (match Durable.open_or_recover (Durable.config dir) with
  | Ok (t, _, engine, Some report) ->
    Alcotest.(check bool)
      "clean tail" true
      (report.Durable.truncation = None);
    Alcotest.(check int) "pair fired" 2 (Online.total_coordinated engine);
    Durable.close t
  | Ok (_, _, _, None) -> Alcotest.fail "existing dir must recover"
  | Error msg -> Alcotest.fail msg);
  rm_rf dir

let suite =
  [
    Alcotest.test_case "crc32 known vector" `Quick test_crc32_vector;
    Alcotest.test_case "fsync policy strings round-trip" `Quick
      test_fsync_policy_strings;
    Alcotest.test_case "create_engine refuses an existing WAL" `Quick
      test_create_refuses_existing;
    Alcotest.test_case "recover needs some valid state" `Quick
      test_recover_empty_dir;
    Alcotest.test_case "open_or_recover round trip" `Quick test_open_or_recover;
    Alcotest.test_case "relaxed fsync policies recover equally" `Quick
      test_fsync_policies_recover;
    Alcotest.test_case "differential: every crash point recovers exactly"
      `Quick test_crash_points;
    Alcotest.test_case "differential: torn tails recover to the previous op"
      `Quick test_torn_tails;
    Alcotest.test_case "uncommitted group is dropped whole" `Quick
      test_uncommitted_group;
    Alcotest.test_case "garbage length prefix is typed corruption" `Quick
      test_garbage_length;
    Alcotest.test_case "bit flip fails the checksum" `Quick test_bad_crc;
    Alcotest.test_case "corrupt snapshot falls back to the previous one"
      `Quick test_snapshot_fallback;
    Alcotest.test_case "failed snapshot surfaces and retains the journal"
      `Quick test_snapshot_failure_retains_journal;
    Alcotest.test_case "failed recovery checkpoint keeps old files (clean tail)"
      `Quick test_checkpoint_failure_clean_tail;
    Alcotest.test_case "failed recovery checkpoint refuses on a torn tail"
      `Quick test_checkpoint_failure_torn_tail;
    Alcotest.test_case "withdraw retires nothing and replays" `Quick
      test_withdraw_durable;
    Alcotest.test_case "interrupted snapshot tmp is cleaned" `Quick
      test_tmp_cleanup;
  ]
