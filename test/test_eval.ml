(* Conjunctive-query evaluation: unit cases plus randomized agreement
   with the naive reference evaluator. *)

open Relational
open Helpers

let q atoms = Cq.make atoms

let test_single_atom () =
  let db = flights_db () in
  let query = q [ atom "F" [ var "x"; cs "Zurich" ] ] in
  match Eval.find_first db query with
  | None -> Alcotest.fail "expected a result"
  | Some b ->
    let fid = Eval.Binding.find "x" b in
    Alcotest.(check bool) "zurich flight" true
      (Value.equal fid (vi 101) || Value.equal fid (vi 102))

let test_join () =
  let db = flights_db () in
  (* Destination with both a flight and a hotel. *)
  let query =
    q [ atom "F" [ var "f"; var "d" ]; atom "H" [ var "h"; var "d" ] ]
  in
  let results = Eval.find_all db query in
  (* Zurich: 2 flights x 1 hotel; Paris: 1 x 1; Athens: 1 x 1 = 4. *)
  Alcotest.(check int) "join size" 4 (List.length results);
  List.iter
    (fun b ->
      let d = Eval.Binding.find "d" b in
      Alcotest.(check bool) "dest consistent" true
        (List.exists (Value.equal d) [ vs "Zurich"; vs "Paris"; vs "Athens" ]))
    results

let test_unsatisfiable () =
  let db = flights_db () in
  Alcotest.(check bool) "no Rome" false
    (Eval.satisfiable db (q [ atom "F" [ var "x"; cs "Rome" ] ]))

let test_empty_query () =
  let db = flights_db () in
  match Eval.find_first db (q []) with
  | Some b -> Alcotest.(check int) "empty binding" 0 (Eval.Binding.cardinal b)
  | None -> Alcotest.fail "empty query must succeed"

let test_repeated_variable () =
  let db = Database.create () in
  ignore (Database.create_table' db "E" [ "a"; "b" ]);
  Database.insert db "E" [ vi 1; vi 2 ];
  Database.insert db "E" [ vi 3; vi 3 ];
  let results = Eval.find_all db (q [ atom "E" [ var "x"; var "x" ] ]) in
  Alcotest.(check int) "diagonal only" 1 (List.length results);
  Alcotest.check value_t "bound to 3" (vi 3)
    (Eval.Binding.find "x" (List.hd results))

let test_limit () =
  let db = flights_db () in
  let results = Eval.find_all ~limit:1 db (q [ atom "F" [ var "x"; var "y" ] ]) in
  Alcotest.(check int) "limit respected" 1 (List.length results)

let test_count () =
  let db = flights_db () in
  Alcotest.(check int) "count flights" 4
    (Eval.count db (q [ atom "F" [ var "x"; var "y" ] ]))

let test_unknown_relation () =
  let db = flights_db () in
  Alcotest.check_raises "unknown" (Eval.Unknown_relation "Nope") (fun () ->
      ignore (Eval.find_first db (q [ atom "Nope" [ var "x" ] ])))

let test_arity_mismatch () =
  let db = flights_db () in
  Alcotest.check_raises "arity" (Eval.Arity_mismatch ("F", 1, 2)) (fun () ->
      ignore (Eval.find_first db (q [ atom "F" [ var "x" ] ])))

let test_probe_counting () =
  let db = flights_db () in
  Database.reset_probes db;
  ignore (Eval.find_first db (q [ atom "F" [ var "x"; var "y" ] ]));
  ignore (Eval.find_all db (q [ atom "F" [ var "x"; var "y" ] ]));
  ignore (Eval.satisfiable db (q [ atom "F" [ var "x"; var "y" ] ]));
  Alcotest.(check int) "three probes" 3 (Database.probes db)

let test_distinct_projections () =
  let db = flights_db () in
  let s =
    Eval.distinct_projections db (q [ atom "F" [ var "x"; var "d" ] ]) [ "d" ]
  in
  Alcotest.(check int) "three destinations" 3 (Tuple.Set.cardinal s);
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Eval.distinct_projections: zz not in query") (fun () ->
      ignore (Eval.distinct_projections db (q [ atom "F" [ var "x"; var "d" ] ]) [ "zz" ]))

let test_check_ground () =
  let db = flights_db () in
  Alcotest.(check bool) "present" true
    (Eval.check_ground db (q [ atom "F" [ ci 101; cs "Zurich" ] ]));
  Alcotest.(check bool) "absent" false
    (Eval.check_ground db (q [ atom "F" [ ci 101; cs "Paris" ] ]))

let test_explain_plan () =
  let db = Database.create () in
  ignore (Database.create_table' db "Edge" [ "a"; "b" ]);
  ignore (Database.create_table' db "Mark" [ "a" ]);
  for i = 0 to 99 do
    Database.insert db "Edge" [ vi i; vi ((i + 1) mod 100) ]
  done;
  Database.insert db "Mark" [ vi 7 ];
  (* Adversarial syntactic order: big scan first, selective atoms last. *)
  let query =
    q
      [
        atom "Edge" [ var "x"; var "y" ];
        atom "Edge" [ var "y"; var "z" ];
        atom "Mark" [ var "z" ];
      ]
  in
  let plan = Eval.explain db query in
  Alcotest.(check int) "three steps" 3 (List.length plan);
  (* The planner has no constant to index on, so the small Mark scan
     goes first, then the Edge atoms walk through bound columns. *)
  (match plan with
  | first :: rest ->
    Alcotest.(check string) "mark first" "Mark" first.Eval.atom.Cq.rel;
    Alcotest.(check bool) "mark scanned" true (first.Eval.access = `Scan);
    List.iter
      (fun step ->
        Alcotest.(check bool) "edges via bound index" true
          (match step.Eval.access with `Bound_index _ -> true | _ -> false))
      rest
  | [] -> Alcotest.fail "plan empty");
  (* A constant column shows as an index access with its estimate. *)
  let plan2 = Eval.explain db (q [ atom "Edge" [ ci 3; var "y" ] ]) in
  (match plan2 with
  | [ { Eval.access = `Index (0, v); estimated_rows = 1; _ } ] ->
    Alcotest.check value_t "index value" (vi 3) v
  | _ -> Alcotest.fail "expected single index step");
  (* Ground atoms become membership tests; rendering works. *)
  let plan3 = Eval.explain db (q [ atom "Mark" [ ci 7 ] ]) in
  (match plan3 with
  | [ { Eval.access = `Membership; _ } ] -> ()
  | _ -> Alcotest.fail "expected membership");
  Alcotest.(check bool) "pp_plan renders" true
    (String.length (Format.asprintf "%a" Eval.pp_plan plan) > 0)

(* Randomized agreement with the naive evaluator on small instances. *)

let gen_instance =
  QCheck.Gen.(
    let* nr = int_range 1 6 in
    let* ns = int_range 0 6 in
    let* r_rows = list_size (return nr) (pair (int_range 0 3) (int_range 0 3)) in
    let* s_rows = list_size (return ns) (int_range 0 3) in
    let gen_term =
      oneof
        [
          map (fun i -> Term.Var (Printf.sprintf "v%d" i)) (int_range 0 3);
          map Term.int (int_range 0 3);
        ]
    in
    let gen_atom =
      oneof
        [
          map (fun (a, b) -> { Cq.rel = "R"; args = [| a; b |] }) (pair gen_term gen_term);
          map (fun a -> { Cq.rel = "S"; args = [| a |] }) gen_term;
        ]
    in
    let* atoms = list_size (int_range 1 4) gen_atom in
    return (r_rows, s_rows, atoms))

let build_instance (r_rows, s_rows, atoms) =
  let db = Database.create () in
  ignore (Database.create_table' db "R" [ "a"; "b" ]);
  ignore (Database.create_table' db "S" [ "a" ]);
  List.iter (fun (a, b) -> Database.insert db "R" [ vi a; vi b ]) r_rows;
  List.iter (fun a -> Database.insert db "S" [ vi a ]) s_rows;
  (db, Cq.make atoms)

let valuations_equal l1 l2 =
  let norm l = List.sort_uniq (Eval.Binding.compare Value.compare) l in
  List.equal (fun a b -> Eval.Binding.compare Value.compare a b = 0) (norm l1)
    (norm l2)

let instance_arb =
  QCheck.make
    ~print:(fun (_, _, atoms) -> Format.asprintf "%a" Cq.pp (Cq.make atoms))
    gen_instance

let suite =
  [
    Alcotest.test_case "single atom" `Quick test_single_atom;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable;
    Alcotest.test_case "empty query" `Quick test_empty_query;
    Alcotest.test_case "repeated variable" `Quick test_repeated_variable;
    Alcotest.test_case "limit" `Quick test_limit;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "probe counting" `Quick test_probe_counting;
    Alcotest.test_case "distinct projections" `Quick test_distinct_projections;
    Alcotest.test_case "explain plan" `Quick test_explain_plan;
    Alcotest.test_case "check ground" `Quick test_check_ground;
    qtest ~count:300 "backtracking join = naive semantics" instance_arb
      (fun inst ->
        let db, query = build_instance inst in
        valuations_equal (Eval.find_all db query) (Eval.Naive.find_all db query));
    qtest ~count:200 "find_first consistent with find_all" instance_arb
      (fun inst ->
        let db, query = build_instance inst in
        match (Eval.find_first db query, Eval.find_all db query) with
        | None, [] -> true
        | Some _, _ :: _ -> true
        | _ -> false);
    qtest ~count:200 "count = length find_all" instance_arb (fun inst ->
        let db, query = build_instance inst in
        Eval.count db query = List.length (Eval.find_all db query));
    qtest ~count:300 "compiled = interpreted" instance_arb (fun inst ->
        let db, query = build_instance inst in
        let interpreted = Eval.find_all ~plan:Eval.Greedy_indexed db query in
        valuations_equal interpreted (Eval.find_all ~plan:Eval.Compiled db query)
        && valuations_equal interpreted
             (Eval.find_all ~plan:Eval.Compiled_nocache db query));
  ]
