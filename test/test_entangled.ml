(* The entangled core: substitutions/unification, query well-formedness,
   the parser, coordination graphs, safety/uniqueness, combine/ground,
   and the independent Definition-1 validator. *)

open Relational
open Entangled
open Helpers

(* ----------------------------- Subst ------------------------------ *)

let test_unify_terms () =
  let s = Subst.empty in
  (match Subst.unify_terms s (var "x") (ci 1) with
  | None -> Alcotest.fail "var/const must unify"
  | Some s -> Alcotest.check term_t "resolved" (ci 1) (Subst.resolve s (var "x")));
  Alcotest.(check bool) "const clash" true
    (Subst.unify_terms s (ci 1) (ci 2) = None);
  Alcotest.(check bool) "const same" true
    (Subst.unify_terms s (ci 1) (ci 1) <> None)

let test_unify_chain () =
  (* x = y, y = z, z = 5 resolves x to 5. *)
  let s = Subst.empty in
  let s = Option.get (Subst.unify_terms s (var "x") (var "y")) in
  let s = Option.get (Subst.unify_terms s (var "y") (var "z")) in
  let s = Option.get (Subst.unify_terms s (var "z") (ci 5)) in
  Alcotest.check term_t "x -> 5" (ci 5) (Subst.resolve s (var "x"));
  (* Late clash through a chain is detected. *)
  Alcotest.(check bool) "clash via chain" true
    (Subst.unify_terms s (var "x") (ci 6) = None)

let test_unify_atoms () =
  let a = atom "R" [ cs "C"; var "x" ] and b = atom "R" [ cs "C"; var "y" ] in
  (match Subst.unify_atoms Subst.empty a b with
  | None -> Alcotest.fail "unifiable"
  | Some s ->
    Alcotest.check term_t "x ~ y" (Subst.resolve s (var "x"))
      (Subst.resolve s (var "y")));
  Alcotest.(check bool) "different rel" true
    (Subst.unify_atoms Subst.empty a (atom "Q" [ cs "C"; var "y" ]) = None);
  Alcotest.(check bool) "different arity" true
    (Subst.unify_atoms Subst.empty a (atom "R" [ cs "C" ]) = None);
  Alcotest.(check bool) "const clash" true
    (Subst.unify_atoms Subst.empty (atom "R" [ cs "C"; ci 1 ])
       (atom "R" [ cs "C"; ci 2 ])
    = None);
  (* Repeated variable: R(x, x) vs R(1, 2) must fail. *)
  Alcotest.(check bool) "repeated var" true
    (Subst.unify_atoms Subst.empty (atom "R" [ var "x"; var "x" ])
       (atom "R" [ ci 1; ci 2 ])
    = None)

let test_subst_apply () =
  let s = Option.get (Subst.unify_terms Subst.empty (var "x") (ci 7)) in
  let q = Cq.make [ atom "F" [ var "x"; var "y" ] ] in
  let q' = Subst.apply_cq s q in
  Alcotest.(check string) "applied" "F(7, y)" (Format.asprintf "%a" Cq.pp q')

(* qcheck: unification soundness on random atom pairs. *)
let gen_atom =
  QCheck.Gen.(
    let gen_term =
      oneof
        [
          map (fun i -> Term.Var (Printf.sprintf "v%d" i)) (int_range 0 3);
          map Term.int (int_range 0 2);
        ]
    in
    let* rel = oneofl [ "R"; "Q" ] in
    let* args = list_size (int_range 1 3) gen_term in
    return { Cq.rel; args = Array.of_list args })

let atom_arb =
  QCheck.make ~print:(Format.asprintf "%a" Cq.pp_atom) gen_atom

(* ----------------------------- Query ------------------------------ *)

let test_query_make () =
  let q =
    Query.make ~name:"q" ~post:[ atom "R" [ cs "C"; var "x" ] ]
      ~head:[ atom "R" [ cs "G"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  Alcotest.(check (list string)) "vars" [ "x" ] (Query.variables q);
  Alcotest.(check (list string)) "answer rels" [ "R" ] (Query.answer_relations q);
  Alcotest.(check (list string)) "body rels" [ "F" ] (Query.body_relations q);
  Alcotest.(check bool) "range restricted" true (Query.range_restricted q);
  Alcotest.check_raises "empty head" (Invalid_argument "Query.make: empty head")
    (fun () -> ignore (Query.make ~post:[] ~head:[] []))

let test_query_rename () =
  let q =
    Query.make ~post:[ atom "R" [ var "x" ] ] ~head:[ atom "S" [ var "x" ] ]
      [ atom "F" [ var "x" ] ]
  in
  let qs = Query.rename_set [ q; q ] in
  Alcotest.(check (list string)) "renamed 0" [ "q0.x" ] (Query.variables qs.(0));
  Alcotest.(check (list string)) "renamed 1" [ "q1.x" ] (Query.variables qs.(1));
  Alcotest.(check string) "default name" "q0" qs.(0).Query.name

let test_query_well_formed () =
  let db = flights_db () in
  let good =
    Query.make ~post:[] ~head:[ atom "R" [ var "x" ] ] [ atom "F" [ var "x"; var "d" ] ]
  in
  Alcotest.(check bool) "good" true (Query.well_formed db good = Ok ());
  let bad_body =
    Query.make ~post:[] ~head:[ atom "R" [ var "x" ] ] [ atom "Nope" [ var "x" ] ]
  in
  Alcotest.(check bool) "bad body rel" true (Result.is_error (Query.well_formed db bad_body));
  let clash =
    Query.make ~post:[] ~head:[ atom "F" [ var "x"; var "d" ] ] []
  in
  Alcotest.(check bool) "answer rel collides" true
    (Result.is_error (Query.well_formed db clash));
  let arity =
    Query.make ~post:[ atom "R" [ var "x" ] ] ~head:[ atom "R" [ var "x"; var "y" ] ] []
  in
  Alcotest.(check bool) "inconsistent arity" true
    (Result.is_error (Query.well_formed db arity))

(* ----------------------------- Parser ----------------------------- *)

let test_parse_query () =
  let q =
    Parser.parse_query
      "query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich)."
  in
  Alcotest.(check string) "name" "gwyneth" q.Query.name;
  Alcotest.(check int) "posts" 1 (List.length q.Query.post);
  Alcotest.(check int) "heads" 1 (List.length q.Query.head);
  Alcotest.(check int) "body" 1 (List.length q.Query.body.Cq.atoms)

let test_parse_conventions () =
  let q = Parser.parse_query "{ } R(x, 'New York', true, 42, Cap) :- F(x)." in
  match (List.hd q.Query.head).Cq.args with
  | [| a; b; c; d; e |] ->
    Alcotest.check term_t "var" (var "x") a;
    Alcotest.check term_t "quoted" (cs "New York") b;
    Alcotest.check term_t "bool" (cst (Value.bool true)) c;
    Alcotest.check term_t "int" (ci 42) d;
    Alcotest.check term_t "capitalized const" (cs "Cap") e
  | _ -> Alcotest.fail "arity"

let test_parse_empty_body () =
  let q1 = Parser.parse_query "{ R(a1) } C(1)." in
  let q2 = Parser.parse_query "{ R(a1) } C(1) :- ." in
  Alcotest.(check int) "no body" 0 (List.length q1.Query.body.Cq.atoms);
  Alcotest.(check int) "explicit empty body" 0 (List.length q2.Query.body.Cq.atoms)

let test_parse_program () =
  let db = Database.create () in
  let qs = figure1_queries db in
  Alcotest.(check int) "four queries" 4 (List.length qs);
  Alcotest.(check int) "flights loaded" 3
    (Relation.cardinal (Database.relation db "F"));
  Alcotest.(check (list string)) "names" [ "qC"; "qG"; "qJ"; "qW" ]
    (List.map (fun q -> q.Query.name) qs)

let test_parse_errors () =
  let bad_cases =
    [
      "query q: { R(x) }";                 (* missing head/dot *)
      "query q: { R(x) } :- F(x).";        (* empty head *)
      "fact F(x).";                        (* variable in fact *)
      "{ R( } S(x).";                      (* bad atom *)
      "query q: { R(x) } S(x) :- F(x)";    (* missing final dot *)
    ]
  in
  List.iter
    (fun src ->
      let raised =
        try
          ignore (Parser.parse_program ("table F(a). " ^ src));
          (try ignore (Parser.parse_query src); false with Parser.Syntax_error _ -> true)
        with Parser.Syntax_error _ -> true
      in
      Alcotest.(check bool) ("rejects: " ^ src) true raised)
    bad_cases

let test_parse_comments () =
  let p =
    Parser.parse_program
      "-- a comment\ntable F(a). -- trailing\nfact F(1).\n-- done"
  in
  Alcotest.(check int) "two statements" 2 (List.length p)

let test_query_to_string_roundtrip () =
  let src = "query g: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich)." in
  let q = Parser.parse_query src in
  let q' = Parser.parse_query (Parser.query_to_string q) in
  Alcotest.(check bool) "roundtrip" true (Query.equal q q');
  (* Lowercase string constants must come back as constants, not
     variables (they print quoted). *)
  let tricky =
    Query.make ~name:"t" ~post:[]
      ~head:[ atom "R" [ cs "u1"; var "x" ] ]
      [ atom "Posts" [ var "x"; cs "t4" ] ]
  in
  let tricky' = Parser.parse_query (Parser.query_to_string tricky) in
  Alcotest.(check bool) "lowercase constants survive" true
    (Query.equal tricky tricky');
  Alcotest.(check string) "quoted rendering" "'t4'"
    (Parser.value_to_syntax (Value.str "t4"));
  Alcotest.(check string) "bare rendering" "Zurich"
    (Parser.value_to_syntax (Value.str "Zurich"));
  Alcotest.(check string) "int rendering" "7"
    (Parser.value_to_syntax (Value.int 7))

(* ----------------------- Coordination graph ----------------------- *)

let test_compatible () =
  Alcotest.(check bool) "same rel, var/const" true
    (Coordination_graph.compatible (atom "R" [ cs "C"; var "x" ])
       (atom "R" [ cs "C"; var "y" ]));
  Alcotest.(check bool) "const clash" false
    (Coordination_graph.compatible (atom "R" [ cs "C"; var "x" ])
       (atom "R" [ cs "G"; var "y" ]));
  Alcotest.(check bool) "different rel" false
    (Coordination_graph.compatible (atom "R" [ var "x" ]) (atom "Q" [ var "x" ]));
  (* The paper's edge test is weaker than MGU existence. *)
  Alcotest.(check bool) "repeated var still compatible" true
    (Coordination_graph.compatible (atom "R" [ var "x"; var "x" ])
       (atom "R" [ ci 1; ci 2 ]))

let test_figure2_graph () =
  let db = Database.create () in
  let queries = Query.rename_set (figure1_queries db) in
  let g = Coordination_graph.build queries in
  (* Figure 2: qC->qG (1 edge), qG->qC (2), qJ->qC and qJ->qG, qW->qC and
     qW->qJ: 7 extended edges total. *)
  Alcotest.(check int) "extended edges" 7 (List.length g.extended);
  let expect_edge a b =
    Alcotest.(check bool)
      (Printf.sprintf "%d->%d" a b)
      true
      (Graphs.Digraph.mem_edge g.graph a b)
  in
  expect_edge 0 1;
  expect_edge 1 0;
  expect_edge 2 0;
  expect_edge 2 1;
  expect_edge 3 0;
  expect_edge 3 2;
  Alcotest.(check int) "collapsed edges" 6 (Graphs.Digraph.edge_count g.graph)

let test_post_targets () =
  let db = Database.create () in
  let queries = Query.rename_set (figure1_queries db) in
  let g = Coordination_graph.build queries in
  Alcotest.(check (list (pair int int))) "qC post 0 -> qG head 0" [ (1, 0) ]
    (Coordination_graph.post_targets g ~src:0 ~post_index:0)

let test_prune_unsatisfiable () =
  (* q0 posts into a head nobody offers; q1 depends on q0; q2 standalone. *)
  let queries =
    Query.rename_set
      [
        Query.make ~name:"a" ~post:[ atom "Z" [ ci 1 ] ] ~head:[ atom "A" [ ci 1 ] ] [];
        Query.make ~name:"b" ~post:[ atom "A" [ ci 1 ] ] ~head:[ atom "B" [ ci 1 ] ] [];
        Query.make ~name:"c" ~post:[] ~head:[ atom "C" [ ci 1 ] ] [];
      ]
  in
  let g = Coordination_graph.build queries in
  let alive = Array.make 3 true in
  Coordination_graph.prune_unsatisfiable g ~alive;
  Alcotest.(check (array bool)) "cascade" [| false; false; true |] alive

(* ----------------------------- Safety ----------------------------- *)

let test_safety_classify () =
  let db = Database.create () in
  let fig1 = Coordination_graph.build (Query.rename_set (figure1_queries db)) in
  Alcotest.(check bool) "figure 1 safe" true (Safety.is_safe fig1);
  Alcotest.(check bool) "figure 1 not unique" false (Safety.is_unique fig1);
  (* Add Gwyneth wanting Chris's flight: two heads R(C, _) exist?  No —
     unsafety needs one post with two candidate heads.  Build that
     directly: two users both offer R(C, _). *)
  let unsafe_set =
    Query.rename_set
      [
        Query.make ~name:"p" ~post:[ atom "R" [ cs "C"; var "x" ] ]
          ~head:[ atom "R" [ cs "P"; var "x" ] ] [];
        Query.make ~name:"c1" ~post:[] ~head:[ atom "R" [ cs "C"; var "y" ] ] [];
        Query.make ~name:"c2" ~post:[] ~head:[ atom "R" [ cs "C"; var "z" ] ] [];
      ]
  in
  let g = Coordination_graph.build unsafe_set in
  Alcotest.(check bool) "unsafe" false (Safety.is_safe g);
  Alcotest.(check (list (pair int int))) "witness" [ (0, 0) ] (Safety.unsafe_posts g);
  Alcotest.(check bool) "query 1 itself safe" true (Safety.is_safe_query g 1);
  Alcotest.(check bool) "classify" true (Safety.classify g = `Unsafe)

let test_uniqueness () =
  (* Mutual coordination: strongly connected, hence unique. *)
  let pairset =
    Query.rename_set
      [
        Query.make ~name:"a" ~post:[ atom "R" [ cs "B"; var "x" ] ]
          ~head:[ atom "R" [ cs "A"; var "x" ] ] [];
        Query.make ~name:"b" ~post:[ atom "R" [ cs "A"; var "y" ] ]
          ~head:[ atom "R" [ cs "B"; var "y" ] ] [];
      ]
  in
  let g = Coordination_graph.build pairset in
  Alcotest.(check bool) "safe" true (Safety.is_safe g);
  Alcotest.(check bool) "unique" true (Safety.is_unique g);
  Alcotest.(check bool) "classify" true (Safety.classify g = `Safe_unique);
  (* A single query with no posts is trivially safe and unique. *)
  let single =
    Query.rename_set [ Query.make ~post:[] ~head:[ atom "R" [ var "x" ] ] [] ]
  in
  Alcotest.(check bool) "singleton unique" true
    (Safety.classify (Coordination_graph.build single) = `Safe_unique)

(* ------------------------- Combine/Ground ------------------------- *)

let test_combine_figure1 () =
  let db = Database.create () in
  let queries = Query.rename_set (figure1_queries db) in
  let g = Coordination_graph.build queries in
  (* Chris + Guy unify; the combined body forces Paris. *)
  (match Combine.unify_set g ~members:[ 0; 1 ] with
  | Error f -> Alcotest.failf "unify failed: %a" (Combine.pp_failure queries) f
  | Ok subst ->
    let body = Combine.combined_body g ~members:[ 0; 1 ] subst in
    (match Eval.find_first db body with
    | None -> Alcotest.fail "combined body satisfiable"
    | Some b ->
      (* Chris's flight equals Guy's flight. *)
      let resolve v =
        match Subst.resolve subst (var v) with
        | Term.Var rep -> Eval.Binding.find rep b
        | Term.Const c -> c
      in
      Alcotest.check value_t "same flight" (resolve "q0.x1") (resolve "q1.y1")));
  (* Jonny's component {qJ, qC, qG} unifies but cannot ground. *)
  match Combine.unify_set g ~members:[ 0; 1; 2 ] with
  | Error f -> Alcotest.failf "jonny unify: %a" (Combine.pp_failure queries) f
  | Ok subst ->
    let body = Combine.combined_body g ~members:[ 0; 1; 2 ] subst in
    Alcotest.(check bool) "athens+paris unsatisfiable" false
      (Eval.satisfiable db body)

let test_combine_failures () =
  let queries =
    Query.rename_set
      [
        Query.make ~name:"a" ~post:[ atom "R" [ ci 1 ] ] ~head:[ atom "A" [ ci 1 ] ] [];
        Query.make ~name:"b" ~post:[] ~head:[ atom "R" [ ci 2 ] ] [];
      ]
  in
  let g = Coordination_graph.build queries in
  (* R(1) vs head R(2): not even an edge, so unsatisfiable post. *)
  (match Combine.unify_set g ~members:[ 0; 1 ] with
  | Error (Combine.Unsatisfiable_post (0, 0)) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" (Combine.pp_failure queries) f
  | Ok _ -> Alcotest.fail "must fail");
  (* Clash: compatible edge but real unification fails (repeated var). *)
  let clash =
    Query.rename_set
      [
        Query.make ~name:"a" ~post:[ atom "R" [ var "x"; var "x" ] ]
          ~head:[ atom "A" [ ci 1 ] ] [];
        Query.make ~name:"b" ~post:[] ~head:[ atom "R" [ ci 1; ci 2 ] ] [];
      ]
  in
  let g2 = Coordination_graph.build clash in
  match Combine.unify_set g2 ~members:[ 0; 1 ] with
  | Error (Combine.Clash (0, 0)) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" (Combine.pp_failure clash) f
  | Ok _ -> Alcotest.fail "must clash"

let test_ground_free_variable () =
  (* A head variable never mentioned in any body gets a domain value. *)
  let db = flights_db () in
  let queries =
    Query.rename_set
      [ Query.make ~name:"free" ~post:[] ~head:[ atom "R" [ var "u" ] ] [] ]
  in
  match Ground.solve db queries ~members:[ 0 ] Subst.empty with
  | None -> Alcotest.fail "groundable"
  | Some assignment ->
    Alcotest.(check bool) "assigned from domain" true
      (Value.Set.mem
         (Eval.Binding.find "q0.u" assignment)
         (Database.active_domain db))

let test_ground_empty_domain () =
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "a" ]);
  let queries =
    Query.rename_set
      [ Query.make ~name:"free" ~post:[] ~head:[ atom "R" [ var "u" ] ] [] ]
  in
  Alcotest.(check bool) "no domain value" true
    (Ground.solve db queries ~members:[ 0 ] Subst.empty = None)

(* ---------------------------- Solution ---------------------------- *)

let test_validate_rejects () =
  let db = flights_db () in
  let queries =
    Query.rename_set
      [
        Query.make ~name:"g" ~post:[ atom "R" [ cs "C"; var "x" ] ]
          ~head:[ atom "R" [ cs "G"; var "x" ] ]
          [ atom "F" [ var "x"; cs "Zurich" ] ];
        Query.make ~name:"c" ~post:[] ~head:[ atom "R" [ cs "C"; var "y" ] ]
          [ atom "F" [ var "y"; cs "Zurich" ] ];
      ]
  in
  let binding pairs =
    List.fold_left (fun m (k, v) -> Eval.Binding.add k v m) Eval.Binding.empty pairs
  in
  let good =
    Solution.make ~members:[ 0; 1 ]
      ~assignment:(binding [ ("q0.x", vi 101); ("q1.y", vi 101) ])
  in
  check_validates db queries good;
  (* (1) unassigned variable *)
  let unassigned =
    Solution.make ~members:[ 0; 1 ] ~assignment:(binding [ ("q0.x", vi 101) ])
  in
  Alcotest.(check bool) "unassigned" true
    (Result.is_error (Solution.validate db queries unassigned));
  (* (2) body tuple not in instance *)
  let bad_body =
    Solution.make ~members:[ 0; 1 ]
      ~assignment:(binding [ ("q0.x", vi 999); ("q1.y", vi 999) ])
  in
  Alcotest.(check bool) "body not in db" true
    (Result.is_error (Solution.validate db queries bad_body));
  (* (3) post not among heads: Gwyneth alone. *)
  let lonely =
    Solution.make ~members:[ 0 ] ~assignment:(binding [ ("q0.x", vi 101) ])
  in
  Alcotest.(check bool) "post uncovered" true
    (Result.is_error (Solution.validate db queries lonely));
  (* Chris alone is fine (no posts). *)
  let chris =
    Solution.make ~members:[ 1 ] ~assignment:(binding [ ("q1.y", vi 102) ])
  in
  check_validates db queries chris;
  (* Mismatched flight ids violate (3). *)
  let mismatched =
    Solution.make ~members:[ 0; 1 ]
      ~assignment:(binding [ ("q0.x", vi 101); ("q1.y", vi 102) ])
  in
  Alcotest.(check bool) "mismatch" true
    (Result.is_error (Solution.validate db queries mismatched));
  (* Empty set rejected. *)
  Alcotest.(check bool) "empty" true
    (Result.is_error
       (Solution.validate db queries
          (Solution.make ~members:[] ~assignment:Eval.Binding.empty)))

(* Pretty-printers: smoke tests so display code cannot rot silently. *)
let test_printers () =
  let db = flights_db () in
  let q =
    Query.make ~name:"g" ~post:[ atom "R" [ cs "C"; var "x" ] ]
      ~head:[ atom "R" [ cs "G"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  let rendered = Format.asprintf "%a" Query.pp q in
  Alcotest.(check string) "query pp"
    "g: {R(C, x)} R(G, x) :- F(x, Zurich)" rendered;
  let s = Option.get (Subst.unify_terms Subst.empty (var "x") (ci 7)) in
  Alcotest.(check string) "subst pp" "{x := 7}" (Format.asprintf "%a" Subst.pp s);
  let graph = Coordination_graph.build (Query.rename_set [ q ]) in
  Alcotest.(check bool) "graph pp non-empty" true
    (String.length (Format.asprintf "%a" Coordination_graph.pp graph) > 0);
  Alcotest.(check bool) "db pp mentions relations" true
    (String.length (Format.asprintf "%a" Relational.Database.pp db) > 0);
  let stats = Coordination.Stats.create () in
  Alcotest.(check int) "stats row has 10 fields" 10
    (List.length (Coordination.Stats.to_row stats))

let suite =
  [
    Alcotest.test_case "printers" `Quick test_printers;
    Alcotest.test_case "unify terms" `Quick test_unify_terms;
    Alcotest.test_case "unify chain" `Quick test_unify_chain;
    Alcotest.test_case "unify atoms" `Quick test_unify_atoms;
    Alcotest.test_case "subst apply" `Quick test_subst_apply;
    Alcotest.test_case "query make" `Quick test_query_make;
    Alcotest.test_case "query rename" `Quick test_query_rename;
    Alcotest.test_case "query well-formed" `Quick test_query_well_formed;
    Alcotest.test_case "parse query" `Quick test_parse_query;
    Alcotest.test_case "parse term conventions" `Quick test_parse_conventions;
    Alcotest.test_case "parse empty body" `Quick test_parse_empty_body;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse comments" `Quick test_parse_comments;
    Alcotest.test_case "query_to_string roundtrip" `Quick test_query_to_string_roundtrip;
    Alcotest.test_case "edge compatibility" `Quick test_compatible;
    Alcotest.test_case "figure 2 graph" `Quick test_figure2_graph;
    Alcotest.test_case "post targets" `Quick test_post_targets;
    Alcotest.test_case "prune unsatisfiable posts" `Quick test_prune_unsatisfiable;
    Alcotest.test_case "safety classify" `Quick test_safety_classify;
    Alcotest.test_case "uniqueness" `Quick test_uniqueness;
    Alcotest.test_case "combine figure 1" `Quick test_combine_figure1;
    Alcotest.test_case "combine failures" `Quick test_combine_failures;
    Alcotest.test_case "ground free variable" `Quick test_ground_free_variable;
    Alcotest.test_case "ground empty domain" `Quick test_ground_empty_domain;
    Alcotest.test_case "validator rejects" `Quick test_validate_rejects;
    qtest ~count:400 "MGU makes atoms equal" QCheck.(pair atom_arb atom_arb)
      (fun (a, b) ->
        match Subst.unify_atoms Subst.empty a b with
        | None -> true
        | Some s -> Cq.equal_atom (Subst.apply_atom s a) (Subst.apply_atom s b));
    qtest ~count:400 "unification is symmetric" QCheck.(pair atom_arb atom_arb)
      (fun (a, b) ->
        Option.is_some (Subst.unify_atoms Subst.empty a b)
        = Option.is_some (Subst.unify_atoms Subst.empty b a));
    qtest ~count:400 "unifiable implies edge-compatible"
      QCheck.(pair atom_arb atom_arb)
      (fun (a, b) ->
        (not (Option.is_some (Subst.unify_atoms Subst.empty a b)))
        || Coordination_graph.compatible a b);
    qtest ~count:300 "parser roundtrip on random queries"
      (let gen_term =
         QCheck.Gen.(
           oneof
             [
               map Term.var (oneofl [ "x"; "y"; "z"; "w1" ]);
               map Term.int (int_range (-5) 99);
               map Term.str (oneofl [ "Zurich"; "Paris"; "t4"; "New York"; "O'Hare" ]);
               return (Term.Const (Relational.Value.bool true));
             ])
       in
       let gen_atom rels =
         QCheck.Gen.(
           let* rel = oneofl rels in
           let* args = list_size (int_range 1 3) gen_term in
           return { Cq.rel; args = Array.of_list args })
       in
       let gen_query =
         QCheck.Gen.(
           let* post = list_size (int_range 0 2) (gen_atom [ "R"; "Q" ]) in
           let* head = list_size (int_range 1 2) (gen_atom [ "R"; "Q" ]) in
           let* body = list_size (int_range 0 3) (gen_atom [ "F"; "H" ]) in
           return (Query.make ~name:"g" ~post ~head body))
       in
       QCheck.make ~print:Parser.query_to_string gen_query)
      (fun q ->
        let q' = Parser.parse_query (Parser.query_to_string q) in
        Query.equal q q');
    qtest ~count:400 "apply is idempotent" QCheck.(pair atom_arb atom_arb)
      (fun (a, b) ->
        match Subst.unify_atoms Subst.empty a b with
        | None -> true
        | Some s ->
          let once = Subst.apply_atom s a in
          Cq.equal_atom once (Subst.apply_atom s once));
  ]
