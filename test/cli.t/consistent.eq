table S(id, dest, day).
fact S(1, Paris, Mon).  fact S(2, Paris, Tue).  fact S(3, Rome, Mon).
query uAlice: { R(y, Bob) }   R(x, Alice) :- S(x, d, Mon), S(y, d, e).
query uBob:   { R(z, Alice) } R(w, Bob)   :- S(w, c, Tue), S(z, c, f).
