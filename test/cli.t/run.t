The Section 2.2 flight-hotel program: classification first.

  $ entangle check figure1.eq
  queries:    4
  database:   2 relations, 6 tuples
  graph:      6 edges (7 extended)
  class:      safe, not unique (scc)
  components: 3 SCCs, largest 2

Solving finds Chris and Guy travelling together (the paper's answer).

  $ entangle solve figure1.eq
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}

The baseline refuses non-unique sets.

  $ entangle solve figure1.eq --algorithm gupta
  baseline not applicable: query set is not unique
  [1]

Brute force agrees with the SCC algorithm here.

  $ entangle solve figure1.eq --algorithm brute
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}

An unsafe program is rejected with advice.

  $ entangle solve unsafe.eq
  the query set is not safe (1 ambiguous postconditions); try `--algorithm consistent` or `--algorithm brute`
  [1]

The columnar storage backend produces the same answer, the same
deterministic statistics (probes, plan cache, tuples scanned — only
wall-clock timings differ, stripped here), and the same rejections.

  $ entangle solve figure1.eq --backend columnar
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}

  $ entangle solve figure1.eq --stats | sed -E 's/ (graph|unify|ground|total)=[0-9.]+ms//g'
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  stats: probes=2 candidates=2 cleaning_rounds=0 plan_hits=0 plan_misses=2 tuples_scanned=7

  $ entangle solve figure1.eq --backend columnar --stats | sed -E 's/ (graph|unify|ground|total)=[0-9.]+ms//g'
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  stats: probes=2 candidates=2 cleaning_rounds=0 plan_hits=0 plan_misses=2 tuples_scanned=7

  $ entangle solve unsafe.eq --backend columnar
  the query set is not safe (1 ambiguous postconditions); try `--algorithm consistent` or `--algorithm brute`
  [1]

  $ entangle solve consistent.eq --algorithm consistent --backend columnar
  coordinating set {u_Alice, u_Bob}
  assignment: {q0.a0 -> Paris, q0.b0_1 -> Tue, q0.x -> 1, q0.y0 -> 2,
               q1.a0 -> Paris, q1.b0_1 -> Mon, q1.x -> 2, q1.y0 -> 1}

The explain trace shows the combined SQL per component (timings stripped).

  $ entangle solve figure1.eq --explain | grep -v "probes="
  -- SCC coordination trace (4 queries) --
  component {qC, qG}: candidate set {qC, qG}
    SELECT 1
  FROM F AS t0, H AS t1, F AS t2, H AS t3
  WHERE t2.destination = 'Paris'
    AND t3.location = 'Paris'
    AND t0.destination = t1.location
    AND t0.flightId = t2.flightId
    AND t1.hotelId = t3.hotelId
  LIMIT 1
    => satisfiable: candidate recorded
  component {qJ}: candidate set {qC, qG, qJ}
    SELECT 1
  FROM F AS t0, H AS t1, F AS t2, H AS t3, F AS t4, H AS t5
  WHERE t2.destination = 'Paris'
    AND t3.location = 'Paris'
    AND t4.destination = 'Athens'
    AND t5.location = 'Athens'
    AND t0.destination = t1.location
    AND t0.flightId = t2.flightId
    AND t0.flightId = t4.flightId
    AND t1.hotelId = t3.hotelId
  LIMIT 1
    => unsatisfiable: candidate fails
  component {qW}: skipped, a needed component failed
  result: coordinating set {qC, qG}
          assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70,
                       q1.y2 -> 7}

Workload generation is deterministic from the seed.

  $ entangle generate list -n 3 --rows 4 --seed 1
  table Posts(pid, topic).
  fact Posts(0, 't0').
  fact Posts(1, 't1').
  fact Posts(2, 't2').
  fact Posts(3, 't3').
  query u0: { R('u1', y) } R('u0', x) :- Posts(x, 't0').
  query u1: { R('u2', y) } R('u1', x) :- Posts(x, 't1').
  query u2: {  } R('u2', x) :- Posts(x, 't1').

The REPL is an online coordination server; with --consume, coordinated
sets book their tuples and later arrivals find them gone.

  $ entangle repl --consume <<'REPL'
  > table Flights(fid, dest).
  > fact Flights(101, Zurich).
  > query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
  > \pending
  > query chris: { } R(Chris, y) :- Flights(y, Zurich).
  > query amy: { R(Ben, u) } R(Amy, u) :- Flights(u, Zurich).
  > query ben: { R(Amy, v) } R(Ben, v) :- Flights(v, Zurich).
  > \pending
  > \quit
  > REPL
  table Flights created
  pending: gwyneth
  pending (1): gwyneth
  coordinated: {gwyneth, chris}
  pending: amy
  pending: ben
  pending (2): amy, ben
  bye: 2 queries coordinated, 2 still pending

The engine keeps persistent incremental state by default; --mode
full-rebuild selects the reference implementation that re-derives the
coordination graph on every evaluation.  Both modes answer the same
stream identically.

  $ entangle repl --consume --mode full-rebuild <<'REPL'
  > table Flights(fid, dest).
  > fact Flights(101, Zurich).
  > query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
  > \pending
  > query chris: { } R(Chris, y) :- Flights(y, Zurich).
  > query amy: { R(Ben, u) } R(Amy, u) :- Flights(u, Zurich).
  > query ben: { R(Amy, v) } R(Ben, v) :- Flights(v, Zurich).
  > \pending
  > \quit
  > REPL
  table Flights created
  pending: gwyneth
  pending (1): gwyneth
  coordinated: {gwyneth, chris}
  pending: amy
  pending: ben
  pending (2): amy, ben
  bye: 2 queries coordinated, 2 still pending

Tracing writes a Chrome trace_event JSON array: solver phases nest
under the top-level solve span, and every database probe is a span.

  $ entangle solve figure1.eq --trace trace.json > /dev/null
  $ head -c 2 trace.json
  [
  $ tail -c 3 trace.json
  
  ]
  $ grep -c '"name": "scc.solve"' trace.json
  1
  $ grep -c '"name": "eval.probe"' trace.json
  2
  $ grep -o '"ph": "[Xi]"' trace.json | sort | uniq -c | sed 's/^ *//'
  10 "ph": "X"
  3 "ph": "i"

The JSONL format carries the same stream, one object per line, with
spans distinguished from instant events.

  $ entangle solve figure1.eq --trace trace.jsonl --trace-format jsonl > /dev/null
  $ grep -c '"type": "span"' trace.jsonl
  10
  $ grep -c '"type": "event"' trace.jsonl
  3
  $ grep '"type": "event"' trace.jsonl | grep -o '"name": "[a-z.]*"'
  "name": "scc.probed"
  "name": "scc.probed"
  "name": "scc.skipped"

--metrics dumps the counter and histogram registry after the answer.

  $ entangle solve figure1.eq --metrics | grep -v "^histogram"
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  -- metrics --
  counter eval.probes 2
  counter eval.probes{F,H} 2
  $ entangle solve figure1.eq --metrics | grep -c "^histogram eval.probe_ns count=2"
  1

Budgets degrade gracefully: with one probe allowed, the first component
still fires and the rest are reported unprobed instead of discarded.

  $ entangle solve figure1.eq --max-probes 1
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  DEGRADED: probe budget exhausted; 2 work items unprobed (2 of 3 components unprobed)

Chaos mode is deterministic: a seeded fault injector with enough retry
budget produces exactly the fault-free answer (and the same probe
stats), while the guard line accounts for the injected faults.

  $ entangle solve figure1.eq --fault-rate 0.5 --fault-seed 2 --max-attempts 50 --stats | grep -v "^stats"
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  guard: 4 attempts, 2 ok, 2 retries, faults 2 transient / 0 permanent / 0 timeout, backoff 3.889 ms

With no retry budget the same faults become fatal — but still typed and
degraded, never a crash.

  $ entangle solve figure1.eq --fault-rate 0.5 --fault-seed 2 --max-attempts 1
  no coordinating set exists
  DEGRADED: probe failed after 1 attempt (retries exhausted); 3 work items unprobed (3 of 3 components unprobed)

The benchmark harness emits machine-readable series: every figure run
lands in the JSON file under its name (timings vary, so only the keys
and column headers are stable).  Each figure also carries a metrics
block with probe-latency percentiles from the Obs histograms.

  $ entangle-bench --fast --figures-only --json bench.json > /dev/null
  $ grep -o '"fig[0-9]*"' bench.json
  "fig4"
  "fig5"
  "fig6"
  "fig7"
  "fig8"
  $ grep -c '"columns"' bench.json
  5
  $ grep -c '"probe_p99_us"' bench.json
  4

The online-scaling ablation races the two engine modes over a growing
pool and reports per-submit latency percentiles as a series.

  $ entangle-bench --fast --figures-only --ablation online-scaling --json scaling.json > /dev/null
  $ grep -o '"ablation_online_scaling"' scaling.json
  "ablation_online_scaling"
  $ grep -o '"mode", "pool", "p50_us", "p95_us", "total_ms"' scaling.json
  "mode", "pool", "p50_us", "p95_us", "total_ms"
  $ grep -o '"full-rebuild"\|"incremental"' scaling.json | sort | uniq -c | sed 's/^ *//'
  2 "full-rebuild"
  2 "incremental"

The component-sharded executor answers byte-identically to the
sequential solver, whatever the domain count; --stats additionally
reports the pool size.

  $ entangle solve figure1.eq --parallel --domains 4
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  $ entangle solve figure1.eq --parallel --domains 4 --stats | grep -o "domains=4"
  domains=4

The merged trace is indistinguishable from the sequential one: worker
items are captured per component and replayed in discovery order.

  $ entangle solve figure1.eq --parallel --domains 4 --trace ptrace.json > /dev/null
  $ grep -c '"name": "scc.solve"' ptrace.json
  1
  $ grep -c '"name": "eval.probe"' ptrace.json
  2
  $ grep -o '"ph": "[Xi]"' ptrace.json | sort | uniq -c | sed 's/^ *//'
  10 "ph": "X"
  3 "ph": "i"

Budgets compose with sharding: the guard is split across shards, and
figure1's single component behaves exactly as the sequential run.

  $ entangle solve figure1.eq --parallel --max-probes 1
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  DEGRADED: probe budget exhausted; 2 work items unprobed (2 of 3 components unprobed)

The parallel baseline still enforces uniqueness, and algorithms without
a sharded implementation refuse the flag instead of silently running
sequentially.

  $ entangle solve figure1.eq --algorithm gupta --parallel
  baseline not applicable: query set is not unique
  [1]
  $ entangle solve figure1.eq --algorithm brute --parallel
  --parallel supports scc, gupta and consistent only
  [1]

The consistent-coordination algorithm is reached from the CLI by
recognising entangled syntax as a consistent query set; its value loop
parallelises the same way.

  $ entangle solve consistent.eq --algorithm consistent
  coordinating set {u_Alice, u_Bob}
  assignment: {q0.a0 -> Paris, q0.b0_1 -> Tue, q0.x -> 1, q0.y0 -> 2,
               q1.a0 -> Paris, q1.b0_1 -> Mon, q1.x -> 2, q1.y0 -> 1}
  $ entangle solve consistent.eq --algorithm consistent --parallel --domains 2
  coordinating set {u_Alice, u_Bob}
  assignment: {q0.a0 -> Paris, q0.b0_1 -> Tue, q0.x -> 1, q0.y0 -> 2,
               q1.a0 -> Paris, q1.b0_1 -> Mon, q1.x -> 2, q1.y0 -> 1}

The parallel-scaling ablation sweeps domain counts over growing pools
and reports per-configuration speedup as a series.

  $ entangle-bench --fast --figures-only --ablation parallel-scaling --json par.json > /dev/null
  $ grep -o '"ablation_parallel_scaling"' par.json
  "ablation_parallel_scaling"
  $ grep -o '"domains", "pool", "candidates", "total_ms", "speedup"' par.json
  "domains", "pool", "candidates", "total_ms", "speedup"

EXPLAIN ANALYZE renders every cached plan with estimated vs observed
cardinalities, scan/emit counts and selectivity; times vary per run, so
the check normalises them away.  The table is identical on both
backends because the plan stats are shared between the row executor and
the columnar cursor machine.

  $ entangle solve figure1.eq --explain-analyze \
  >   | sed -E 's/ time=[0-9.]+ms//; s/total time [0-9.]+ ms/total time _ ms/'
  coordinating set {qC, qG}
  assignment: {q0.x -> Paris, q0.x1 -> 70, q0.x2 -> 7, q1.y1 -> 70, q1.y2 -> 7}
  -- EXPLAIN ANALYZE (2 cached plans, backend row) --
  plan F(s0,s1,);H(s2,s1,);F(s0,p,);H(s2,p,);
    executions=1 drift=2.00 version=8->8
    total time _ ms
  1. H(s2, p1) via index[1=p1]  est_rows=1 obs_rows=1.0 entered=1 scanned=1 emitted=1 sel=1.000
  2. F(s0, p0) via index[1=p0]  est_rows=2 obs_rows=1.0 entered=1 scanned=1 emitted=1 sel=1.000
  3. H(s2, s1) via index[0=s2]  est_rows=1 obs_rows=1.0 entered=1 scanned=1 emitted=1 sel=1.000
  4. F(s0, s1) via membership  est_rows=1 obs_rows=1.0 entered=1 scanned=1 emitted=1 sel=1.000
  plan F(s0,s1,);H(s2,s1,);F(s0,p,);H(s2,p,);F(s0,p,);H(s3,p,);
    executions=1 drift=2.00 version=8->8
    total time _ ms
  1. H(s3, p3) via index[1=p3]  est_rows=1 obs_rows=1.0 entered=1 scanned=1 emitted=1 sel=1.000
  2. F(s0, p2) via index[1=p2]  est_rows=2 obs_rows=1.0 entered=1 scanned=1 emitted=1 sel=1.000
  3. F(s0, p0) via membership  est_rows=1 obs_rows=1.0 entered=1 scanned=1 emitted=0 sel=0.000
  4. H(s2, p1) via index[1=p1]  est_rows=1 obs_rows=0.0 entered=0 scanned=0 emitted=0 sel=-
  5. H(s2, s1) via index[0=s2]  est_rows=1 obs_rows=0.0 entered=0 scanned=0 emitted=0 sel=-
  6. F(s0, s1) via membership  est_rows=1 obs_rows=0.0 entered=0 scanned=0 emitted=0 sel=-
  $ entangle solve figure1.eq --backend columnar --explain-analyze \
  >   | sed -E 's/ time=[0-9.]+ms//; s/total time [0-9.]+ ms/total time _ ms/' \
  >   | grep -c 'est_rows='
  10

--metrics-out snapshots the registry to JSON plus a Prometheus text
sibling; counters and gauges are deterministic, histogram times are
filtered out.

  $ entangle solve figure1.eq --metrics-out m.json > /dev/null
  $ grep -o '"name": "eval.probes", "value": 2' m.json
  "name": "eval.probes", "value": 2
  $ grep -o '"db.data_version", "value": 8.000\|"db.plan_cache_size", "value": 2.000\|"db.tables", "value": 2.000\|"db.tuples", "value": 6.000' m.json
  "db.data_version", "value": 8.000
  "db.plan_cache_size", "value": 2.000
  "db.tables", "value": 2.000
  "db.tuples", "value": 6.000
  $ grep -c '"count": 2' m.json
  1
  $ grep -E '^(# TYPE|entangle_eval_probes |entangle_db)' m.json.prom
  # TYPE entangle_eval_probes counter
  entangle_eval_probes 2
  # TYPE entangle_db_data_version gauge
  entangle_db_data_version 8
  # TYPE entangle_db_plan_cache_size gauge
  entangle_db_plan_cache_size 2
  # TYPE entangle_db_tables gauge
  entangle_db_tables 2
  # TYPE entangle_db_tuples gauge
  entangle_db_tuples 6
  # TYPE entangle_eval_probe_ns summary
  $ grep -o 'entangle_eval_probe_ns_count 2' m.json.prom
  entangle_eval_probe_ns_count 2

The flight recorder is armed by --flight-recorder and dumps its ring
window once when a chaos run degrades; the fixed seed makes the
recorded event names reproducible.

  $ entangle solve figure1.eq --fault-rate 1.0 --max-attempts 1 --fault-seed 7 --flight-recorder fr.jsonl
  no coordinating set exists
  DEGRADED: probe failed after 1 attempt (retries exhausted); 3 work items unprobed (3 of 3 components unprobed)
  $ grep -o '"name": "[a-z.]*"' fr.jsonl
  "name": "scc.graph"
  "name": "scc.preprocess"
  "name": "scc.condense"
  "name": "scc.unify"
  "name": "flight.incident"
  $ grep -o '"reason": "probe failed after 1 attempt (retries exhausted)"' fr.jsonl
  "reason": "probe failed after 1 attempt (retries exhausted)"

A clean run dumps nothing.

  $ entangle solve figure1.eq --flight-recorder quiet.json > /dev/null
  $ test -f quiet.json
  [1]

--metrics composes with the sharded executor: worker-domain counters
fold into the same process-wide registry.

  $ entangle solve figure1.eq --parallel --domains 4 --metrics 2>&1 | grep '^counter'
  counter eval.probes 2
  counter eval.probes{F,H} 2

Numeric flags are validated at parse time with messages naming the
constraint, instead of leaking nonsense into the solver.

  $ entangle solve figure1.eq --fault-rate 1.5
  entangle: option '--fault-rate': expected a probability in [0.0, 1.0], got
            1.5
  Usage: entangle solve [OPTION]… FILE
  Try 'entangle solve --help' or 'entangle --help' for more information.
  [124]
  $ entangle solve figure1.eq --fault-rate banana
  entangle: option '--fault-rate': expected a number, got "banana"
  Usage: entangle solve [OPTION]… FILE
  Try 'entangle solve --help' or 'entangle --help' for more information.
  [124]
  $ entangle solve figure1.eq --deadline-ms=-5
  entangle: option '--deadline-ms': expected a non-negative number, got -5
  Usage: entangle solve [OPTION]… FILE
  Try 'entangle solve --help' or 'entangle --help' for more information.
  [124]
  $ entangle solve figure1.eq --max-probes=-1
  entangle: option '--max-probes': expected a non-negative integer, got -1
  Usage: entangle solve [OPTION]… FILE
  Try 'entangle solve --help' or 'entangle --help' for more information.
  [124]
  $ entangle solve figure1.eq --parallel --domains 0
  entangle: option '--domains': expected a positive integer, got 0
  Usage: entangle solve [OPTION]… FILE
  Try 'entangle solve --help' or 'entangle --help' for more information.
  [124]
  $ entangle repl --wal w --fsync sometimes < /dev/null
  entangle: option '--fsync': unknown fsync policy "sometimes"
            (always|never|every-n:<N>)
  Usage: entangle repl [OPTION]…
  Try 'entangle repl --help' or 'entangle --help' for more information.
  [124]
  $ entangle repl --wal w --fsync every-n:0 < /dev/null
  entangle: option '--fsync': unknown fsync policy "every-n:0"
            (always|never|every-n:<N>)
  Usage: entangle repl [OPTION]…
  Try 'entangle repl --help' or 'entangle --help' for more information.
  [124]
  $ entangle repl --wal w --snapshot-every=-3 < /dev/null
  entangle: option '--snapshot-every': expected a non-negative integer, got -3
  Usage: entangle repl [OPTION]…
  Try 'entangle repl --help' or 'entangle --help' for more information.
  [124]

With --wal the repl journals every operation to a checksummed
write-ahead log; \snapshot forces a checkpoint and \wal shows the
journal status.

  $ entangle repl --consume --wal wal <<'REPL'
  > table Flights(fid, dest).
  > fact Flights(101, Zurich).
  > query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
  > query chris: { } R(Chris, y) :- Flights(y, Zurich).
  > query amy: { R(Ben, u) } R(Amy, u) :- Flights(u, Zurich).
  > \snapshot
  > \quit
  > REPL
  wal: new journal in wal
  table Flights created
  pending: gwyneth
  coordinated: {gwyneth, chris}
  pending: amy
  snapshot written at LSN 8
  bye: 2 queries coordinated, 1 still pending

The recover subcommand rebuilds the engine from the journal: the
snapshot is loaded, the (empty) tail replayed, and the recovered
engine still knows amy is pending and that the coordinated pair
consumed the flight tuple.

  $ entangle recover wal
  snapshot: snap-00000000000000000008.img (lsn 8)
  segments scanned: 1
  records replayed: 0 (0 committed groups)
  recovered lsn: 8
  tail: clean
  
  engine: 1 pending, 2 coordinated (lifetime)
  database: 1 relations, 0 tuples

Reopening the same directory with repl recovers first, then carries
on.  Ben would pair with amy — but the recovered engine remembers the
coordinated pair already consumed the only Zurich flight, so the pair
stays pending instead of double-spending the booked tuple.

  $ entangle repl --consume --wal wal <<'REPL'
  > query ben: { R(Amy, v) } R(Ben, v) :- Flights(v, Zurich).
  > \quit
  > REPL
  snapshot: snap-00000000000000000008.img (lsn 8)
  segments scanned: 1
  records replayed: 0 (0 committed groups)
  recovered lsn: 8
  tail: clean
  
  pending: ben
  bye: 2 queries coordinated, 2 still pending

A torn tail — the last bytes of the segment vanish, as after a power
cut mid-write — is detected by checksum, truncated back to the last
committed operation, and re-checkpointed, so the fact written by the
torn group is gone but everything before it survives and a second
recovery is clean.

  $ entangle repl --wal wal2 <<'REPL'
  > table T(a).
  > fact T(1).
  > fact T(2).
  > \quit
  > REPL
  wal: new journal in wal2
  table T created
  bye: 0 queries coordinated, 0 still pending
  $ seg=$(ls wal2/wal-*.log | tail -1)
  $ head -c -7 "$seg" > torn.tmp && mv torn.tmp "$seg"
  $ entangle recover wal2
  snapshot: none
  segments scanned: 1
  records replayed: 3 (3 committed groups)
  recovered lsn: 3
  tail truncated: wal-00000000000000000001.log at byte 103 (28 bytes dropped, short record)
  
  engine: 0 pending, 0 coordinated (lifetime)
  database: 1 relations, 1 tuples
  $ entangle recover wal2
  snapshot: snap-00000000000000000003.img (lsn 3)
  segments scanned: 1
  records replayed: 0 (0 committed groups)
  recovered lsn: 3
  tail: clean
  
  engine: 0 pending, 0 coordinated (lifetime)
  database: 1 relations, 1 tuples

Coordination as a service.  A server needs exactly one listen address
and sane limits; refusals are loud and early.

  $ entangle serve
  error: one of --socket PATH or --port N is required
  [2]
  $ entangle serve --socket coord.sock --port 7070
  error: --socket and --port are mutually exclusive
  [2]
  $ entangle serve --socket coord.sock --max-pending 0
  entangle: option '--max-pending': expected a positive integer, got 0
  Usage: entangle serve [OPTION]…
  Try 'entangle serve --help' or 'entangle --help' for more information.
  [124]

A scripted session over a Unix socket, journaled to a WAL.  The first
client builds the Figure-1-in-miniature state: a flights table, one
Zurich flight, and two queries that want to travel together.  The
client is subscribed, so the matched notification arrives before the
coordinated response — the deterministic frame order the protocol
promises.

  $ entangle serve --socket coord.sock --max-sessions 2 --verbose --wal srvwal > server.log 2>&1 &
  $ entangle client --socket coord.sock <<'EOF2'
  > {"id":1,"op":"create_table","name":"F","attrs":["fid","dest"]}
  > {"id":2,"op":"insert","rel":"F","tuple":[101,"Zurich"]}
  > {"id":3,"op":"subscribe"}
  > {"id":4,"op":"submit","query":"qa: { R(G1, y) } R(G0, x) :- F(x, Zurich)."}
  > {"id":5,"op":"submit","query":"qb: { R(G0, y) } R(G1, x) :- F(x, Zurich)."}
  > EOF2
  {"id":1,"ok":true,"result":"table_created"}
  {"id":2,"ok":true,"result":"inserted"}
  {"id":3,"ok":true,"result":"subscribed"}
  {"id":4,"ok":true,"result":"pending","pool_id":0}
  {"notify":"matched","queries":["qa","qb"]}
  {"id":5,"ok":true,"result":"coordinated","queries":["qa","qb"]}

The second client dies mid-stream — request sent, nothing read, RST on
the wire.  The server tears down that one session (the reason lands in
the verbose log below) and exits cleanly at its session budget.

  $ entangle client --socket coord.sock --abort-after 1 <<'EOF2'
  > {"id":1,"op":"status"}
  > EOF2
  client: aborted after 1 requests
  $ wait

The exact errno depends on whether the server was reading or writing
when the RST landed, so the log normalises it to "abnormal"; what
matters is that session 2's death is flagged and session 1's was not.

  $ sed 's/closed (.*)$/closed (abnormal)/' server.log
  wal: new journal in srvwal
  serving on unix:coord.sock
  session 1: connected
  session 1: closed
  session 2: connected
  session 2: closed (abnormal)
  served 2 sessions; 2 coordinated, 0 still pending

Kill-and-restart: a new server on the same WAL directory recovers the
journal first, so the next submission draws the next pool id after the
two recovered queries — identical state, new process.

  $ entangle serve --socket coord.sock --max-sessions 1 --wal srvwal > server2.log 2>&1 &
  $ entangle client --socket coord.sock <<'EOF2'
  > {"id":1,"op":"submit","query":"qc: { R(G3, y) } R(G2, x) :- F(x, Zurich)."}
  > EOF2
  {"id":1,"ok":true,"result":"pending","pool_id":2}
  $ wait
  $ cat server2.log
  snapshot: none
  segments scanned: 1
  records replayed: 6 (5 committed groups)
  recovered lsn: 6
  tail: clean
  
  serving on unix:coord.sock
  served 1 sessions; 2 coordinated, 1 still pending

Sharding the online engine itself: serve --domains partitions the live
pool across OCaml domains by coordination-graph component, and stays
observationally identical to the sequential server.  The flag is
validated up front, and full-rebuild mode cannot shard.

  $ entangle serve --socket shard.sock --domains 0
  entangle: option '--domains': expected a positive integer, got 0
  Usage: entangle serve [OPTION]…
  Try 'entangle serve --help' or 'entangle --help' for more information.
  [124]
  $ entangle serve --socket shard.sock --domains=-2
  entangle: option '--domains': expected a positive integer, got -2
  Usage: entangle serve [OPTION]…
  Try 'entangle serve --help' or 'entangle --help' for more information.
  [124]
  $ entangle serve --socket shard.sock --domains 2 --mode full-rebuild
  error: --domains requires --mode incremental
  [2]

A sharded durable session: two queries that must travel together land
on one shard (migrating if routing first separated them), fire exactly
as the sequential engine would, and status reports the domain count.

  $ entangle serve --socket shard.sock --max-sessions 1 --domains 2 --wal shardwal > shard1.log 2>&1 &
  $ entangle client --socket shard.sock <<'EOF2'
  > {"id":1,"op":"create_table","name":"F","attrs":["fid","dest"]}
  > {"id":2,"op":"insert","rel":"F","tuple":[7,"Oslo"]}
  > {"id":3,"op":"submit","query":"s0: { R(A1, y) } R(A0, x) :- F(x, Oslo)."}
  > {"id":4,"op":"submit","query":"s1: { R(A0, y) } R(A1, x) :- F(x, Oslo)."}
  > {"id":5,"op":"status"}
  > EOF2
  {"id":1,"ok":true,"result":"table_created"}
  {"id":2,"ok":true,"result":"inserted"}
  {"id":3,"ok":true,"result":"pending","pool_id":0}
  {"id":4,"ok":true,"result":"coordinated","queries":["s0","s1"]}
  {"id":5,"ok":true,"result":"status","pending":0,"satisfied":2,"next_id":2,"domains":2,"sessions":1,"served":1,"wal":{"dir":"shardwal","last_lsn":6}}
  $ wait
  $ cat shard1.log
  wal: new journal in shardwal
  serving on unix:shard.sock
  served 1 sessions; 2 coordinated, 0 still pending (domains=2)

Kill-and-restart at a DIFFERENT domain count: the journal a sharded
engine writes is byte-equivalent to a sequential engine's, so recovery
replays it into one engine and re-shards the recovered pool across
however many domains the new server asks for — identical state, new
partitioning.

  $ entangle serve --socket shard.sock --max-sessions 1 --domains 4 --wal shardwal > shard2.log 2>&1 &
  $ entangle client --socket shard.sock <<'EOF2'
  > {"id":1,"op":"submit","query":"s2: { R(A3, y) } R(A2, x) :- F(x, Oslo)."}
  > {"id":2,"op":"status"}
  > EOF2
  {"id":1,"ok":true,"result":"pending","pool_id":2}
  {"id":2,"ok":true,"result":"status","pending":1,"satisfied":2,"next_id":3,"domains":4,"sessions":1,"served":1,"wal":{"dir":"shardwal","last_lsn":7}}
  $ wait
  $ cat shard2.log
  snapshot: none
  segments scanned: 1
  records replayed: 6 (5 committed groups)
  recovered lsn: 6
  tail: clean
  
  serving on unix:shard.sock
  served 1 sessions; 2 coordinated, 1 still pending (domains=4)
