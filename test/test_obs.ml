(* The observability subsystem: clock, spans, histograms, counters,
   sink round-trips, and the engine-level counter plumbing it extends
   (Counters.diff/copy, Stats.add_counters). *)

open Relational

(* ------------------------ mini JSON parser ------------------------ *)

(* Just enough JSON to re-parse what the jsonl and chrome sinks emit,
   so the round-trip tests check real output, not a pretty-printer's
   idea of it. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail m = raise (Bad (Printf.sprintf "%s at %d" m !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'u' ->
            advance ();
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
            go ()
          | Some c -> advance (); Buffer.add_char b c; go ()
          | None -> fail "unterminated escape")
        | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elements [])
        end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let str_exn j =
    match j with Str s -> s | _ -> raise (Bad "expected string")

  let num_exn j = match j with Num f -> f | _ -> raise (Bad "expected number")
end

(* ------------------------------ clock ----------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Obs.now_ns ()) in
  for _ = 1 to 1_000 do
    let t = Obs.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld -> %Ld" !prev t;
    prev := t
  done

(* ------------------------------ spans ----------------------------- *)

let span_of = function Obs.Span s -> Some s | Obs.Event _ -> None

let test_span_nesting () =
  let sink, contents = Obs.memory_sink () in
  let result =
    Obs.with_sink sink (fun () ->
        Obs.with_span "outer" (fun () ->
            Obs.with_span "middle"
              ~args:(fun () -> [ ("k", Obs.Int 7) ])
              (fun () -> Obs.with_span "inner" (fun () -> 42))))
  in
  Alcotest.(check int) "return value" 42 result;
  let spans = List.filter_map span_of (contents ()) in
  Alcotest.(check (list string))
    "spans close children-first"
    [ "inner"; "middle"; "outer" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) spans);
  Alcotest.(check (list int))
    "depths reflect nesting" [ 2; 1; 0 ]
    (List.map (fun (s : Obs.span) -> s.Obs.depth) spans);
  let middle = List.nth spans 1 in
  Alcotest.(check bool)
    "args evaluated and attached" true
    (middle.Obs.args = [ ("k", Obs.Int 7) ])

let test_span_disarmed () =
  (* With nothing armed, with_span must not evaluate args and must not
     touch the metrics registry. *)
  Alcotest.(check bool) "nothing armed" false (Obs.enabled ());
  let evaluated = ref false in
  let r =
    Obs.with_span
      ~args:(fun () ->
        evaluated := true;
        [])
      "dark"
      (fun () -> "ok")
  in
  Alcotest.(check string) "value passes through" "ok" r;
  Alcotest.(check bool) "args thunk not forced" false !evaluated;
  let pinged = ref false in
  Obs.event ~args:(fun () -> pinged := true; []) "nobody-listens";
  Alcotest.(check bool) "event dropped without sink" false !pinged

let test_span_exception () =
  let sink, contents = Obs.memory_sink () in
  (try
     Obs.with_sink sink (fun () ->
         Obs.with_span "doomed" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let spans = List.filter_map span_of (contents ()) in
  Alcotest.(check (list string))
    "span closes on exception" [ "doomed" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) spans)

type Obs.payload += Test_payload of int

let test_event_payload () =
  let sink, contents = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      Obs.event ~payload:(Test_payload 5) "typed";
      Obs.event "untyped");
  let payloads =
    List.filter_map
      (function
        | Obs.Event { Obs.ev_payload = Test_payload n; _ } -> Some n
        | Obs.Event _ | Obs.Span _ -> None)
      (contents ())
  in
  Alcotest.(check (list int)) "typed payload recovered" [ 5 ] payloads

(* ---------------------------- histograms -------------------------- *)

let test_histogram_buckets () =
  List.iter
    (fun (v, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_of %Ld" v)
        expect
        (Obs.Histogram.bucket_of v))
    [
      (Int64.minus_one, 0);
      (0L, 0);
      (1L, 1);
      (2L, 2);
      (3L, 2);
      (4L, 3);
      (7L, 3);
      (8L, 4);
      (1023L, 10);
      (1024L, 11);
    ];
  let lo, hi = Obs.Histogram.bucket_bounds 3 in
  Alcotest.(check bool) "bucket 3 covers [4, 8)" true (lo = 4L && hi = 8L);
  (* Every positive value lands in the bucket whose bounds contain it. *)
  List.iter
    (fun v ->
      let lo, hi = Obs.Histogram.bucket_bounds (Obs.Histogram.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "%Ld within its bucket bounds" v)
        true
        (Int64.compare lo v <= 0 && Int64.compare v hi < 0))
    [ 1L; 5L; 100L; 4096L; 123_456_789L ]

let test_histogram_percentiles () =
  let h = Obs.Histogram.make "test.obs.pct" in
  Obs.Histogram.reset h;
  Alcotest.(check (float 0.0)) "empty percentile" 0.0
    (Obs.Histogram.percentile h 0.5);
  for v = 1 to 100 do
    Obs.Histogram.observe h (Int64.of_int v)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  Alcotest.(check int64) "sum" 5050L (Obs.Histogram.sum h);
  Alcotest.(check int64) "max" 100L (Obs.Histogram.max_value h);
  let p50 = Obs.Histogram.percentile h 0.50 in
  let p95 = Obs.Histogram.percentile h 0.95 in
  let p99 = Obs.Histogram.percentile h 0.99 in
  Alcotest.(check bool) "percentiles are monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p99 capped at observed max" true (p99 <= 100.0);
  (* Log2 buckets promise a within-2x estimate. *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 within a factor of 2 (got %.1f)" p50)
    true
    (p50 >= 25.0 && p50 <= 100.0);
  (* A single observation: every percentile is that value. *)
  let h1 = Obs.Histogram.make "test.obs.single" in
  Obs.Histogram.reset h1;
  Obs.Histogram.observe h1 5L;
  Alcotest.(check (float 0.001)) "single-value p99" 5.0
    (Obs.Histogram.percentile h1 0.99)

let test_histogram_metrics_gate () =
  let h = Obs.Histogram.make "test.obs.gate" in
  Obs.Histogram.reset h;
  Obs.set_metrics false;
  Obs.with_span ~hist:h "gated" (fun () -> ());
  Alcotest.(check int) "metrics off: nothing recorded" 0
    (Obs.Histogram.count h);
  Obs.set_metrics true;
  Obs.with_span ~hist:h "gated" (fun () -> ());
  Obs.set_metrics false;
  Alcotest.(check int) "metrics on, no sink: span recorded" 1
    (Obs.Histogram.count h)

let test_counters () =
  let c = Obs.Counter.make "test.obs.counter" in
  Obs.Counter.reset c;
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (Obs.Counter.value c);
  let l = Obs.Counter.labeled "test.obs.counter" "lbl" in
  Obs.Counter.reset l;
  Obs.Counter.incr l;
  (match Obs.Counter.find "test.obs.counter{lbl}" with
  | Some c' -> Alcotest.(check int) "labeled registry key" 1 (Obs.Counter.value c')
  | None -> Alcotest.fail "labeled counter not registered");
  let h = Obs.Histogram.make "test.obs.reset" in
  Obs.Histogram.observe h 3L;
  Obs.reset_metrics ();
  Alcotest.(check int) "reset_metrics zeroes counters" 0 (Obs.Counter.value c);
  Alcotest.(check int) "reset_metrics zeroes histograms" 0
    (Obs.Histogram.count h)

(* ------------------------- sink round-trips ----------------------- *)

let traced_run () =
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner"
        ~args:(fun () -> [ ("rels", Obs.Str "Posts"); ("hit", Obs.Bool true) ])
        (fun () -> ());
      Obs.event ~args:(fun () -> [ ("n", Obs.Int 3) ]) "ping")

let test_jsonl_roundtrip () =
  let buf = Buffer.create 256 in
  Obs.with_sink (Obs.jsonl_sink (Buffer.add_string buf)) traced_run;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "two spans + one event" 3 (List.length lines);
  let parsed = List.map Json.parse lines in
  let get k j = Option.get (Json.member k j) in
  let types = List.map (fun j -> Json.str_exn (get "type" j)) parsed in
  Alcotest.(check (list string))
    "emission order: inner span, event, outer span"
    [ "span"; "event"; "span" ] types;
  let inner = List.nth parsed 0 in
  Alcotest.(check string) "name survives" "inner"
    (Json.str_exn (get "name" inner));
  Alcotest.(check bool) "span has dur_us" true
    (Json.member "dur_us" inner <> None);
  Alcotest.(check string) "string arg survives" "Posts"
    (Json.str_exn (Option.get (Json.member "rels" (get "args" inner))));
  let event = List.nth parsed 1 in
  Alcotest.(check bool) "event has no dur_us" true
    (Json.member "dur_us" event = None);
  Alcotest.(check (float 0.001)) "int arg survives" 3.0
    (Json.num_exn (Option.get (Json.member "n" (get "args" event))))

let test_chrome_roundtrip () =
  let buf = Buffer.create 256 in
  Obs.with_sink (Obs.chrome_sink (Buffer.add_string buf)) traced_run;
  match Json.parse (Buffer.contents buf) with
  | Json.Arr entries ->
    Alcotest.(check int) "three trace entries" 3 (List.length entries);
    let get k j = Option.get (Json.member k j) in
    List.iter
      (fun e ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (Printf.sprintf "entry has %S" k)
              true
              (Json.member k e <> None))
          [ "name"; "ph"; "pid"; "tid"; "ts" ])
      entries;
    let phs = List.map (fun e -> Json.str_exn (get "ph" e)) entries in
    Alcotest.(check (list string))
      "complete spans and one instant" [ "X"; "i"; "X" ] phs;
    (* The inner span must lie within the outer span's interval. *)
    let span name =
      List.find
        (fun e ->
          Json.str_exn (get "name" e) = name && Json.str_exn (get "ph" e) = "X")
        entries
    in
    let ts e = Json.num_exn (get "ts" e) in
    let dur e = Json.num_exn (get "dur" e) in
    let outer = span "outer" and inner = span "inner" in
    Alcotest.(check bool) "child nested within parent" true
      (ts inner >= ts outer && ts inner +. dur inner <= ts outer +. dur outer +. 0.001)
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_chrome_empty_is_valid () =
  let buf = Buffer.create 16 in
  Obs.with_sink (Obs.chrome_sink (Buffer.add_string buf)) (fun () -> ());
  match Json.parse (Buffer.contents buf) with
  | Json.Arr [] -> ()
  | _ -> Alcotest.fail "empty chrome trace should parse as []"

(* --------------------- solver events on the stream ---------------- *)

let test_explain_via_obs () =
  let db = Database.create () in
  let queries = Helpers.figure1_queries db in
  match Coordination.Explain.trace db queries with
  | Error _ -> Alcotest.fail "figure 1 program should be safe"
  | Ok report ->
    Alcotest.(check bool) "trace captured solver events" true
      (report.Coordination.Explain.events <> []);
    Alcotest.(check bool) "probes appear as typed events" true
      (List.exists
         (function
           | Coordination.Scc_algo.Probed _ -> true
           | _ -> false)
         report.Coordination.Explain.events)

(* ------------------------- flight recorder ------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let item_name = function
  | Obs.Span s -> s.Obs.name
  | Obs.Event e -> e.Obs.ev_name

(* Every flight-recorder test disarms on the way out: the recorder is
   process-global and later suites (executor determinism) must start
   from the disarmed state. *)
let with_recorder ?capacity f =
  Obs.Flight_recorder.arm ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight_recorder.set_dump_path None;
      Obs.Flight_recorder.disarm ())
    f

let test_ring_drop_oldest () =
  with_recorder ~capacity:4 (fun () ->
      for i = 0 to 9 do
        Obs.event (Printf.sprintf "e%d" i)
      done;
      Alcotest.(check (list string))
        "ring keeps the newest [capacity] items, oldest first"
        [ "e6"; "e7"; "e8"; "e9" ]
        (List.map item_name (Obs.Flight_recorder.local_items ())));
  Alcotest.(check bool) "disarmed after" false (Obs.Flight_recorder.armed ());
  Alcotest.(check (list string))
    "detached ring reads empty" []
    (List.map item_name (Obs.Flight_recorder.local_items ()))

let test_ring_capacity_one () =
  with_recorder ~capacity:1 (fun () ->
      Obs.event "first";
      Alcotest.(check (list string))
        "single slot holds the only item" [ "first" ]
        (List.map item_name (Obs.Flight_recorder.local_items ()));
      Obs.event "second";
      Obs.event "third";
      Alcotest.(check (list string))
        "single slot holds the newest item" [ "third" ]
        (List.map item_name (Obs.Flight_recorder.local_items ())));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Flight_recorder.arm: capacity < 1") (fun () ->
      Obs.Flight_recorder.arm ~capacity:0 ())

let test_ring_records_through_capture () =
  (* The executor captures worker items with [exclusive]; the recorder
     must keep recording through it, and [replay] must not re-record. *)
  with_recorder (fun () ->
      let sink, drain = Obs.memory_sink () in
      Obs.exclusive sink (fun () -> Obs.event "inside-capture");
      let captured = drain () in
      Alcotest.(check int) "capture saw the item" 1 (List.length captured);
      Obs.replay captured;
      Alcotest.(check (list string))
        "ring recorded the item once, at emission"
        [ "inside-capture" ]
        (List.map item_name (Obs.Flight_recorder.local_items ())))

let test_ring_per_domain_isolation () =
  List.iter
    (fun domains ->
      with_recorder (fun () ->
          let tasks = 16 in
          let results =
            Coordination.Executor.Pool.map ~domains
              ~weights:(Array.make tasks 1) (fun i ->
                (* Record which domain actually ran the task in the
                   event NAME (ring-only recording keeps names but not
                   args); the ring the item lands in must be that same
                   domain's. *)
                Obs.event
                  (Printf.sprintf "task%d@dom%d" i (Domain.self () :> int));
                i)
          in
          Array.iter
            (function
              | Ok _ -> ()
              | Error e -> raise e)
            results;
          let rings = Obs.Flight_recorder.domains () in
          let total = ref 0 in
          List.iter
            (fun (dom, items) ->
              List.iter
                (fun item ->
                  match item with
                  | Obs.Event { Obs.ev_name = name; _ } ->
                    incr total;
                    let d =
                      match String.index_opt name '@' with
                      | Some at ->
                        int_of_string
                          (String.sub name (at + 4)
                             (String.length name - at - 4))
                      | None -> Alcotest.fail ("unexpected event " ^ name)
                    in
                    Alcotest.(check int)
                      (Printf.sprintf
                         "(domains=%d) item emitted on domain %d is in ring %d"
                         domains d dom)
                      dom d
                  | _ -> Alcotest.fail "unexpected item in ring")
                items)
            rings;
          Alcotest.(check int)
            (Printf.sprintf "(domains=%d) every task recorded exactly once"
               domains)
            tasks !total))
    [ 1; 2; 4 ]

let test_incident_dump_latch () =
  let path = Filename.temp_file "entangle-flight" ".jsonl" in
  with_recorder (fun () ->
      Obs.Flight_recorder.set_dump_path (Some path);
      let c = Obs.Counter.make "flight.incidents" in
      Obs.Counter.reset c;
      Obs.event "before-crash";
      Obs.Flight_recorder.incident "first-failure";
      let first_dump = read_file path in
      Obs.event "after-first";
      Obs.Flight_recorder.incident "second-failure";
      Alcotest.(check string)
        "second incident does not re-dump (latched)" first_dump
        (read_file path);
      Alcotest.(check int) "both incidents counted" 2 (Obs.Counter.value c);
      let lines =
        String.split_on_char '\n' first_dump
        |> List.filter (fun l -> String.trim l <> "")
      in
      let names =
        List.map
          (fun l -> Json.str_exn (Option.get (Json.member "name" (Json.parse l))))
          lines
      in
      Alcotest.(check (list string))
        "dump holds the window up to the first incident"
        [ "before-crash"; "flight.incident" ]
        names;
      let last = Json.parse (List.nth lines 1) in
      let reason =
        Json.member "args" last
        |> Option.get |> Json.member "reason" |> Option.get |> Json.str_exn
      in
      Alcotest.(check string) "incident carries its reason" "first-failure"
        reason);
  Sys.remove path

let test_abort_triggers_incident () =
  let path = Filename.temp_file "entangle-flight" ".jsonl" in
  with_recorder (fun () ->
      Obs.Flight_recorder.set_dump_path (Some path);
      let db = Database.create () in
      let queries = Helpers.figure1_queries db in
      let g =
        Resilient.arm { Resilient.default_config with max_probes = Some 0 }
      in
      Database.set_guard db (Some g);
      Resilient.start_solve g;
      match Coordination.Scc_algo.solve db queries with
      | Error _ -> Alcotest.fail "figure 1 program should be safe"
      | Ok outcome ->
        Alcotest.(check bool) "solve degraded under the 0-probe budget" true
          (outcome.Coordination.Scc_algo.degraded <> None);
        let dump = read_file path in
        Alcotest.(check bool) "abort dumped the flight window" true
          (String.length dump > 0);
        Alcotest.(check bool) "window marks the incident" true
          (let lines = String.split_on_char '\n' dump in
           List.exists
             (fun l ->
               String.trim l <> ""
               && Json.member "name" (Json.parse l) = Some (Json.Str "flight.incident"))
             lines));
  Sys.remove path

(* ------------------------- metrics export ------------------------- *)

let test_metrics_json_export () =
  Obs.reset_metrics ();
  let c = Obs.Counter.make "test.export.counter" in
  Obs.Counter.add c 7;
  Obs.Gauge.set (Obs.Gauge.make "test.export.gauge") 2.5;
  let h = Obs.Histogram.make "test.export.hist" in
  for v = 1 to 10 do
    Obs.Histogram.observe h (Int64.of_int v)
  done;
  let doc = Json.parse (Obs.metrics_json ()) in
  let find section name =
    match Json.member section doc with
    | Some (Json.Arr entries) ->
      List.find_opt
        (fun e -> Json.member "name" e = Some (Json.Str name))
        entries
    | _ -> Alcotest.failf "missing %s array" section
  in
  (match find "counters" "test.export.counter" with
  | Some e ->
    Alcotest.(check (float 0.001)) "counter value" 7.0
      (Json.num_exn (Option.get (Json.member "value" e)))
  | None -> Alcotest.fail "counter missing from JSON export");
  (match find "gauges" "test.export.gauge" with
  | Some e ->
    Alcotest.(check (float 0.001)) "gauge value" 2.5
      (Json.num_exn (Option.get (Json.member "value" e)))
  | None -> Alcotest.fail "gauge missing from JSON export");
  (match find "histograms" "test.export.hist" with
  | Some e ->
    Alcotest.(check (float 0.001)) "histogram count" 10.0
      (Json.num_exn (Option.get (Json.member "count" e)));
    Alcotest.(check (float 0.001)) "histogram sum" 55.0
      (Json.num_exn (Option.get (Json.member "sum" e)));
    List.iter
      (fun q ->
        Alcotest.(check bool)
          (Printf.sprintf "histogram has %s" q)
          true
          (Json.member q e <> None))
      [ "max"; "p50"; "p95"; "p99" ]
  | None -> Alcotest.fail "histogram missing from JSON export")

let test_metrics_prometheus_export () =
  Obs.reset_metrics ();
  Obs.Counter.add (Obs.Counter.make "test.prom.counter") 3;
  Obs.Counter.incr (Obs.Counter.labeled "test.prom.counter" "lbl");
  Obs.Gauge.set (Obs.Gauge.make "test.prom.gauge") 1.5;
  let text = Obs.metrics_prometheus () in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "line is a comment or sample: %s" l)
        true
        (String.length l > 0
        && (l.[0] = '#' || String.starts_with ~prefix:"entangle_" l)))
    lines;
  let has l = List.mem l lines in
  Alcotest.(check bool) "counter TYPE header" true
    (has "# TYPE entangle_test_prom_counter counter");
  Alcotest.(check bool) "counter sample" true
    (has "entangle_test_prom_counter 3");
  Alcotest.(check bool) "labeled sample" true
    (has "entangle_test_prom_counter{label=\"lbl\"} 1");
  Alcotest.(check bool) "gauge TYPE header" true
    (has "# TYPE entangle_test_prom_gauge gauge");
  Alcotest.(check int) "TYPE header appears once per family" 1
    (List.length
       (List.filter (( = ) "# TYPE entangle_test_prom_counter counter") lines))

(* -------------------- engine counter plumbing --------------------- *)

let test_counters_copy_diff () =
  let c = Counters.create () in
  c.Counters.probes <- 3;
  c.Counters.plan_hits <- 2;
  c.Counters.plan_misses <- 1;
  c.Counters.tuples_scanned <- 40;
  let snap = Counters.copy c in
  c.Counters.probes <- 10;
  c.Counters.tuples_scanned <- 100;
  Alcotest.(check int) "copy is independent" 3 snap.Counters.probes;
  let d = Counters.diff ~before:snap ~after:c in
  Alcotest.(check int) "diff probes" 7 d.Counters.probes;
  Alcotest.(check int) "diff plan_hits" 0 d.Counters.plan_hits;
  Alcotest.(check int) "diff tuples" 60 d.Counters.tuples_scanned;
  Alcotest.(check int) "diff leaves before untouched" 3 snap.Counters.probes;
  Alcotest.(check int) "diff leaves after untouched" 10 c.Counters.probes;
  let zero = Counters.diff ~before:c ~after:c in
  Alcotest.(check int) "self-diff is zero" 0 zero.Counters.probes;
  Alcotest.(check int) "self-diff is zero everywhere" 0
    (zero.Counters.plan_hits + zero.Counters.plan_misses
    + zero.Counters.tuples_scanned)

let test_stats_add_counters () =
  let stats = Coordination.Stats.create () in
  let d1 = Counters.create () in
  d1.Counters.probes <- 2;
  d1.Counters.plan_hits <- 1;
  d1.Counters.tuples_scanned <- 10;
  let d2 = Counters.create () in
  d2.Counters.probes <- 3;
  d2.Counters.plan_misses <- 4;
  d2.Counters.tuples_scanned <- 5;
  Coordination.Stats.add_counters stats d1;
  Coordination.Stats.add_counters stats d2;
  Alcotest.(check int) "probes accumulate" 5 stats.Coordination.Stats.db_probes;
  Alcotest.(check int) "plan hits accumulate" 1
    stats.Coordination.Stats.plan_hits;
  Alcotest.(check int) "plan misses accumulate" 4
    stats.Coordination.Stats.plan_misses;
  Alcotest.(check int) "tuples accumulate" 15
    stats.Coordination.Stats.tuples_scanned

let suite =
  [
    ("clock is monotonic", `Quick, test_clock_monotonic);
    ("span nesting and ordering", `Quick, test_span_nesting);
    ("disarmed sites cost nothing observable", `Quick, test_span_disarmed);
    ("spans close on exception", `Quick, test_span_exception);
    ("typed payloads survive the stream", `Quick, test_event_payload);
    ("histogram bucket boundaries", `Quick, test_histogram_buckets);
    ("histogram percentiles", `Quick, test_histogram_percentiles);
    ("hist spans obey the metrics gate", `Quick, test_histogram_metrics_gate);
    ("counters and labels", `Quick, test_counters);
    ("jsonl sink round-trip", `Quick, test_jsonl_roundtrip);
    ("chrome sink round-trip", `Quick, test_chrome_roundtrip);
    ("chrome empty trace is valid", `Quick, test_chrome_empty_is_valid);
    ("flight ring drops oldest", `Quick, test_ring_drop_oldest);
    ("flight ring capacity one", `Quick, test_ring_capacity_one);
    ("flight ring records through capture", `Quick,
     test_ring_records_through_capture);
    ("flight rings are per-domain", `Quick, test_ring_per_domain_isolation);
    ("incident dumps once and counts", `Quick, test_incident_dump_latch);
    ("guard abort triggers the flight dump", `Quick,
     test_abort_triggers_incident);
    ("metrics export as JSON", `Quick, test_metrics_json_export);
    ("metrics export as Prometheus text", `Quick,
     test_metrics_prometheus_export);
    ("explain reads solver events from obs", `Quick, test_explain_via_obs);
    ("engine counters: copy and diff", `Quick, test_counters_copy_diff);
    ("stats accumulate counter deltas", `Quick, test_stats_add_counters);
  ]
