(* Compiled query plans: differential agreement with the interpreted
   evaluator on workload databases, plan-cache keying, and index posting
   maintenance across delete/compact cycles. *)

open Relational
open Helpers

let q atoms = Cq.make atoms

let valuations_equal l1 l2 =
  let norm l = List.sort_uniq (Eval.Binding.compare Value.compare) l in
  List.equal (fun a b -> Eval.Binding.compare Value.compare a b = 0) (norm l1)
    (norm l2)

(* ---------------- differential: workload databases ---------------- *)

(* Random bodies over a real database: atoms over its relations, each
   argument a variable from a small pool (joins arise from reuse), a
   constant that actually occurs in that column (selective and
   satisfiable), or a junk constant (exercises empty index postings). *)
let random_body rng db =
  let rels = Database.relations db in
  let n_atoms = 1 + Prng.int rng 3 in
  let atoms =
    List.init n_atoms (fun _ ->
        let r = Prng.pick rng rels in
        let args =
          Array.init (Relation.arity r) (fun col ->
              match Prng.int rng 5 with
              | 0 | 1 | 2 ->
                Term.Var (Printf.sprintf "v%d" (Prng.int rng 4))
              | 3 -> (
                match Value.Set.elements (Relation.distinct_values r ~col) with
                | [] -> Term.int 424242
                | vs -> Term.const (Prng.pick rng vs))
              | _ -> Term.int 424242)
        in
        { Cq.rel = Relation.name r; args })
  in
  q atoms

let check_differential ~seed ~rounds db =
  let rng = Prng.create seed in
  for i = 1 to rounds do
    let body = random_body rng db in
    let reference = Eval.find_all ~plan:Eval.Greedy_indexed db body in
    List.iter
      (fun (plan, label) ->
        if not (valuations_equal reference (Eval.find_all ~plan db body)) then
          Alcotest.failf "round %d: %s disagrees with interpreted on %a" i
            label Cq.pp body)
      [
        (Eval.Compiled, "compiled");
        (Eval.Compiled_nocache, "compiled (no cache)");
        (Eval.Fixed_indexed, "fixed order + index");
      ];
    (* count and satisfiable must agree with the same enumeration. *)
    let n = List.length reference in
    Alcotest.(check int) "count agrees" n (Eval.count db body);
    Alcotest.(check bool) "satisfiable agrees" (n > 0) (Eval.satisfiable db body)
  done

let test_differential_movies () =
  let db, _queries = Workload.Movies.make () in
  check_differential ~seed:31 ~rounds:120 db

let test_differential_flights () =
  let db = Database.create () in
  ignore (Workload.Flights.install_flights db ~rows:60);
  ignore (Workload.Flights.install_complete_friends db ~users:8);
  check_differential ~seed:77 ~rounds:120 db

(* ------------------------ plan-cache keying ----------------------- *)

(* Isomorphic up to variable renaming and constant values: one key. *)
let test_key_isomorphic () =
  let k1 = Plan.key (q [ atom "F" [ var "x"; cs "Zurich" ]; atom "H" [ var "y"; var "x" ] ]) in
  let k2 = Plan.key (q [ atom "F" [ var "a"; cs "Paris" ]; atom "H" [ var "b"; var "a" ] ]) in
  Alcotest.(check string) "isomorphic queries share a key" k1 k2;
  (* Different join structure: different key. *)
  let k3 = Plan.key (q [ atom "F" [ var "a"; cs "Paris" ]; atom "H" [ var "b"; var "b" ] ]) in
  Alcotest.(check bool) "different shape, different key" false (k1 = k3);
  (* Variable vs constant in the same position: different key. *)
  let k4 = Plan.key (q [ atom "F" [ var "x"; var "z" ]; atom "H" [ var "y"; var "x" ] ]) in
  Alcotest.(check bool) "const vs var, different key" false (k1 = k4)

let test_cache_sharing () =
  let db = flights_db () in
  Database.reset_counters db;
  let q1 = q [ atom "F" [ var "x"; cs "Zurich" ] ] in
  let q2 = q [ atom "F" [ var "dest"; cs "Paris" ] ] in
  ignore (Eval.find_all db q1);
  ignore (Eval.find_all db q2);
  ignore (Eval.find_all db q1);
  Alcotest.(check int) "one shape cached" 1 (Database.plan_cache_size db);
  let c = Database.counters db in
  Alcotest.(check int) "one miss" 1 c.Counters.plan_misses;
  Alcotest.(check int) "two hits" 2 c.Counters.plan_hits;
  (* The shared plan must not leak one instance's constants into the
     other: the two probes see different rows. *)
  let dests body =
    Eval.find_all db body
    |> List.map (fun b -> Eval.Binding.find "x" b)
    |> List.sort_uniq Value.compare
  in
  Alcotest.(check (list value_t)) "Zurich probe"
    [ vi 101; vi 102 ]
    (dests (q [ atom "F" [ var "x"; cs "Zurich" ] ]));
  Alcotest.(check (list value_t)) "Paris probe" [ vi 200 ]
    (dests (q [ atom "F" [ var "x"; cs "Paris" ] ]))

let test_cache_invalidation () =
  let db = flights_db () in
  ignore (Eval.find_all db (q [ atom "F" [ var "x"; var "y" ] ]));
  Alcotest.(check bool) "plan cached" true (Database.plan_cache_size db > 0);
  ignore (Database.create_table' db "G" [ "a" ]);
  Alcotest.(check int) "cache cleared on create_table" 0
    (Database.plan_cache_size db);
  (* A dropped relation makes cached plans for it unusable; the cache is
     cleared, and a fresh evaluation raises as the interpreter would. *)
  ignore (Eval.find_all db (q [ atom "G" [ var "a" ] ]));
  Database.drop_table db "G";
  Alcotest.(check int) "cache cleared on drop_table" 0
    (Database.plan_cache_size db);
  Alcotest.check_raises "unknown after drop" (Eval.Unknown_relation "G")
    (fun () -> ignore (Eval.find_all db (q [ atom "G" [ var "a" ] ])))

let test_nocache_counts_misses () =
  let db = flights_db () in
  Database.reset_counters db;
  let body = q [ atom "F" [ var "x"; cs "Zurich" ] ] in
  ignore (Eval.find_all ~plan:Eval.Compiled_nocache db body);
  ignore (Eval.find_all ~plan:Eval.Compiled_nocache db body);
  let c = Database.counters db in
  Alcotest.(check int) "nocache: all misses" 2 c.Counters.plan_misses;
  Alcotest.(check int) "nocache: no hits" 0 c.Counters.plan_hits;
  Alcotest.(check int) "nocache: nothing stored" 0 (Database.plan_cache_size db)

(* Same shape, different constants, selective position: results must
   come from each instance's own constant even though the compiled plan
   is shared (constants are parameters, never baked into the plan). *)
let test_shared_plan_distinct_constants () =
  let db = Database.create () in
  ignore (Database.create_table' db "E" [ "src"; "dst" ]);
  for i = 0 to 9 do
    Database.insert db "E" [ vi i; vi (i + 1) ]
  done;
  Database.reset_counters db;
  for i = 0 to 9 do
    let body = q [ atom "E" [ ci i; var "y" ] ] in
    match Eval.find_all db body with
    | [ b ] ->
      Alcotest.check value_t
        (Printf.sprintf "successor of %d" i)
        (vi (i + 1))
        (Eval.Binding.find "y" b)
    | other -> Alcotest.failf "probe %d: %d results" i (List.length other)
  done;
  let c = Database.counters db in
  Alcotest.(check int) "one compilation serves ten probes" 1
    c.Counters.plan_misses;
  Alcotest.(check int) "nine hits" 9 c.Counters.plan_hits

(* ------------------ index postings under deletes ------------------ *)

let test_posting_pruning () =
  let r = Relation.create (Schema.make "T" [ "k"; "v" ]) in
  (* 100 rows sharing one key, so everything lands in one posting. *)
  for i = 0 to 99 do
    ignore (Relation.insert r (tup [ vi 7; vi i ]))
  done;
  (* Pad with other keys so store-wide compaction (at >1/2 dead overall)
     does not kick in while we watch the single posting prune. *)
  for i = 1000 to 1199 do
    ignore (Relation.insert r (tup [ vi i; vi i ]))
  done;
  Alcotest.(check int) "posting built" 100
    (Relation.posting_length r ~col:0 (vi 7));
  (* Delete 49 of 100: dead (49) < live (51), no pruning yet. *)
  for i = 0 to 48 do
    ignore (Relation.delete r (tup [ vi 7; vi i ]))
  done;
  Alcotest.(check int) "live count" 51 (Relation.count_matching r ~col:0 (vi 7));
  Alcotest.(check int) "tombstones retained below threshold" 100
    (Relation.posting_length r ~col:0 (vi 7));
  (* Two more deletes tip dead past live: the posting filters itself. *)
  ignore (Relation.delete r (tup [ vi 7; vi 49 ]));
  ignore (Relation.delete r (tup [ vi 7; vi 50 ]));
  Alcotest.(check int) "live count after tip" 49
    (Relation.count_matching r ~col:0 (vi 7));
  Alcotest.(check int) "posting pruned in place" 49
    (Relation.posting_length r ~col:0 (vi 7));
  (* Lookups agree with a fresh scan after pruning. *)
  Alcotest.(check int) "lookup sees live rows only" 49
    (List.length (Relation.lookup r ~col:0 (vi 7)))

let test_delete_compact_cycles () =
  let db = Database.create () in
  ignore (Database.create_table' db "E" [ "a"; "b" ]);
  let r = Database.relation db "E" in
  let body = q [ atom "E" [ ci 1; var "y" ] ] in
  (* Churn: fill, query, delete most, query, repeat.  Each round crosses
     both the posting-pruning and the whole-store compaction thresholds;
     results must stay exact and the invariant posting <= 2*live must
     hold after every delete. *)
  for round = 0 to 4 do
    for i = 0 to 49 do
      Database.insert db "E" [ vi 1; vi ((100 * round) + i) ]
    done;
    Alcotest.(check int)
      (Printf.sprintf "round %d: all rows visible" round)
      (50 + (5 * round))
      (Eval.count db body);
    for i = 0 to 44 do
      ignore (Relation.delete r (tup [ vi 1; vi ((100 * round) + i) ]));
      let live = Relation.count_matching r ~col:0 (vi 1) in
      let posting = Relation.posting_length r ~col:0 (vi 1) in
      if posting > 2 * live then
        Alcotest.failf "round %d: posting %d > 2*live %d" round posting live
    done;
    Alcotest.(check int)
      (Printf.sprintf "round %d: survivors visible" round)
      (5 * (round + 1))
      (Eval.count db body);
    (* The compiled and interpreted paths agree on the churned store. *)
    Alcotest.(check bool)
      (Printf.sprintf "round %d: differential" round)
      true
      (valuations_equal
         (Eval.find_all ~plan:Eval.Greedy_indexed db body)
         (Eval.find_all ~plan:Eval.Compiled db body))
  done

(* ---------------------- observed plan statistics ------------------ *)

(* The flights fixture on a chosen backend (the shared helper is
   row-only). *)
let flights_backend backend =
  let db = Database.create ~backend () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  ignore (Database.create_table' db "H" [ "hid"; "loc" ]);
  List.iter
    (fun (f, d) -> Database.insert db "F" [ vi f; vs d ])
    [ (101, "Zurich"); (102, "Zurich"); (200, "Paris"); (300, "Athens") ];
  List.iter
    (fun (h, l) -> Database.insert db "H" [ vi h; vs l ])
    [ (7, "Paris"); (8, "Athens"); (9, "Zurich") ];
  db

let scanned_total db =
  List.fold_left
    (fun acc (_, plan) ->
      Array.fold_left
        (fun acc (so : Plan.step_stat) -> acc + so.Plan.s_scanned)
        acc (Plan.stats plan).Plan.steps_obs)
    0 (Database.cached_plans db)

(* The always-on per-step scanned counters and the engine's
   [tuples_scanned] counter meter the same thing; their totals must
   agree exactly, on both execution backends. *)
let test_observed_equals_tuples_scanned () =
  List.iter
    (fun backend ->
      let label = Database.backend_to_string backend in
      let db = flights_backend backend in
      Database.reset_counters db;
      List.iter
        (fun body -> ignore (Eval.find_all db body))
        [
          q [ atom "F" [ var "x"; cs "Zurich" ] ];
          q [ atom "F" [ var "x"; var "d" ]; atom "H" [ var "h"; var "d" ] ];
          q [ atom "F" [ var "x"; cs "Paris" ] ];
          q [ atom "F" [ var "x"; var "d" ]; atom "H" [ var "h"; var "d" ] ];
        ];
      let c = Database.counters db in
      Alcotest.(check bool) (label ^ ": something was scanned") true
        (c.Counters.tuples_scanned > 0);
      Alcotest.(check int)
        (label ^ ": per-step scanned totals tuples_scanned")
        c.Counters.tuples_scanned (scanned_total db))
    [ Database.Row; Database.Columnar ]

let test_estimates_and_drift () =
  let db = flights_db () in
  let body = q [ atom "F" [ var "x"; cs "Zurich" ] ] in
  let plan, _ = Database.prepare db body in
  let stats = Plan.stats plan in
  (* 4 live rows over 3 distinct destinations: ceil(4/3) = 2 per
     bucket is the compile-time estimate of the dest-index access. *)
  Alcotest.(check int) "estimate is the average bucket" 2
    stats.Plan.est_rows.(0);
  Alcotest.(check int) "compiled at the current data version"
    (Database.data_version db) stats.Plan.compiled_version;
  Alcotest.(check (float 0.001)) "never entered: drift is 1" 1.0
    (Plan.max_drift plan);
  ignore (Eval.find_all db body);
  (* The Zurich bucket really holds 2 rows: the estimate is exact. *)
  Alcotest.(check int) "executions" 1 stats.Plan.executions;
  Alcotest.(check (float 0.001)) "observed matches the estimate" 1.0
    (Plan.max_drift plan);
  (* Skew the data after compilation: the same plan now scans a much
     bigger bucket than it was planned for, and drift says so. *)
  for i = 1 to 5 do
    Database.insert db "F" [ vi (400 + i); Value.str "Zurich" ]
  done;
  ignore (Eval.find_all db body);
  Alcotest.(check int) "executions accumulate" 2 stats.Plan.executions;
  (* Mean scanned per entry is (2 + 7) / 2 = 4.5 against estimate 2. *)
  Alcotest.(check (float 0.001)) "drift reflects the skew" 2.25
    (Plan.max_drift plan);
  Alcotest.(check bool) "cache hit stamped the data version" true
    (stats.Plan.last_seen_version > stats.Plan.compiled_version);
  Alcotest.(check int) "stamped with the current version"
    (Database.data_version db) stats.Plan.last_seen_version;
  Plan.reset_stats plan;
  Alcotest.(check int) "reset zeroes executions" 0 stats.Plan.executions;
  Alcotest.(check int) "reset zeroes step counters" 0 (scanned_total db);
  Alcotest.(check (float 0.001)) "reset zeroes drift" 1.0 (Plan.max_drift plan)

(* Analyze mode adds per-step and whole-plan wall clock on both
   backends; the counters do not depend on it. *)
let test_analyze_mode_times_steps () =
  List.iter
    (fun backend ->
      let label = Database.backend_to_string backend in
      let db = flights_backend backend in
      let body =
        q [ atom "F" [ var "x"; var "d" ]; atom "H" [ var "h"; var "d" ] ]
      in
      let plan, _ = Database.prepare db body in
      let stats = Plan.stats plan in
      ignore (Eval.find_all db body);
      Alcotest.(check bool) (label ^ ": no timing when disarmed") true
        (stats.Plan.exec_ns = 0L
        && Array.for_all
             (fun (so : Plan.step_stat) -> so.Plan.s_ns = 0L)
             stats.Plan.steps_obs);
      Plan.set_analyze true;
      Fun.protect
        ~finally:(fun () -> Plan.set_analyze false)
        (fun () -> ignore (Eval.find_all db body));
      Alcotest.(check bool) (label ^ ": analyze accrues plan time") true
        (stats.Plan.exec_ns > 0L);
      Alcotest.(check bool) (label ^ ": analyze accrues step time") true
        (Array.exists
           (fun (so : Plan.step_stat) -> so.Plan.s_ns > 0L)
           stats.Plan.steps_obs))
    [ Database.Row; Database.Columnar ]

let test_pp_analyze_renders () =
  let db = flights_db () in
  let body = q [ atom "F" [ var "x"; cs "Zurich" ] ] in
  ignore (Eval.find_all db body);
  let plan, _ = Database.prepare db body in
  let s = Format.asprintf "%a" Plan.pp_analyze plan in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "pp_analyze mentions %S" needle)
        true (contains needle))
    [ "est_rows="; "scanned="; "emitted="; "sel="; "executions=" ]

let suite =
  [
    Alcotest.test_case "differential: movies" `Quick test_differential_movies;
    Alcotest.test_case "differential: flights" `Quick test_differential_flights;
    Alcotest.test_case "key: isomorphism classes" `Quick test_key_isomorphic;
    Alcotest.test_case "cache: isomorphic probes share" `Quick test_cache_sharing;
    Alcotest.test_case "cache: schema changes invalidate" `Quick
      test_cache_invalidation;
    Alcotest.test_case "cache: nocache bypasses" `Quick test_nocache_counts_misses;
    Alcotest.test_case "cache: constants stay per-instance" `Quick
      test_shared_plan_distinct_constants;
    Alcotest.test_case "postings: prune at half dead" `Quick test_posting_pruning;
    Alcotest.test_case "postings: delete/compact cycles" `Quick
      test_delete_compact_cycles;
    Alcotest.test_case "stats: observed == tuples_scanned (both backends)"
      `Quick test_observed_equals_tuples_scanned;
    Alcotest.test_case "stats: estimates, drift, versions, reset" `Quick
      test_estimates_and_drift;
    Alcotest.test_case "stats: analyze mode times steps" `Quick
      test_analyze_mode_times_steps;
    Alcotest.test_case "stats: pp_analyze renders the table" `Quick
      test_pp_analyze_renders;
  ]
