(* The `entangle` command-line tool.

   entangle solve FILE      evaluate an entangled-query program
   entangle check FILE      classify a program (safety, uniqueness, ...)
   entangle generate ...    emit workload programs for experimentation *)

open Cmdliner
open Relational

let read_file path =
  let ic = open_in_bin path in
  let s =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in ic;
      raise e
  in
  close_in ic;
  s

let load ?backend path =
  let program = Entangled.Parser.parse_program (read_file path) in
  let db = Database.create ?backend () in
  let queries = Entangled.Parser.load_program db program in
  (db, queries)

let backend_conv =
  let parse s =
    match Database.backend_of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown backend %S (row|columnar)" s))
  in
  let print ppf b = Format.pp_print_string ppf (Database.backend_to_string b) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Database.Row
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Storage backend: $(b,row) (boxed tuples, the reference) or \
           $(b,columnar) (dictionary-interned Bigarray columns with the \
           allocation-free probe cursor).  Answers and statistics are \
           identical; only speed differs.")

(* Validated numeric converters: nonsense values are rejected at parse
   time with a message naming the constraint, instead of leaking into
   the solver (where a negative deadline silently means "already
   expired" and a fault rate above 1 is just "always"). *)
let probability_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
    | Some p when p < 0.0 || p > 1.0 ->
      Error
        (`Msg
           (Printf.sprintf "expected a probability in [0.0, 1.0], got %s" s))
    | Some p -> Ok p
  in
  Arg.conv (parse, Format.pp_print_float)

let nonneg_float_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
    | Some v when v < 0.0 ->
      Error (`Msg (Printf.sprintf "expected a non-negative number, got %s" s))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_float)

let nonneg_int_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    | Some v when v < 0 ->
      Error
        (`Msg (Printf.sprintf "expected a non-negative integer, got %s" s))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    | Some v when v < 1 ->
      Error (`Msg (Printf.sprintf "expected a positive integer, got %s" s))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_int)

let fsync_conv =
  let parse s =
    match Durable.fsync_policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown fsync policy %S (always|never|every-n:<N>)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Durable.fsync_policy_to_string p)
  in
  Arg.conv (parse, print)

let handle_syntax f =
  try f () with
  | Entangled.Parser.Syntax_error (line, msg) ->
    Printf.eprintf "syntax error on line %d: %s\n" line msg;
    exit 2
  | Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

(* ------------------------------ solve ----------------------------- *)

type algorithm = Scc | Gupta | Single_connected | Brute | Consistent

let algorithm_conv =
  let parse = function
    | "scc" -> Ok Scc
    | "gupta" -> Ok Gupta
    | "single-connected" -> Ok Single_connected
    | "brute" -> Ok Brute
    | "consistent" -> Ok Consistent
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Scc -> "scc"
      | Gupta -> "gupta"
      | Single_connected -> "single-connected"
      | Brute -> "brute"
      | Consistent -> "consistent")
  in
  Arg.conv (parse, print)

let print_degraded = function
  | None -> ()
  | Some d ->
    Format.printf "DEGRADED: %a@." Resilient.pp_degradation d

let print_stats ?domains stats =
  match domains with
  | None -> Format.printf "stats: %a@." Coordination.Stats.pp stats
  | Some d ->
    Format.printf "stats: %a domains=%d@." Coordination.Stats.pp stats d

let print_solution ?domains db queries solution stats show_stats =
  match solution with
  | None ->
    print_endline "no coordinating set exists";
    if show_stats then print_stats ?domains stats
  | Some s ->
    Format.printf "%a@." (Entangled.Solution.pp queries) s;
    (match Entangled.Solution.validate db queries s with
    | Ok () -> ()
    | Error m -> Format.printf "WARNING: solution failed validation: %s@." m);
    if show_stats then print_stats ?domains stats

let solve_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Scc
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Evaluation algorithm: $(b,scc) (Section 4, safe sets), \
             $(b,gupta) (baseline, safe+unique), $(b,single-connected) \
             (Theorem 3), $(b,consistent) (Section 5 restricted form; the \
             program must match it) or $(b,brute) (exact, tiny inputs \
             only).")
  in
  let first =
    Arg.(
      value & flag
      & info [ "first" ]
          ~doc:"Return the first coordinating set found instead of a largest one.")
  in
  let parallel =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:
            "Shard the batch across its coordination-graph components and \
             solve them on a pool of domains (algorithms $(b,scc), \
             $(b,gupta) and $(b,consistent)); output is identical to the \
             sequential run.")
  in
  let domains =
    Arg.(
      value
      & opt (some pos_int_conv) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domain-pool size for $(b,--parallel); defaults to the \
             machine's recommended domain count.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print probe counts and timings.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"PATH"
          ~doc:"Write the coordination graph in Graphviz DOT format to $(docv).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print a step-by-step trace of the SCC algorithm, including \
             the SQL each candidate set sends to the database.")
  in
  let explain_analyze =
    Arg.(
      value & flag
      & info [ "explain-analyze" ]
          ~doc:
            "After solving, print every cached query plan with its \
             observed statistics: join order, access paths, estimated vs \
             observed cardinality per step, tuples scanned and emitted, \
             selectivity, and per-step times (the solve runs under \
             analyze-mode timing).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a metrics-registry snapshot after the solve: JSON to \
             $(docv) and Prometheus text exposition to $(docv).prom.  \
             Implies metrics recording (as $(b,--metrics)) without the \
             stdout dump.")
  in
  let flight_recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "Arm the always-on flight recorder: every domain keeps a \
             fixed-size ring of its most recent observability items, and \
             on the first incident (degraded solve, typed abort, worker \
             crash) the merged window is dumped to $(docv) — Chrome \
             trace_event JSON, or JSONL when $(docv) ends in $(b,.jsonl).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Record a structured execution trace (solver phases, per-probe \
             spans) to $(docv); see $(b,--trace-format).")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Trace encoding: $(b,chrome) (a $(b,trace_event) JSON array, \
             loadable in chrome://tracing or Perfetto) or $(b,jsonl) (one \
             JSON object per line).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Record latency histograms and counters during evaluation and \
             dump them (with p50/p95/p99) after the answer.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some nonneg_float_conv) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the whole solve; on expiry the solver \
             returns the best (partial) answer found so far, marked \
             $(b,DEGRADED).")
  in
  let max_probes =
    Arg.(
      value
      & opt (some nonneg_int_conv) None
      & info [ "max-probes" ] ~docv:"N"
          ~doc:"Abort (degraded) after $(docv) database probe attempts.")
  in
  let max_tuples =
    Arg.(
      value
      & opt (some nonneg_int_conv) None
      & info [ "max-tuples" ] ~docv:"N"
          ~doc:"Abort (degraded) after scanning $(docv) tuples.")
  in
  let probe_timeout_ms =
    Arg.(
      value
      & opt (some nonneg_float_conv) None
      & info [ "probe-timeout-ms" ] ~docv:"MS"
          ~doc:"Per-probe time limit; slow probes fail (and may retry).")
  in
  let max_attempts =
    Arg.(
      value & opt pos_int_conv 4
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:
            "Attempts per probe before a transient fault becomes fatal \
             (exponential backoff between attempts).")
  in
  let fault_rate =
    Arg.(
      value & opt probability_conv 0.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Chaos mode: inject a transient probe failure with probability \
             $(docv) per attempt (deterministic given $(b,--fault-seed)).")
  in
  let fault_seed =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed for the deterministic fault injector.")
  in
  (* The solver body computes an exit code instead of exiting so an
     installed trace sink always writes its trailer (a Chrome trace
     without the closing bracket is not valid JSON). *)
  let run file algorithm first parallel domains stats dot explain
      explain_analyze metrics_out flight_recorder trace trace_format metrics
      deadline_ms max_probes max_tuples probe_timeout_ms max_attempts
      fault_rate fault_seed backend =
    handle_syntax @@ fun () ->
    let db, input = load ~backend file in
    (match flight_recorder with
    | None -> ()
    | Some path ->
      Obs.Flight_recorder.set_dump_path (Some path);
      Obs.Flight_recorder.arm ());
    (* The resolved pool size, for the stats line; [None] when running
       sequentially so the line matches the sequential run exactly. *)
    let pool_domains =
      if not parallel then None
      else
        Some
          (match domains with
          | Some d -> max 1 d
          | None -> Coordination.Executor.default_domains ())
    in
    if metrics || metrics_out <> None then Obs.set_metrics true;
    let guard =
      if
        deadline_ms = None && max_probes = None && max_tuples = None
        && probe_timeout_ms = None && fault_rate = 0.0
      then None
      else begin
        let ns_of_ms ms = Int64.of_float (ms *. 1e6) in
        let faults =
          if fault_rate > 0.0 then
            Some
              {
                Resilient.fault_defaults with
                fault_seed;
                transient_rate = fault_rate;
              }
          else None
        in
        Some
          (Resilient.arm
             {
               Resilient.default_config with
               max_probes;
               max_tuples;
               deadline_ns = Option.map ns_of_ms deadline_ms;
               probe_timeout_ns = Option.map ns_of_ms probe_timeout_ms;
               max_attempts;
               faults;
             })
      end
    in
    Database.set_guard db guard;
    Option.iter Resilient.start_solve guard;
    let solve_it () =
      if explain then
        match Coordination.Explain.trace db input with
        | Error (Coordination.Scc_algo.Not_safe ws) ->
          Printf.eprintf
            "the query set is not safe (%d ambiguous postconditions)\n"
            (List.length ws);
          1
        | Ok report ->
          Format.printf "%a@." (Coordination.Explain.pp db) report;
          0
      else begin
        let write_dot queries (graph : Entangled.Coordination_graph.t) highlight =
          match dot with
          | None -> ()
          | Some path ->
            Graphs.Dot.to_file
              ~label:(fun i -> queries.(i).Entangled.Query.name)
              ~highlight graph.graph ~path
        in
        match algorithm with
        | Scc -> (
          let selection =
            if first then Coordination.Scc_algo.First_found
            else Coordination.Scc_algo.Largest
          in
          let result =
            match pool_domains with
            | None -> Coordination.Scc_algo.solve ~selection db input
            | Some d ->
              Coordination.Executor.solve_scc ~selection ~domains:d db input
          in
          match result with
          | Error (Coordination.Scc_algo.Not_safe ws) ->
            Printf.eprintf
              "the query set is not safe (%d ambiguous postconditions); try \
               `--algorithm consistent` or `--algorithm brute`\n"
              (List.length ws);
            1
          | Ok outcome ->
            let in_solution i =
              match outcome.solution with
              | Some s -> List.mem i s.members
              | None -> false
            in
            write_dot outcome.queries outcome.graph in_solution;
            print_solution ?domains:pool_domains db outcome.queries
              outcome.solution outcome.stats stats;
            print_degraded outcome.degraded;
            0)
        | Gupta -> (
          let result =
            match pool_domains with
            | None -> Coordination.Gupta.solve db input
            | Some d -> Coordination.Executor.solve_gupta ~domains:d db input
          in
          match result with
          | Error e ->
            Format.eprintf "baseline not applicable: %a@."
              (Coordination.Gupta.pp_error (Entangled.Query.rename_set input))
              e;
            1
          | Ok outcome ->
            print_solution ?domains:pool_domains db outcome.queries
              outcome.solution outcome.stats stats;
            print_degraded outcome.degraded;
            0)
        | Consistent -> (
          match Coordination.Consistent_query.of_entangled db input with
          | Error m ->
            Printf.eprintf
              "not a Section 5 consistent-coordination program: %s\n" m;
            1
          | Ok (config, qs) -> (
            let result =
              match pool_domains with
              | None -> Coordination.Consistent.solve db config qs
              | Some d ->
                Coordination.Executor.solve_consistent ~domains:d db config qs
            in
            match result with
            | Error e ->
              Format.eprintf "consistent coordination failed: %a@."
                Coordination.Consistent.pp_error e;
              1
            | Ok outcome ->
              (match Coordination.Consistent.to_solution db outcome with
              | Some (queries, s) ->
                print_solution ?domains:pool_domains db queries (Some s)
                  outcome.stats stats
              | None ->
                print_solution ?domains:pool_domains db [||] None
                  outcome.stats stats);
              print_degraded outcome.degraded;
              0))
        | Single_connected when parallel ->
          Printf.eprintf
            "--parallel supports scc, gupta and consistent only\n";
          1
        | Brute when parallel ->
          Printf.eprintf
            "--parallel supports scc, gupta and consistent only\n";
          1
        | Single_connected -> (
          match Coordination.Single_connected.solve db input with
          | Error e ->
            Format.eprintf "not single-connected: %a@."
              (Coordination.Single_connected.pp_error
                 (Entangled.Query.rename_set input))
              e;
            1
          | Ok outcome ->
            print_solution db outcome.queries outcome.solution outcome.stats
              stats;
            print_degraded outcome.degraded;
            0)
        | Brute ->
          let queries = Entangled.Query.rename_set input in
          if Array.length queries > Coordination.Brute.max_queries then begin
            Printf.eprintf "brute force is limited to %d queries\n"
              Coordination.Brute.max_queries;
            1
          end
          else begin
            let outcome = Coordination.Brute.solve db queries in
            (match outcome.solution with
            | None -> print_endline "no coordinating set exists"
            | Some s -> (
              Format.printf "%a@." (Entangled.Solution.pp queries) s;
              match Entangled.Solution.validate db queries s with
              | Ok () -> ()
              | Error m -> Format.printf "WARNING: validation failed: %s@." m));
            if stats then
              Format.printf "stats: %a@." Coordination.Stats.pp outcome.stats;
            print_degraded outcome.degraded;
            0
          end
      end
    in
    let run_solve () =
      if explain_analyze then Coordination.Explain.with_analyze solve_it
      else solve_it ()
    in
    let code =
      match trace with
      | None -> run_solve ()
      | Some path ->
        let oc = open_out path in
        let sink =
          match trace_format with
          | `Chrome -> Obs.chrome_sink (output_string oc)
          | `Jsonl -> Obs.jsonl_sink (output_string oc)
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Obs.with_sink sink run_solve)
    in
    if explain_analyze then
      Format.printf "%a@." Coordination.Explain.pp_analyze db;
    (match guard with
    | Some g when stats ->
      Format.printf "guard: %a@." Resilient.pp_usage (Resilient.usage g)
    | Some _ | None -> ());
    if metrics then Format.printf "-- metrics --@.%a@?" Obs.pp_metrics ();
    (match metrics_out with
    | None -> ()
    | Some path ->
      (* Deterministic gauges describing the end state, so the snapshot
         is meaningful (and testable) even for a fault-free solve. *)
      let gauge name help v =
        Obs.Gauge.set (Obs.Gauge.make ~help name) (float_of_int v)
      in
      gauge "db.plan_cache_size" "cached plan shapes" (Database.plan_cache_size db);
      gauge "db.tables" "relations in the database" (List.length (Database.relations db));
      gauge "db.tuples" "live tuples in the database" (Database.total_tuples db);
      gauge "db.data_version" "content-version stamp" (Database.data_version db);
      let write p s =
        let oc = open_out p in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc s)
      in
      write path (Obs.metrics_json ());
      write (path ^ ".prom") (Obs.metrics_prometheus ()));
    if code <> 0 then exit code
  in
  let doc = "Find a coordinating set for an entangled-query program." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Cmdliner.Term.(
      const run $ file $ algorithm $ first $ parallel $ domains $ stats $ dot
      $ explain $ explain_analyze $ metrics_out $ flight_recorder $ trace
      $ trace_format $ metrics $ deadline_ms $ max_probes $ max_tuples
      $ probe_timeout_ms $ max_attempts $ fault_rate $ fault_seed
      $ backend_arg)

(* ------------------------------ check ----------------------------- *)

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    handle_syntax @@ fun () ->
    let db, input = load file in
    let queries = Entangled.Query.rename_set input in
    Printf.printf "queries:    %d\n" (Array.length queries);
    Printf.printf "database:   %d relations, %d tuples\n"
      (List.length (Database.relations db))
      (Database.total_tuples db);
    Array.iter
      (fun q ->
        match Entangled.Query.well_formed db q with
        | Ok () -> ()
        | Error m -> Printf.printf "ill-formed %s: %s\n" q.Entangled.Query.name m)
      queries;
    let graph = Entangled.Coordination_graph.build queries in
    Printf.printf "graph:      %d edges (%d extended)\n"
      (Graphs.Digraph.edge_count graph.graph)
      (List.length graph.extended);
    let class_name =
      match Entangled.Safety.classify graph with
      | `Safe_unique -> "safe and unique (gupta, scc)"
      | `Safe -> "safe, not unique (scc)"
      | `Unsafe -> "unsafe (consistent-coordination API or brute)"
    in
    Printf.printf "class:      %s\n" class_name;
    (match Coordination.Single_connected.check graph with
    | Ok () -> Printf.printf "            also single-connected (Theorem 3)\n"
    | Error _ -> ());
    let scc = Graphs.Scc.compute graph.graph in
    Printf.printf "components: %d SCCs, largest %d\n" scc.count
      (Array.fold_left (fun m ms -> max m (List.length ms)) 0 scc.members)
  in
  let doc = "Parse a program and report safety, uniqueness and graph shape." in
  Cmd.v (Cmd.info "check" ~doc) Cmdliner.Term.(const run $ file)

(* ----------------------------- generate --------------------------- *)

let emit_program db queries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let schema = Relation.schema r in
      Buffer.add_string buf
        (Printf.sprintf "table %s(%s).\n" (Schema.name schema)
           (String.concat ", " (Array.to_list (Schema.attributes schema))));
      Relation.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "fact %s(%s).\n" (Schema.name schema)
               (String.concat ", "
                  (Array.to_list
                     (Array.map Entangled.Parser.value_to_syntax t)))))
        r)
    (Database.relations db);
  List.iter
    (fun q ->
      Buffer.add_string buf (Entangled.Parser.query_to_string q);
      Buffer.add_char buf '\n')
    queries;
  print_string (Buffer.contents buf)

let generate_cmd =
  let shape =
    Arg.(
      required
      & pos 0 (some (enum [ ("list", `List); ("scale-free", `Scale_free) ])) None
      & info [] ~docv:"SHAPE" ~doc:"Workload shape: $(b,list) or $(b,scale-free).")
  in
  let n =
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of queries.")
  in
  let rows =
    Arg.(
      value & opt int 200
      & info [ "rows" ] ~docv:"ROWS" ~doc:"Size of the Posts table.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let run shape n rows seed =
    let topics = min 100 rows in
    match shape with
    | `List ->
      let db, queries = Workload.Listgen.make ~rows ~topics ~seed n in
      emit_program db queries
    | `Scale_free ->
      let db, queries, _ = Workload.Netgen.make ~rows ~topics ~seed n in
      emit_program db queries
  in
  let doc = "Emit a runnable workload program (facts + queries) to stdout." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Cmdliner.Term.(const run $ shape $ n $ rows $ seed)

(* ------------------------------- repl ----------------------------- *)

(* An interactive coordination server in miniature: facts update the
   database, queries stream into the online engine, coordinating sets
   fire as soon as they exist (Sections 6.1 and 7). *)
let repl_help =
  {|statements end with '.':
  table F(a, b).           declare a relation
  fact F(1, X).            insert a tuple
  query n: {P} H :- B.     submit an entangled query
directives:
  \pending                 list waiting queries
  \flush                   evaluate all pending components
  \stats                   cumulative solver statistics
  \db                      database summary
  \wal                     journal status (segment, offsets, last LSN)
  \snapshot                force a snapshot + segment rotation now
  \help                    this message
  \quit                    leave|}

let repl_cmd =
  let consume =
    Arg.(
      value & flag
      & info [ "consume" ]
          ~doc:"Coordinated sets book their tuples: matched rows are deleted.")
  in
  let mode =
    let modes =
      [
        ("incremental", Coordination.Online.Incremental);
        ("full-rebuild", Coordination.Online.Full_rebuild);
      ]
    in
    Arg.(
      value
      & opt (enum modes) Coordination.Online.Incremental
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Online engine mode: $(b,incremental) (persistent atom index, \
             union-find components, dirty tracking — the default) or \
             $(b,full-rebuild) (re-derive the coordination graph on every \
             evaluation; reference implementation).")
  in
  let flight_recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder for the whole session; on the first \
             incident (e.g. a degraded evaluation under a guard) the \
             recent-item window is dumped to $(docv).")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Make the session durable: journal every operation to a \
             checksummed write-ahead log in $(docv).  If the directory \
             already holds a journal the session $(i,recovers) from it \
             first (replaying the log, truncating any torn tail) and the \
             creation flags are ignored in favour of the journaled \
             engine configuration.")
  in
  let fsync =
    Arg.(
      value
      & opt fsync_conv Durable.Always
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: $(b,always) (every committed operation), \
             $(b,every-n:<N>) (every N operations) or $(b,never) (leave \
             it to the page cache).  Only meaningful with $(b,--wal).")
  in
  let snapshot_every =
    Arg.(
      value
      & opt nonneg_int_conv 512
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot the engine state after every $(docv) journaled \
             operations (0 disables periodic snapshots).  Only \
             meaningful with $(b,--wal).")
  in
  let run consume mode flight_recorder wal fsync snapshot_every backend =
    (* A pipe downstream of the repl closing (e.g. `entangle repl | head`)
       must end the session cleanly, not kill the process: ignore
       SIGPIPE and let the write surface as Sys_error instead. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (match flight_recorder with
    | None -> ()
    | Some path ->
      Obs.Flight_recorder.set_dump_path (Some path);
      Obs.Flight_recorder.arm ());
    let durable, db, engine =
      match wal with
      | None ->
        let db = Database.create ~backend () in
        (None, db, Coordination.Online.create ~consume ~mode db)
      | Some dir -> (
        match
          Durable.open_or_recover ~consume ~mode ~backend
            (Durable.config ~fsync ~snapshot_every dir)
        with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (t, db, engine, report) ->
          (match report with
          | None -> Printf.printf "wal: new journal in %s\n" dir
          | Some r -> Format.printf "%a@." Durable.pp_report r);
          (Some t, db, engine))
    in
    let report_fired (c : Coordination.Online.coordinated) =
      Printf.printf "coordinated: {%s}\n"
        (String.concat ", "
           (List.map (fun q -> q.Entangled.Query.name) c.queries))
    in
    let handle_statement stmt =
      match stmt with
      | Entangled.Parser.Table (name, attrs) ->
        ignore (Database.create_table' db name attrs);
        Option.iter
          (fun t -> Durable.journal_create_table t name attrs)
          durable;
        Printf.printf "table %s created\n" name
      | Entangled.Parser.Fact (rel, values) -> (
        match Database.relation_opt db rel with
        | None -> Printf.printf "error: no table %s\n" rel
        | Some _ ->
          Database.insert db rel values;
          Option.iter (fun t -> Durable.journal_insert t rel values) durable)
      | Entangled.Parser.Query_stmt q -> (
        match Coordination.Online.submit engine q with
        | Coordination.Online.Coordinated c -> report_fired c
        | Coordination.Online.Pending ->
          Printf.printf "pending: %s\n"
            (if q.Entangled.Query.name = "" then "(unnamed)"
             else q.Entangled.Query.name)
        | Coordination.Online.Rejected_unsafe ws ->
          Printf.printf "rejected: submission makes the pool unsafe (%d \
                         ambiguous postconditions)\n"
            (List.length ws))
    in
    let handle_directive line =
      match String.trim line with
      | "\\pending" ->
        let names =
          List.map
            (fun q -> q.Entangled.Query.name)
            (Coordination.Online.pending engine)
        in
        Printf.printf "pending (%d): %s\n" (List.length names)
          (String.concat ", " names)
      | "\\flush" ->
        let fired = Coordination.Online.flush engine in
        List.iter report_fired fired;
        if fired = [] then Printf.printf "nothing fired\n"
      | "\\stats" ->
        Format.printf "%a (lifetime: %d coordinated)@." Coordination.Stats.pp
          (Coordination.Online.stats engine)
          (Coordination.Online.total_coordinated engine)
      | "\\db" -> Format.printf "%a@." Database.pp db
      | "\\wal" -> (
        match durable with
        | None -> Printf.printf "wal: not enabled (start with --wal DIR)\n"
        | Some t ->
          Printf.printf
            "wal: %s\n  segment %s\n  %d bytes written, %d synced, last \
             LSN %Ld\n"
            (Durable.dir t)
            (Filename.basename (Durable.current_segment t))
            (Durable.wal_offset t) (Durable.synced_offset t)
            (Durable.last_lsn t))
      | "\\snapshot" -> (
        match durable with
        | None -> Printf.printf "wal: not enabled (start with --wal DIR)\n"
        | Some t -> (
          match Durable.snapshot t with
          | Ok () ->
            Printf.printf "snapshot written at LSN %Ld\n"
              (Durable.last_lsn t)
          | Error why ->
            Printf.printf "snapshot FAILED (%s); journal retained\n" why))
      | "\\help" -> print_endline repl_help
      | "\\quit" -> raise Exit
      | other -> Printf.printf "unknown directive %s (try \\help)\n" other
    in
    let buffer = Buffer.create 256 in
    (try
       while true do
         let line = input_line stdin in
         let trimmed = String.trim line in
         if String.length trimmed > 0 && trimmed.[0] = '\\' then
           handle_directive trimmed
         else begin
           Buffer.add_string buffer line;
           Buffer.add_char buffer '\n';
           (* A statement is complete when the buffer ends with '.'
              (ignoring trailing whitespace). *)
           let contents = String.trim (Buffer.contents buffer) in
           if String.length contents > 0
              && contents.[String.length contents - 1] = '.'
           then begin
             Buffer.clear buffer;
             try
               List.iter handle_statement
                 (Entangled.Parser.parse_program contents)
             with
             | Entangled.Parser.Syntax_error (l, m) ->
               Printf.printf "syntax error (line %d): %s\n" l m
             | Invalid_argument m -> Printf.printf "error: %s\n" m
           end
         end
       done
     with End_of_file | Exit | Sys_error _ -> ());
    Option.iter Durable.close durable;
    (try
       Printf.printf "bye: %d queries coordinated, %d still pending\n"
         (Coordination.Online.total_coordinated engine)
         (Coordination.Online.pending_count engine)
     with Sys_error _ -> ())
  in
  let doc =
    "Interactive coordination server: facts and queries stream in, \
     coordinating sets fire as soon as they exist."
  in
  Cmd.v
    (Cmd.info "repl" ~doc)
    Cmdliner.Term.(
      const run $ consume $ mode $ flight_recorder $ wal $ fsync
      $ snapshot_every $ backend_arg)

(* ------------------------------ recover ---------------------------- *)

let recover_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"WAL directory written by $(b,repl --wal).")
  in
  let run dir =
    match Durable.recover (Durable.config dir) with
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      exit 1
    | Ok (t, db, engine, report) ->
      Format.printf "%a@." Durable.pp_report report;
      Printf.printf "engine: %d pending, %d coordinated (lifetime)\n"
        (Coordination.Online.pending_count engine)
        (Coordination.Online.total_coordinated engine);
      Printf.printf "database: %d relations, %d tuples\n"
        (List.length (Database.relations db))
        (Database.total_tuples db);
      Durable.close t
  in
  let doc =
    "Recover a durable session from its write-ahead log: load the \
     newest valid snapshot, replay the journal tail, truncate any torn \
     tail, and report what happened.  The recovered state is \
     re-checkpointed, so a second recovery is clean."
  in
  Cmd.v (Cmd.info "recover" ~doc) Cmdliner.Term.(const run $ dir)

(* ------------------------------ serve ------------------------------ *)

(* Shared connection flags for serve/client. *)
let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on (or connect to) a Unix-domain socket at $(docv).")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST"
        ~doc:"TCP host to bind or connect to (with $(b,--port)).")

let port_arg =
  Arg.(
    value
    & opt (some nonneg_int_conv) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) TCP $(docv); 0 binds ephemeral.")

let listen_of_flags socket host port =
  match (socket, port) with
  | Some path, None -> Server.Unix_socket path
  | None, Some p -> Server.Tcp (host, p)
  | Some _, Some _ ->
    Printf.eprintf "error: --socket and --port are mutually exclusive\n";
    exit 2
  | None, None ->
    Printf.eprintf "error: one of --socket PATH or --port N is required\n";
    exit 2

let serve_cmd =
  let consume =
    Arg.(
      value & flag
      & info [ "consume" ]
          ~doc:"Coordinated sets book their tuples: matched rows are deleted.")
  in
  let mode =
    let modes =
      [
        ("incremental", Coordination.Online.Incremental);
        ("full-rebuild", Coordination.Online.Full_rebuild);
      ]
    in
    Arg.(
      value
      & opt (enum modes) Coordination.Online.Incremental
      & info [ "mode" ] ~docv:"MODE" ~doc:"Online engine mode.")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Journal every operation to a write-ahead log in $(docv); an \
             existing journal is recovered first, so a killed server \
             restarts into identical state.")
  in
  let fsync =
    Arg.(
      value
      & opt fsync_conv Durable.Always
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:"WAL fsync policy (always|never|every-n:<N>).")
  in
  let snapshot_every =
    Arg.(
      value
      & opt nonneg_int_conv 512
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Snapshot cadence in journaled operations (0 disables).")
  in
  let max_pending =
    Arg.(
      value
      & opt pos_int_conv 1024
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission control: refuse submissions with a typed \
             $(b,overloaded) frame once $(docv) entries are pending, \
             instead of queueing unboundedly.")
  in
  let max_sessions =
    Arg.(
      value
      & opt nonneg_int_conv 0
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Exit after $(docv) client sessions have come and gone (0 = \
             serve forever).  Scripted tests use this to terminate \
             deterministically.")
  in
  let domains =
    Arg.(
      value & opt pos_int_conv 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard the online engine across $(docv) OCaml domains, routing \
             arrivals by coordination-graph component.  Observationally \
             identical to the sequential engine at every domain count; \
             requires $(b,--mode incremental).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print session lifecycle lines to stdout.")
  in
  let flight_recorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder; abnormal disconnects and degraded \
             evaluations dump the recent-item window to $(docv).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Enable the metrics registry (per-request latency histogram, \
             session/overload counters).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some nonneg_float_conv) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request evaluation deadline (see $(b,solve)).")
  in
  let max_probes =
    Arg.(
      value
      & opt (some nonneg_int_conv) None
      & info [ "max-probes" ] ~docv:"N" ~doc:"Per-request probe budget.")
  in
  let max_tuples =
    Arg.(
      value
      & opt (some nonneg_int_conv) None
      & info [ "max-tuples" ] ~docv:"N"
          ~doc:"Per-request tuples-scanned budget.")
  in
  let probe_timeout_ms =
    Arg.(
      value
      & opt (some nonneg_float_conv) None
      & info [ "probe-timeout-ms" ] ~docv:"MS" ~doc:"Per-probe timeout.")
  in
  let max_attempts =
    Arg.(
      value & opt pos_int_conv 4
      & info [ "max-attempts" ] ~docv:"N" ~doc:"Tries per probe.")
  in
  let run socket host port consume mode backend wal fsync snapshot_every
      max_pending max_sessions domains verbose flight_recorder metrics
      deadline_ms max_probes max_tuples probe_timeout_ms max_attempts =
    let listen = listen_of_flags socket host port in
    if domains > 1 && mode <> Coordination.Online.Incremental then begin
      Printf.eprintf "error: --domains requires --mode incremental\n";
      exit 2
    end;
    (match flight_recorder with
    | None -> ()
    | Some path ->
      Obs.Flight_recorder.set_dump_path (Some path);
      Obs.Flight_recorder.arm ());
    if metrics then Obs.set_metrics true;
    let durable, db, engine =
      match wal with
      | None ->
        let db = Database.create ~backend () in
        (None, db, Coordination.Online.create ~consume ~mode db)
      | Some dir -> (
        match
          Durable.open_or_recover ~consume ~mode ~backend
            (Durable.config ~fsync ~snapshot_every dir)
        with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (t, db, engine, report) ->
          (match report with
          | None -> Printf.printf "wal: new journal in %s\n" dir
          | Some r -> Format.printf "%a@." Durable.pp_report r);
          (Some t, db, engine))
    in
    let guard =
      if
        deadline_ms = None && max_probes = None && max_tuples = None
        && probe_timeout_ms = None
      then None
      else begin
        let ns_of_ms ms = Int64.of_float (ms *. 1e6) in
        Some
          (Resilient.arm
             {
               Resilient.default_config with
               max_probes;
               max_tuples;
               deadline_ns = Option.map ns_of_ms deadline_ms;
               probe_timeout_ns = Option.map ns_of_ms probe_timeout_ms;
               max_attempts;
             })
      end
    in
    Database.set_guard db guard;
    let cfg =
      {
        (Server.default_config listen) with
        Server.max_pending;
        max_sessions;
        verbose;
      }
    in
    let engine =
      if domains = 1 then Server.Sequential engine
      else
        Server.Sharded
          (match durable with
          | None -> Coordination.Online_sharded.of_online ~domains db engine
          | Some t -> Server.shard_durable ~domains t db engine)
    in
    let srv = Server.create cfg { Server.db; engine; durable; guard } in
    (match listen with
    | Server.Unix_socket path -> Printf.printf "serving on unix:%s\n%!" path
    | Server.Tcp (host, _) ->
      Printf.printf "serving on %s:%d\n%!" host (Server.port srv));
    Server.run srv;
    Server.stop srv;
    Option.iter Durable.close durable;
    let coordinated, still_pending =
      match engine with
      | Server.Sequential e ->
        ( Coordination.Online.total_coordinated e,
          Coordination.Online.pending_count e )
      | Server.Sharded e ->
        ( Coordination.Online_sharded.total_coordinated e,
          Coordination.Online_sharded.pending_count e )
    in
    Printf.printf "served %d sessions; %d coordinated, %d still pending%s\n"
      (Server.sessions_served srv)
      coordinated still_pending
      (if domains > 1 then Printf.sprintf " (domains=%d)" domains else "")
  in
  let doc =
    "Coordination as a service: a long-lived socket server multiplexing \
     many client sessions onto one online engine (length-prefixed JSON \
     frames: submit/retire/flush/status/subscribe, asynchronous matched/\
     degraded notifications).  With $(b,--wal) the engine is durable: \
     kill the server, start it again on the same directory, and it \
     resumes with identical state."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Cmdliner.Term.(
      const run $ socket_arg $ host_arg $ port_arg $ consume $ mode
      $ backend_arg $ wal $ fsync $ snapshot_every $ max_pending
      $ max_sessions $ domains $ verbose $ flight_recorder $ metrics
      $ deadline_ms $ max_probes $ max_tuples $ probe_timeout_ms
      $ max_attempts)

(* ------------------------------ client ----------------------------- *)

let client_cmd =
  let abort_after =
    Arg.(
      value
      & opt (some pos_int_conv) None
      & info [ "abort-after" ] ~docv:"N"
          ~doc:
            "Disconnect abruptly (RST, nothing read) after sending $(docv) \
             requests — simulates a client dying mid-stream; the server \
             must tear down that session and keep serving others.")
  in
  let timeout =
    Arg.(
      value
      & opt nonneg_float_conv 5.0
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:"Seconds to wait for each response frame.")
  in
  let run socket host port abort_after timeout =
    let listen = listen_of_flags socket host port in
    let conn = Server.Client.connect listen in
    let sent = ref 0 in
    let aborted = ref false in
    (try
       while not !aborted do
         let line = String.trim (input_line stdin) in
         if line <> "" then begin
           match Server.Json.parse line with
           | Error why -> Printf.printf "client: bad request json: %s\n" why
           | Ok req ->
             Server.Client.send conn req;
             incr sent;
             (match abort_after with
             | Some k when !sent >= k ->
               Server.Client.abort conn;
               aborted := true;
               Printf.printf "client: aborted after %d requests\n" k
             | _ ->
               (* Print every frame up to and including the echoed
                  response; subscribed notifications precede it. *)
               let rec await () =
                 match Server.Client.recv ~timeout conn with
                 | None -> Printf.printf "client: timeout\n"
                 | Some frame ->
                   print_endline (Server.Json.to_string frame);
                   if Server.Json.str_mem "notify" frame <> None then
                     await ()
               in
               await ())
         end
       done
     with End_of_file -> ());
    if not !aborted then Server.Client.close conn
  in
  let doc =
    "Scripted client for $(b,entangle serve): reads one JSON request per \
     stdin line, sends it as a frame, and prints the response (and any \
     notification frames preceding it).  The workhorse of the cram \
     socket sessions and the mid-stream disconnect test."
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Cmdliner.Term.(
      const run $ socket_arg $ host_arg $ port_arg $ abort_after $ timeout)

let () =
  let doc = "data-driven coordination with entangled queries" in
  let info = Cmd.info "entangle" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            check_cmd;
            generate_cmd;
            repl_cmd;
            recover_cmd;
            serve_cmd;
            client_cmd;
          ]))
