(* One index posting: the row ids whose column holds a given value.  The
   ids vector may contain tombstoned rows (filtered against [live] on
   read); [count] tracks live rows only.  When dead ids outnumber live
   ones the posting is filtered in place, so hot keys that see repeated
   delete/insert cycles do not make scans re-walk dead row ids
   forever. *)
type posting = {
  mutable count : int;   (* live rows with this value *)
  ids : int Vec.t;       (* row ids, possibly stale *)
}

type t = {
  schema : Schema.t;
  mutable tuples : Tuple.t Vec.t;
  mutable live : bool Vec.t;            (* tombstones, parallel to tuples *)
  mutable present : int Tuple.Hashtbl.t; (* tuple -> live row id *)
  mutable dead_count : int;
  (* indexes.(c) maps a value of column c to its posting; built lazily on
     first lookup of column c. *)
  mutable indexes : posting Value.Hashtbl.t option array;
  (* Columnar twin, dual-written by [insert]/[delete] when the owning
     database selected the columnar backend.  The row store stays
     authoritative (and is the differential oracle); the mirror is what
     {!Cursor} probes. *)
  mirror : Column_store.t option;
  (* Content-version stamp, shared with the owning database (every
     relation of one database bumps the same atomic) so that
     [Database.data_version] moves exactly when *that* database's
     contents move.  Standalone relations get a private stamp. *)
  version : int Atomic.t;
  (* Observed mutation statistics for the query-intelligence layer. *)
  mutable n_inserts : int;
  mutable n_deletes : int;
}

(* Process-wide stamp of extensional mutations (successful inserts and
   deletes, plus table creation/removal via [note_mutation]).  Consumers
   that cache anything derived from database contents — the online
   engine's per-component evaluation cache — snapshot this and
   invalidate when it moves.  A monotone counter shared across stores
   can only over-invalidate, never miss a change.  Atomic because the
   multicore batch executor mutates per-component tables from several
   domains at once; a plain [ref]'s lost updates could freeze a stale
   cache stamp forever. *)
let mutations = Atomic.make 0

let mutation_count () = Atomic.get mutations

let note_mutation () = Atomic.incr mutations

let create ?(columnar = false) ?version schema =
  let r =
    {
      schema;
      tuples = Vec.create ();
      live = Vec.create ();
      present = Tuple.Hashtbl.create 64;
      dead_count = 0;
      indexes = Array.make (Schema.arity schema) None;
      mirror = (if columnar then Some (Column_store.create schema) else None);
      version = (match version with Some v -> v | None -> Atomic.make 0);
      n_inserts = 0;
      n_deletes = 0;
    }
  in
  (* The first-argument index is eager, not lazy: the coordination
     algorithms bucket atoms by their first argument, so per-bucket
     cardinalities must be maintained from the first insert for the
     planner's estimates to mean anything. *)
  if Schema.arity schema > 0 then
    r.indexes.(0) <- Some (Value.Hashtbl.create 16);
  r

let column_store r = r.mirror

let schema r = r.schema

let name r = Schema.name r.schema

let arity r = Schema.arity r.schema

let cardinal r = Vec.length r.tuples - r.dead_count

let check_arity r t =
  if Tuple.arity t <> arity r then
    invalid_arg
      (Printf.sprintf "Relation %s: tuple arity %d, expected %d" (name r)
         (Tuple.arity t) (arity r))

let index_row idx row t c =
  let v = t.(c) in
  match Value.Hashtbl.find_opt idx v with
  | Some p ->
    p.count <- p.count + 1;
    Vec.push p.ids row
  | None ->
    let p = { count = 1; ids = Vec.create () } in
    Vec.push p.ids row;
    Value.Hashtbl.add idx v p

let insert r t =
  check_arity r t;
  if Tuple.Hashtbl.mem r.present t then false
  else begin
    let row = Vec.length r.tuples in
    Tuple.Hashtbl.add r.present t row;
    Vec.push r.tuples t;
    Vec.push r.live true;
    Array.iteri
      (fun c idx ->
        match idx with None -> () | Some idx -> index_row idx row t c)
      r.indexes;
    (match r.mirror with
    | None -> ()
    | Some cs -> ignore (Column_store.insert cs t));
    r.n_inserts <- r.n_inserts + 1;
    Atomic.incr r.version;
    note_mutation ();
    true
  end

let insert_list r ts = List.iter (fun t -> ignore (insert r t)) ts

(* Rebuild the store with only live rows; indexes are dropped and will
   be rebuilt lazily on next use. *)
let compact r =
  let tuples = Vec.create () in
  let live = Vec.create () in
  let present = Tuple.Hashtbl.create (max 64 (cardinal r)) in
  Vec.iteri
    (fun row t ->
      if Vec.get r.live row then begin
        Tuple.Hashtbl.add present t (Vec.length tuples);
        Vec.push tuples t;
        Vec.push live true
      end)
    r.tuples;
  r.tuples <- tuples;
  r.live <- live;
  r.present <- present;
  r.dead_count <- 0;
  r.indexes <- Array.make (arity r) None;
  (* Keep the first-argument bucket counters alive across compaction
     (the other indexes rebuild lazily as before). *)
  if arity r > 0 then begin
    let idx = Value.Hashtbl.create (max 16 (cardinal r)) in
    Vec.iteri (fun row t -> index_row idx row t 0) r.tuples;
    r.indexes.(0) <- Some idx
  end

(* Drop tombstoned ids once they outnumber live ones (dead fraction
   above 1/2), keeping index scans proportional to live matches. *)
let maybe_prune_posting r p =
  if Vec.length p.ids > 2 * p.count then
    Vec.filter_in_place (fun row -> Vec.get r.live row) p.ids

let delete r t =
  check_arity r t;
  match Tuple.Hashtbl.find_opt r.present t with
  | None -> false
  | Some row ->
    Tuple.Hashtbl.remove r.present t;
    Vec.set r.live row false;
    r.dead_count <- r.dead_count + 1;
    (* Keep index counts accurate; dead row ids are filtered on read and
       purged when a posting goes majority-dead. *)
    Array.iteri
      (fun c idx ->
        match idx with
        | None -> ()
        | Some idx -> (
          let v = t.(c) in
          match Value.Hashtbl.find_opt idx v with
          | Some p ->
            p.count <- p.count - 1;
            maybe_prune_posting r p
          | None -> ()))
      r.indexes;
    if r.dead_count > Vec.length r.tuples / 2 then compact r;
    (match r.mirror with
    | None -> ()
    | Some cs -> ignore (Column_store.delete cs t));
    r.n_deletes <- r.n_deletes + 1;
    Atomic.incr r.version;
    note_mutation ();
    true

let mem r t =
  check_arity r t;
  Tuple.Hashtbl.mem r.present t

let iter f r =
  Vec.iteri (fun row t -> if Vec.get r.live row then f t) r.tuples

let fold f init r =
  let acc = ref init in
  iter (fun t -> acc := f !acc t) r;
  !acc

let to_list r = List.rev (fold (fun acc t -> t :: acc) [] r)

let ensure_index r col =
  if col < 0 || col >= arity r then
    invalid_arg (Printf.sprintf "Relation %s: no column %d" (name r) col);
  match r.indexes.(col) with
  | Some idx -> idx
  | None ->
    let idx = Value.Hashtbl.create (max 16 (cardinal r)) in
    Vec.iteri
      (fun row t -> if Vec.get r.live row then index_row idx row t col)
      r.tuples;
    r.indexes.(col) <- Some idx;
    idx

let warm_indexes r =
  for col = 0 to arity r - 1 do
    ignore (ensure_index r col)
  done

let lookup r ~col v =
  let idx = ensure_index r col in
  match Value.Hashtbl.find_opt idx v with
  | None -> []
  | Some p ->
    (* One backward pass consing onto the accumulator yields the rows in
       forward (insertion) order without the List.rev re-walk. *)
    let acc = ref [] in
    for i = Vec.length p.ids - 1 downto 0 do
      let row = Vec.get p.ids i in
      if Vec.get r.live row then acc := Vec.get r.tuples row :: !acc
    done;
    !acc

exception Found of Tuple.t

let find_matching r ~col v =
  let idx = ensure_index r col in
  match Value.Hashtbl.find_opt idx v with
  | None -> None
  | Some p -> (
    try
      Vec.iter
        (fun row ->
          if Vec.get r.live row then raise_notrace (Found (Vec.get r.tuples row)))
        p.ids;
      None
    with Found t -> Some t)

let iter_matching r ~col v f =
  let idx = ensure_index r col in
  match Value.Hashtbl.find_opt idx v with
  | None -> ()
  | Some p ->
    Vec.iter
      (fun row -> if Vec.get r.live row then f (Vec.get r.tuples row))
      p.ids

let count_matching r ~col v =
  let idx = ensure_index r col in
  match Value.Hashtbl.find_opt idx v with
  | None -> 0
  | Some p -> p.count

let posting_length r ~col v =
  let idx = ensure_index r col in
  match Value.Hashtbl.find_opt idx v with
  | None -> 0
  | Some p -> Vec.length p.ids

let version r = Atomic.get r.version

let inserts r = r.n_inserts

let deletes r = r.n_deletes

(* Number of non-empty buckets of [col]'s index — for col 0 this is
   maintained eagerly from the first insert. *)
let distinct_count r ~col =
  let idx = ensure_index r col in
  Value.Hashtbl.fold (fun _ p acc -> if p.count > 0 then acc + 1 else acc) idx 0

(* Expected rows per bucket of [col], used as the planner's compile-time
   cardinality estimate for an index access: live rows over non-empty
   buckets, rounded up.  Constants are abstracted out of plan shapes, so
   a per-value count cannot be baked in — the average bucket is the best
   shareable estimate. *)
let estimate_bucket r ~col =
  let n = cardinal r in
  if n = 0 then 0
  else begin
    let d = distinct_count r ~col in
    if d = 0 then 0 else (n + d - 1) / d
  end

let distinct_values r ~col =
  let idx = ensure_index r col in
  Value.Hashtbl.fold
    (fun v p acc -> if p.count > 0 then Value.Set.add v acc else acc)
    idx Value.Set.empty

let distinct_projection r ~cols =
  fold (fun acc t -> Tuple.Set.add (Tuple.project t cols) acc) Tuple.Set.empty r

let active_domain r =
  fold
    (fun acc t -> Array.fold_left (fun acc v -> Value.Set.add v acc) acc t)
    Value.Set.empty r

let pp ppf r =
  Format.fprintf ppf "@[<v>%a  -- %d tuples" Schema.pp r.schema (cardinal r);
  iter (fun t -> Format.fprintf ppf "@,  %a" Tuple.pp t) r;
  Format.fprintf ppf "@]"
