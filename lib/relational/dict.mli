(** Process-level constant dictionary.

    Interns every {!Value.t} that enters a columnar store into a dense
    non-negative int id, assigned in first-intern order.  Columnar
    relations ({!Column_store}), their index postings and the cursor
    executor ({!Cursor}) traffic exclusively in these ids; values are
    decoded back only when a solution is materialised.

    The dictionary is one per process and append-only: ids are never
    reused or re-assigned, so any two stores (or a store and its
    differential oracle) agree on the id of a value by construction. *)

val intern : Value.t -> int
(** [intern v] is the id of [v], allocating a fresh one on first sight.
    Serialised on an internal mutex: concurrent interns from several
    domains receive distinct ids.  Called on the mutation path (store
    inserts), not per probed tuple. *)

val find : Value.t -> int
(** [find v] is [v]'s id, or [-1] when [v] was never interned — in which
    case no columnar tuple can contain it, and every cursor comparison
    against it correctly fails.  Does not intern (probe-only constants
    must not grow the dictionary) and does not allocate. *)

val value : int -> Value.t
(** [value id] decodes an id; lock-free (safe concurrently with
    {!intern} from other domains).
    @raise Invalid_argument on an id never returned by {!intern}. *)

val size : unit -> int
(** Number of interned values; ids are exactly [0 .. size () - 1]. *)

val mem_id : int -> bool
(** [mem_id id] is [true] iff {!value}[ id] would succeed. *)

val unknown : int
(** The sentinel [-1] returned by {!find} for un-interned values. *)
