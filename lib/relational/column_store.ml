(* Columnar relation storage.

   The second storage backend: each column of the relation is a
   [Bigarray] int array of interned value ids ({!Dict}), so tuple data
   lives outside the OCaml heap and the GC never scans it.  Alongside
   the columns:

   - a [live] byte per physical row (tombstone deletes, like the row
     store);
   - eager per-column index postings, dense arrays of row ids keyed by
     value id — built at insert time (no lazy index mutation, so
     concurrent readers never race an index build);
   - an open-addressed present-set mapping a tuple's id-vector to its
     physical row, giving O(1) duplicate detection, deletes and the
     cursor's fully-bound membership probes without allocating a key.

   The maintenance policies deliberately mirror {!Relation}'s: a posting
   whose dead ids outnumber its live ones is filtered in place, and the
   whole store compacts when more than half of all physical rows are
   dead.  Both stores preserve the insertion order of live rows under
   pruning and compaction, which is the invariant the differential
   tests lean on: a probe enumerates candidate tuples in the same order
   on either backend, so early-stopping queries scan identical tuple
   counts and return identical first answers. *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type posting = {
  mutable count : int;   (* live rows with this value *)
  mutable len : int;     (* physical ids, possibly stale *)
  mutable ids : int array;
}

(* Shared sentinel for "no posting"; never mutated (append replaces it
   with a fresh posting first). *)
let empty_posting = { count = 0; len = 0; ids = [||] }

let no_posting = empty_posting

type t = {
  schema : Schema.t;
  arity : int;
  mutable cols : int_ba array;        (* per column, capacity [cap] *)
  mutable live : Bytes.t;             (* '\001' live, '\000' dead *)
  mutable nrows : int;                (* physical rows *)
  mutable dead : int;
  mutable cap : int;
  mutable postings : posting array array;
      (* postings.(c).(id) — rows whose column [c] holds value [id];
         grown to the max id seen in that column *)
  mutable table : int array;          (* open addressing: 0 empty,
                                         -1 tombstone, row + 1 *)
  mutable table_entries : int;        (* filled slots incl. tombstones *)
  (* Observed mutation statistics (monotone, unaffected by prune and
     compact), mirroring the row store's accounting. *)
  mutable n_inserts : int;
  mutable n_deletes : int;
}

let ba_create n : int_ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let create schema =
  let arity = Schema.arity schema in
  {
    schema;
    arity;
    cols = Array.init arity (fun _ -> ba_create 16);
    live = Bytes.make 16 '\000';
    nrows = 0;
    dead = 0;
    cap = 16;
    postings = Array.make arity [||];
    table = Array.make 32 0;
    table_entries = 0;
    n_inserts = 0;
    n_deletes = 0;
  }

let schema t = t.schema
let arity t = t.arity
let cardinal t = t.nrows - t.dead
let physical_rows t = t.nrows

let is_live t row = Bytes.unsafe_get t.live row = '\001'

let col_get t c row = Bigarray.Array1.unsafe_get (Array.unsafe_get t.cols c) row

(* ------------------------- present-set ---------------------------- *)

(* Hash of a tuple's id-vector; must agree between the array-keyed and
   the column-reading probes below. *)
let hash_ids (ids : int array) n =
  let h = ref 0 in
  for i = 0 to n - 1 do
    h := (!h * 31) + Array.unsafe_get ids i
  done;
  !h land max_int

let hash_row t row =
  let h = ref 0 in
  for c = 0 to t.arity - 1 do
    h := (!h * 31) + col_get t c row
  done;
  !h land max_int

(* A first-order loop: an inner recursive function here would close
   over [row]/[ids] and allocate on every probe-chain slot, breaking
   the zero-allocation contract of [find_row]. *)
let row_equals_ids t row (ids : int array) =
  let c = ref 0 in
  while !c < t.arity && col_get t !c row = Array.unsafe_get ids !c do
    incr c
  done;
  !c = t.arity

(* Find the physical row of the live tuple with this id-vector, or -1.
   Allocation-free: the key is the caller's scratch array. *)
let find_row t (ids : int array) =
  let mask = Array.length t.table - 1 in
  let i = ref (hash_ids ids t.arity land mask) in
  let result = ref (-2) in
  while !result = -2 do
    let v = Array.unsafe_get t.table !i in
    if v = 0 then result := -1
    else begin
      if v > 0 && row_equals_ids t (v - 1) ids then result := v - 1
      else i := (!i + 1) land mask
    end
  done;
  !result

let table_add t row =
  let mask = Array.length t.table - 1 in
  let i = ref (hash_row t row land mask) in
  while Array.unsafe_get t.table !i > 0 do
    i := (!i + 1) land mask
  done;
  (* Fill an empty or tombstoned slot. *)
  if Array.unsafe_get t.table !i = 0 then
    t.table_entries <- t.table_entries + 1;
  Array.unsafe_set t.table !i (row + 1)

let table_remove t row ids =
  let mask = Array.length t.table - 1 in
  let i = ref (hash_ids ids t.arity land mask) in
  let stop = ref false in
  while not !stop do
    let v = Array.unsafe_get t.table !i in
    if v = 0 then stop := true (* absent; nothing to do *)
    else if v - 1 = row then begin
      Array.unsafe_set t.table !i (-1);
      stop := true
    end
    else i := (!i + 1) land mask
  done

let rebuild_table t =
  let needed = max 32 (4 * cardinal t) in
  let cap = ref 32 in
  while !cap < needed do
    cap := !cap * 2
  done;
  t.table <- Array.make !cap 0;
  t.table_entries <- 0;
  for row = 0 to t.nrows - 1 do
    if is_live t row then table_add t row
  done

let maybe_grow_table t =
  if 2 * (t.table_entries + 1) > Array.length t.table then rebuild_table t

(* --------------------------- postings ----------------------------- *)

let posting t c id =
  let ps = Array.unsafe_get t.postings c in
  if id >= 0 && id < Array.length ps then Array.unsafe_get ps id
  else empty_posting

let count_matching_id t c id = (posting t c id).count

let posting_append t c id row =
  let ps = t.postings.(c) in
  let ps =
    if id < Array.length ps then ps
    else begin
      let ps' = Array.make (max (id + 1) (max 64 (2 * Array.length ps))) empty_posting in
      Array.blit ps 0 ps' 0 (Array.length ps);
      t.postings.(c) <- ps';
      ps'
    end
  in
  let p = ps.(id) in
  let p =
    if p == empty_posting then begin
      let p = { count = 0; len = 0; ids = Array.make 4 0 } in
      ps.(id) <- p;
      p
    end
    else p
  in
  if p.len = Array.length p.ids then begin
    let ids' = Array.make (max 4 (2 * p.len)) 0 in
    Array.blit p.ids 0 ids' 0 p.len;
    p.ids <- ids'
  end;
  p.ids.(p.len) <- row;
  p.len <- p.len + 1;
  p.count <- p.count + 1

(* Same policy as {!Relation.maybe_prune_posting}: drop tombstoned ids
   once they outnumber live ones, preserving order. *)
let maybe_prune_posting t p =
  if p.len > 2 * p.count then begin
    let kept = ref 0 in
    for i = 0 to p.len - 1 do
      let row = Array.unsafe_get p.ids i in
      if is_live t row then begin
        Array.unsafe_set p.ids !kept row;
        incr kept
      end
    done;
    p.len <- !kept
  end

(* --------------------------- mutation ----------------------------- *)

let ensure_capacity t =
  if t.nrows = t.cap then begin
    let cap = 2 * t.cap in
    t.cols <-
      Array.map
        (fun (col : int_ba) ->
          let col' = ba_create cap in
          Bigarray.Array1.blit col (Bigarray.Array1.sub col' 0 t.cap);
          col')
        t.cols;
    let live' = Bytes.make cap '\000' in
    Bytes.blit t.live 0 live' 0 t.cap;
    t.live <- live';
    t.cap <- cap
  end

(* Rebuild with live rows only, preserving insertion order — the same
   observable effect as {!Relation.compact}. *)
let compact t =
  let n = cardinal t in
  let cap = ref 16 in
  while !cap < n do
    cap := !cap * 2
  done;
  let cols' = Array.init t.arity (fun _ -> ba_create !cap) in
  let live' = Bytes.make !cap '\000' in
  let next = ref 0 in
  for row = 0 to t.nrows - 1 do
    if is_live t row then begin
      for c = 0 to t.arity - 1 do
        Bigarray.Array1.unsafe_set cols'.(c) !next (col_get t c row)
      done;
      Bytes.unsafe_set live' !next '\001';
      incr next
    end
  done;
  t.cols <- cols';
  t.live <- live';
  t.cap <- !cap;
  t.nrows <- n;
  t.dead <- 0;
  t.postings <- Array.make t.arity [||];
  for row = 0 to n - 1 do
    for c = 0 to t.arity - 1 do
      posting_append t c (col_get t c row) row
    done;
    (* posting_append also counted the row live; nothing else to fix *)
  done;
  (* postings were rebuilt via append: counts equal lengths *)
  rebuild_table t

let check_arity t tuple =
  if Array.length tuple <> t.arity then
    invalid_arg
      (Printf.sprintf "Column_store %s: tuple arity %d, expected %d"
         (Schema.name t.schema) (Array.length tuple) t.arity)

let encode_intern (tuple : Tuple.t) = Array.map Dict.intern tuple

(* Encode without interning; any unknown value means the tuple cannot be
   present. *)
let encode_find (tuple : Tuple.t) =
  let ids = Array.map Dict.find tuple in
  if Array.exists (fun id -> id < 0) ids then None else Some ids

let insert t tuple =
  check_arity t tuple;
  let ids = encode_intern tuple in
  if find_row t ids >= 0 then false
  else begin
    ensure_capacity t;
    (* Grow the present table while the new row does not exist yet: a
       rebuild here scans only the old rows, so the unconditional
       [table_add] below cannot produce a duplicate entry. *)
    maybe_grow_table t;
    let row = t.nrows in
    for c = 0 to t.arity - 1 do
      Bigarray.Array1.unsafe_set t.cols.(c) row ids.(c)
    done;
    Bytes.unsafe_set t.live row '\001';
    t.nrows <- row + 1;
    for c = 0 to t.arity - 1 do
      posting_append t c ids.(c) row
    done;
    table_add t row;
    t.n_inserts <- t.n_inserts + 1;
    true
  end

let delete t tuple =
  check_arity t tuple;
  match encode_find tuple with
  | None -> false
  | Some ids ->
    let row = find_row t ids in
    if row < 0 then false
    else begin
      table_remove t row ids;
      Bytes.unsafe_set t.live row '\000';
      t.dead <- t.dead + 1;
      for c = 0 to t.arity - 1 do
        let p = posting t c ids.(c) in
        if p != empty_posting then begin
          p.count <- p.count - 1;
          maybe_prune_posting t p
        end
      done;
      if t.dead > t.nrows / 2 then compact t;
      t.n_deletes <- t.n_deletes + 1;
      true
    end

let mem t tuple =
  check_arity t tuple;
  match encode_find tuple with
  | None -> false
  | Some ids -> find_row t ids >= 0

(* ---------------------------- reading ----------------------------- *)

let iter_rows f t =
  for row = 0 to t.nrows - 1 do
    if is_live t row then f row
  done

let decode_row t row =
  Array.init t.arity (fun c -> Dict.value (col_get t c row))

let iter f t = iter_rows (fun row -> f (decode_row t row)) t

let to_list t =
  let acc = ref [] in
  iter (fun tuple -> acc := tuple :: !acc) t;
  List.rev !acc

let inserts t = t.n_inserts

let deletes t = t.n_deletes

(* Non-empty buckets of one column — the eager postings make this a
   plain scan over the interned-id range seen in that column. *)
let distinct_count t ~col =
  Array.fold_left
    (fun acc p -> if p.count > 0 then acc + 1 else acc)
    0 t.postings.(col)

let count_matching t ~col v = count_matching_id t col (Dict.find v)

let posting_length t ~col v = (posting t col (Dict.find v)).len

let lookup t ~col v =
  let p = posting t col (Dict.find v) in
  let acc = ref [] in
  for i = p.len - 1 downto 0 do
    let row = p.ids.(i) in
    if is_live t row then acc := decode_row t row :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>%a  -- %d tuples (columnar)" Schema.pp t.schema
    (cardinal t);
  iter (fun tuple -> Format.fprintf ppf "@,  %a" Tuple.pp tuple) t;
  Format.fprintf ppf "@]"
