(** Conjunctive-query evaluation.

    Two evaluators share this interface:

    - the {e compiled} evaluator (default): the query is canonicalized
      — variables numbered into integer slots, constants abstracted into
      parameters — and lowered once into a {!Plan.t} whose join order
      and access paths are fixed per binding stage.  Plans are cached on
      the database instance keyed by query shape, so isomorphic probes
      (the common case in the coordination algorithms: thousands of
      structurally identical queries differing only in constants)
      compile exactly once.  The hot path runs over a slot-indexed
      binding frame with no string hashing and no per-node re-planning.
    - the {e interpreted} evaluator: a backtracking join that re-plans
      at each step, keyed by variable-name strings.  Kept for
      differential testing and for the evaluator ablation.

    Each top-level call counts as one database probe
    ({!Database.count_probe}), mirroring "one SQL query" in the paper's
    experiments; plan-cache hits/misses and tuples scanned land in
    {!Database.counters}. *)

module Binding : Map.S with type key = string
(** Valuations: finite maps from variable names to values. *)

type valuation = Value.t Binding.t

exception Unknown_relation of string
(** Raised when a query mentions a relation absent from the instance.
    (Physically equal to {!Plan.Unknown_relation}.) *)

exception Arity_mismatch of string * int * int
(** [Arity_mismatch (rel, got, expected)].
    (Physically equal to {!Plan.Arity_mismatch}.) *)

type plan =
  | Compiled
      (** default: compile-once slot plan, served from the per-database
          shape-keyed cache *)
  | Compiled_nocache
      (** compile-once slot plan, recompiled on every call — isolates
          the cache's contribution in the ablation benchmarks *)
  | Greedy_indexed
      (** interpreted: cheapest atom next at every backtracking node,
          hash-index access paths *)
  | Fixed_indexed
      (** interpreted: atoms in syntactic order, still index-backed —
          isolates the benefit of dynamic ordering *)
  | Fixed_scan
      (** interpreted: atoms in syntactic order, full scans only — what
          evaluation costs without any index *)

val find_first : ?plan:plan -> Database.t -> Cq.t -> valuation option
(** Choose-1 semantics: the first satisfying valuation, if any.  The empty
    query succeeds with the empty valuation. *)

val satisfiable : ?plan:plan -> Database.t -> Cq.t -> bool

val find_all : ?plan:plan -> ?limit:int -> Database.t -> Cq.t -> valuation list
(** All satisfying valuations (up to [limit] when given), in search order.
    Two valuations agreeing on all variables of the query are returned
    once. *)

val count : ?plan:plan -> Database.t -> Cq.t -> int
(** Number of distinct satisfying valuations.  On the compiled path no
    per-solution valuation map is materialized. *)

val distinct_projections :
  ?plan:plan -> Database.t -> Cq.t -> string list -> Tuple.Set.t
(** [distinct_projections db q vars] is the set of distinct tuples of
    values the listed variables take over all satisfying valuations.
    @raise Invalid_argument if some listed variable does not occur in [q]. *)

val check_ground : Database.t -> Cq.t -> bool
(** [check_ground db q] for a variable-free query: true iff every atom's
    tuple is present.  Counts as one probe. *)

val pp_valuation : Format.formatter -> valuation -> unit

(** {2 Repeat-probe handles}

    A query canonicalized and compiled once, then re-executed many
    times with swapped constants — the raw probe loop with the
    per-probe scaffolding (Obs spans, resilience guard, valuation
    snapshots) stripped.  Each execution still counts one probe and
    its scanned tuples.  On a columnar database ({!Database.backend})
    the [count]/[satisfiable] path is allocation-free in steady state;
    on a row database it is the ordinary compiled executor.  A handle
    is valid until a table is created or dropped, and must not be
    shared across domains. *)
module Prepared : sig
  type t

  val make : Database.t -> Cq.t -> t
  (** Compiles (or fetches from the plan cache) immediately; the usual
      plan-cache hit/miss is counted here, once, not per execution.
      @raise Plan.Unknown_relation, Plan.Arity_mismatch on bad queries. *)

  val nparams : t -> int
  (** Number of constant parameters, in first-occurrence order. *)

  val set_param : t -> int -> Value.t -> unit
  (** [set_param t j v] replaces the [j]-th constant for subsequent
      executions. *)

  val count : t -> int

  val satisfiable : t -> bool
end

(** {2 Plan introspection} *)

type plan_step = {
  atom : Cq.atom;
  access : [ `Membership | `Index of int * Value.t | `Bound_index of int | `Scan ];
      (** [`Index]: lookup on a constant column; [`Bound_index]: lookup
          on a column whose variable an earlier step binds (value known
          only at run time); [`Scan]: no usable column. *)
  estimated_rows : int;
      (** index-size estimate for [`Index], relation cardinality for
          [`Scan] and [`Bound_index] (a pre-execution upper bound), 0
          for [`Membership]. *)
}

val explain : Database.t -> Cq.t -> plan_step list
(** The order and access paths the greedy interpreted planner would
    choose before any tuple is read: constants drive index choices,
    variables become bound as atoms are placed.  The compiled
    evaluator's actual plan (constants abstracted) can be rendered with
    {!Plan.pp}. *)

val pp_plan : Format.formatter -> plan_step list -> unit

module Naive : sig
  val find_all : Database.t -> Cq.t -> valuation list
  (** Reference semantics: enumerate the full cross product of candidate
      tuples for each atom and filter.  Exponential; for tests only. *)
end
