(** Allocation-free execution of compiled plans over columnar mirrors.

    Translates a {!Plan.t} into an integer-cursor machine probing
    {!Column_store}s: slots and parameters are {!Dict} ids, candidate
    streams are posting walks, and backtracking is an explicit step
    index.  All machine state is preallocated, so a steady-state probe
    ([{!bind_params} + {!run_count}]) allocates nothing.

    Observable behaviour matches {!Plan.execute} over the row store:
    identical solutions in identical order and identical
    [tuples_scanned] accounting — the invariant the differential suite
    checks. *)

type t
(** A compiled cursor executor.  Holds mutable scratch: one executor
    must not be shared across domains (use {!prepare}, which caches per
    domain) or re-entered from a solution callback. *)

val prepare : Database.t -> Plan.t -> t
(** [prepare db plan] is the per-domain executor for [plan] against
    [db]'s columnar mirrors, built on first use and cached keyed by
    database uid and plan shape.  The cache entry is retired whenever
    the database recompiles the shape (physical plan identity), so DDL
    invalidation follows the plan cache automatically.
    @raise Plan.Unknown_relation, Plan.Arity_mismatch as {!Plan.execute}.
    @raise Invalid_argument if a referenced relation has no columnar
    mirror (database not created with [~backend:Columnar]). *)

val of_plan : Database.t -> Plan.t -> t
(** Uncached {!prepare} (for tests). *)

val bind_params : t -> Value.t array -> unit
(** Translate a query instance's constants ({!Plan.binding}[.params])
    into ids for the next run.  Constants never interned translate to
    {!Dict.unknown} and simply match nothing.  Allocation-free.
    @raise Invalid_argument on a parameter-count mismatch. *)

val run_count : t -> Counters.t -> limit:int -> int
(** [run_count t counters ~limit] counts solutions, stopping early once
    [limit] are found ([limit = 1] is satisfiability; [max_int] a full
    count).  Adds examined candidates to [counters.tuples_scanned].
    Zero allocation. *)

val iter_frames : t -> Counters.t -> (Value.t array -> bool) -> unit
(** [iter_frames t counters f] enumerates solutions; [f] receives the
    decoded frame indexed by slot — reused between calls, copy what you
    keep — and returns whether to continue. *)
