(** Extensional relations.

    A relation stores a bag-free (set-semantics) collection of tuples of a
    fixed schema, with lazily-built per-column hash indexes used by the
    conjunctive-query evaluator to avoid full scans. *)

type t

val create : ?columnar:bool -> ?version:int Atomic.t -> Schema.t -> t
(** [create ?columnar ?version schema] makes an empty relation.  With
    [~columnar:true] the relation also maintains a {!Column_store}
    mirror: every successful {!insert}/{!delete} is dual-written, and
    {!column_store} exposes the mirror for the allocation-free cursor
    path ({!Cursor}).  The row store remains authoritative either way —
    it is the differential oracle the mirror is tested against.

    [version] is the content-version stamp the relation bumps on every
    successful mutation; {!Database.create_table} passes the owning
    database's stamp so {!Database.data_version} is per-database.  A
    standalone relation defaults to a private stamp.

    The first column's hash index is built eagerly and maintained across
    compaction, so first-argument bucket cardinalities
    ({!count_matching}, {!distinct_count}, {!estimate_bucket}) are live
    from the first insert. *)

val column_store : t -> Column_store.t option
(** The columnar mirror, when the relation was created with
    [~columnar:true]. *)

val schema : t -> Schema.t

val name : t -> string

val arity : t -> int

val cardinal : t -> int

val insert : t -> Tuple.t -> bool
(** [insert r t] adds [t]; returns [false] (and leaves [r] unchanged) when
    the tuple was already present.
    @raise Invalid_argument if [t] has the wrong arity. *)

val insert_list : t -> Tuple.t list -> unit

val delete : t -> Tuple.t -> bool
(** [delete r t] removes [t]; returns [false] when it was not present.
    Implemented with tombstones: row slots are marked dead and skipped
    by scans and index lookups; an index posting whose dead ids
    outnumber its live ones is filtered in place, and when more than
    half of all slots are dead the whole store and its indexes are
    compacted.  Supports consuming inventory after a coordinating set
    books its tuples. *)

val mem : t -> Tuple.t -> bool

val iter : (Tuple.t -> unit) -> t -> unit

val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> Tuple.t list

val lookup : t -> col:int -> Value.t -> Tuple.t list
(** [lookup r ~col v] is every tuple whose [col]-th field equals [v],
    served from a hash index (built on first use for that column), in
    insertion order, built in a single pass. *)

val find_matching : t -> col:int -> Value.t -> Tuple.t option
(** First (insertion-order) live tuple whose [col]-th field equals [v],
    without materialising the match list.  The point-lookup companion to
    {!iter_matching}. *)

val warm_indexes : t -> unit
(** Force-build the hash index of every column now.  Lazy index
    construction mutates the relation on first lookup, which is unsafe
    once several domains read the same store concurrently; warming on
    the orchestrating domain before spawning makes all subsequent
    index reads pure. *)

val iter_matching : t -> col:int -> Value.t -> (Tuple.t -> unit) -> unit
(** Like {!lookup} but without materialising the matching list — the
    evaluator's hot path, where choose-1 search usually stops after a
    few tuples. *)

val count_matching : t -> col:int -> Value.t -> int
(** Number of tuples with the given value in the given column, from the
    index.  Used by the evaluator's selectivity heuristic. *)

val posting_length : t -> col:int -> Value.t -> int
(** Physical length of the index posting for the given column value,
    including not-yet-pruned tombstoned row ids.  [count_matching] is
    the live count; the difference is dead ids a scan still has to skip.
    Postings are pruned in place once dead ids outnumber live ones, so
    [posting_length r ~col v <= 2 * count_matching r ~col v] holds after
    any delete (until the whole store compacts).  Exposed for tests and
    diagnostics. *)

val version : t -> int
(** Current value of the relation's content-version stamp (see
    {!create}). *)

val inserts : t -> int
(** Successful inserts since creation (monotone; unaffected by
    compaction). *)

val deletes : t -> int
(** Successful deletes since creation (monotone). *)

val distinct_count : t -> col:int -> int
(** Number of distinct values with at least one live row in [col].
    Served from the column's index (eager for col 0, built on first use
    otherwise). *)

val estimate_bucket : t -> col:int -> int
(** Expected live rows per index bucket of [col] (live cardinality over
    {!distinct_count}, rounded up; 0 for an empty relation).  The
    planner's compile-time estimate for an index access path — constants
    are abstracted out of plan shapes, so the average bucket is the best
    estimate a shared plan can carry. *)

val distinct_values : t -> col:int -> Value.Set.t
(** The active domain of one column. *)

val distinct_projection : t -> cols:int list -> Tuple.Set.t
(** [distinct_projection r ~cols] is the set of distinct projections of the
    relation's tuples onto [cols]. *)

val active_domain : t -> Value.Set.t
(** All values occurring anywhere in the relation. *)

val pp : Format.formatter -> t -> unit
(** Prints the schema and all tuples, one per line. *)

val mutation_count : unit -> int
(** Process-wide count of extensional mutations: bumped on every
    successful {!insert} and {!delete} (in any relation) and by
    {!note_mutation}.  A cache keyed on database contents snapshots this
    and invalidates when it moves; sharing the counter across stores
    only ever over-invalidates. *)

val note_mutation : unit -> unit
(** Advance {!mutation_count} by hand — used by {!Database} for
    structural changes (table creation and removal). *)
