module Binding = Map.Make (String)

type valuation = Value.t Binding.t

exception Unknown_relation = Plan.Unknown_relation
exception Arity_mismatch = Plan.Arity_mismatch

let get_relation db (a : Cq.atom) =
  match Database.relation_opt db a.rel with
  | None -> raise (Unknown_relation a.rel)
  | Some r ->
    let expected = Relation.arity r and got = Array.length a.args in
    if got <> expected then raise (Arity_mismatch (a.rel, got, expected));
    r

(* Search state of the interpreted evaluator: a mutable binding table;
   undo information lives on the call stack of the backtracking
   search. *)
type state = { bound : (string, Value.t) Hashtbl.t }

let term_value st = function
  | Term.Const v -> Some v
  | Term.Var x -> Hashtbl.find_opt st.bound x

(* Try to match tuple [t] against atom args, extending the binding.
   Returns the number of variables newly bound (to undo), or [None] if the
   tuple does not match. *)
let match_tuple st (args : Term.t array) (t : Tuple.t) =
  let undo = ref [] in
  let ok = ref true in
  let n = Array.length args in
  let i = ref 0 in
  while !ok && !i < n do
    (match args.(!i) with
    | Term.Const v -> if not (Value.equal v t.(!i)) then ok := false
    | Term.Var x -> (
      match Hashtbl.find_opt st.bound x with
      | Some v -> if not (Value.equal v t.(!i)) then ok := false
      | None ->
        Hashtbl.add st.bound x t.(!i);
        undo := x :: !undo));
    incr i
  done;
  if !ok then Some !undo
  else begin
    List.iter (Hashtbl.remove st.bound) !undo;
    None
  end

type plan =
  | Compiled
  | Compiled_nocache
  | Greedy_indexed
  | Fixed_indexed
  | Fixed_scan

(* Cost estimate for an atom under the current binding, together with the
   best access path. *)
type access =
  | Membership of Tuple.t          (* fully ground: O(1) test *)
  | Index_scan of int * Value.t    (* bound column: index lookup *)
  | Full_scan

let plan_atom st db (a : Cq.atom) =
  let r = get_relation db a in
  let values = Array.map (term_value st) a.args in
  if Array.for_all Option.is_some values then
    let t = Array.map Option.get values in
    (0, r, Membership t)
  else begin
    let best = ref None in
    Array.iteri
      (fun c v ->
        match v with
        | None -> ()
        | Some v ->
          let cost = Relation.count_matching r ~col:c v in
          (match !best with
          | Some (bc, _, _) when bc <= cost -> ()
          | _ -> best := Some (cost, c, v)))
      values;
    match !best with
    | Some (cost, c, v) -> (cost, r, Index_scan (c, v))
    | None -> (Relation.cardinal r, r, Full_scan)
  end

(* Pick the cheapest remaining atom; returns (atom, plan, rest). *)
let pick_atom st db atoms =
  let rec loop best best_cost acc = function
    | [] -> best
    | a :: rest ->
      let ((cost, _, _) as plan) = plan_atom st db a in
      let acc' = a :: acc in
      if cost < best_cost then
        loop (Some (a, plan, List.rev_append acc rest)) cost acc' rest
      else loop best best_cost acc' rest
  in
  loop None max_int [] atoms

exception Stop

(* The interpreted evaluator: re-plans at each binding step (or follows
   the syntactic order), keyed by variable-name strings.  Kept as the
   differential-testing reference for the compiled path and for the
   evaluator ablation. *)
let solve_interpreted ~plan db (q : Cq.t) ~on_solution =
  (* Validate all atoms up front so errors surface even for plans that
     would short-circuit. *)
  List.iter (fun a -> ignore (get_relation db a)) q.atoms;
  let counters = Database.counters db in
  let st = { bound = Hashtbl.create 16 } in
  let snapshot () =
    Hashtbl.fold (fun x v acc -> Binding.add x v acc) st.bound Binding.empty
  in
  let next_atom atoms =
    match plan with
    | Compiled | Compiled_nocache | Greedy_indexed -> pick_atom st db atoms
    | Fixed_indexed -> (
      match atoms with
      | [] -> None
      | a :: rest -> Some (a, plan_atom st db a, rest))
    | Fixed_scan -> (
      match atoms with
      | [] -> None
      | a :: rest -> Some (a, (0, get_relation db a, Full_scan), rest))
  in
  let rec go atoms =
    match atoms with
    | [] -> if not (on_solution (snapshot ())) then raise Stop
    | _ -> (
      match next_atom atoms with
      | None -> assert false
      | Some (a, (_, r, access), rest) -> (
        let try_tuple t =
          counters.Counters.tuples_scanned <-
            counters.Counters.tuples_scanned + 1;
          match match_tuple st a.Cq.args t with
          | None -> ()
          | Some undo ->
            go rest;
            List.iter (Hashtbl.remove st.bound) undo
        in
        match access with
        | Membership t ->
          counters.Counters.tuples_scanned <-
            counters.Counters.tuples_scanned + 1;
          if Relation.mem r t then go rest
        | Index_scan (c, v) -> Relation.iter_matching r ~col:c v try_tuple
        | Full_scan -> Relation.iter try_tuple r))
  in
  try go q.atoms with Stop -> ()

(* The compiled evaluator: canonicalize, fetch or build the plan
   (per-database cache keyed by query shape), execute over an integer
   slot frame.  Returns the instance binding (variable names per slot)
   and a runner.  On a columnar database the runner goes through the
   allocation-free {!Cursor} machine against the Bigarray mirrors; the
   solution stream and counter deltas are identical either way. *)
let prepare_compiled ~cache db q =
  let plan, binding = Database.prepare ~cache db q in
  let run =
    match Database.backend db with
    | Database.Row ->
      fun on_frame ->
        Plan.execute plan
          (Database.relation_opt db)
          (Database.counters db) binding ~on_frame
    | Database.Columnar ->
      fun on_frame ->
        let exec = Cursor.prepare db plan in
        Cursor.bind_params exec binding.Plan.params;
        Cursor.iter_frames exec (Database.counters db) on_frame
  in
  (binding, run)

(* Counting runner: like [prepare_compiled] but returns [limit -> n]
   without materialising frames — on the columnar path this is the
   fully allocation-free [Cursor.run_count]. *)
let prepare_counting ~cache db q =
  let plan, binding = Database.prepare ~cache db q in
  match Database.backend db with
  | Database.Row ->
    fun limit ->
      let n = ref 0 in
      Plan.execute plan
        (Database.relation_opt db)
        (Database.counters db) binding
        ~on_frame:(fun _ ->
          incr n;
          !n < limit);
      !n
  | Database.Columnar ->
    fun limit ->
      let exec = Cursor.prepare db plan in
      Cursor.bind_params exec binding.Plan.params;
      Cursor.run_count exec (Database.counters db) ~limit

let snapshot_frame (binding : Plan.binding) frame =
  let b = ref Binding.empty in
  Array.iteri (fun s x -> b := Binding.add x frame.(s) !b) binding.var_names;
  !b

let is_compiled = function
  | Compiled | Compiled_nocache -> true
  | Greedy_indexed | Fixed_indexed | Fixed_scan -> false

(* ------------------------------------------------------------------ *)
(* Probe-level observability                                          *)
(* ------------------------------------------------------------------ *)

let probe_hist =
  Obs.Histogram.make ~help:"per-probe evaluator latency (ns)" "eval.probe_ns"

let probe_count =
  Obs.Counter.make ~help:"conjunctive-query probes issued" "eval.probes"

let rels_label (q : Cq.t) =
  String.concat ","
    (List.sort_uniq String.compare
       (List.map (fun (a : Cq.atom) -> a.Cq.rel) q.atoms))

(* Solvers probe a handful of query templates over and over (the plan
   cache banks on the same fact), and probes that ground the same
   template share their relation-name strings physically even when the
   [Cq.t] values are fresh.  So the label->counter map is a small array
   scanned with pointer compares — no string is built and nothing is
   hashed on a hit.  Each new template appends once; past
   [max_label_memo] distinct templates the overflow path rebuilds the
   label per probe, which only prices workloads the plan cache already
   handles badly.  A plain ref is fine across domains: workers run with
   metrics off, and a racy append costs at most a duplicate entry for
   the same registry counter. *)
let rec same_rels (atoms : Cq.atom list) rels =
  match (atoms, rels) with
  | [], [] -> true
  | a :: atl, r :: rtl -> a.Cq.rel == r && same_rels atl rtl
  | _ -> false

let max_label_memo = 64

let label_memo : (string list * Obs.Counter.t) array ref = ref [||]

let probe_label_counter (q : Cq.t) =
  let memo = !label_memo in
  let n = Array.length memo in
  let rec find i =
    if i < n then begin
      let rels, c = memo.(i) in
      if same_rels q.atoms rels then c else find (i + 1)
    end
    else begin
      let c = Obs.Counter.labeled "eval.probes" (rels_label q) in
      if n < max_label_memo then begin
        let rels = List.map (fun (a : Cq.atom) -> a.Cq.rel) q.atoms in
        label_memo := Array.append memo [| (rels, c) |]
      end;
      c
    end
  in
  find 0

(* Resilience middleware: with a guard armed on the database, the probe
   body runs under budget checks, fault injection and retries
   ({!Resilient.probe}); transient faults strike before the body
   executes, so a retried probe never re-delivers solver callbacks.
   Disarmed, this is one field load and a branch. *)
let guarded db f =
  match Database.guard db with
  | None -> f ()
  | Some g ->
    let counters = Database.counters db in
    Resilient.probe g
      ~tuples_scanned:(fun () -> counters.Counters.tuples_scanned)
      f

(* Every probe entry point funnels through here.  Disarmed, this is the
   old code plus two branches; armed, the probe runs inside an
   "eval.probe" span carrying the relation names, plan-cache outcome
   and tuples-scanned delta, and feeds the probe-latency histogram.
   [Database.count_probe] runs inside the measured section so emulated
   round-trip latency shows up in the histogram, as it would over a
   real connection.  The Obs span sits outside the guard so retried
   attempts land inside one probe span. *)
let probed db (q : Cq.t) ~kind f =
  if not (Obs.enabled ()) then
    guarded db (fun () ->
        Database.count_probe db;
        f ())
  else if not (Obs.tracing () || Obs.metrics_on ()) then
    (* Only the flight recorder is armed.  It wants the probe span in
       its window but must stay at ~100ns per probe, so skip the label
       building, counter snapshots and per-label registry increments
       that sinks and the metrics registry pay for. *)
    Obs.with_span ~hist:probe_hist "eval.probe" (fun () ->
        guarded db (fun () ->
            Database.count_probe db;
            f ()))
  else begin
    if Obs.metrics_on () then begin
      Obs.Counter.incr probe_count;
      Obs.Counter.incr (probe_label_counter q)
    end;
    if not (Obs.tracing ()) then
      (* Registry (and possibly the recorder) armed, but no sink: the
         args thunk would never be forced, so don't build the counter
         snapshot it closes over. *)
      Obs.with_span ~hist:probe_hist "eval.probe" (fun () ->
          guarded db (fun () ->
              Database.count_probe db;
              f ()))
    else begin
      let label = rels_label q in
      let before = Database.snapshot_counters db in
      let args () =
        let d =
          Counters.diff ~before ~after:(Database.snapshot_counters db)
        in
        [
          ("rels", Obs.Str label);
          ("atoms", Obs.Int (List.length q.atoms));
          ("kind", Obs.Str kind);
          ("plan_hit", Obs.Bool (d.plan_misses = 0));
          ("tuples_scanned", Obs.Int d.tuples_scanned);
        ]
      in
      Obs.with_span ~args ~hist:probe_hist "eval.probe" (fun () ->
          guarded db (fun () ->
              Database.count_probe db;
              f ()))
    end
  end

let solve ?(plan = Compiled) db (q : Cq.t) ~on_solution =
  probed db q ~kind:"solve" @@ fun () ->
  match plan with
  | Compiled | Compiled_nocache ->
    let binding, run = prepare_compiled ~cache:(plan = Compiled) db q in
    run (fun frame -> on_solution (snapshot_frame binding frame))
  | Greedy_indexed | Fixed_indexed | Fixed_scan ->
    solve_interpreted ~plan db q ~on_solution

let find_first ?plan db q =
  let result = ref None in
  solve ?plan db q ~on_solution:(fun b ->
      result := Some b;
      false);
  !result

let satisfiable ?(plan = Compiled) db q =
  if is_compiled plan then begin
    (* No valuation snapshot needed: stop at the first frame. *)
    probed db q ~kind:"satisfiable" @@ fun () ->
    let run = prepare_counting ~cache:(plan = Compiled) db q in
    run 1 > 0
  end
  else Option.is_some (find_first ~plan db q)

let find_all ?plan ?limit db q =
  let results = ref [] in
  let n = ref 0 in
  let continue_after () =
    incr n;
    match limit with None -> true | Some l -> !n < l
  in
  solve ?plan db q ~on_solution:(fun b ->
      results := b :: !results;
      continue_after ());
  List.rev !results

let count ?(plan = Compiled) db q =
  if is_compiled plan then begin
    (* The compiled path counts frames directly — no per-solution
       valuation map is materialized. *)
    probed db q ~kind:"count" @@ fun () ->
    let run = prepare_counting ~cache:(plan = Compiled) db q in
    run max_int
  end
  else begin
    let n = ref 0 in
    solve ~plan db q ~on_solution:(fun _ ->
        incr n;
        true);
    !n
  end

let distinct_projections ?(plan = Compiled) db q vars =
  let qvars = Cq.variables q in
  List.iter
    (fun x ->
      if not (List.mem x qvars) then
        invalid_arg
          (Printf.sprintf "Eval.distinct_projections: %s not in query" x))
    vars;
  if is_compiled plan then begin
    probed db q ~kind:"distinct" @@ fun () ->
    let binding, run = prepare_compiled ~cache:(plan = Compiled) db q in
    (* Project straight out of the slot frame. *)
    let slot_of x =
      let slot = ref (-1) in
      Array.iteri
        (fun s y -> if String.equal x y then slot := s)
        binding.Plan.var_names;
      assert (!slot >= 0);
      !slot
    in
    let slots = Array.of_list (List.map slot_of vars) in
    let acc = ref Tuple.Set.empty in
    run (fun frame ->
        let t = Array.map (fun s -> frame.(s)) slots in
        acc := Tuple.Set.add t !acc;
        true);
    !acc
  end
  else begin
    let acc = ref Tuple.Set.empty in
    solve ~plan db q ~on_solution:(fun b ->
        let t = Array.of_list (List.map (fun x -> Binding.find x b) vars) in
        acc := Tuple.Set.add t !acc;
        true);
    !acc
  end

let check_ground db q =
  if not (Cq.is_ground q) then
    invalid_arg "Eval.check_ground: query has variables";
  probed db q ~kind:"check_ground" @@ fun () ->
  List.for_all
    (fun (a : Cq.atom) ->
      let r = get_relation db a in
      let t = Array.map (function Term.Const v -> v | Term.Var _ -> assert false) a.args in
      Relation.mem r t)
    q.atoms

(* ------------------------------------------------------------------ *)
(* Repeat-probe handles                                               *)
(* ------------------------------------------------------------------ *)

(* A prepared query: canonicalized and compiled once, re-executed many
   times with swapped constants.  This is the raw probe loop with all
   per-probe scaffolding stripped — no Obs span, no resilience guard,
   no valuation snapshots — for callers (the storage bench, tight
   server loops) that issue the same shape millions of times.  On a
   columnar database the whole [count]/[satisfiable] path is
   allocation-free in steady state. *)
module Prepared = struct
  type prepared = {
    db : Database.t;
    plan : Plan.t;
    binding : Plan.binding;
    exec : Cursor.t option;  (* Some iff the database is columnar *)
  }

  type t = prepared

  let make db q =
    let plan, binding = Database.prepare db q in
    let exec =
      match Database.backend db with
      | Database.Columnar -> Some (Cursor.prepare db plan)
      | Database.Row -> None
    in
    { db; plan; binding; exec }

  let nparams t = Array.length t.binding.Plan.params

  let set_param t j v = t.binding.Plan.params.(j) <- v

  let count_limit t limit =
    Database.count_probe t.db;
    match t.exec with
    | Some exec ->
      Cursor.bind_params exec t.binding.Plan.params;
      Cursor.run_count exec (Database.counters t.db) ~limit
    | None ->
      let n = ref 0 in
      Plan.execute t.plan
        (Database.relation_opt t.db)
        (Database.counters t.db) t.binding
        ~on_frame:(fun _ ->
          incr n;
          !n < limit);
      !n

  let count t = count_limit t max_int

  let satisfiable t = count_limit t 1 > 0
end

let pp_valuation ppf b =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (x, v) -> Format.fprintf ppf "%s -> %a" x Value.pp v))
    (Binding.bindings b)

module Naive = struct
  (* Reference semantics for tests: enumerate every combination of tuples
     for the atoms and keep consistent ones. *)
  let find_all db (q : Cq.t) =
    Database.count_probe db;
    let rec go binding = function
      | [] -> [ binding ]
      | (a : Cq.atom) :: rest ->
        let r = get_relation db a in
        Relation.fold
          (fun acc t ->
            let rec unify binding i =
              if i = Array.length a.args then Some binding
              else
                match a.args.(i) with
                | Term.Const v ->
                  if Value.equal v t.(i) then unify binding (i + 1) else None
                | Term.Var x -> (
                  match Binding.find_opt x binding with
                  | Some v ->
                    if Value.equal v t.(i) then unify binding (i + 1) else None
                  | None -> unify (Binding.add x t.(i) binding) (i + 1))
            in
            match unify binding 0 with
            | None -> acc
            | Some binding' -> acc @ go binding' rest)
          [] r
    in
    let all = go Binding.empty q.atoms in
    (* Dedupe: distinct valuations only. *)
    List.sort_uniq (Binding.compare Value.compare) all
end

(* ------------------------------------------------------------------ *)
(* Plan introspection                                                 *)
(* ------------------------------------------------------------------ *)

type plan_step = {
  atom : Cq.atom;
  access : [ `Membership | `Index of int * Value.t | `Bound_index of int | `Scan ];
  estimated_rows : int;
}

let explain db (q : Cq.t) =
  List.iter (fun a -> ignore (get_relation db a)) q.atoms;
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Static cost of an atom under the current bound-variable set. *)
  let assess (a : Cq.atom) =
    let r = get_relation db a in
    let all_known =
      Array.for_all
        (function
          | Term.Const _ -> true
          | Term.Var x -> Hashtbl.mem bound x)
        a.args
    in
    if all_known && Array.for_all Term.is_const a.args then
      { atom = a; access = `Membership; estimated_rows = 0 }
    else begin
      (* Prefer the most selective constant column; else a bound
         variable column; else scan. *)
      let best_const = ref None in
      Array.iteri
        (fun c t ->
          match t with
          | Term.Const v ->
            let n = Relation.count_matching r ~col:c v in
            (match !best_const with
            | Some (m, _, _) when m <= n -> ()
            | _ -> best_const := Some (n, c, v))
          | Term.Var _ -> ())
        a.args;
      match !best_const with
      | Some (n, c, v) -> { atom = a; access = `Index (c, v); estimated_rows = n }
      | None -> (
        let bound_col = ref None in
        Array.iteri
          (fun c t ->
            match t with
            | Term.Var x when Hashtbl.mem bound x && !bound_col = None ->
              bound_col := Some c
            | Term.Var _ | Term.Const _ -> ())
          a.args;
        match !bound_col with
        | Some c ->
          { atom = a; access = `Bound_index c; estimated_rows = Relation.cardinal r }
        | None -> { atom = a; access = `Scan; estimated_rows = Relation.cardinal r })
    end
  in
  let rec order remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let assessed = List.map (fun a -> (a, assess a)) remaining in
      let weight (_, step) =
        (* Membership first, then constant indexes by size, then bound
           indexes, then scans. *)
        match step.access with
        | `Membership -> (0, 0)
        | `Index _ -> (1, step.estimated_rows)
        | `Bound_index _ -> (2, step.estimated_rows)
        | `Scan -> (3, step.estimated_rows)
      in
      let best =
        List.fold_left
          (fun acc x -> if weight x < weight acc then x else acc)
          (List.hd assessed) (List.tl assessed)
      in
      let chosen, step = best in
      List.iter
        (function Term.Var x -> Hashtbl.replace bound x () | Term.Const _ -> ())
        (Array.to_list chosen.Cq.args);
      order (List.filter (fun a -> a != chosen) remaining) (step :: acc)
  in
  order q.atoms []

let pp_plan ppf steps =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i step ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%d. %a  via %s" (i + 1) Cq.pp_atom step.atom
        (match step.access with
        | `Membership -> "membership test"
        | `Index (c, v) ->
          Printf.sprintf "index col %d = %s (~%d rows)" c (Value.to_string v)
            step.estimated_rows
        | `Bound_index c -> Printf.sprintf "index col %d (bound at run time)" c
        | `Scan -> Printf.sprintf "scan (%d rows)" step.estimated_rows))
    steps;
  Format.fprintf ppf "@]"
