type 'a t = {
  mutable data : 'a array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length v = v.size

let is_empty v = v.size = 0

let check_index v i =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.size)

let grow v =
  let capacity = Array.length v.data in
  let new_capacity = if capacity = 0 then 8 else 2 * capacity in
  (* The dummy slot content is immediately overwritten by [push]; we reuse
     an existing element so no [Obj.magic] is needed. *)
  let dummy = if capacity = 0 then None else Some v.data.(0) in
  match dummy with
  | None -> ()
  | Some d ->
    let data = Array.make new_capacity d in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data

let push v x =
  if v.size = Array.length v.data then begin
    if Array.length v.data = 0 then v.data <- Array.make 8 x else grow v
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let get v i =
  check_index v i;
  v.data.(i)

let set v i x =
  check_index v i;
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0

let filter_in_place p v =
  let kept = ref 0 in
  for i = 0 to v.size - 1 do
    let x = v.data.(i) in
    if p x then begin
      if !kept <> i then v.data.(!kept) <- x;
      incr kept
    end
  done;
  v.size <- !kept

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.size - 1) []

let to_array v = Array.sub v.data 0 v.size

let clear v = v.size <- 0
