(** Compile-once conjunctive-query plans.

    {!canonicalize} lowers a {!Cq.t} to a *shape*: variables become
    integer slots (numbered in first-occurrence order) and constants
    become positional parameters.  The shape's {e key} identifies every
    query isomorphic to it — same relation symbols and term pattern,
    constants abstracted — so a per-database table keyed on it serves as
    a plan cache for the thousands of isomorphic probes the coordination
    algorithms issue ({!Database.prepare}).

    {!compile} fixes the join order and each atom's access path once per
    binding stage: which slots are bound when an atom runs is a static
    property of the order, so execution does no per-node re-planning, no
    string hashing, and no binding-undo bookkeeping.  The single
    remaining run-time decision is which bound column to probe when an
    atom has several — genuinely data-dependent, resolved with one
    {!Relation.count_matching} call per column on stage entry.

    {!execute} runs a plan over a [Value.t array] binding frame indexed
    by slot, invoking a callback per solution.  The interpreted
    evaluator in {!Eval} remains available for differential testing. *)

exception Unknown_relation of string
exception Arity_mismatch of string * int * int
(** Same meaning as the exceptions re-exported by {!Eval}:
    [Arity_mismatch (rel, got, expected)]. *)

type arg =
  | Slot of int   (** a variable slot of the binding frame *)
  | Param of int  (** a constant parameter of the query instance *)

(** The representation below is exposed read-only ([private]) so that
    {!Cursor} can translate a compiled plan into its integer-id
    executor without a parallel compilation pipeline; everyone else
    should treat [t] as abstract and go through {!execute}. *)

type op =
  | Bind of int         (** first occurrence: write the tuple value *)
  | Check_slot of int   (** bound slot: compare *)
  | Check_param of int  (** constant: compare *)

type access =
  | Membership                           (** fully bound: O(1) test *)
  | Index_one of int * arg               (** the single bound column *)
  | Index_adaptive of (int * arg) array  (** several; cheapest at run time *)
  | Full_scan

type step = private {
  rel : string;
  args : arg array;
  ops : op array;
  access : access;
}

type t = private {
  key : string;
  steps : step array;
  nslots : int;
  nparams : int;
}
(** A compiled plan.  Pure description: contains relation {e names},
    not relation handles, so it survives table drop/re-creation (arities
    are re-validated on execution). *)

type binding = {
  params : Value.t array;   (** concrete constants, by parameter position *)
  var_names : string array; (** source variable name of each slot *)
}
(** The per-instance residue of canonicalization — what distinguishes a
    specific query from the shared shape. *)

type shape

val canonicalize : Cq.t -> string * shape * binding
(** [canonicalize q] is [(key, shape, binding)].  Two queries get equal
    keys iff they are isomorphic (equal up to variable renaming and
    constant values); such queries can execute the same compiled plan
    under their own [binding]. *)

val key : Cq.t -> string
(** Just the cache key of {!canonicalize}. *)

val compile : (string -> Relation.t option) -> key:string -> shape -> t
(** [compile lookup ~key shape] chooses the join order and access paths.
    Relation cardinalities (from [lookup]) break ties; per-constant
    selectivities cannot be used — constants are abstracted — which is
    what makes the result safely shareable across isomorphic queries.
    @raise Unknown_relation, Arity_mismatch as {!Eval} would. *)

val compile_query : (string -> Relation.t option) -> Cq.t -> t * binding
(** One-shot [canonicalize] + [compile]. *)

val execute :
  t ->
  (string -> Relation.t option) ->
  Counters.t ->
  binding ->
  on_frame:(Value.t array -> bool) ->
  unit
(** [execute plan lookup counters binding ~on_frame] enumerates
    solutions.  [on_frame] receives the binding frame — every slot holds
    its value; index with the positions of [binding.var_names] — and
    returns whether to continue.  The frame is reused between calls:
    callers must copy what they keep.  Tuples examined are added to
    [counters.tuples_scanned].
    @raise Invalid_argument if [binding] has the wrong parameter count.
    @raise Unknown_relation, Arity_mismatch when the database no longer
    matches the plan (e.g. a table was dropped or re-created). *)

val nslots : t -> int

val plan_key : t -> string

val pp : Format.formatter -> t -> unit
(** Renders the step order and access paths, for logs and tests. *)
