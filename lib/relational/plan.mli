(** Compile-once conjunctive-query plans.

    {!canonicalize} lowers a {!Cq.t} to a *shape*: variables become
    integer slots (numbered in first-occurrence order) and constants
    become positional parameters.  The shape's {e key} identifies every
    query isomorphic to it — same relation symbols and term pattern,
    constants abstracted — so a per-database table keyed on it serves as
    a plan cache for the thousands of isomorphic probes the coordination
    algorithms issue ({!Database.prepare}).

    {!compile} fixes the join order and each atom's access path once per
    binding stage: which slots are bound when an atom runs is a static
    property of the order, so execution does no per-node re-planning, no
    string hashing, and no binding-undo bookkeeping.  The single
    remaining run-time decision is which bound column to probe when an
    atom has several — genuinely data-dependent, resolved with one
    {!Relation.count_matching} call per column on stage entry.

    {!execute} runs a plan over a [Value.t array] binding frame indexed
    by slot, invoking a callback per solution.  The interpreted
    evaluator in {!Eval} remains available for differential testing. *)

exception Unknown_relation of string
exception Arity_mismatch of string * int * int
(** Same meaning as the exceptions re-exported by {!Eval}:
    [Arity_mismatch (rel, got, expected)]. *)

type arg =
  | Slot of int   (** a variable slot of the binding frame *)
  | Param of int  (** a constant parameter of the query instance *)

(** The representation below is exposed read-only ([private]) so that
    {!Cursor} can translate a compiled plan into its integer-id
    executor without a parallel compilation pipeline; everyone else
    should treat [t] as abstract and go through {!execute}. *)

type op =
  | Bind of int         (** first occurrence: write the tuple value *)
  | Check_slot of int   (** bound slot: compare *)
  | Check_param of int  (** constant: compare *)

type access =
  | Membership                           (** fully bound: O(1) test *)
  | Index_one of int * arg               (** the single bound column *)
  | Index_adaptive of (int * arg) array  (** several; cheapest at run time *)
  | Full_scan

type step = private {
  rel : string;
  args : arg array;
  ops : op array;
  access : access;
}

type step_stat = {
  mutable s_entered : int;  (** times the step was entered *)
  mutable s_scanned : int;  (** candidate tuples examined *)
  mutable s_emitted : int;  (** candidates that matched and moved deeper *)
  mutable s_ns : int64;     (** inclusive time; only under {!set_analyze} *)
}
(** Per-step observed statistics.  Always on: plain int increments,
    allocation-free.  Mutable and non-private because {!Cursor} updates
    the same records from its integer-id machine, so one plan accrues
    one set of numbers whichever backend ran it.  On plans shared
    across executor domains the updates are advisory (lossy, racy);
    they never affect query results. *)

type stats = {
  mutable executions : int;
  mutable exec_ns : int64;
      (** whole-plan time, accumulated only while {!Obs.tracing} or
          {!analyze_enabled} — never under the always-on telemetry,
          whose probe path stays allocation-free *)
  est_rows : int array;
      (** compile-time per-step cardinality estimate (average index
          bucket — constants are abstracted out of shapes) *)
  steps_obs : step_stat array;
  compiled_version : int;
      (** [Database.data_version] when the plan was compiled *)
  mutable last_seen_version : int;
      (** [data_version] at the most recent cache hit *)
}

type t = private {
  key : string;
  steps : step array;
  nslots : int;
  nparams : int;
  obs : stats;
}
(** A compiled plan.  Pure description: contains relation {e names},
    not relation handles, so it survives table drop/re-creation (arities
    are re-validated on execution). *)

type binding = {
  params : Value.t array;   (** concrete constants, by parameter position *)
  var_names : string array; (** source variable name of each slot *)
}
(** The per-instance residue of canonicalization — what distinguishes a
    specific query from the shared shape. *)

type shape

val canonicalize : Cq.t -> string * shape * binding
(** [canonicalize q] is [(key, shape, binding)].  Two queries get equal
    keys iff they are isomorphic (equal up to variable renaming and
    constant values); such queries can execute the same compiled plan
    under their own [binding]. *)

val key : Cq.t -> string
(** Just the cache key of {!canonicalize}. *)

val compile :
  ?version:int -> (string -> Relation.t option) -> key:string -> shape -> t
(** [compile ?version lookup ~key shape] chooses the join order and
    access paths.  Relation cardinalities (from [lookup]) break ties;
    per-constant selectivities cannot be used — constants are
    abstracted — which is what makes the result safely shareable across
    isomorphic queries.  [version] (default 0) stamps the plan's
    [compiled_version] with the database content version it was planned
    against.
    @raise Unknown_relation, Arity_mismatch as {!Eval} would. *)

val compile_query :
  ?version:int -> (string -> Relation.t option) -> Cq.t -> t * binding
(** One-shot [canonicalize] + [compile]. *)

val execute :
  t ->
  (string -> Relation.t option) ->
  Counters.t ->
  binding ->
  on_frame:(Value.t array -> bool) ->
  unit
(** [execute plan lookup counters binding ~on_frame] enumerates
    solutions.  [on_frame] receives the binding frame — every slot holds
    its value; index with the positions of [binding.var_names] — and
    returns whether to continue.  The frame is reused between calls:
    callers must copy what they keep.  Tuples examined are added to
    [counters.tuples_scanned].
    @raise Invalid_argument if [binding] has the wrong parameter count.
    @raise Unknown_relation, Arity_mismatch when the database no longer
    matches the plan (e.g. a table was dropped or re-created). *)

val nslots : t -> int

val plan_key : t -> string

(** {1 Observed statistics} *)

val stats : t -> stats
(** The plan's live statistics record (shared, mutable). *)

val note_seen : t -> version:int -> unit
(** Stamp [last_seen_version] — called by {!Database.prepare} on every
    cache hit. *)

val reset_stats : t -> unit

val set_analyze : bool -> unit
(** Arm/disarm analyze mode: per-step inclusive wall-clock timing (two
    clock reads per step entry).  Process-global; meant to bracket one
    [solve --explain-analyze].  The always-on counters do not depend on
    it. *)

val analyze_enabled : unit -> bool

val max_drift : t -> float
(** Largest per-step ratio between the compile-time cardinality
    estimate and the observed mean candidates per entry, symmetric
    ([>= 1.0]; 1.0 = estimates still describe the data).  Steps never
    entered are skipped. *)

val pp : Format.formatter -> t -> unit
(** Renders the step order and access paths, for logs and tests. *)

val pp_analyze : Format.formatter -> t -> unit
(** EXPLAIN ANALYZE rendering: {!pp}'s order annotated per step with
    estimated vs observed rows, scan/emit counts, selectivity, and —
    when runs happened under {!set_analyze} — inclusive times. *)
