(* Compile-once query plans.

   A conjunctive query is canonicalized into a *shape*: variables are
   numbered into integer slots in first-occurrence order and constants
   are abstracted into positional parameters.  Two queries with the same
   shape (isomorphic up to variable names and constant values) share one
   compiled plan, which is what lets a per-database cache amortise
   planning across the thousands of isomorphic probes the coordination
   algorithms issue.

   Compilation fixes the join order and each atom's access path once per
   *binding stage* — the set of slots bound when the atom is reached is
   known statically, so no per-backtracking-node planning and no string
   hashing remain on the hot path.  The only run-time choice left is
   which of several bound columns to probe when an atom has more than
   one (genuinely data-dependent: it needs the actual values), decided
   by one [Relation.count_matching] call per column per stage entry. *)

exception Unknown_relation of string
exception Arity_mismatch of string * int * int

(* Where a column's value comes from at run time. *)
type arg =
  | Slot of int   (* variable slot in the binding frame *)
  | Param of int  (* constant parameter of the query instance *)

(* Per-column matching operation, fixed at compile time.  Because the
   join order is static, whether a slot is bound when a step runs is
   static too: no run-time boundness checks, and no undo — a slot
   written by a failed match attempt is simply overwritten next time. *)
type op =
  | Bind of int         (* first occurrence: write the tuple value *)
  | Check_slot of int   (* bound slot: compare *)
  | Check_param of int  (* constant: compare *)

type access =
  | Membership                           (* fully bound: O(1) test *)
  | Index_one of int * arg               (* the single bound column *)
  | Index_adaptive of (int * arg) array  (* several; cheapest at run time *)
  | Full_scan

type step = {
  rel : string;
  args : arg array;
  ops : op array;
  access : access;
}

(* Per-step observed statistics, updated on every execution of the plan
   (row path and cursor machine alike).  Plain int increments: always
   on, allocation-free, and advisory — a plan shared across executor
   domains takes lossy unsynchronised updates, which skews counts by at
   most the lost races and never affects results. *)
type step_stat = {
  mutable s_entered : int;  (* times the step was entered *)
  mutable s_scanned : int;  (* candidates examined (= tuples_scanned share) *)
  mutable s_emitted : int;  (* candidates that matched and moved deeper *)
  mutable s_ns : int64;     (* inclusive time, analyze mode only *)
}

type stats = {
  mutable executions : int;
  mutable exec_ns : int64;  (* whole-plan time, accumulated when Obs armed *)
  est_rows : int array;     (* compile-time per-step cardinality estimate *)
  steps_obs : step_stat array;
  compiled_version : int;   (* Database.data_version at compile *)
  mutable last_seen_version : int;  (* data_version at last cache hit *)
}

type t = {
  key : string;
  steps : step array;
  nslots : int;
  nparams : int;
  obs : stats;
}

(* The per-instance residue of canonicalization: the concrete constants
   (by parameter position) and variable names (by slot), needed to
   execute a shared plan for one specific query and to name its
   solutions. *)
type binding = {
  params : Value.t array;
  var_names : string array;
}

type shape = {
  sh_atoms : (string * arg array) list;
  sh_nslots : int;
  sh_nparams : int;
}

let canonicalize (q : Cq.t) =
  let var_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let var_names = ref [] in
  let params = ref [] in
  let nparams = ref 0 in
  let buf = Buffer.create 64 in
  let catoms =
    List.map
      (fun (a : Cq.atom) ->
        Buffer.add_string buf a.rel;
        Buffer.add_char buf '(';
        let args =
          Array.map
            (fun t ->
              match t with
              | Term.Const v ->
                let j = !nparams in
                incr nparams;
                params := v :: !params;
                Buffer.add_string buf "p,";
                Param j
              | Term.Var x ->
                let s =
                  match Hashtbl.find_opt var_ids x with
                  | Some s -> s
                  | None ->
                    let s = Hashtbl.length var_ids in
                    Hashtbl.add var_ids x s;
                    var_names := x :: !var_names;
                    s
                in
                Buffer.add_char buf 's';
                Buffer.add_string buf (string_of_int s);
                Buffer.add_char buf ',';
                Slot s)
            a.args
        in
        Buffer.add_string buf ");";
        (a.rel, args))
      q.atoms
  in
  let shape =
    {
      sh_atoms = catoms;
      sh_nslots = Hashtbl.length var_ids;
      sh_nparams = !nparams;
    }
  in
  let binding =
    {
      params = Array.of_list (List.rev !params);
      var_names = Array.of_list (List.rev !var_names);
    }
  in
  (Buffer.contents buf, shape, binding)

let key q =
  let k, _, _ = canonicalize q in
  k

(* ------------------------------------------------------------------ *)
(* Compilation                                                        *)
(* ------------------------------------------------------------------ *)

let resolve lookup rel nargs =
  match lookup rel with
  | None -> raise (Unknown_relation rel)
  | Some r ->
    let expected = Relation.arity r in
    if nargs <> expected then raise (Arity_mismatch (rel, nargs, expected));
    r

(* Compile-time cardinality estimate of one access path.  Constants are
   abstracted out of shapes, so index paths estimate the average bucket
   of the probed column; the observed statistics measure how far the
   actual buckets drift from it. *)
let estimate rel access =
  match access with
  | Membership -> 1
  | Index_one (c, _) -> Relation.estimate_bucket rel ~col:c
  | Index_adaptive cols ->
    Array.fold_left
      (fun acc (c, _) -> min acc (Relation.estimate_bucket rel ~col:c))
      max_int cols
  | Full_scan -> Relation.cardinal rel

let compile ?(version = 0) lookup ~key (shape : shape) =
  let atoms = Array.of_list shape.sh_atoms in
  let rels =
    Array.map (fun (rel, args) -> resolve lookup rel (Array.length args)) atoms
  in
  let n = Array.length atoms in
  let bound = Array.make shape.sh_nslots false in
  let placed = Array.make n false in
  (* Static cost class of atom [i] under the current bound-slot set:
     fully bound beats constant-indexed beats slot-indexed beats scan;
     relation cardinality (a compile-time statistic — constants are
     abstracted, so per-value counts are unavailable) breaks ties. *)
  let assess i =
    let _, args = atoms.(i) in
    let total = Array.length args in
    let bound_cols = ref 0 and has_param = ref false in
    Array.iter
      (fun a ->
        match a with
        | Param _ ->
          incr bound_cols;
          has_param := true
        | Slot s -> if bound.(s) then incr bound_cols)
      args;
    let card = Relation.cardinal rels.(i) in
    if !bound_cols = total then (0, 0)
    else if !bound_cols > 0 then ((if !has_param then 1 else 2), card)
    else (3, card)
  in
  let steps = ref [] in
  let ests = ref [] in
  for _stage = 0 to n - 1 do
    let best = ref None in
    for i = n - 1 downto 0 do
      if not placed.(i) then begin
        let w = assess i in
        match !best with
        | Some (bw, _) when bw <= w -> ()
        | _ -> best := Some (w, i)
      end
    done;
    let i = match !best with Some (_, i) -> i | None -> assert false in
    placed.(i) <- true;
    let rel, args = atoms.(i) in
    (* Access path from the slots bound *before* this stage. *)
    let candidates = ref [] in
    Array.iteri
      (fun c a ->
        match a with
        | Param _ -> candidates := (c, a) :: !candidates
        | Slot s -> if bound.(s) then candidates := (c, a) :: !candidates)
      args;
    let candidates = List.rev !candidates in
    let access =
      if List.length candidates = Array.length args then Membership
      else
        match candidates with
        | [] -> Full_scan
        | [ (c, a) ] -> Index_one (c, a)
        | many -> Index_adaptive (Array.of_list many)
    in
    (* Per-column ops; a slot's first occurrence (across the whole step
       sequence) binds, later ones compare. *)
    let ops =
      Array.map
        (fun a ->
          match a with
          | Param j -> Check_param j
          | Slot s ->
            if bound.(s) then Check_slot s
            else begin
              bound.(s) <- true;
              Bind s
            end)
        args
    in
    steps := { rel; args; ops; access } :: !steps;
    ests := estimate rels.(i) access :: !ests
  done;
  let steps = Array.of_list (List.rev !steps) in
  {
    key;
    steps;
    nslots = shape.sh_nslots;
    nparams = shape.sh_nparams;
    obs =
      {
        executions = 0;
        exec_ns = 0L;
        est_rows = Array.of_list (List.rev !ests);
        steps_obs =
          Array.init (Array.length steps) (fun _ ->
              { s_entered = 0; s_scanned = 0; s_emitted = 0; s_ns = 0L });
        compiled_version = version;
        last_seen_version = version;
      };
  }

let compile_query ?version lookup q =
  let key, shape, binding = canonicalize q in
  (compile ?version lookup ~key shape, binding)

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

exception Stop

(* Analyze mode: when on, every step execution is timed (two clock
   reads per step entry) and charged inclusively to its per-step
   [s_ns].  Process-global by design — `solve --explain-analyze` arms
   it around one solve; the always-on counters above never depend on
   it. *)
let analyze_mode = ref false

let set_analyze b = analyze_mode := b

let analyze_enabled () = !analyze_mode

let execute plan lookup (counters : Counters.t) (binding : binding) ~on_frame =
  if Array.length binding.params <> plan.nparams then
    invalid_arg "Plan.execute: parameter count does not match the plan";
  (* Re-resolve relations: the plan may be older than a drop/create of a
     table, in which case stale arities must surface as errors, not
     out-of-bounds reads. *)
  let rels =
    Array.map (fun st -> resolve lookup st.rel (Array.length st.args)) plan.steps
  in
  let params = binding.params in
  (* All slots are statically bound before first read, so a dummy
     initial value is never observed. *)
  let frame = Array.make (max 1 plan.nslots) (Value.Int 0) in
  let value = function Slot s -> frame.(s) | Param j -> params.(j) in
  let nsteps = Array.length plan.steps in
  let obs = plan.obs in
  obs.executions <- obs.executions + 1;
  (* [tracing], not [enabled]: always-on telemetry (metrics registry,
     flight recorder) must keep the zero-allocation probe path, and
     [Obs.now_ns] boxes its int64.  Wall time is only accrued when a
     serializing sink is attached or EXPLAIN ANALYZE asked for it. *)
  let armed = Obs.tracing () || !analyze_mode in
  let t_run = if armed then Obs.now_ns () else 0L in
  let rec go i =
    if i = nsteps then begin
      if not (on_frame frame) then raise Stop
    end
    else begin
      let st = plan.steps.(i) in
      let r = rels.(i) in
      let so = obs.steps_obs.(i) in
      so.s_entered <- so.s_entered + 1;
      let ops = st.ops in
      let nops = Array.length ops in
      let try_tuple (t : Tuple.t) =
        counters.tuples_scanned <- counters.tuples_scanned + 1;
        so.s_scanned <- so.s_scanned + 1;
        let ok = ref true in
        let c = ref 0 in
        while !ok && !c < nops do
          (match ops.(!c) with
          | Bind s -> frame.(s) <- t.(!c)
          | Check_slot s -> if not (Value.equal frame.(s) t.(!c)) then ok := false
          | Check_param j ->
            if not (Value.equal params.(j) t.(!c)) then ok := false);
          incr c
        done;
        if !ok then begin
          so.s_emitted <- so.s_emitted + 1;
          go (i + 1)
        end
      in
      let run_access () =
        match st.access with
        | Membership ->
          counters.tuples_scanned <- counters.tuples_scanned + 1;
          so.s_scanned <- so.s_scanned + 1;
          if Relation.mem r (Array.map value st.args) then begin
            so.s_emitted <- so.s_emitted + 1;
            go (i + 1)
          end
        | Index_one (c, a) -> Relation.iter_matching r ~col:c (value a) try_tuple
        | Index_adaptive cols ->
          (* The only run-time planning left: with several bound columns
             the cheapest depends on the actual values. *)
          let best_col = ref (-1) and best_v = ref (Value.Int 0) in
          let best_cost = ref max_int in
          Array.iter
            (fun (c, a) ->
              let v = value a in
              let cost = Relation.count_matching r ~col:c v in
              if cost < !best_cost then begin
                best_cost := cost;
                best_col := c;
                best_v := v
              end)
            cols;
          Relation.iter_matching r ~col:!best_col !best_v try_tuple
        | Full_scan -> Relation.iter try_tuple r
      in
      if not !analyze_mode then run_access ()
      else begin
        (* Inclusive per-step time (children included), like EXPLAIN
           ANALYZE's actual-time column.  [Fun.protect] so a Stop
           unwinding from a solution callback still charges the step. *)
        let t0 = Obs.now_ns () in
        Fun.protect
          ~finally:(fun () ->
            so.s_ns <- Int64.add so.s_ns (Int64.sub (Obs.now_ns ()) t0))
          run_access
      end
    end
  in
  (try go 0 with Stop -> ());
  if armed then obs.exec_ns <- Int64.add obs.exec_ns (Int64.sub (Obs.now_ns ()) t_run)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let nslots plan = plan.nslots

let plan_key plan = plan.key

let stats plan = plan.obs

let note_seen plan ~version = plan.obs.last_seen_version <- version

let reset_stats plan =
  let obs = plan.obs in
  obs.executions <- 0;
  obs.exec_ns <- 0L;
  Array.iter
    (fun so ->
      so.s_entered <- 0;
      so.s_scanned <- 0;
      so.s_emitted <- 0;
      so.s_ns <- 0L)
    obs.steps_obs

(* Mean candidates scanned per entry of step [i] — the observed
   counterpart of [est_rows.(i)]. *)
let observed_rows plan i =
  let so = plan.obs.steps_obs.(i) in
  if so.s_entered = 0 then 0.0
  else float_of_int so.s_scanned /. float_of_int so.s_entered

(* Largest per-step estimate-vs-observed ratio (symmetric: an estimate
   off by 4x in either direction reports 4.0).  1.0 means the compile
   cardinalities still describe the data; adaptive re-planning keys on
   this together with how far [last_seen_version] ran from
   [compiled_version]. *)
let max_drift plan =
  let worst = ref 1.0 in
  Array.iteri
    (fun i _ ->
      let so = plan.obs.steps_obs.(i) in
      if so.s_entered > 0 then begin
        let obs = Float.max (observed_rows plan i) 1.0 in
        let est = Float.max (float_of_int plan.obs.est_rows.(i)) 1.0 in
        let ratio = if obs > est then obs /. est else est /. obs in
        if ratio > !worst then worst := ratio
      end)
    plan.steps;
  !worst

let pp_arg ppf = function
  | Slot s -> Format.fprintf ppf "s%d" s
  | Param j -> Format.fprintf ppf "p%d" j

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan %s" plan.key;
  Array.iteri
    (fun i st ->
      Format.fprintf ppf "@,%d. %s(%s) via %s" (i + 1) st.rel
        (String.concat ", "
           (Array.to_list (Array.map (Format.asprintf "%a" pp_arg) st.args)))
        (match st.access with
        | Membership -> "membership"
        | Index_one (c, a) ->
          Format.asprintf "index col %d = %a" c pp_arg a
        | Index_adaptive cols ->
          Format.asprintf "adaptive index over cols {%s}"
            (String.concat ", "
               (Array.to_list
                  (Array.map (fun (c, _) -> string_of_int c) cols)))
        | Full_scan -> "scan"))
    plan.steps;
  Format.fprintf ppf "@]"

let access_label st =
  match st.access with
  | Membership -> "membership"
  | Index_one (c, a) -> Format.asprintf "index[%d=%a]" c pp_arg a
  | Index_adaptive cols ->
    Format.asprintf "adaptive{%s}"
      (String.concat ","
         (Array.to_list (Array.map (fun (c, _) -> string_of_int c) cols)))
  | Full_scan -> "scan"

(* EXPLAIN ANALYZE rendering: the compiled order with, per step, the
   compile-time cardinality estimate against what executing the plan
   actually observed.  Times only appear when the runs happened under
   analyze mode ([s_ns] stays 0 otherwise) — tests filter them out. *)
let pp_analyze ppf plan =
  let obs = plan.obs in
  Format.fprintf ppf "@[<v>plan %s" plan.key;
  Format.fprintf ppf "@,  executions=%d drift=%.2f version=%d->%d"
    obs.executions (max_drift plan) obs.compiled_version
    obs.last_seen_version;
  if obs.exec_ns > 0L then
    Format.fprintf ppf "@,  total time %.3f ms"
      (Int64.to_float obs.exec_ns /. 1e6);
  Array.iteri
    (fun i st ->
      let so = obs.steps_obs.(i) in
      Format.fprintf ppf
        "@,%d. %s(%s) via %s  est_rows=%d obs_rows=%.1f entered=%d \
         scanned=%d emitted=%d sel=%s"
        (i + 1) st.rel
        (String.concat ", "
           (Array.to_list (Array.map (Format.asprintf "%a" pp_arg) st.args)))
        (access_label st) obs.est_rows.(i) (observed_rows plan i)
        so.s_entered so.s_scanned so.s_emitted
        (if so.s_scanned = 0 then "-"
         else
           Printf.sprintf "%.3f"
             (float_of_int so.s_emitted /. float_of_int so.s_scanned));
      if so.s_ns > 0L then
        Format.fprintf ppf " time=%.3fms" (Int64.to_float so.s_ns /. 1e6))
    plan.steps;
  Format.fprintf ppf "@]"
