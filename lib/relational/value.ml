type t =
  | Int of int
  | Str of string
  | Bool of bool

let constructor_rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Str _ | Bool _), _ ->
    Int.compare (constructor_rank a) (constructor_rank b)

let equal a b = a == b || compare a b = 0

(* Per-constructor salts keep [Int 1], [Str "1"] and [Bool true] apart
   without building an intermediate pair for [Stdlib.Hashtbl.hash] to
   consume — hashing a tuple literal allocates it, and [hash] sits on
   the allocation-free probe path ({!Dict.find}). *)
let hash = function
  | Int x -> Stdlib.Hashtbl.hash x lxor 0x2545f491
  | Str s -> Stdlib.Hashtbl.hash s lxor 0x27220a95
  | Bool b -> Stdlib.Hashtbl.hash b lxor 0x165667b1

let is_identifier s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  &&
  let ok = ref true in
  String.iter
    (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> () | _ -> ok := false)
    s;
  !ok

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Bool b -> Format.pp_print_bool ppf b
  | Str s ->
    if is_identifier s then Format.pp_print_string ppf s
    else Format.fprintf ppf "'%s'" s

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
    match s with
    | "true" -> Bool true
    | "false" -> Bool false
    | _ ->
      let n = String.length s in
      if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then
        Str (String.sub s 1 (n - 2))
      else Str s)

let int x = Int x
let str s = Str s
let bool b = Bool b

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
module Hashtbl = Stdlib.Hashtbl.Make (Hashed)
