(* Process-level constant dictionary.

   Every value inserted into a columnar store is interned here once, at
   load/insert time, and carried as a dense non-negative int everywhere
   after that: Bigarray columns, index postings and cursor frames hold
   ids only, so the GC never scans tuple data and the probe inner loop
   compares machine integers instead of calling [Value.compare].

   Ids are process-global (one dictionary, shared by every store and
   database) for the same reason {!Relation.mutation_count} is: sharing
   can only make ids denser than strictly necessary, never wrong, and it
   lets worker views, mirrors and replays of the same data agree on ids
   without any handshake.

   Concurrency contract:
   - [intern] and [find] serialise on one mutex.  Interning happens on
     the mutating domain (inserts); [find] is called on the probe path
     (translating a query's constant parameters), which is a handful of
     lookups per probe — an uncontended lock, not a scan-proportional
     cost.  Neither allocates on the steady-state path.
   - [value] is lock-free: ids are published by an [Atomic.t] size
     counter *after* the backing array slot (and any replacement array)
     is written, so a reader that observes [id < size ()] also observes
     the corresponding slot (release/acquire ordering).  Decoding at
     solution-output time therefore never contends with writers. *)

let mutex = Mutex.create ()

(* value -> id; guarded by [mutex]. *)
let table : int Value.Hashtbl.t = Value.Hashtbl.create 1024

(* id -> value; the array is append-only and republished on growth. *)
let data : Value.t array Atomic.t = Atomic.make [||]

let published : int Atomic.t = Atomic.make 0

let size () = Atomic.get published

let unknown = -1

let intern v =
  Mutex.lock mutex;
  let id =
    match Value.Hashtbl.find_opt table v with
    | Some id -> id
    | None ->
      let id = Atomic.get published in
      let arr = Atomic.get data in
      let cap = Array.length arr in
      if id >= cap then begin
        let arr' = Array.make (max 1024 (2 * cap)) v in
        Array.blit arr 0 arr' 0 cap;
        (* Publish the bigger array before the size that legitimises
           reading into it. *)
        Atomic.set data arr'
      end;
      (Atomic.get data).(id) <- v;
      Atomic.set published (id + 1);
      Value.Hashtbl.add table v id;
      id
  in
  Mutex.unlock mutex;
  id

let find v =
  Mutex.lock mutex;
  let id = try Value.Hashtbl.find table v with Not_found -> unknown in
  Mutex.unlock mutex;
  id

let value id =
  (* Read the size first: its acquire pairs with the release in
     [intern], making the slot (and a grown array) visible. *)
  let n = Atomic.get published in
  if id < 0 || id >= n then
    invalid_arg (Printf.sprintf "Dict.value: id %d out of [0,%d)" id n);
  Array.unsafe_get (Atomic.get data) id

let mem_id id = id >= 0 && id < Atomic.get published
