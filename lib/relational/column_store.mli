(** Columnar relation storage: the zero-allocation storage backend.

    Tuples are stored column-wise as {!Dict}-interned ids in [Bigarray]
    int arrays, with eager per-column postings and an open-addressed
    present-set.  Maintenance (posting pruning, whole-store compaction)
    follows the same thresholds as {!Relation} and preserves live-row
    insertion order, so a cursor over this store visits candidates in
    exactly the order the row store would — the property the
    differential tests and cross-backend stats equality rely on. *)

type t

val create : Schema.t -> t
val schema : t -> Schema.t
val arity : t -> int

val cardinal : t -> int
(** Live tuples. *)

val physical_rows : t -> int
(** Physical rows including tombstones (for compaction tests). *)

(** {1 Mutation} *)

val insert : t -> Tuple.t -> bool
(** [insert t tuple] interns the tuple's values and appends a row;
    [false] if an identical live tuple is already present. *)

val delete : t -> Tuple.t -> bool
(** Tombstone delete; prunes postings and compacts the store with the
    same policies as {!Relation.delete}. *)

val mem : t -> Tuple.t -> bool

(** {1 Cursor-facing reads}

    These operate on interned ids and physical rows, allocate nothing,
    and are what {!Cursor} compiles probes down to. *)

val is_live : t -> int -> bool
val col_get : t -> int -> int -> int
(** [col_get t c row] is the interned id at column [c] of physical row
    [row]. *)

type posting = private {
  mutable count : int;  (** live rows among [ids] *)
  mutable len : int;    (** valid prefix of [ids]; may include dead rows *)
  mutable ids : int array;
}

val no_posting : posting
(** The shared empty posting (also what {!posting} returns for ids that
    never appeared); usable as an array initialiser. *)

val posting : t -> int -> int -> posting
(** [posting t c id] is the (possibly stale) posting of value [id] in
    column [c]; a shared empty posting when the id never appeared.
    Callers must re-check {!is_live} per row. *)

val count_matching_id : t -> int -> int -> int
(** Live-row count for [(column, id)] — O(1), mirrors
    {!Relation.count_matching}. *)

val find_row : t -> int array -> int
(** [find_row t ids] is the physical row of the live tuple whose
    columns equal [ids] (an [arity]-sized scratch array owned by the
    caller), or [-1].  Allocation-free. *)

(** {1 Observed statistics} *)

val inserts : t -> int
(** Successful inserts since creation (monotone — prune/compact do not
    rewind it). *)

val deletes : t -> int
(** Successful deletes since creation (monotone). *)

val distinct_count : t -> col:int -> int
(** Number of distinct values with at least one live row in [col],
    from the eager postings — mirrors {!Relation.distinct_count}. *)

(** {1 Value-level reads (tests, debugging, decode-at-output)} *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Live tuples, insertion order, decoded. *)

val to_list : t -> Tuple.t list
val lookup : t -> col:int -> Value.t -> Tuple.t list
val count_matching : t -> col:int -> Value.t -> int
val posting_length : t -> col:int -> Value.t -> int
(** Physical posting length including stale ids (invariant tests). *)

val compact : t -> unit
val pp : Format.formatter -> t -> unit
