(** Database instances: named relations, a compiled-plan cache, and
    query-engine counters.

    The probe counter mirrors the metric the paper's experiments are
    driven by — the number of SQL queries sent to MySQL.  Every call
    that the conjunctive-query evaluator treats as "one database query"
    bumps it via {!count_probe}.  Alongside it live the plan-cache
    hit/miss counters and the tuples-scanned counter, all in one
    {!Counters.t} record with a single reset ({!reset_counters}). *)

type t

type backend =
  | Row      (** the original boxed-tuple store; the differential oracle *)
  | Columnar (** row store + {!Column_store} mirror probed by {!Cursor} *)

val backend_to_string : backend -> string

val backend_of_string : string -> backend option

val create : ?backend:backend -> unit -> t
(** [create ?backend ()] makes an empty instance.  [~backend:Columnar]
    (default [Row]) makes every subsequently created table keep a
    columnar mirror ({!Relation.column_store}); the evaluator then runs
    probes through the allocation-free cursor path. *)

val backend : t -> backend

val uid : t -> int
(** Process-unique instance id, shared by {!worker_view}s; keys
    per-domain caches derived from this database. *)

val plan_epoch : t -> int
(** Monotone stamp bumped on every plan-cache invalidation (table
    creation/drop).  Caches holding anything compiled from a plan
    snapshot this and retire entries when it moves. *)

val worker_view : ?guard:Resilient.t -> t -> t
(** [worker_view db] is a database handle for one parallel shard: it
    shares [db]'s relations and compiled-plan cache (and the lock that
    serialises cache fills), but carries fresh zeroed counters — merged
    back by the executor so totals equal the sequential run — and its
    own guard slot ([?guard], default unguarded) holding that shard's
    split budget rather than the parent's.  Views must treat the store
    as read-only; call {!warm_indexes} before sharing a store across
    domains so no lazy index build races. *)

val create_table : t -> Schema.t -> Relation.t
(** @raise Invalid_argument if a relation with the same name exists.
    Invalidates the plan cache. *)

val create_table' : t -> string -> string list -> Relation.t
(** [create_table' db name attrs] is [create_table db (Schema.make name attrs)]. *)

val drop_table : t -> string -> unit
(** Removes a relation; silently does nothing when absent.  Invalidates
    the plan cache when a relation is actually removed. *)

val relation : t -> string -> Relation.t
(** @raise Not_found when no relation has that name. *)

val relation_opt : t -> string -> Relation.t option

val mem_relation : t -> string -> bool

val relations : t -> Relation.t list
(** All relations, sorted by name. *)

val insert : t -> string -> Value.t list -> unit
(** [insert db rel vs] inserts the tuple [vs] into relation [rel].
    @raise Not_found when [rel] does not exist.
    @raise Invalid_argument on an arity mismatch. *)

val active_domain : t -> Value.Set.t
(** Union of the active domains of all relations. *)

val total_tuples : t -> int

val data_version : t -> int
(** A stamp that moves whenever {e this} database's contents change —
    any successful insert or delete into one of its relations, any
    table created or dropped.  Per-database: mutations of other
    databases in the process never move it (each instance owns an
    atomic stamp, shared into its relations at {!create_table} and with
    its {!worker_view}s).  Callers use it to invalidate content-derived
    caches and to measure plan staleness
    ({!Plan.stats}[.compiled_version]). *)

(** {2 Plan cache}

    Compiled plans ({!Plan.t}) are cached per database instance, keyed
    by query shape — relation symbols and term pattern with constants
    abstracted — so isomorphic probes compile once.  The cache is
    cleared whenever a table is created or dropped. *)

val prepare : ?cache:bool -> t -> Cq.t -> Plan.t * Plan.binding
(** [prepare db q] canonicalizes [q] and returns its compiled plan plus
    the instance binding (constants and variable names).  With [~cache]
    (default [true]) the plan is served from / stored into the shape
    cache, counting a hit or miss; with [~cache:false] it is compiled
    afresh, counting a miss.
    @raise Plan.Unknown_relation, Plan.Arity_mismatch on bad queries. *)

val plan_cache_size : t -> int
(** Number of distinct query shapes currently cached. *)

val cached_plans : t -> (string * Plan.t) list
(** Snapshot of the plan cache, sorted by shape key (deterministic
    order), taken under the plan lock.  The plans are the live cached
    objects — their {!Plan.stats} keep accruing after the snapshot.
    What [solve --explain-analyze] renders. *)

(** {2 Counters} *)

val counters : t -> Counters.t
(** The live counters record (mutated in place by the engine). *)

val snapshot_counters : t -> Counters.t
(** An independent copy, for before/after accounting in solvers. *)

val reset_counters : t -> unit
(** Zero probes, plan hits/misses, and tuples scanned, together. *)

val count_probe : t -> unit
(** Record that one conjunctive query was issued against this instance.
    If a probe latency is configured, also stalls for that long. *)

val warm_indexes : t -> unit
(** {!Relation.warm_indexes} on every relation: force all lazy hash
    indexes to exist so concurrent readers never mutate the store. *)

val set_probe_latency : t -> float -> unit
(** [set_probe_latency db seconds] makes every probe cost an additional
    [seconds] of wall-clock time, emulating the client–server round trip
    of the paper's MySQL/JDBC setup (where per-query latency, not join
    work, dominates).  The stall is a true blocking sleep, so probes
    issued by concurrent domains overlap — the regime the
    [parallel-scaling] ablation measures.  Zero (the default) disables
    the stall. *)

val probe_latency : t -> float

(** {2 Resilience}

    An armed {!Resilient.t} guard turns every evaluator probe into a
    budgeted, fault-injectable, retried operation (see {!Resilient}).
    With no guard armed — the default — the middleware costs one field
    load and a branch per probe. *)

val set_guard : t -> Resilient.t option -> unit
(** Arm (or disarm, with [None]) the resilience middleware on this
    instance.  Callers own the per-solve lifecycle: run
    {!Resilient.start_solve} before handing the database to a solver. *)

val guard : t -> Resilient.t option

val probes : t -> int
(** Number of probes since creation or the last reset. *)

val reset_probes : t -> unit
(** Alias of {!reset_counters}: all engine counters share one reset so
    probe accounting can never drift from the cache and scan counters. *)

val pp : Format.formatter -> t -> unit
(** Prints every relation's schema and cardinality (not the tuples). *)
