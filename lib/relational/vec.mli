(** Growable arrays.

    A tiny dynamic-array substrate used by the relation store.  OCaml 5.1
    does not ship [Dynarray] (it arrived in 5.2), so we provide the small
    subset of operations the relational engine needs. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh, empty vector. *)

val of_list : 'a list -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end of [v] in amortised O(1). *)

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if
    [i < 0 || i >= length v]. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element.  @raise Invalid_argument on an
    out-of-bounds index. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** [filter_in_place p v] keeps only the elements satisfying [p],
    preserving their order, without allocating a new backing array.
    Used by the relation store to purge tombstoned row ids from index
    postings. *)

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val clear : 'a t -> unit
(** [clear v] removes all elements, keeping the underlying storage. *)
