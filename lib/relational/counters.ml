type t = {
  mutable probes : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable tuples_scanned : int;
}

let create () =
  { probes = 0; plan_hits = 0; plan_misses = 0; tuples_scanned = 0 }

let reset c =
  c.probes <- 0;
  c.plan_hits <- 0;
  c.plan_misses <- 0;
  c.tuples_scanned <- 0

let copy c =
  {
    probes = c.probes;
    plan_hits = c.plan_hits;
    plan_misses = c.plan_misses;
    tuples_scanned = c.tuples_scanned;
  }

let diff ~before ~after =
  {
    probes = after.probes - before.probes;
    plan_hits = after.plan_hits - before.plan_hits;
    plan_misses = after.plan_misses - before.plan_misses;
    tuples_scanned = after.tuples_scanned - before.tuples_scanned;
  }

let pp ppf c =
  Format.fprintf ppf "probes=%d plan_hits=%d plan_misses=%d tuples_scanned=%d"
    c.probes c.plan_hits c.plan_misses c.tuples_scanned
