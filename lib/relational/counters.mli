(** Unified query-engine counters.

    One mutable record gathers everything the engine counts per database
    instance: conjunctive-query probes (the paper's "number of SQL
    queries" metric), plan-cache hits and misses, and tuples examined by
    index scans and full scans.  A single {!reset} clears all of them
    together, so probe accounting and the newer counters can never drift
    apart. *)

type t = {
  mutable probes : int;          (** conjunctive queries issued *)
  mutable plan_hits : int;       (** compiled plans served from the cache *)
  mutable plan_misses : int;     (** compilations (cache miss or uncached) *)
  mutable tuples_scanned : int;  (** tuples examined by scans and lookups *)
}

val create : unit -> t

val reset : t -> unit
(** Zero every counter. *)

val copy : t -> t
(** An independent snapshot. *)

val diff : before:t -> after:t -> t
(** Per-field [after - before]; both arguments are left untouched. *)

val pp : Format.formatter -> t -> unit
