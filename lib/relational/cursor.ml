(* Allocation-free cursor execution of compiled plans over columnar
   mirrors.

   A {!Plan.t} is translated once per (domain, database, plan) into an
   [exec]: every relation name resolved to its {!Column_store}, every
   argument encoded as an int "source" (slot or parameter), and all the
   machine state — binding frame, translated parameters, per-step
   cursor positions — preallocated.  Running a probe then touches only
   machine integers: postings are walked by index, column values are
   compared as {!Dict} ids, and backtracking is an explicit
   step-counter decrement instead of an exception or a closure return.
   Steady state, a probe allocates nothing.

   Semantics mirror {!Plan.execute} over the row store exactly — same
   join order (the plan is shared), same candidate enumeration order
   (both stores preserve live-row insertion order), same adaptive
   column choice (first strict minimum over the same column sequence),
   and the same [tuples_scanned] accounting (one per live candidate
   examined, one per membership test).  The differential tests compare
   full solver runs, including stats, across the two paths. *)

(* Where a column's comparison id comes from: slot [s] encodes as
   [s lsl 1], parameter [j] as [(j lsl 1) lor 1]. *)
let encode_arg = function
  | Plan.Slot s -> s lsl 1
  | Plan.Param j -> (j lsl 1) lor 1

type access_exec =
  | A_membership of int array * int array
      (* per-column sources; scratch id-vector for [find_row] *)
  | A_index_one of int * int        (* column, source *)
  | A_adaptive of int array * int array  (* columns, sources *)
  | A_scan

type step_exec = {
  store : Column_store.t;
  ops : Plan.op array;
  access : access_exec;
  stat : Plan.step_stat;
      (* the *plan's* step-stat record, shared with the row path: one
         plan accrues one set of observed numbers whichever backend ran
         it.  Plain int increments — the probe stays allocation-free. *)
}

type t = {
  plan : Plan.t;
      (* identity of the plan this exec was compiled from; compared
         physically to detect recompilation and cache invalidation *)
  steps : step_exec array;
  nsteps : int;
  nslots : int;
  nparams : int;
  frame : int array;   (* slot -> bound id *)
  params : int array;  (* param -> translated id; Dict.unknown if absent *)
  pos : int array;     (* per step: next position in its iteration *)
  lim : int array;     (* per step: iteration bound *)
  kind : int array;    (* per step: 0 posting, 1 scan, 2 membership *)
  cur : Column_store.posting array;  (* per step, when kind = 0 *)
  out_frame : Value.t array;         (* decoded frame for callbacks *)
}

let of_plan db (plan : Plan.t) =
  let steps =
    Array.mapi
      (fun i (st : Plan.step) ->
        let rel =
          match Database.relation_opt db st.rel with
          | None -> raise (Plan.Unknown_relation st.rel)
          | Some r ->
            let expected = Relation.arity r in
            let got = Array.length st.args in
            if got <> expected then
              raise (Plan.Arity_mismatch (st.rel, got, expected));
            r
        in
        let store =
          match Relation.column_store rel with
          | Some cs -> cs
          | None ->
            invalid_arg
              (Printf.sprintf "Cursor: relation %s has no columnar mirror"
                 st.rel)
        in
        let access =
          match st.access with
          | Plan.Membership ->
            let srcs = Array.map encode_arg st.args in
            A_membership (srcs, Array.make (Array.length srcs) 0)
          | Plan.Index_one (c, a) -> A_index_one (c, encode_arg a)
          | Plan.Index_adaptive cols ->
            A_adaptive
              ( Array.map fst cols,
                Array.map (fun (_, a) -> encode_arg a) cols )
          | Plan.Full_scan -> A_scan
        in
        { store; ops = st.ops; access; stat = (Plan.stats plan).steps_obs.(i) })
      plan.steps
  in
  let n = Array.length steps in
  {
    plan;
    steps;
    nsteps = n;
    nslots = plan.nslots;
    nparams = plan.nparams;
    frame = Array.make (max 1 plan.nslots) 0;
    params = Array.make (max 1 plan.nparams) Dict.unknown;
    pos = Array.make (max 1 n) 0;
    lim = Array.make (max 1 n) 0;
    kind = Array.make (max 1 n) 0;
    cur = Array.make (max 1 n) Column_store.no_posting;
    out_frame = Array.make (max 1 plan.nslots) (Value.Int 0);
  }

(* ------------------------- per-domain cache ----------------------- *)

(* One exec per (domain, database, plan shape).  Per-domain because the
   machine state is scratch; keyed by database uid so worker views (same
   uid) share entries; validated by physical plan identity, which
   changes exactly when the database recompiles a shape — on plan-cache
   invalidation or under [~cache:false]. *)
let dls : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let prepare db (plan : Plan.t) =
  let tbl = Domain.DLS.get dls in
  let key = Printf.sprintf "%d|%s" (Database.uid db) plan.key in
  match Hashtbl.find_opt tbl key with
  | Some exec when exec.plan == plan -> exec
  | _ ->
    let exec = of_plan db plan in
    Hashtbl.replace tbl key exec;
    exec

let bind_params t (params : Value.t array) =
  if Array.length params <> t.nparams then
    invalid_arg "Cursor.bind_params: parameter count does not match the plan";
  for j = 0 to t.nparams - 1 do
    (* Unknown constants translate to [Dict.unknown]: no stored id ever
       equals it, so every comparison against it fails — exactly the
       row store's behaviour for a value it does not contain. *)
    t.params.(j) <- Dict.find params.(j)
  done

(* --------------------------- the machine -------------------------- *)

let src_id t src =
  if src land 1 = 0 then Array.unsafe_get t.frame (src lsr 1)
  else Array.unsafe_get t.params (src lsr 1)

(* Position step [i]'s cursor at the start of its candidate stream.
   Mirrors the access-path entry of [Plan.execute]: the adaptive choice
   is the first strict minimum of live counts over the same column
   order. *)
let enter t i =
  let st = Array.unsafe_get t.steps i in
  st.stat.Plan.s_entered <- st.stat.Plan.s_entered + 1;
  match st.access with
  | A_membership _ ->
    t.kind.(i) <- 2;
    t.pos.(i) <- 0;
    t.lim.(i) <- 1
  | A_index_one (c, src) ->
    let p = Column_store.posting st.store c (src_id t src) in
    t.cur.(i) <- p;
    t.kind.(i) <- 0;
    t.pos.(i) <- 0;
    t.lim.(i) <- p.len
  | A_adaptive (cols, srcs) ->
    let best = ref 0 and best_cost = ref max_int in
    for k = 0 to Array.length cols - 1 do
      let cost =
        Column_store.count_matching_id st.store
          (Array.unsafe_get cols k)
          (src_id t (Array.unsafe_get srcs k))
      in
      if cost < !best_cost then begin
        best_cost := cost;
        best := k
      end
    done;
    let p =
      Column_store.posting st.store cols.(!best) (src_id t srcs.(!best))
    in
    t.cur.(i) <- p;
    t.kind.(i) <- 0;
    t.pos.(i) <- 0;
    t.lim.(i) <- p.len
  | A_scan ->
    t.kind.(i) <- 1;
    t.pos.(i) <- 0;
    t.lim.(i) <- Column_store.physical_rows st.store

(* Match physical row [row] against step [i]'s column ops, binding
   first-occurrence slots.  No undo: a slot written by a failed match is
   overwritten before its next read (static property of the plan). *)
let match_row t (st : step_exec) row =
  let ops = st.ops in
  let nops = Array.length ops in
  let ok = ref true in
  let c = ref 0 in
  while !ok && !c < nops do
    (match Array.unsafe_get ops !c with
    | Plan.Bind s -> t.frame.(s) <- Column_store.col_get st.store !c row
    | Plan.Check_slot s ->
      if t.frame.(s) <> Column_store.col_get st.store !c row then ok := false
    | Plan.Check_param j ->
      if t.params.(j) <> Column_store.col_get st.store !c row then ok := false);
    incr c
  done;
  !ok

(* Advance step [i] to its next matching candidate; [true] iff found.
   Counts [tuples_scanned] exactly as the row path does: once per live
   candidate examined, once per membership test. *)
let advance t i (counters : Counters.t) =
  let st = Array.unsafe_get t.steps i in
  match Array.unsafe_get t.kind i with
  | 2 ->
    (* Membership: a one-shot test. *)
    if t.pos.(i) = 0 then begin
      t.pos.(i) <- 1;
      counters.Counters.tuples_scanned <-
        counters.Counters.tuples_scanned + 1;
      st.stat.Plan.s_scanned <- st.stat.Plan.s_scanned + 1;
      let hit =
        match st.access with
        | A_membership (srcs, scratch) ->
          for c = 0 to Array.length srcs - 1 do
            scratch.(c) <- src_id t (Array.unsafe_get srcs c)
          done;
          Column_store.find_row st.store scratch >= 0
        | A_index_one _ | A_adaptive _ | A_scan -> assert false
      in
      if hit then st.stat.Plan.s_emitted <- st.stat.Plan.s_emitted + 1;
      hit
    end
    else false
  | 0 ->
    (* Posting walk: skip dead rows silently (the row store's
       [iter_matching] filters them before they are counted). *)
    let p = Array.unsafe_get t.cur i in
    let found = ref false in
    let pos = ref (Array.unsafe_get t.pos i) in
    let lim = Array.unsafe_get t.lim i in
    while (not !found) && !pos < lim do
      let row = Array.unsafe_get p.Column_store.ids !pos in
      incr pos;
      if Column_store.is_live st.store row then begin
        counters.Counters.tuples_scanned <-
          counters.Counters.tuples_scanned + 1;
        st.stat.Plan.s_scanned <- st.stat.Plan.s_scanned + 1;
        if match_row t st row then begin
          st.stat.Plan.s_emitted <- st.stat.Plan.s_emitted + 1;
          found := true
        end
      end
    done;
    t.pos.(i) <- !pos;
    !found
  | _ ->
    (* Full scan over physical rows. *)
    let found = ref false in
    let pos = ref (Array.unsafe_get t.pos i) in
    let lim = Array.unsafe_get t.lim i in
    while (not !found) && !pos < lim do
      let row = !pos in
      incr pos;
      if Column_store.is_live st.store row then begin
        counters.Counters.tuples_scanned <-
          counters.Counters.tuples_scanned + 1;
        st.stat.Plan.s_scanned <- st.stat.Plan.s_scanned + 1;
        if match_row t st row then begin
          st.stat.Plan.s_emitted <- st.stat.Plan.s_emitted + 1;
          found := true
        end
      end
    done;
    t.pos.(i) <- !pos;
    !found

(* Analyze-mode advance: time the call and charge the step.  Unlike the
   row path's inclusive [Fun.protect] timing this is exclusive (one
   advance, children excluded) — the flat machine has no per-step call
   nesting to protect — but both paths agree on the counters, which is
   what the differential tests compare. *)
let advance_timed t i counters =
  if not (Plan.analyze_enabled ()) then advance t i counters
  else begin
    let t0 = Obs.now_ns () in
    let r = advance t i counters in
    let stat = (Array.unsafe_get t.steps i).stat in
    stat.Plan.s_ns <- Int64.add stat.Plan.s_ns (Int64.sub (Obs.now_ns ()) t0);
    r
  end

(* Whole-run observed-stat prologue/epilogue, mirroring [Plan.execute]:
   executions always counts (plain int); wall time only accrues while a
   serializing sink is attached or EXPLAIN ANALYZE asked for it.
   [Obs.tracing], not [Obs.enabled]: [Obs.now_ns] boxes its int64, and
   the always-on telemetry (metrics registry, flight recorder) must
   keep the allocation-free probe path. *)
let run_begin t =
  let obs = Plan.stats t.plan in
  obs.Plan.executions <- obs.Plan.executions + 1;
  if Obs.tracing () || Plan.analyze_enabled () then Obs.now_ns () else 0L

let run_end t t_run =
  if t_run <> 0L then begin
    let obs = Plan.stats t.plan in
    obs.Plan.exec_ns <-
      Int64.add obs.Plan.exec_ns (Int64.sub (Obs.now_ns ()) t_run)
  end

(* Count solutions, stopping once [limit] are found.  The whole loop is
   first-order over preallocated state: zero allocation. *)
let run_count t counters ~limit =
  if limit <= 0 then 0
  else begin
    let t_run = run_begin t in
    let count =
      if t.nsteps = 0 then 1 (* empty body: the one empty solution *)
      else begin
        let count = ref 0 in
        let i = ref 0 in
        let running = ref true in
        enter t 0;
        while !running do
          if advance_timed t !i counters then
            if !i = t.nsteps - 1 then begin
              incr count;
              if !count >= limit then running := false
            end
            else begin
              incr i;
              enter t !i
            end
          else if !i = 0 then running := false
          else decr i
        done;
        !count
      end
    in
    run_end t t_run;
    count
  end

(* Enumerate solutions through [f], which receives the decoded frame
   (slot -> value, reused between calls) and returns whether to
   continue.  Allocation happens only in [f] and in value decoding of
   already-interned ids (which is allocation-free: [Dict.value] returns
   the stored boxed value). *)
let iter_frames t counters f =
  let t_run = run_begin t in
  (if t.nsteps = 0 then ignore (f t.out_frame)
   else begin
     let nslots = t.nslots in
     let i = ref 0 in
     let running = ref true in
     enter t 0;
     while !running do
       if advance_timed t !i counters then
         if !i = t.nsteps - 1 then begin
           for s = 0 to nslots - 1 do
             t.out_frame.(s) <- Dict.value t.frame.(s)
           done;
           if not (f t.out_frame) then running := false
         end
         else begin
           incr i;
           enter t !i
         end
       else if !i = 0 then running := false
       else decr i
     done
   end);
  run_end t t_run
