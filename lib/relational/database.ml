type backend = Row | Columnar

let backend_to_string = function Row -> "row" | Columnar -> "columnar"

let backend_of_string = function
  | "row" -> Some Row
  | "columnar" -> Some Columnar
  | _ -> None

type t = {
  tables : (string, Relation.t) Hashtbl.t;
  counters : Counters.t;
  plan_cache : (string, Plan.t) Hashtbl.t;
  plan_lock : Mutex.t;
      (* serialises plan_cache lookup+compile+insert; shared (like the
         cache itself) between a database and its worker views *)
  backend : backend;
  uid : int;
      (* process-unique instance id, shared with worker views; keys the
         cursor's per-domain compiled-exec cache *)
  plan_epoch : int Atomic.t;
      (* bumped with every plan-cache invalidation; shared with worker
         views so stale cursor execs die with the plans they compiled *)
  version : int Atomic.t;
      (* per-database content version: passed into every relation this
         database creates (each successful insert/delete bumps it) and
         bumped directly on structural changes.  Shared with worker
         views.  Unlike [Relation.mutation_count] this stamp moves only
         when *this* database's contents move. *)
  mutable probe_latency : float;  (* seconds added per probe *)
  mutable guard : Resilient.t option;  (* resilience middleware, if armed *)
}

let next_uid = Atomic.make 0

let create ?(backend = Row) () =
  {
    tables = Hashtbl.create 16;
    counters = Counters.create ();
    plan_cache = Hashtbl.create 64;
    plan_lock = Mutex.create ();
    backend;
    uid = Atomic.fetch_and_add next_uid 1;
    plan_epoch = Atomic.make 0;
    version = Atomic.make 0;
    probe_latency = 0.0;
    guard = None;
  }

(* A worker view shares the parent's tables, plan cache and lock — so
   concurrent solves see one store and one compile-once cache — but has
   private counters (merged by the caller afterwards) and its own guard
   slot (one shard's budget, not the parent's).  [uid] and [plan_epoch]
   are shared too: a view probes the same stores, so it must hit the
   same cursor-exec cache entries and see the same invalidations. *)
let worker_view ?guard db =
  {
    tables = db.tables;
    counters = Counters.create ();
    plan_cache = db.plan_cache;
    plan_lock = db.plan_lock;
    backend = db.backend;
    uid = db.uid;
    plan_epoch = db.plan_epoch;
    version = db.version;
    probe_latency = db.probe_latency;
    guard;
  }

let backend db = db.backend

let uid db = db.uid

let plan_epoch db = Atomic.get db.plan_epoch

(* Plans bake in join orders chosen against the schema (and, for
   tie-breaks, cardinalities) seen at compile time; schema changes make
   them meaningless, so the cache empties wholesale and the epoch bump
   retires every per-domain cursor exec derived from it. *)
let invalidate_plans db =
  Hashtbl.reset db.plan_cache;
  Atomic.incr db.plan_epoch

let create_table db schema =
  let name = Schema.name schema in
  if Hashtbl.mem db.tables name then
    invalid_arg (Printf.sprintf "Database.create_table: %s already exists" name);
  let r =
    Relation.create ~columnar:(db.backend = Columnar) ~version:db.version
      schema
  in
  Hashtbl.add db.tables name r;
  invalidate_plans db;
  Atomic.incr db.version;
  Relation.note_mutation ();
  r

let create_table' db name attrs = create_table db (Schema.make name attrs)

let drop_table db name =
  if Hashtbl.mem db.tables name then begin
    Hashtbl.remove db.tables name;
    invalidate_plans db;
    Atomic.incr db.version;
    Relation.note_mutation ()
  end

let relation db name =
  match Hashtbl.find_opt db.tables name with
  | Some r -> r
  | None -> raise Not_found

let relation_opt db name = Hashtbl.find_opt db.tables name

let mem_relation db name = Hashtbl.mem db.tables name

let relations db =
  Hashtbl.fold (fun _ r acc -> r :: acc) db.tables []
  |> List.sort (fun a b -> String.compare (Relation.name a) (Relation.name b))

let insert db rel vs = ignore (Relation.insert (relation db rel) (Tuple.make vs))

let active_domain db =
  List.fold_left
    (fun acc r -> Value.Set.union acc (Relation.active_domain r))
    Value.Set.empty (relations db)

let total_tuples db =
  List.fold_left (fun acc r -> acc + Relation.cardinal r) 0 (relations db)

let data_version db = Atomic.get db.version

(* ------------------------------------------------------------------ *)
(* Plan cache                                                         *)
(* ------------------------------------------------------------------ *)

let prepare ?(cache = true) db q =
  let key, shape, binding = Plan.canonicalize q in
  let plan =
    if cache then begin
      (* Held across lookup+compile+insert so parallel shards sharing
         the cache compile each shape exactly once — keeping plan
         hit/miss totals identical to a sequential run. *)
      Mutex.lock db.plan_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock db.plan_lock)
        (fun () ->
          match Hashtbl.find_opt db.plan_cache key with
          | Some plan ->
            db.counters.plan_hits <- db.counters.plan_hits + 1;
            (* Stamp how current the data was when the plan last served
               a hit — rendered by EXPLAIN ANALYZE as the drift window
               against [compiled_version]. *)
            Plan.note_seen plan ~version:(Atomic.get db.version);
            plan
          | None ->
            db.counters.plan_misses <- db.counters.plan_misses + 1;
            let plan =
              Plan.compile
                ~version:(Atomic.get db.version)
                (relation_opt db) ~key shape
            in
            Hashtbl.add db.plan_cache key plan;
            plan)
    end
    else begin
      db.counters.plan_misses <- db.counters.plan_misses + 1;
      Plan.compile ~version:(Atomic.get db.version) (relation_opt db) ~key
        shape
    end
  in
  (plan, binding)

let plan_cache_size db = Hashtbl.length db.plan_cache

(* Snapshot of the plan cache for EXPLAIN ANALYZE, key-sorted so the
   rendering order is deterministic.  Taken under the plan lock: the
   executor's shards may be compiling concurrently. *)
let cached_plans db =
  Mutex.lock db.plan_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock db.plan_lock)
    (fun () ->
      Hashtbl.fold (fun key plan acc -> (key, plan) :: acc) db.plan_cache []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let counters db = db.counters

let snapshot_counters db = Counters.copy db.counters

let reset_counters db = Counters.reset db.counters

let count_probe db =
  db.counters.probes <- db.counters.probes + 1;
  if db.probe_latency > 0.0 then
    (* A true blocking sleep, not a busy-wait: the emulated round trip
       must release the core so that concurrent shards overlap their
       in-flight probes the way the paper's client-server setup does. *)
    Unix.sleepf db.probe_latency

let warm_indexes db = List.iter Relation.warm_indexes (relations db)

let set_probe_latency db seconds =
  if seconds < 0.0 then invalid_arg "Database.set_probe_latency: negative";
  db.probe_latency <- seconds

let probe_latency db = db.probe_latency

let set_guard db g = db.guard <- g

let guard db = db.guard

let probes db = db.counters.probes

let reset_probes db = reset_counters db

let pp ppf db =
  Format.fprintf ppf "@[<v>database (%d probes issued)" db.counters.probes;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  %a: %d tuples" Schema.pp (Relation.schema r)
        (Relation.cardinal r))
    (relations db);
  Format.fprintf ppf "@]"
