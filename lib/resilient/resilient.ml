type budget_kind = Max_probes | Max_tuples | Deadline

type error =
  | Timeout of { limit_ns : int64 }
  | Budget_exhausted of budget_kind
  | Probe_failed of { attempts : int; permanent : bool }

exception Abort of error

let pp_error ppf = function
  | Timeout { limit_ns } ->
    Format.fprintf ppf "probe timeout (limit %.3f ms)"
      (Int64.to_float limit_ns /. 1e6)
  | Budget_exhausted Max_probes -> Format.fprintf ppf "probe budget exhausted"
  | Budget_exhausted Max_tuples ->
    Format.fprintf ppf "tuple-scan budget exhausted"
  | Budget_exhausted Deadline -> Format.fprintf ppf "deadline exceeded"
  | Probe_failed { attempts; permanent } ->
    Format.fprintf ppf "probe failed after %d attempt%s (%s)" attempts
      (if attempts = 1 then "" else "s")
      (if permanent then "permanent fault" else "retries exhausted")

let error_to_string e = Format.asprintf "%a" pp_error e

(* ---------------------------- Config ------------------------------ *)

type fault_config = {
  fault_seed : int;
  transient_rate : float;
  permanent_rate : float;
  latency_rate : float;
  latency_ns : int64;
}

let fault_defaults =
  {
    fault_seed = 0;
    transient_rate = 0.1;
    permanent_rate = 0.0;
    latency_rate = 0.0;
    latency_ns = 0L;
  }

type config = {
  max_probes : int option;
  max_tuples : int option;
  deadline_ns : int64 option;
  probe_timeout_ns : int64 option;
  max_attempts : int;
  backoff_base_ns : int64;
  backoff_jitter : float;
  faults : fault_config option;
}

let default_config =
  {
    max_probes = None;
    max_tuples = None;
    deadline_ns = None;
    probe_timeout_ns = None;
    max_attempts = 4;
    backoff_base_ns = 1_000_000L;
    backoff_jitter = 0.5;
    faults = None;
  }

(* ----------------------------- Guards ----------------------------- *)

(* Internal mutable accounting; [usage] snapshots it immutably. *)
type accounting = {
  mutable a_attempts : int;
  mutable a_probes_ok : int;
  mutable a_retries : int;
  mutable a_transient : int;
  mutable a_permanent : int;
  mutable a_injected_timeouts : int;
  mutable a_backoff_ns : int64;
  mutable a_injected_latency_ns : int64;
}

type t = {
  cfg : config;
  (* No limits, no faults: probes need only success/attempt accounting,
     so the guard skips budget checks, injection and clock reads. *)
  passthrough : bool;
  acc : accounting;
  mutable rng : Prng.t;
  mutable start_ns : int64;
  (* Simulated time charged against the deadline: injected latency and
     backoff are accounted, not slept, so chaos runs stay fast and
     deterministic. *)
  mutable virtual_ns : int64;
  (* tuples_scanned at the first guarded probe after [start_solve]; the
     tuple budget meters the delta. *)
  mutable tuples_base : int option;
}

type usage = {
  attempts : int;
  probes_ok : int;
  retries : int;
  transient_faults : int;
  permanent_faults : int;
  injected_timeouts : int;
  backoff_ns : int64;
  injected_latency_ns : int64;
}

let seed_of cfg =
  match cfg.faults with Some f -> f.fault_seed | None -> 0

let start_solve g =
  g.acc.a_attempts <- 0;
  g.acc.a_probes_ok <- 0;
  g.acc.a_retries <- 0;
  g.acc.a_transient <- 0;
  g.acc.a_permanent <- 0;
  g.acc.a_injected_timeouts <- 0;
  g.acc.a_backoff_ns <- 0L;
  g.acc.a_injected_latency_ns <- 0L;
  g.rng <- Prng.create (seed_of g.cfg);
  g.start_ns <- Obs.now_ns ();
  g.virtual_ns <- 0L;
  g.tuples_base <- None

let arm cfg =
  if cfg.max_attempts < 1 then
    invalid_arg "Resilient.arm: max_attempts must be >= 1";
  if cfg.backoff_jitter < 0.0 || cfg.backoff_jitter > 1.0 then
    invalid_arg "Resilient.arm: backoff_jitter outside [0, 1]";
  (match cfg.faults with
  | None -> ()
  | Some f ->
    let bad r = r < 0.0 || r > 1.0 in
    if bad f.transient_rate || bad f.permanent_rate || bad f.latency_rate then
      invalid_arg "Resilient.arm: fault rates must lie in [0, 1]");
  let g =
    {
      cfg;
      passthrough =
        cfg.max_probes = None && cfg.max_tuples = None
        && cfg.deadline_ns = None
        && cfg.probe_timeout_ns = None
        && cfg.faults = None;
      acc =
        {
          a_attempts = 0;
          a_probes_ok = 0;
          a_retries = 0;
          a_transient = 0;
          a_permanent = 0;
          a_injected_timeouts = 0;
          a_backoff_ns = 0L;
          a_injected_latency_ns = 0L;
        };
      rng = Prng.create (seed_of cfg);
      start_ns = Obs.now_ns ();
      virtual_ns = 0L;
      tuples_base = None;
    }
  in
  start_solve g;
  g

let config g = g.cfg

let usage g =
  {
    attempts = g.acc.a_attempts;
    probes_ok = g.acc.a_probes_ok;
    retries = g.acc.a_retries;
    transient_faults = g.acc.a_transient;
    permanent_faults = g.acc.a_permanent;
    injected_timeouts = g.acc.a_injected_timeouts;
    backoff_ns = g.acc.a_backoff_ns;
    injected_latency_ns = g.acc.a_injected_latency_ns;
  }

let pp_usage ppf u =
  Format.fprintf ppf
    "%d attempts, %d ok, %d retries, faults %d transient / %d permanent / %d \
     timeout, backoff %.3f ms"
    u.attempts u.probes_ok u.retries u.transient_faults u.permanent_faults
    u.injected_timeouts
    (Int64.to_float u.backoff_ns /. 1e6)

let elapsed_ns g =
  Int64.add (Int64.sub (Obs.now_ns ()) g.start_ns) g.virtual_ns

(* ------------------------- Shard splitting ------------------------ *)

let split g n =
  if n < 1 then invalid_arg "Resilient.split: n must be >= 1";
  let share total i =
    match total with
    | None -> None
    | Some t ->
      (* Divide evenly; the remainder goes to the earliest shards, so
         shares sum exactly to the parent budget. *)
      let q = t / n and r = t mod n in
      Some (q + if i < r then 1 else 0)
  in
  let remaining_deadline =
    match g.cfg.deadline_ns with
    | None -> None
    | Some d ->
      (* Every shard gets the parent's remaining wall budget: shards run
         concurrently, so time is the one budget that is not divided. *)
      Some (Int64.max 0L (Int64.sub d (elapsed_ns g)))
  in
  Array.init n (fun i ->
      arm
        {
          g.cfg with
          max_probes = share g.cfg.max_probes i;
          max_tuples = share g.cfg.max_tuples i;
          deadline_ns = remaining_deadline;
          faults =
            (* Distinct seeds give each shard its own deterministic
               fault schedule, independent of sibling progress. *)
            Option.map
              (fun f -> { f with fault_seed = f.fault_seed + i })
              g.cfg.faults;
        })

let absorb g children =
  Array.iter
    (fun c ->
      g.acc.a_attempts <- g.acc.a_attempts + c.acc.a_attempts;
      g.acc.a_probes_ok <- g.acc.a_probes_ok + c.acc.a_probes_ok;
      g.acc.a_retries <- g.acc.a_retries + c.acc.a_retries;
      g.acc.a_transient <- g.acc.a_transient + c.acc.a_transient;
      g.acc.a_permanent <- g.acc.a_permanent + c.acc.a_permanent;
      g.acc.a_injected_timeouts <-
        g.acc.a_injected_timeouts + c.acc.a_injected_timeouts;
      g.acc.a_backoff_ns <- Int64.add g.acc.a_backoff_ns c.acc.a_backoff_ns;
      g.acc.a_injected_latency_ns <-
        Int64.add g.acc.a_injected_latency_ns c.acc.a_injected_latency_ns)
    children

(* ---------------------------- Metrics ----------------------------- *)

(* Registered lazily — on the first armed increment — so unguarded runs
   never add zero-valued resilient.* lines to a metrics dump. *)
let c_attempts =
  lazy (Obs.Counter.make ~help:"guarded probe attempts" "resilient.attempts")

let c_retries =
  lazy
    (Obs.Counter.make ~help:"probe re-attempts after transient faults"
       "resilient.retries")

let c_faults =
  lazy (Obs.Counter.make ~help:"injected faults" "resilient.faults")

let c_aborts =
  lazy (Obs.Counter.make ~help:"solves cut short by the guard" "resilient.aborts")

let h_backoff =
  lazy (Obs.Histogram.make ~help:"per-retry backoff (ns)" "resilient.backoff_ns")

let count c = if Obs.metrics_on () then Obs.Counter.incr (Lazy.force c)

let count_fault label =
  if Obs.metrics_on () then begin
    Obs.Counter.incr (Lazy.force c_faults);
    Obs.Counter.incr (Obs.Counter.labeled "resilient.faults" label)
  end

let abort err =
  count c_aborts;
  (* Every degraded outcome funnels through this one raise site, so it
     is where the flight recorder freezes its window: the ring holds
     exactly the moments leading up to the abort. *)
  Obs.Flight_recorder.incident (error_to_string err);
  raise (Abort err)

(* ----------------------------- Probes ----------------------------- *)

let check_budget g ~tuples_scanned =
  (match g.cfg.max_probes with
  | Some m when g.acc.a_attempts >= m -> abort (Budget_exhausted Max_probes)
  | Some _ | None -> ());
  (match g.cfg.max_tuples with
  | Some m ->
    let base = Option.value ~default:0 g.tuples_base in
    if tuples_scanned () - base >= m then abort (Budget_exhausted Max_tuples)
  | None -> ());
  match g.cfg.deadline_ns with
  | Some d when elapsed_ns g >= d -> abort (Budget_exhausted Deadline)
  | Some _ | None -> ()

(* One injector decision per attempt.  Draws happen in a fixed order
   (transient, permanent, latency) so a given seed replays the same
   schedule run after run. *)
type decision = Fault_transient | Fault_permanent | Run of int64

let inject g =
  match g.cfg.faults with
  | None -> Run 0L
  | Some f ->
    if f.transient_rate > 0.0 && Prng.float g.rng < f.transient_rate then
      Fault_transient
    else if f.permanent_rate > 0.0 && Prng.float g.rng < f.permanent_rate then
      Fault_permanent
    else if f.latency_rate > 0.0 && Prng.float g.rng < f.latency_rate then
      Run f.latency_ns
    else Run 0L

let backoff_ns g retry_index =
  let shift = min retry_index 20 in
  let base = Int64.shift_left g.cfg.backoff_base_ns shift in
  let j = g.cfg.backoff_jitter in
  if j = 0.0 || base = 0L then base
  else begin
    (* Uniform in [base*(1-j), base*(1+j)]. *)
    let b = Int64.to_float base in
    let u = Prng.float g.rng in
    Int64.of_float (b *. (1.0 -. j +. (2.0 *. j *. u)))
  end

let probe_slow g ~tuples_scanned f =
  (match g.tuples_base with
  | None -> g.tuples_base <- Some (tuples_scanned ())
  | Some _ -> ());
  let cfg = g.cfg in
  let rec attempt tries =
    check_budget g ~tuples_scanned;
    g.acc.a_attempts <- g.acc.a_attempts + 1;
    count c_attempts;
    let made = tries + 1 in
    match inject g with
    | Fault_permanent ->
      g.acc.a_permanent <- g.acc.a_permanent + 1;
      count_fault "permanent";
      abort (Probe_failed { attempts = made; permanent = true })
    | Fault_transient ->
      g.acc.a_transient <- g.acc.a_transient + 1;
      count_fault "transient";
      retry made
    | Run injected -> (
      if injected > 0L then begin
        g.virtual_ns <- Int64.add g.virtual_ns injected;
        g.acc.a_injected_latency_ns <-
          Int64.add g.acc.a_injected_latency_ns injected
      end;
      match cfg.probe_timeout_ns with
      | Some limit when injected >= limit ->
        (* The simulated round trip blew the timeout before the reply:
           treated as transient (the retry may draw a fast path). *)
        g.acc.a_injected_timeouts <- g.acc.a_injected_timeouts + 1;
        count_fault "timeout";
        retry made
      | _ ->
        (match cfg.probe_timeout_ns with
        | None ->
          (* No timeout: skip the two clock reads around the body. *)
          let r = f () in
          g.acc.a_probes_ok <- g.acc.a_probes_ok + 1;
          r
        | Some limit ->
          let t0 = Obs.now_ns () in
          let r = f () in
          let dur = Int64.sub (Obs.now_ns ()) t0 in
          if dur > limit then
            (* The probe genuinely ran past its limit; retrying would
               re-deliver its solution callbacks, so this aborts. *)
            abort (Timeout { limit_ns = limit });
          g.acc.a_probes_ok <- g.acc.a_probes_ok + 1;
          r))
  and retry made =
    if made >= cfg.max_attempts then
      abort (Probe_failed { attempts = made; permanent = false })
    else begin
      g.acc.a_retries <- g.acc.a_retries + 1;
      count c_retries;
      let b = backoff_ns g (made - 1) in
      g.acc.a_backoff_ns <- Int64.add g.acc.a_backoff_ns b;
      g.virtual_ns <- Int64.add g.virtual_ns b;
      if Obs.metrics_on () then Obs.Histogram.observe (Lazy.force h_backoff) b;
      attempt made
    end
  in
  attempt 0

let probe g ~tuples_scanned f =
  if g.passthrough then begin
    g.acc.a_attempts <- g.acc.a_attempts + 1;
    count c_attempts;
    let r = f () in
    g.acc.a_probes_ok <- g.acc.a_probes_ok + 1;
    r
  end
  else probe_slow g ~tuples_scanned f

(* -------------------------- Degradation --------------------------- *)

type degradation = {
  reason : error;
  unprobed : int list list;
  note : string;
}

let degraded ?(unprobed = []) ?(note = "") reason = { reason; unprobed; note }

let pp_degradation ppf d =
  Format.fprintf ppf "%a" pp_error d.reason;
  if d.unprobed <> [] then
    Format.fprintf ppf "; %d work item%s unprobed"
      (List.length d.unprobed)
      (if List.length d.unprobed = 1 then "" else "s");
  if d.note <> "" then Format.fprintf ppf " (%s)" d.note

(* --------------------------- Disk faults -------------------------- *)

module Disk_fault = struct
  type kind =
    | Torn_write of { keep : int }
    | Lost_tail of { keep : int }
    | Bit_flip of { offset : int; mask : int }

  let pp ppf = function
    | Torn_write { keep } -> Format.fprintf ppf "torn write (keep %d)" keep
    | Lost_tail { keep } -> Format.fprintf ppf "lost tail (keep %d)" keep
    | Bit_flip { offset; mask } ->
      Format.fprintf ppf "bit flip (byte %d mask 0x%02x)" offset mask

  let draw rng ~protect ~size =
    if size <= protect then invalid_arg "Disk_fault.draw: nothing to corrupt";
    match Prng.int rng 3 with
    | 0 -> Torn_write { keep = Prng.int_in_range rng ~lo:protect ~hi:(size - 1) }
    | 1 -> Lost_tail { keep = protect }
    | _ ->
      Bit_flip
        {
          offset = Prng.int_in_range rng ~lo:protect ~hi:(size - 1);
          mask = 1 lsl Prng.int rng 8;
        }

  let apply ~path kind =
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let data =
      match kind with
      | Torn_write { keep } | Lost_tail { keep } ->
        String.sub data 0 (min keep (String.length data))
      | Bit_flip { offset; mask } ->
        if offset >= String.length data then data
        else
          String.mapi
            (fun i c -> if i = offset then Char.chr (Char.code c lxor mask) else c)
            data
    in
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
        path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data)
end
