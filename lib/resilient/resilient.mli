(** Resource-bounded, fault-tolerant probe execution.

    The paper's system evaluates entangled queries against a live MySQL
    backend inside an online coordination service (Section 6): probes
    cross a network, can be slow, fail transiently, or blow past an
    interactive deadline.  This module is the middleware between the
    solvers and the database that makes those failure modes first-class:

    - a {e per-solve budget} (probe attempts, tuples scanned, wall-clock
      deadline on the {!Obs.now_ns} monotonic clock) enforced before
      every probe attempt;
    - a {e per-probe timeout} checked against both injected and measured
      latency;
    - a deterministic {e fault injector} (transient/permanent failure
      probabilities and injected latency, drawn from a {!Prng.t} stream
      seeded by the configuration, so chaos runs replay exactly);
    - {e retry with exponential backoff and jitter} for transient
      faults, with attempts, retries and backoff totals recorded both in
      the guard's {!usage} record and as [Obs] counters/histograms.

    Solvers never see a transient fault that retries absorb.  What they
    do see is the typed {!error} taxonomy, delivered as the {!Abort}
    exception from inside a probe; every solver catches it at its work
    loop and returns a {e degraded} outcome — the candidates found so
    far plus a {!degradation} describing what went unprobed — instead of
    discarding completed work.

    A guard is {e armed} onto a database with
    [Relational.Database.set_guard]; with no guard installed the entire
    layer costs one field load and a branch per probe. *)

(** Which budget ran out. *)
type budget_kind =
  | Max_probes  (** probe-attempt budget (failed attempts count too) *)
  | Max_tuples  (** tuples-scanned budget *)
  | Deadline    (** per-solve wall-clock deadline *)

type error =
  | Timeout of { limit_ns : int64 }
      (** a probe's own execution exceeded the per-probe timeout
          (measured, not injected — injected timeouts are transient and
          retried) *)
  | Budget_exhausted of budget_kind
  | Probe_failed of { attempts : int; permanent : bool }
      (** the probe failed after [attempts] tries: a permanent injected
          fault, or transient faults/injected timeouts exhausting the
          retry allowance *)

exception Abort of error
(** Raised from inside a probe when the guard gives up.  Solvers catch
    this at their component/root/value loop and degrade. *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** {1 Configuration} *)

type fault_config = {
  fault_seed : int;        (** seeds the injector's private PRNG stream *)
  transient_rate : float;  (** per-attempt probability of a retryable failure *)
  permanent_rate : float;  (** per-attempt probability of a permanent failure *)
  latency_rate : float;    (** per-attempt probability of injected latency *)
  latency_ns : int64;      (** latency injected when the draw hits *)
}

val fault_defaults : fault_config
(** Seed 0, transient rate 0.1, no permanent faults, no injected
    latency. *)

type config = {
  max_probes : int option;       (** per-solve probe-attempt budget *)
  max_tuples : int option;       (** per-solve tuples-scanned budget *)
  deadline_ns : int64 option;    (** per-solve wall-clock deadline *)
  probe_timeout_ns : int64 option;  (** per-probe latency limit *)
  max_attempts : int;            (** tries per probe, >= 1 *)
  backoff_base_ns : int64;       (** first retry's backoff *)
  backoff_jitter : float;        (** uniform jitter fraction in [0, 1] *)
  faults : fault_config option;  (** [None]: injector off *)
}

val default_config : config
(** No limits, no faults: [max_attempts = 4], 1 ms base backoff with
    0.5 jitter.  Arming this config measures pure middleware overhead. *)

(** {1 Guards} *)

type t
(** A guard: one configuration plus per-solve mutable state (budget
    usage, deadline epoch, injector stream). *)

val arm : config -> t
(** @raise Invalid_argument on [max_attempts < 1], negative rates or a
    jitter outside [0, 1]. *)

val config : t -> config

val start_solve : t -> unit
(** Reset the per-solve budget, restart the deadline clock, and re-seed
    the fault injector from [fault_seed] — each armed solve replays the
    same fault schedule.  Call once before handing the database to a
    solver; nested solver calls share the enclosing budget. *)

val split : t -> int -> t array
(** [split g n] derives [n] freshly-armed child guards, one per parallel
    shard: probe and tuple budgets are divided evenly (remainder to the
    earliest shards, so they sum exactly to the parent's), the deadline
    becomes the parent's {e remaining} time — shards run concurrently,
    so wall time is not divided — and each child's fault injector is
    seeded [fault_seed + i], giving every shard a deterministic schedule
    independent of sibling progress.  The parent's accounting is
    untouched; fold the children back with {!absorb}.  Note the split
    changes {e where} budgets bite: a sequential run spends one shared
    budget in component order, while shards spend their slice locally —
    per-shard degradation is the intended semantics, not an emulation of
    the sequential cut-off.
    @raise Invalid_argument when [n < 1]. *)

val absorb : t -> t array -> unit
(** [absorb g children] adds the children's accounting (attempts,
    successes, retries, faults, backoff, injected latency) into [g] so
    {!usage}/{!pp_usage} report the whole solve.  Budgets and clocks are
    not altered. *)

(** Cumulative accounting since the last {!start_solve}. *)
type usage = {
  attempts : int;          (** probe attempts, including failed ones *)
  probes_ok : int;         (** probes that returned *)
  retries : int;           (** re-attempts after a transient fault *)
  transient_faults : int;
  permanent_faults : int;
  injected_timeouts : int; (** attempts whose injected latency beat the timeout *)
  backoff_ns : int64;      (** total backoff charged against the deadline *)
  injected_latency_ns : int64;
}

val usage : t -> usage

val pp_usage : Format.formatter -> usage -> unit
(** One line: attempts, successes, retries, fault counts, total
    (simulated) backoff. *)

val elapsed_ns : t -> int64
(** Time charged against the deadline since {!start_solve}: monotonic
    wall clock plus simulated backoff and injected latency. *)

val probe : t -> tuples_scanned:(unit -> int) -> (unit -> 'a) -> 'a
(** [probe t ~tuples_scanned f] runs one guarded probe: budget checks,
    fault injection, retries with backoff, timeout accounting.  [f] runs
    at most once per attempt and only on attempts the injector lets
    through, so retried probes never re-deliver solver callbacks from a
    completed evaluation.  Exceptions raised by [f] itself (engine
    errors) propagate untouched — they are bugs, not faults.
    @raise Abort when the guard gives up. *)

(** {1 Degradation} *)

type degradation = {
  reason : error;
  unprobed : int list list;
      (** work items the solver never evaluated, as groups of query
          indexes (components, roots, subset masks — solver-specific) *)
  note : string;  (** one-line human summary *)
}

val degraded : ?unprobed:int list list -> ?note:string -> error -> degradation

val pp_degradation : Format.formatter -> degradation -> unit

(** {1 Seeded disk faults}

    Crash simulation for the durability layer's chaos suite
    ([lib/durable], [test/test_durable.ml]): the same seeded,
    replayable discipline the probe injector applies to evaluation is
    applied to files.  Nothing here touches a live guard — these are
    offline mutations of WAL bytes between a simulated crash and the
    recovery under test. *)
module Disk_fault : sig
  type kind =
    | Torn_write of { keep : int }
        (** the final append only partially reached the disk: the file
            is cut at an arbitrary byte inside the unprotected tail *)
    | Lost_tail of { keep : int }
        (** a partial fsync: everything after the last known-synced
            offset vanishes at once *)
    | Bit_flip of { offset : int; mask : int }
        (** silent media corruption of one byte *)

  val pp : Format.formatter -> kind -> unit

  val draw : Prng.t -> protect:int -> size:int -> kind
  (** Draw a fault for a file of [size] bytes whose first [protect]
      bytes must stay intact (cut points land in [[protect, size - 1]],
      flips in the same range).  Deterministic in the PRNG state.
      @raise Invalid_argument when [size <= protect] — nothing left to
      corrupt. *)

  val apply : path:string -> kind -> unit
  (** Mutilate the file in place. *)
end

val backoff_ns : t -> int -> int64
(** [backoff_ns g i]: the sleep the guard charges for retry number [i]
    (0-based) — [backoff_base_ns] shifted left by [min i 20], then
    jittered uniformly into [[base*(1-j), base*(1+j)]].  Each call with
    a nonzero jitter consumes one draw from the guard's seeded stream,
    so two guards armed with the same config yield the same schedule.
    Exposed for the determinism tests. *)
