(** Growable union-find (disjoint sets) over dense integer ids.

    The online coordination engine maintains the weakly-connected
    components of its pool with one of these: submissions add nodes and
    union them with the partners their atoms reach, so the component
    containing a query is available in near-constant amortized time
    instead of a full graph traversal per arrival.

    Unlike the textbook structure, nodes can be {!reset} back to
    singletons — the engine dissolves a component when a fired set
    retires its members and re-links the survivors from their stored
    adjacency.  A reset invalidates the rank heuristic for the affected
    trees but never correctness; path compression keeps subsequent finds
    cheap either way. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty structure.  [capacity] pre-sizes the backing arrays. *)

val ensure : t -> int -> unit
(** [ensure t id] makes every id in [0..id] valid, new ones as
    singletons.  Ids already present are untouched.
    @raise Invalid_argument on a negative id. *)

val cardinal : t -> int
(** Number of valid ids (one past the largest ever ensured). *)

val find : t -> int -> int
(** Representative of [id]'s set, with path compression.
    @raise Invalid_argument on an id never ensured. *)

val union : t -> int -> int -> int
(** Merge the two sets; returns the representative of the merged set
    (one of the two previous representatives).  Idempotent on already
    united ids. *)

val same : t -> int -> int -> bool

val reset : t -> int -> unit
(** Make [id] a singleton root again.  The caller is responsible for
    re-unioning any other member of its former set that should stay
    connected — see the module comment. *)
