type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable length : int;  (* valid ids are 0 .. length - 1 *)
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { parent = Array.make capacity 0; rank = Array.make capacity 0; length = 0 }

let cardinal t = t.length

let grow t wanted =
  let cap = Array.length t.parent in
  if wanted > cap then begin
    let cap' = ref (max 1 cap) in
    while !cap' < wanted do
      cap' := 2 * !cap'
    done;
    let parent = Array.make !cap' 0 in
    let rank = Array.make !cap' 0 in
    Array.blit t.parent 0 parent 0 t.length;
    Array.blit t.rank 0 rank 0 t.length;
    t.parent <- parent;
    t.rank <- rank
  end

let ensure t id =
  if id < 0 then invalid_arg "Union_find.ensure: negative id";
  if id >= t.length then begin
    grow t (id + 1);
    for i = t.length to id do
      t.parent.(i) <- i;
      t.rank.(i) <- 0
    done;
    t.length <- id + 1
  end

let check t id =
  if id < 0 || id >= t.length then
    invalid_arg (Printf.sprintf "Union_find: id %d not ensured" id)

(* Iterative find with path halving: every node on the walk is pointed
   at its grandparent, so chains shorten without a second pass and
   without recursion (components can be pool-sized). *)
let find t id =
  check t id;
  let i = ref id in
  while t.parent.(!i) <> !i do
    let p = t.parent.(!i) in
    t.parent.(!i) <- t.parent.(p);
    i := t.parent.(!i)
  done;
  !i

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb)
    in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let same t a b = find t a = find t b

let reset t id =
  check t id;
  t.parent.(id) <- id;
  t.rank.(id) <- 0
