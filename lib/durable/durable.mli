(** Durability for the online coordination engine: a checksummed binary
    write-ahead log plus periodic snapshots, and a recovery path that
    tolerates arbitrarily torn tails.

    {2 What is journaled}

    The engine journals {e effects}, not computations
    ({!Coordination.Online.Journal}): admissions, unsafe evictions,
    fired-set retirements and the two-phase consume commit's
    deduplicated deletion list, grouped per public operation.  A group
    becomes durable atomically — its last record carries a commit flag,
    and recovery replays only complete groups — so a crash at any byte
    offset recovers to an operation boundary: the pool, satisfied count
    and store either include a whole operation or none of it, and a
    booked tuple can never be spent twice.

    {2 On-disk layout}

    A WAL directory holds segments [wal-<first-lsn>.log] and snapshots
    [snap-<lsn>.img].  Records are length-prefixed and CRC32-checksummed
    with strictly monotonic LSNs; segments start at the LSN in their
    name.  Snapshots serialize the full recoverable state (engine meta,
    pool, satisfied count, store contents for either backend via a
    snapshot-local value dictionary) and are written to a temporary
    file, fsynced, atomically renamed, and fsynced into the directory;
    only then does the WAL rotate to a fresh segment and prune history
    (the latest two snapshots and the segments they need are kept).

    {2 Recovery and truncation}

    {!recover} loads the newest snapshot that passes validation
    (corrupt ones are skipped with a reason), replays the WAL tail, and
    stops at the first torn, short, bit-flipped or garbage record —
    reporting a typed {!truncation} rather than raising.  The valid
    prefix is then made durable again by a recovery checkpoint: a fresh
    snapshot at the recovered LSN, a fresh segment, and deletion of all
    older files including the torn bytes (truncation by checkpoint —
    nothing is ever patched in place, so a crash during recovery is
    itself recoverable). *)

open Relational
open Coordination

(** {1 Configuration} *)

(** When the WAL reaches the platter.  [Always] fsyncs every committed
    operation group (no committed operation can be lost); [Every_n n]
    fsyncs every [n] groups and on snapshot/close (bounded loss window,
    much cheaper); [Never] leaves flushing to the OS page cache (data
    survives process crashes but not power loss).  The [durability]
    bench ablation measures the per-submit cost of each. *)
type fsync_policy = Always | Every_n of int | Never

val fsync_policy_to_string : fsync_policy -> string

val fsync_policy_of_string : string -> fsync_policy option
(** ["always"], ["never"], or ["every-n:<N>"] with [N >= 1]. *)

type config = {
  dir : string;  (** the WAL directory (created if missing) *)
  fsync : fsync_policy;
  snapshot_every : int;
      (** take a snapshot after this many committed groups;
          [0] disables periodic snapshots *)
}

val config : ?fsync:fsync_policy -> ?snapshot_every:int -> string -> config
(** [config dir] with [fsync] defaulting to [Always] and
    [snapshot_every] to [512]. *)

(** {1 The live handle} *)

type t

val create_engine :
  ?selection:Scc_algo.selection ->
  ?eager:bool ->
  ?consume:bool ->
  ?mode:Online.mode ->
  ?backend:Database.backend ->
  config ->
  t * Database.t * Online.t
(** Create a fresh durable engine: an empty database and
    {!Coordination.Online} engine whose operations journal through the
    WAL in [config.dir].  The engine meta (backend, eager, consume,
    selection) is the WAL's first record, so {!recover} can rebuild an
    equivalent engine without being told.
    @raise Invalid_argument if the directory already holds WAL files
    (use {!recover} or {!open_or_recover}), or if [selection] is
    [Preferred _] — a closure cannot be journaled, so a durable engine
    cannot carry one. *)

val close : t -> unit
(** Flush, fsync (unless the policy is [Never]) and close the current
    segment, detaching the journal sink.  Idempotent. *)

val snapshot : t -> (unit, string) result
(** Force a snapshot + segment rotation + prune now (the same protocol
    periodic snapshots use).  [Error why] when the snapshot file could
    not be written (full disk, permissions): the failure is counted on
    [wal.snapshot_failures] and emitted as a [durable.snapshot_failure]
    event, the current segment keeps growing, and {e nothing is
    pruned} — the journal the snapshot would have superseded remains
    the only durable copy, so recovery still replays it.  Periodic
    snapshots retry after another [snapshot_every] interval. *)

val journal_insert : t -> string -> Value.t list -> unit
(** Journal an external tuple insert (e.g. a repl [fact] statement) as
    its own committed group.  The caller performs the actual
    {!Relational.Database.insert}; replay re-issues it. *)

val journal_create_table : t -> string -> string list -> unit
(** Journal an external table creation; see {!journal_insert}. *)

val journal_sink : t -> Online.Journal.sink
(** The WAL's record sink — what {!create_engine}/{!recover} install on
    the engine they return.  Exposed so an orchestrator that owns the
    commit boundary itself (a {!Coordination.Online_sharded} engine
    re-sharding a recovered pool) can tee its byte-equivalent record
    stream into the same WAL; see [Server.shard_durable]. *)

val dir : t -> string

val current_segment : t -> string
(** Path of the segment currently appended to. *)

val wal_offset : t -> int
(** Bytes written to the current segment (committed groups only — the
    in-flight group buffers in memory until its [Op_end]). *)

val synced_offset : t -> int
(** Bytes of the current segment known fsynced ([<= wal_offset];
    trailing [wal_offset - synced_offset] bytes may vanish on a power
    loss).  Chaos tests cut files here to simulate exactly that. *)

val last_lsn : t -> int64
(** LSN of the last record written (snapshots cover up to this). *)

(** {1 Recovery} *)

(** Why scanning stopped: the typed corruption taxonomy.  Every one of
    these truncates; none of them raises. *)
type corruption =
  | Short_record  (** the file ends inside a record *)
  | Bad_length  (** a length prefix outside the sane record range *)
  | Bad_crc  (** checksum mismatch — torn write or bit flip *)
  | Bad_lsn  (** a gap or repeat in the LSN chain *)
  | Bad_kind  (** an unknown record kind *)
  | Bad_header  (** a segment whose header magic or LSN is wrong *)
  | Bad_payload  (** a checksummed record whose payload fails to decode *)
  | Uncommitted_group
      (** the segment ends with complete records whose group never
          committed — the crash landed between buffering and commit *)

val corruption_to_string : corruption -> string

type truncation = {
  t_segment : string;  (** the segment holding the torn tail *)
  valid_bytes : int;  (** prefix kept: offset of the last committed group end *)
  dropped_bytes : int;  (** bytes discarded after it *)
  reason : corruption;
}

type recovery_report = {
  snapshot_loaded : (string * int64) option;
      (** the snapshot restored, with its covered LSN *)
  snapshots_skipped : (string * string) list;
      (** corrupt or unreadable snapshots passed over, with reasons *)
  segments_scanned : int;
  records_replayed : int;  (** records applied from the WAL tail *)
  groups_replayed : int;  (** committed groups among them *)
  recovered_lsn : int64;  (** state is exact as of this LSN *)
  truncation : truncation option;  (** [None] means a clean tail *)
  segments_dropped : string list;
      (** segments after a truncation, discarded whole *)
  tmp_cleaned : string list;
      (** leftover [.tmp] files from an interrupted snapshot *)
  checkpoint_failed : string option;
      (** [Some why] when the post-recovery checkpoint snapshot could
          not be written.  Recovery still succeeds when the tail was
          clean — the pre-existing snapshot and segments are retained
          (no prune) and stay authoritative — but fails with [Error _]
          when a truncation needed quarantining, since appending behind
          un-quarantined torn bytes would lose future groups. *)
}

val pp_report : Format.formatter -> recovery_report -> unit

val recover :
  ?mode:Online.mode -> config -> (t * Database.t * Online.t * recovery_report, string) result
(** Rebuild the engine from [config.dir]: load the newest valid
    snapshot, replay the WAL tail group by group, stop cleanly at any
    corruption, then checkpoint (see the module comment).  The returned
    engine observes — pool, ids, components, satisfied count, store
    contents — exactly as a never-crashed engine after the same
    committed operations; solver statistics do not survive, and every
    recovered component is conservatively dirty.  [mode] (default
    [Incremental]) only selects the evaluation strategy, which is
    observationally irrelevant.  [Error _] when the directory holds no
    recoverable state at all. *)

val open_or_recover :
  ?selection:Scc_algo.selection ->
  ?eager:bool ->
  ?consume:bool ->
  ?mode:Online.mode ->
  ?backend:Database.backend ->
  config ->
  (t * Database.t * Online.t * recovery_report option, string) result
(** {!recover} when [config.dir] already holds WAL files (the creation
    options are then ignored in favour of the journaled meta), else
    {!create_engine}. *)

(** {1 Wire-format internals, exposed for tests} *)

val inject_snapshot_failure : exn option -> unit
(** Test-only: make the next snapshot writes raise [e] (e.g. a
    [Unix.Unix_error (EACCES, _, _)]) instead of touching the
    filesystem, simulating a full disk or permission failure the test
    harness cannot provoke for real.  [None] clears the fault. *)

module Crc32 : sig
  val string : string -> int
  (** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a whole string;
      ["123456789"] hashes to [0xCBF43926]. *)

  val bytes : ?crc:int -> Bytes.t -> int -> int -> int
  (** [bytes ~crc b off len] continues a running checksum. *)
end
