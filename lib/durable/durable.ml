(* Durable write-ahead log + snapshots for the online engine.

   Layout (all integers little-endian):

   segment [wal-<first-lsn 20 digits>.log]:
     "EWALSEG1" (8) | first_lsn u64 (8)      -- 16-byte header
     record*:
       payload_len u32 | lsn u64 | kind u8 | payload | crc u32
     where [kind]'s high bit (0x80) marks the last record of a
     committed group and [crc] covers lsn..payload.

   snapshot [snap-<lsn 20 digits>.img]:
     "EWALSNP1" (8) | lsn u64 (8) | payload_len u32 | payload | crc u32
     where [crc] covers the payload.  Written to a [.tmp] sibling,
     fsynced, renamed into place, then the directory is fsynced — a
     crash mid-write leaves only a [.tmp], never a half snapshot under
     the real name.

   Group atomicity: the journal sink buffers every record of one engine
   operation in memory and writes them as a single append when the
   operation's [Op_end] arrives, flagging the last record.  Recovery
   applies whole committed groups only, so replayed state always sits
   on an operation boundary. *)

open Relational
open Entangled
open Coordination

(* ------------------------------ CRC32 ------------------------------ *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c))

  let bytes ?(crc = 0) b off len =
    let t = Lazy.force table in
    let c = ref (crc lxor 0xFFFFFFFF) in
    for i = off to off + len - 1 do
      c := t.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
    done;
    !c lxor 0xFFFFFFFF land 0xFFFFFFFF

  let string s = bytes (Bytes.unsafe_of_string s) 0 (String.length s)

  let sub s off len = bytes (Bytes.unsafe_of_string s) off len
end

(* ------------------------- Binary encoding ------------------------- *)

let u32_max = 0xFFFFFFFF

module Enc = struct
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    if v < 0 || v > u32_max then invalid_arg "Durable.Enc.u32";
    Buffer.add_int32_le b (Int32.of_int v)

  let i64 b v = Buffer.add_int64_le b v
  let int b v = i64 b (Int64.of_int v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let value b = function
    | Value.Int n ->
      u8 b 0;
      int b n
    | Value.Str s ->
      u8 b 1;
      str b s
    | Value.Bool v ->
      u8 b 2;
      u8 b (if v then 1 else 0)

  let values b vs =
    u32 b (List.length vs);
    List.iter (value b) vs

  let list b f xs =
    u32 b (List.length xs);
    List.iter (f b) xs
end

exception Decode_error of string

module Dec = struct
  type t = { s : string; mutable pos : int; limit : int }

  let make ?(pos = 0) ?limit s =
    let limit = Option.value ~default:(String.length s) limit in
    { s; pos; limit }

  let need d n =
    if d.pos + n > d.limit then raise (Decode_error "short payload")

  let u8 d =
    need d 1;
    let v = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u32 d =
    need d 4;
    let v = Int32.to_int (String.get_int32_le d.s d.pos) land u32_max in
    d.pos <- d.pos + 4;
    v

  let i64 d =
    need d 8;
    let v = String.get_int64_le d.s d.pos in
    d.pos <- d.pos + 8;
    v

  let int d =
    let v = i64 d in
    if Int64.of_int (Int64.to_int v) <> v then
      raise (Decode_error "int out of range");
    Int64.to_int v

  let str d =
    let n = u32 d in
    need d n;
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let value d =
    match u8 d with
    | 0 -> Value.Int (int d)
    | 1 -> Value.Str (str d)
    | 2 -> Value.Bool (u8 d <> 0)
    | _ -> raise (Decode_error "bad value tag")

  let list d f =
    let n = u32 d in
    if n > d.limit - d.pos then raise (Decode_error "bad list length");
    List.init n (fun _ -> f d)

  let at_end d = d.pos = d.limit
end

(* ------------------------------ Records ---------------------------- *)

type meta = {
  m_backend : Database.backend;
  m_eager : bool;
  m_consume : bool;
  m_selection : Scc_algo.selection;
}

type record =
  | Meta of meta
  | Submit of { id : int; src : string }
  | Reject of { id : int }
  | Retire of { ids : int list }
  | Consume of { deletions : (string * Value.t list) list }
  | Commit of { op : int; fired : int }
  | Insert of { rel : string; tuple : Value.t list }
  | Create_table of { name : string; attrs : string list }

let encode_record r =
  let b = Buffer.create 64 in
  let kind =
    match r with
    | Meta m ->
      Enc.u8 b (match m.m_backend with Database.Row -> 0 | Columnar -> 1);
      Enc.u8 b (Bool.to_int m.m_eager);
      Enc.u8 b (Bool.to_int m.m_consume);
      Enc.u8 b
        (match m.m_selection with
        | Scc_algo.Largest -> 0
        | First_found -> 1
        | Preferred _ ->
          invalid_arg "Durable: Preferred selection holds a closure (not journalable)");
      0
    | Submit { id; src } ->
      Enc.u32 b id;
      Enc.str b src;
      1
    | Reject { id } ->
      Enc.u32 b id;
      2
    | Retire { ids } ->
      Enc.list b Enc.u32 ids;
      3
    | Consume { deletions } ->
      Enc.list b
        (fun b (rel, tuple) ->
          Enc.str b rel;
          Enc.values b tuple)
        deletions;
      4
    | Commit { op; fired } ->
      Enc.u8 b op;
      Enc.u32 b fired;
      5
    | Insert { rel; tuple } ->
      Enc.str b rel;
      Enc.values b tuple;
      6
    | Create_table { name; attrs } ->
      Enc.str b name;
      Enc.list b Enc.str attrs;
      7
  in
  (kind, Buffer.contents b)

let decode_record kind payload =
  let d = Dec.make payload in
  let r =
    match kind with
    | 0 ->
      let backend =
        match Dec.u8 d with
        | 0 -> Database.Row
        | 1 -> Database.Columnar
        | _ -> raise (Decode_error "bad backend")
      in
      let eager = Dec.u8 d <> 0 in
      let consume = Dec.u8 d <> 0 in
      let selection =
        match Dec.u8 d with
        | 0 -> Scc_algo.Largest
        | 1 -> Scc_algo.First_found
        | _ -> raise (Decode_error "bad selection")
      in
      Meta
        {
          m_backend = backend;
          m_eager = eager;
          m_consume = consume;
          m_selection = selection;
        }
    | 1 ->
      let id = Dec.u32 d in
      Submit { id; src = Dec.str d }
    | 2 -> Reject { id = Dec.u32 d }
    | 3 -> Retire { ids = Dec.list d Dec.u32 }
    | 4 ->
      Consume
        {
          deletions =
            Dec.list d (fun d ->
                let rel = Dec.str d in
                (rel, Dec.list d Dec.value));
        }
    | 5 ->
      let op = Dec.u8 d in
      Commit { op; fired = Dec.u32 d }
    | 6 ->
      let rel = Dec.str d in
      Insert { rel; tuple = Dec.list d Dec.value }
    | 7 ->
      let name = Dec.str d in
      Create_table { name; attrs = Dec.list d Dec.str }
    | _ -> raise (Decode_error "bad kind")
  in
  if not (Dec.at_end d) then raise (Decode_error "trailing payload bytes");
  r

(* ------------------------------ Files ------------------------------ *)

let segment_magic = "EWALSEG1"
let snapshot_magic = "EWALSNP1"
let segment_header_len = 16

(* Largest payload a well-formed record may carry; a length prefix
   beyond it is garbage, not a huge record. *)
let max_payload_len = 1 lsl 24

let segment_name lsn = Printf.sprintf "wal-%020Ld.log" lsn
let snapshot_name lsn = Printf.sprintf "snap-%020Ld.img" lsn

let parse_name ~prefix ~suffix name =
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length name in
  if n = pl + 20 + sl && String.sub name 0 pl = prefix
     && String.sub name (n - sl) sl = suffix
  then Int64.of_string_opt (String.sub name pl 20)
  else None

let segment_lsn = parse_name ~prefix:"wal-" ~suffix:".log"
let snapshot_lsn = parse_name ~prefix:"snap-" ~suffix:".img"

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd -> Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let list_dir dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare

(* ----------------------------- Metrics ----------------------------- *)

let h_append = lazy (Obs.Histogram.make ~help:"WAL group append" "wal.append_ns")
let h_fsync = lazy (Obs.Histogram.make ~help:"WAL fsync" "wal.fsync_ns")
let c_records = lazy (Obs.Counter.make ~help:"WAL records written" "wal.records")
let c_groups = lazy (Obs.Counter.make ~help:"WAL groups committed" "wal.groups")
let c_fsyncs = lazy (Obs.Counter.make ~help:"WAL fsyncs issued" "wal.fsyncs")
let c_snapshots = lazy (Obs.Counter.make ~help:"snapshots written" "wal.snapshots")

let c_snapshot_failures =
  lazy
    (Obs.Counter.make ~help:"snapshot writes that failed (journal retained)"
       "wal.snapshot_failures")

let c_truncations =
  lazy
    (Obs.Counter.make ~help:"corrupt WAL tails truncated at recovery"
       "recovery.truncations")

let c_replayed =
  lazy
    (Obs.Counter.make ~help:"WAL records replayed at recovery"
       "recovery.records_replayed")

let c_recoveries =
  lazy (Obs.Counter.make ~help:"recoveries performed" "recovery.runs")

(* -------------------------- Configuration -------------------------- *)

type fsync_policy = Always | Every_n of int | Never

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every_n n -> Printf.sprintf "every-n:%d" n

let fsync_policy_of_string s =
  match s with
  | "always" -> Some Always
  | "never" -> Some Never
  | _ ->
    let prefix = "every-n:" in
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      match int_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some n when n >= 1 -> Some (Every_n n)
      | _ -> None
    else None

type config = { dir : string; fsync : fsync_policy; snapshot_every : int }

let config ?(fsync = Always) ?(snapshot_every = 512) dir =
  { dir; fsync; snapshot_every }

(* --------------------------- Live handle --------------------------- *)

type t = {
  cfg : config;
  mutable oc : out_channel;
  mutable seg_path : string;
  mutable next_lsn : int64;
  mutable offset : int;  (* bytes written to the current segment *)
  mutable synced : int;  (* prefix of [offset] known fsynced *)
  mutable group : (int * string) list;  (* buffered records, newest first *)
  mutable groups_since_sync : int;
  mutable groups_since_snapshot : int;
  mutable engine : Online.t option;
  mutable db : Database.t option;
  mutable closed : bool;
}

let dir t = t.cfg.dir
let current_segment t = t.seg_path
let wal_offset t = t.offset
let synced_offset t = t.synced
let last_lsn t = Int64.pred t.next_lsn

let do_fsync t =
  let t0 = if Obs.metrics_on () then Obs.now_ns () else 0L in
  Unix.fsync (Unix.descr_of_out_channel t.oc);
  t.synced <- t.offset;
  t.groups_since_sync <- 0;
  if Obs.metrics_on () then begin
    Obs.Counter.incr (Lazy.force c_fsyncs);
    Obs.Histogram.observe (Lazy.force h_fsync) (Int64.sub (Obs.now_ns ()) t0)
  end

let open_segment ~dir ~first_lsn =
  let path = Filename.concat dir (segment_name first_lsn) in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path
  in
  let b = Buffer.create segment_header_len in
  Buffer.add_string b segment_magic;
  Buffer.add_int64_le b first_lsn;
  Buffer.output_buffer oc b;
  flush oc;
  fsync_dir dir;
  (path, oc)

let buffer_record t r = t.group <- (encode_record r) :: t.group

(* Append the buffered group as one write, flagging its last record,
   then apply the fsync policy. *)
let commit_group t =
  match t.group with
  | [] -> ()
  | recs ->
    let recs = List.rev recs in
    let n = List.length recs in
    let t0 = if Obs.metrics_on () then Obs.now_ns () else 0L in
    let b = Buffer.create 256 in
    List.iteri
      (fun i (kind, payload) ->
        let flag = if i = n - 1 then kind lor 0x80 else kind in
        let lsn = t.next_lsn in
        t.next_lsn <- Int64.succ t.next_lsn;
        Enc.u32 b (String.length payload);
        let body = Buffer.create (9 + String.length payload) in
        Enc.i64 body lsn;
        Enc.u8 body flag;
        Buffer.add_string body payload;
        let body = Buffer.contents body in
        Buffer.add_string b body;
        Enc.u32 b (Crc32.string body))
      recs;
    t.group <- [];
    Buffer.output_buffer t.oc b;
    flush t.oc;
    t.offset <- t.offset + Buffer.length b;
    t.groups_since_sync <- t.groups_since_sync + 1;
    t.groups_since_snapshot <- t.groups_since_snapshot + 1;
    (match t.cfg.fsync with
    | Always -> do_fsync t
    | Every_n k -> if t.groups_since_sync >= k then do_fsync t
    | Never -> t.synced <- max t.synced segment_header_len);
    if Obs.metrics_on () then begin
      Obs.Counter.add (Lazy.force c_records) n;
      Obs.Counter.incr (Lazy.force c_groups);
      Obs.Histogram.observe (Lazy.force h_append)
        (Int64.sub (Obs.now_ns ()) t0)
    end

(* --------------------------- Snapshots ----------------------------- *)

(* Snapshot payload: engine meta, id allocator, satisfied count, then
   the store as a snapshot-local value dictionary plus per-table tuples
   of dictionary references, then the pool as (id, query source).  The
   dictionary makes tuples compact and — on the columnar backend —
   recovery re-interns values in snapshot order, giving a fresh process
   deterministic dictionary contents. *)
let encode_snapshot ~meta ~(db : Database.t) ~(engine : Online.t) =
  let b = Buffer.create 4096 in
  (let m = meta in
   Enc.u8 b (match m.m_backend with Database.Row -> 0 | Columnar -> 1);
   Enc.u8 b (Bool.to_int m.m_eager);
   Enc.u8 b (Bool.to_int m.m_consume);
   Enc.u8 b (match m.m_selection with
        | Scc_algo.Largest -> 0
        | First_found -> 1
        | Preferred _ ->
          invalid_arg "Durable: Preferred selection holds a closure (not journalable)"));
  Enc.u32 b (Online.next_id engine);
  Enc.u32 b (Online.total_coordinated engine);
  let dict = Hashtbl.create 256 in
  let dict_order = ref [] in
  let intern v =
    match Hashtbl.find_opt dict v with
    | Some i -> i
    | None ->
      let i = Hashtbl.length dict in
      Hashtbl.add dict v i;
      dict_order := v :: !dict_order;
      i
  in
  let tables =
    List.map
      (fun r ->
        let schema = Relation.schema r in
        let tuples =
          List.sort Tuple.compare (Relation.to_list r)
          |> List.map (fun tuple -> Array.map intern tuple)
        in
        (Schema.name schema, Array.to_list (Schema.attributes schema), tuples))
      (Database.relations db)
  in
  Enc.list b Enc.value (List.rev !dict_order);
  Enc.list b
    (fun b (name, attrs, tuples) ->
      Enc.str b name;
      Enc.list b Enc.str attrs;
      Enc.list b
        (fun b refs ->
          Enc.u32 b (Array.length refs);
          Array.iter (Enc.u32 b) refs)
        tuples)
    tables;
  Enc.list b
    (fun b (id, query) ->
      Enc.u32 b id;
      Enc.str b (Parser.query_to_string query))
    (Online.pending_entries engine);
  Buffer.contents b

type snapshot_state = {
  s_meta : meta;
  s_next_id : int;
  s_satisfied : int;
  s_tables : (string * string list * Value.t array list) list;
  s_pool : (int * string) list;
}

let decode_snapshot payload =
  let d = Dec.make payload in
  let backend =
    match Dec.u8 d with
    | 0 -> Database.Row
    | 1 -> Database.Columnar
    | _ -> raise (Decode_error "bad backend")
  in
  let eager = Dec.u8 d <> 0 in
  let consume = Dec.u8 d <> 0 in
  let selection =
    match Dec.u8 d with
    | 0 -> Scc_algo.Largest
    | 1 -> Scc_algo.First_found
    | _ -> raise (Decode_error "bad selection")
  in
  let next_id = Dec.u32 d in
  let satisfied = Dec.u32 d in
  let dict = Array.of_list (Dec.list d Dec.value) in
  let deref i =
    if i >= Array.length dict then raise (Decode_error "bad value reference");
    dict.(i)
  in
  let tables =
    Dec.list d (fun d ->
        let name = Dec.str d in
        let attrs = Dec.list d Dec.str in
        let tuples =
          Dec.list d (fun d ->
              let arity = Dec.u32 d in
              if arity > 4096 then raise (Decode_error "bad arity");
              Array.init arity (fun _ -> deref (Dec.u32 d)))
        in
        (name, attrs, tuples))
  in
  let pool =
    Dec.list d (fun d ->
        let id = Dec.u32 d in
        (id, Dec.str d))
  in
  if not (Dec.at_end d) then raise (Decode_error "trailing snapshot bytes");
  {
    s_meta =
      {
        m_backend = backend;
        m_eager = eager;
        m_consume = consume;
        m_selection = selection;
      };
    s_next_id = next_id;
    s_satisfied = satisfied;
    s_tables = tables;
    s_pool = pool;
  }

let meta_of_engine ~backend engine =
  {
    m_backend = backend;
    m_eager = Online.eager engine;
    m_consume = Online.consume engine;
    m_selection = Online.selection engine;
  }

(* Keep the newest [keep] snapshots and every segment still needed to
   replay past the oldest kept one; delete the rest. *)
let prune ~keep dirname =
  let entries = list_dir dirname in
  let snaps =
    List.filter_map
      (fun n -> Option.map (fun l -> (l, n)) (snapshot_lsn n))
      entries
    |> List.sort (fun (a, _) (b, _) -> Int64.compare b a)
  in
  let kept, old_snaps =
    let rec split i = function
      | [] -> ([], [])
      | x :: rest ->
        let k, o = split (i + 1) rest in
        if i < keep then (x :: k, o) else (k, x :: o)
    in
    split 0 snaps
  in
  List.iter (fun (_, n) -> Sys.remove (Filename.concat dirname n)) old_snaps;
  let horizon =
    match List.rev kept with (l, _) :: _ -> l | [] -> 0L
  in
  let segs =
    List.filter_map
      (fun n -> Option.map (fun l -> (l, n)) (segment_lsn n))
      entries
    |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  in
  (* A segment's records end where the next segment starts; drop it only
     when everything it holds is at or below the snapshot horizon. *)
  let rec drop = function
    | (_, name) :: ((next_first, _) :: _ as rest)
      when Int64.compare next_first (Int64.add horizon 1L) <= 0 ->
      Sys.remove (Filename.concat dirname name);
      drop rest
    | _ -> ()
  in
  drop segs

(* Test-only fault injection: when set, [write_snapshot_file] raises
   the given exception instead of writing — the moral equivalent of an
   EACCES or ENOSPC from the filesystem, which the test harness cannot
   provoke for real (suites run as root, where chmod is advisory). *)
let snapshot_fault : exn option ref = ref None
let inject_snapshot_failure e = snapshot_fault := e

let write_snapshot_file ~dirname ~lsn payload =
  (match !snapshot_fault with Some e -> raise e | None -> ());
  let name = snapshot_name lsn in
  let path = Filename.concat dirname name in
  let tmp = path ^ ".tmp" in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let b = Buffer.create (String.length payload + 24) in
      Buffer.add_string b snapshot_magic;
      Buffer.add_int64_le b lsn;
      Enc.u32 b (String.length payload);
      Buffer.add_string b payload;
      Enc.u32 b (Crc32.string payload);
      Buffer.output_buffer oc b;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  fsync_dir dirname;
  path

(* Write a snapshot, turning filesystem failures (full disk, EACCES,
   a vanished directory) into [Error] instead of an exception — and
   never leaving a half-written [.tmp] behind to confuse a later
   recovery's accounting.  Failures are surfaced on the metrics
   registry and the event stream: a daemon that silently stops
   snapshotting replays an ever-growing journal at the next restart. *)
let try_write_snapshot ~dirname ~lsn payload =
  match write_snapshot_file ~dirname ~lsn payload with
  | path -> Ok path
  | exception ((Unix.Unix_error _ | Sys_error _) as e) ->
    let tmp = Filename.concat dirname (snapshot_name lsn ^ ".tmp") in
    (try if Sys.file_exists tmp then Sys.remove tmp
     with Sys_error _ | Unix.Unix_error _ -> ());
    let why =
      match e with
      | Unix.Unix_error (err, fn, arg) ->
        Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)
      | Sys_error msg -> msg
      | _ -> assert false
    in
    Obs.Counter.incr (Lazy.force c_snapshot_failures);
    Obs.event
      ~args:(fun () -> [ ("lsn", Obs.Int (Int64.to_int lsn)); ("error", Obs.Str why) ])
      "durable.snapshot_failure";
    Error why

let snapshot t =
  if t.closed then invalid_arg "Durable.snapshot: closed";
  commit_group t;
  match (t.engine, t.db) with
  | Some engine, Some db ->
    if Int64.compare t.next_lsn 1L > 0 then begin
      (* The WAL prefix a snapshot supersedes must be durable before
         pruning may delete it. *)
      if t.cfg.fsync <> Never || t.synced < t.offset then do_fsync t;
      let lsn = last_lsn t in
      let meta = meta_of_engine ~backend:(Database.backend db) engine in
      match
        try_write_snapshot ~dirname:t.cfg.dir ~lsn
          (encode_snapshot ~meta ~db ~engine)
      with
      | Error why ->
        (* The snapshot never made it to disk, so the journal it was to
           supersede stays the only durable copy: keep appending to the
           current segment and prune NOTHING.  Resetting the cadence
           counter turns the periodic trigger into a retry after
           another full interval instead of an O(store) encode on every
           subsequent group. *)
        t.groups_since_snapshot <- 0;
        Error why
      | Ok _path ->
        close_out_noerr t.oc;
        let path, oc = open_segment ~dir:t.cfg.dir ~first_lsn:t.next_lsn in
        t.seg_path <- path;
        t.oc <- oc;
        t.offset <- segment_header_len;
        t.synced <- segment_header_len;
        t.groups_since_sync <- 0;
        t.groups_since_snapshot <- 0;
        prune ~keep:2 t.cfg.dir;
        if Obs.metrics_on () then Obs.Counter.incr (Lazy.force c_snapshots);
        Ok ()
    end
    else Ok ()
  | _ -> Ok ()

let maybe_snapshot t =
  if
    t.cfg.snapshot_every > 0
    && t.groups_since_snapshot >= t.cfg.snapshot_every
  then
    (* A failed periodic snapshot has no caller to report to; it is
       already surfaced (counter + event) and the journal remains
       authoritative, so the session carries on and retries after the
       next interval. *)
    match snapshot t with Ok () | Error _ -> ()

(* ------------------------- Journal binding ------------------------- *)

let op_tag = function
  | Online.Journal.Submit_op -> 0
  | Online.Journal.Submit_all_op -> 1
  | Online.Journal.Flush_op -> 2
  | Online.Journal.Withdraw_op -> 3

let journal_sink t : Online.Journal.sink = function
  | Online.Journal.Submitted { id; query } ->
    buffer_record t (Submit { id; src = Parser.query_to_string query })
  | Online.Journal.Rejected { id } -> buffer_record t (Reject { id })
  | Online.Journal.Retired { ids } -> buffer_record t (Retire { ids })
  | Online.Journal.Consumed { deletions } ->
    buffer_record t
      (Consume
         {
           deletions =
             List.map (fun (rel, tup) -> (rel, Array.to_list tup)) deletions;
         })
  | Online.Journal.Op_end { op; fired } ->
    if t.group <> [] then begin
      (match op with
      (* A submit's or withdraw's group is self-delimiting (one effect,
         at most one eviction); only the batched operations need an
         explicit fired-count trailer. *)
      | Online.Journal.Submit_op | Online.Journal.Withdraw_op -> ()
      | Online.Journal.Submit_all_op | Online.Journal.Flush_op ->
        buffer_record t (Commit { op = op_tag op; fired }));
      commit_group t;
      maybe_snapshot t
    end

let journal_insert t rel tuple =
  buffer_record t (Insert { rel; tuple });
  commit_group t;
  maybe_snapshot t

let journal_create_table t name attrs =
  buffer_record t (Create_table { name; attrs });
  commit_group t;
  maybe_snapshot t

let attach t db engine =
  t.db <- Some db;
  t.engine <- Some engine;
  Online.set_journal engine (Some (journal_sink t))

let close t =
  if not t.closed then begin
    commit_group t;
    (match t.engine with Some e -> Online.set_journal e None | None -> ());
    if t.cfg.fsync <> Never then do_fsync t;
    close_out_noerr t.oc;
    t.closed <- true
  end

let has_wal_files dir =
  Sys.file_exists dir
  && List.exists
       (fun n -> segment_lsn n <> None || snapshot_lsn n <> None)
       (list_dir dir)

let create_engine ?selection ?eager ?consume ?mode ?backend cfg =
  mkdir_p cfg.dir;
  if has_wal_files cfg.dir then
    invalid_arg
      (Printf.sprintf
         "Durable.create_engine: %s already holds a WAL (use recover)" cfg.dir);
  let db = Database.create ?backend () in
  let engine = Online.create ?selection ?eager ?consume ?mode db in
  let path, oc = open_segment ~dir:cfg.dir ~first_lsn:1L in
  let t =
    {
      cfg;
      oc;
      seg_path = path;
      next_lsn = 1L;
      offset = segment_header_len;
      synced = segment_header_len;
      group = [];
      groups_since_sync = 0;
      groups_since_snapshot = 0;
      engine = None;
      db = None;
      closed = false;
    }
  in
  buffer_record t (Meta (meta_of_engine ~backend:(Database.backend db) engine));
  commit_group t;
  if t.cfg.fsync = Never then do_fsync t;  (* the meta record must survive *)
  attach t db engine;
  (t, db, engine)

(* ----------------------------- Recovery ---------------------------- *)

type corruption =
  | Short_record
  | Bad_length
  | Bad_crc
  | Bad_lsn
  | Bad_kind
  | Bad_header
  | Bad_payload
  | Uncommitted_group

let corruption_to_string = function
  | Short_record -> "short record"
  | Bad_length -> "garbage length prefix"
  | Bad_crc -> "checksum mismatch"
  | Bad_lsn -> "LSN chain broken"
  | Bad_kind -> "unknown record kind"
  | Bad_header -> "bad segment header"
  | Bad_payload -> "undecodable payload"
  | Uncommitted_group -> "trailing uncommitted group"

type truncation = {
  t_segment : string;
  valid_bytes : int;
  dropped_bytes : int;
  reason : corruption;
}

type recovery_report = {
  snapshot_loaded : (string * int64) option;
  snapshots_skipped : (string * string) list;
  segments_scanned : int;
  records_replayed : int;
  groups_replayed : int;
  recovered_lsn : int64;
  truncation : truncation option;
  segments_dropped : string list;
  tmp_cleaned : string list;
  checkpoint_failed : string option;
}

let pp_report ppf r =
  let open Format in
  (match r.snapshot_loaded with
  | Some (file, lsn) -> fprintf ppf "snapshot: %s (lsn %Ld)@." file lsn
  | None -> fprintf ppf "snapshot: none@.");
  List.iter
    (fun (file, why) -> fprintf ppf "snapshot skipped: %s (%s)@." file why)
    r.snapshots_skipped;
  fprintf ppf "segments scanned: %d@." r.segments_scanned;
  fprintf ppf "records replayed: %d (%d committed groups)@."
    r.records_replayed r.groups_replayed;
  fprintf ppf "recovered lsn: %Ld@." r.recovered_lsn;
  (match r.truncation with
  | None -> fprintf ppf "tail: clean@."
  | Some tr ->
    fprintf ppf "tail truncated: %s at byte %d (%d bytes dropped, %s)@."
      (Filename.basename tr.t_segment)
      tr.valid_bytes tr.dropped_bytes
      (corruption_to_string tr.reason));
  List.iter
    (fun s -> fprintf ppf "segment dropped: %s@." (Filename.basename s))
    r.segments_dropped;
  List.iter
    (fun s -> fprintf ppf "stale tmp removed: %s@." (Filename.basename s))
    r.tmp_cleaned;
  match r.checkpoint_failed with
  | None -> ()
  | Some why ->
    fprintf ppf "checkpoint snapshot failed: %s (journal retained)@." why

(* Scan one segment, calling [apply] for each complete committed group
   as [(lsn, record) list].  Returns [Ok ()] on a clean end-of-file or
   [Error (corruption, valid_bytes)] with the offset of the last good
   group boundary. *)
let scan_segment ~first_lsn ~expected_lsn ~apply data =
  let len = String.length data in
  if
    len < segment_header_len
    || String.sub data 0 8 <> segment_magic
    || String.get_int64_le data 8 <> first_lsn
  then Error (Bad_header, 0)
  else begin
    let pos = ref segment_header_len in
    let group_start = ref segment_header_len in
    let group = ref [] in
    let result = ref (Ok ()) in
    let stop reason = result := Error (reason, !group_start) in
    let continue = ref true in
    while !continue do
      if !pos = len then begin
        if !group <> [] then stop Uncommitted_group;
        continue := false
      end
      else if len - !pos < 17 then begin
        stop Short_record;
        continue := false
      end
      else begin
        let payload_len =
          Int32.to_int (String.get_int32_le data !pos) land u32_max
        in
        if payload_len > max_payload_len then begin
          stop Bad_length;
          continue := false
        end
        else if len - !pos - 17 < payload_len then begin
          stop Short_record;
          continue := false
        end
        else begin
          let body_off = !pos + 4 in
          let body_len = 9 + payload_len in
          let stored_crc =
            Int32.to_int (String.get_int32_le data (body_off + body_len))
            land u32_max
          in
          if Crc32.sub data body_off body_len <> stored_crc then begin
            stop Bad_crc;
            continue := false
          end
          else begin
            let lsn = String.get_int64_le data body_off in
            let flag = Char.code data.[body_off + 8] in
            let kind = flag land 0x7f in
            let committed = flag land 0x80 <> 0 in
            if lsn <> !expected_lsn then begin
              stop Bad_lsn;
              continue := false
            end
            else begin
              match
                decode_record kind (String.sub data (body_off + 9) payload_len)
              with
              | exception Decode_error msg ->
                stop (if msg = "bad kind" then Bad_kind else Bad_payload);
                continue := false
              | record ->
                expected_lsn := Int64.succ lsn;
                group := (lsn, record) :: !group;
                pos := !pos + 4 + body_len + 4;
                if committed then begin
                  (match apply (List.rev !group) with
                  | Ok () ->
                    group := [];
                    group_start := !pos
                  | Error reason ->
                    stop reason;
                    continue := false)
                end
            end
          end
        end
      end
    done;
    !result
  end

let load_snapshot path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | data ->
    let len = String.length data in
    if len < 24 then Error "too short"
    else if String.sub data 0 8 <> snapshot_magic then Error "bad magic"
    else begin
      let lsn = String.get_int64_le data 8 in
      let payload_len =
        Int32.to_int (String.get_int32_le data 16) land u32_max
      in
      if payload_len <> len - 24 then Error "bad length"
      else begin
        let stored_crc =
          Int32.to_int (String.get_int32_le data (len - 4)) land u32_max
        in
        if Crc32.sub data 20 payload_len <> stored_crc then
          Error "checksum mismatch"
        else
          match decode_snapshot (String.sub data 20 payload_len) with
          | exception Decode_error msg -> Error ("undecodable: " ^ msg)
          | state -> Ok (lsn, state)
      end
    end

let recover ?(mode = Online.Incremental) cfg =
  if not (Sys.file_exists cfg.dir) then
    Result.Error (Printf.sprintf "%s: no such directory" cfg.dir)
  else begin
    if Obs.metrics_on () then Obs.Counter.incr (Lazy.force c_recoveries);
    let entries = list_dir cfg.dir in
    (* An interrupted snapshot leaves a .tmp that was never renamed —
       it is garbage by construction. *)
    let tmp_cleaned =
      List.filter (fun n -> Filename.check_suffix n ".tmp") entries
    in
    List.iter (fun n -> Sys.remove (Filename.concat cfg.dir n)) tmp_cleaned;
    let snaps =
      List.filter_map
        (fun n -> Option.map (fun l -> (l, n)) (snapshot_lsn n))
        entries
      |> List.sort (fun (a, _) (b, _) -> Int64.compare b a)
    in
    let segments =
      List.filter_map
        (fun n -> Option.map (fun l -> (l, n)) (segment_lsn n))
        entries
      |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
    in
    (* Newest snapshot that validates wins; every newer one that failed
       is reported. *)
    let rec pick_snapshot skipped = function
      | [] -> (None, List.rev skipped)
      | (lsn, name) :: rest -> (
        match load_snapshot (Filename.concat cfg.dir name) with
        | Ok (stored_lsn, state) when stored_lsn = lsn ->
          (Some (name, lsn, state), List.rev skipped)
        | Ok _ -> pick_snapshot ((name, "name/LSN mismatch") :: skipped) rest
        | Error why -> pick_snapshot ((name, why) :: skipped) rest)
    in
    let snapshot_pick, snapshots_skipped = pick_snapshot [] snaps in
    let snap_lsn =
      match snapshot_pick with Some (_, lsn, _) -> lsn | None -> 0L
    in
    let state = ref None in
    let ensure_engine (m : meta) =
      match !state with
      | Some (db, engine, stored) ->
        if stored <> m then Error Bad_payload else Ok (db, engine)
      | None ->
        let db = Database.create ~backend:m.m_backend () in
        let engine =
          Online.create ~selection:m.m_selection ~eager:m.m_eager
            ~consume:m.m_consume ~mode db
        in
        state := Some (db, engine, m);
        Ok (db, engine)
    in
    (* Restore the snapshot before any replay. *)
    (match snapshot_pick with
    | None -> ()
    | Some (_, _, s) -> (
      match ensure_engine s.s_meta with
      | Error _ -> assert false
      | Ok (db, engine) ->
        List.iter
          (fun (name, attrs, tuples) ->
            let r = Database.create_table' db name attrs in
            List.iter (fun tup -> ignore (Relation.insert r tup)) tuples)
          s.s_tables;
        List.iter
          (fun (id, src) ->
            Online.restore_submit engine ~id (Parser.parse_query src))
          s.s_pool;
        Online.restore_counters engine ~satisfied:s.s_satisfied
          ~next_id:s.s_next_id));
    let records_replayed = ref 0 in
    let groups_replayed = ref 0 in
    let last_applied = ref snap_lsn in
    let apply_record = function
      | Meta m -> Result.map (fun _ -> ()) (ensure_engine m)
      | r -> (
        match !state with
        | None ->
          (* Effects before any Meta record: the WAL head is gone. *)
          Error Bad_payload
        | Some (db, engine, _) -> (
          try
            (match r with
            | Meta _ -> assert false
            | Submit { id; src } ->
              Online.restore_submit engine ~id (Parser.parse_query src)
            | Reject { id } -> Online.restore_evict engine id
            | Retire { ids } -> Online.restore_retire engine ids
            | Consume { deletions } ->
              List.iter
                (fun (rel, tuple) ->
                  match Database.relation_opt db rel with
                  | Some r ->
                    ignore (Relation.delete r (Array.of_list tuple))
                  | None -> ())
                deletions
            | Commit _ -> ()
            | Insert { rel; tuple } -> Database.insert db rel tuple
            | Create_table { name; attrs } ->
              ignore (Database.create_table' db name attrs));
            Ok ()
          with
          (* Only the exception families a malformed-but-checksummed
             payload can legitimately raise: parse errors, restore_*
             precondition violations (duplicate/unknown ids), and
             decoder [Failure]s.  Anything else — Out_of_memory,
             Stack_overflow, Assert_failure — is not evidence of a bad
             record and must not be laundered into [Bad_payload]
             truncation; re-raise it. *)
          | Parser.Syntax_error _ | Invalid_argument _ | Not_found
          | Failure _ ->
            Error Bad_payload))
    in
    let apply_group group =
      (* Snapshots land on group boundaries, so a group is either fully
         covered by the snapshot or fully beyond it. *)
      match group with
      | (lsn, _) :: _ when Int64.compare lsn snap_lsn <= 0 -> Ok ()
      | _ ->
        let rec go = function
          | [] ->
            groups_replayed := !groups_replayed + 1;
            (match List.rev group with
            | (last, _) :: _ -> last_applied := last
            | [] -> ());
            Ok ()
          | (_, r) :: rest -> (
            match apply_record r with
            | Ok () ->
              records_replayed := !records_replayed + 1;
              go rest
            | Error e -> Error e)
        in
        go group
    in
    let truncation = ref None in
    let segments_dropped = ref [] in
    let expected_lsn = ref (Int64.add snap_lsn 1L) in
    let segments_scanned = ref 0 in
    List.iter
      (fun (first_lsn, name) ->
        let path = Filename.concat cfg.dir name in
        if !truncation <> None then segments_dropped := path :: !segments_dropped
        else begin
          (* Segments fully below the snapshot horizon need no replay;
             their corruption (if any) is irrelevant history. *)
          let covered =
            Int64.compare first_lsn snap_lsn <= 0
            && Int64.compare !expected_lsn (Int64.add snap_lsn 1L) = 0
          in
          let start_lsn =
            if covered then ref first_lsn else expected_lsn
          in
          (* A segment must start exactly where the previous one ended
             (or anywhere at/below the snapshot horizon). *)
          if (not covered) && first_lsn <> !expected_lsn then begin
            truncation :=
              Some
                {
                  t_segment = path;
                  valid_bytes = 0;
                  dropped_bytes =
                    (try (Unix.stat path).Unix.st_size
                     with Unix.Unix_error _ -> 0);
                  reason = Bad_lsn;
                }
          end
          else begin
            incr segments_scanned;
            match read_file path with
            | exception Sys_error _ ->
              if not covered then
                truncation :=
                  Some
                    {
                      t_segment = path;
                      valid_bytes = 0;
                      dropped_bytes = 0;
                      reason = Bad_header;
                    }
            | data -> (
              match
                scan_segment ~first_lsn ~expected_lsn:start_lsn
                  ~apply:apply_group data
              with
              | Ok () -> ()
              | Error (reason, valid_bytes) ->
                (* Segments ending at or below the snapshot horizon are
                   redundant — snapshots rotate the WAL, so such a
                   segment holds nothing past its covering snapshot and
                   its corruption is irrelevant history. *)
                if not covered then
                  truncation :=
                    Some
                      {
                        t_segment = path;
                        valid_bytes;
                        dropped_bytes = String.length data - valid_bytes;
                        reason;
                      })
          end
        end)
      segments;
    match !state with
    | None ->
      Result.Error
        (Printf.sprintf "%s: no valid snapshot or WAL records" cfg.dir)
    | Some (db, engine, meta) ->
      (match !truncation with
      | None -> ()
      | Some tr ->
        Obs.event
          ~args:(fun () ->
            [
              ("segment", Obs.Str (Filename.basename tr.t_segment));
              ("reason", Obs.Str (corruption_to_string tr.reason));
              ("dropped_bytes", Obs.Int tr.dropped_bytes);
            ])
          "durable.truncation";
        Obs.Flight_recorder.incident
          (Printf.sprintf "wal corruption: %s in %s"
             (corruption_to_string tr.reason)
             (Filename.basename tr.t_segment));
        if Obs.metrics_on () then
          Obs.Counter.incr (Lazy.force c_truncations));
      if Obs.metrics_on () then
        Obs.Counter.add (Lazy.force c_replayed) !records_replayed;
      (* Recovery checkpoint: make the recovered state durable in a
         fresh snapshot + segment, then delete all older files —
         including any torn bytes, whole-segment.  Nothing is patched
         in place, so a crash during this checkpoint recovers again
         from the same inputs. *)
      let lsn = !last_applied in
      let checkpoint =
        try_write_snapshot ~dirname:cfg.dir ~lsn
          (encode_snapshot ~meta ~db ~engine)
      in
      (match (checkpoint, (!truncation, !segments_dropped)) with
      | Error why, ((Some _, _) | (_, _ :: _)) ->
        (* The checkpoint could not quarantine the torn/dropped bytes.
           Appending a fresh segment anyway would put new committed
           groups behind bytes the NEXT recovery truncates away, so a
           later crash would silently lose them.  Refuse. *)
        Result.Error
          (Printf.sprintf
             "%s: recovery needs a checkpoint to quarantine a corrupt \
              tail, but the snapshot write failed: %s"
             cfg.dir why)
      | (Ok _ | Error _), _ ->
        let next = Int64.add lsn 1L in
        let path, oc = open_segment ~dir:cfg.dir ~first_lsn:next in
        let t =
          {
            cfg;
            oc;
            seg_path = path;
            next_lsn = next;
            offset = segment_header_len;
            synced = segment_header_len;
            group = [];
            groups_since_sync = 0;
            groups_since_snapshot = 0;
            engine = None;
            db = None;
            closed = false;
          }
        in
        (* A failed (but tolerable — clean tail) checkpoint leaves the
           old snapshot + segments as the only durable copy of the
           replayed prefix: they must survive, so skip the prune. *)
        (match checkpoint with
        | Ok _ -> prune ~keep:1 cfg.dir
        | Error _ -> ());
        attach t db engine;
        let report =
          {
            snapshot_loaded =
              Option.map (fun (n, l, _) -> (n, l)) snapshot_pick;
            snapshots_skipped;
            segments_scanned = !segments_scanned;
            records_replayed = !records_replayed;
            groups_replayed = !groups_replayed;
            recovered_lsn = lsn;
            truncation = !truncation;
            segments_dropped = List.rev !segments_dropped;
            tmp_cleaned;
            checkpoint_failed =
              (match checkpoint with Ok _ -> None | Error why -> Some why);
          }
        in
        Result.Ok (t, db, engine, report))
  end

let open_or_recover ?selection ?eager ?consume ?mode ?backend cfg =
  if has_wal_files cfg.dir then
    Result.map
      (fun (t, db, engine, report) -> (t, db, engine, Some report))
      (recover ?mode cfg)
  else
    match create_engine ?selection ?eager ?consume ?mode ?backend cfg with
    | t, db, engine -> Result.Ok (t, db, engine, None)
    | exception Invalid_argument msg -> Result.Error msg
