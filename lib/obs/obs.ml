(* Structured tracing and metrics for the whole engine.

   Design constraints, in order:

   1. Near-zero cost when disarmed.  Every instrumentation site guards
      on one mutable boolean; with no sink installed and metrics off,
      [with_span] is a load, a branch and a tail call.  Argument lists
      are thunks, evaluated only when a sink actually consumes them.
   2. Zero dependencies.  The monotonic clock is a 10-line C stub
      (CLOCK_MONOTONIC); JSON is emitted by hand; sinks write through a
      plain [string -> unit] so they work over files, buffers and pipes
      alike.
   3. One event stream.  Typed solver events ride along as extensible
      [payload]s, so `--explain` (which needs the typed data) and
      `--trace` (which needs the serialized view) are fed by the same
      emission points and cannot drift. *)

external now_ns : unit -> int64 = "entangle_obs_monotonic_ns"

type arg = Str of string | Int of int | Float of float | Bool of bool

type payload = ..

type payload += No_payload

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * arg) list;
}

type event = {
  ev_name : string;
  ev_ts_ns : int64;
  ev_depth : int;
  ev_args : (string * arg) list;
  ev_payload : payload;
}

type item = Span of span | Event of event

type sink = {
  on_span : span -> unit;
  on_event : event -> unit;
  on_close : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Registry of metrics                                                *)
(* ------------------------------------------------------------------ *)

(* Metric updates are plain mutations: the engine instruments the
   orchestrating domain only (the parallel value loop's workers are
   pure), so no synchronisation is bought where none is needed. *)

module Histogram = struct
  (* Log2-bucketed: bucket 0 counts values <= 0, bucket i >= 1 counts
     values in [2^(i-1), 2^i).  63 value buckets cover every positive
     int64. *)
  let bucket_count = 64

  type t = {
    h_name : string;
    h_help : string;
    buckets : int array;
    mutable count : int;
    mutable sum : int64;
    mutable max_v : int64;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          buckets = Array.make bucket_count 0;
          count = 0;
          sum = 0L;
          max_v = Int64.min_int;
        }
      in
      Hashtbl.add registry name h;
      h

  let find name = Hashtbl.find_opt registry name

  let bucket_of v =
    if Int64.compare v 0L <= 0 then 0
    else begin
      (* Positive int64 values fit 63 bits; index = floor(log2 v) + 1. *)
      let rec bits acc v = if v = 0L then acc else bits (acc + 1) (Int64.shift_right_logical v 1) in
      bits 0 v
    end

  (* Inclusive lower / exclusive upper value bound of a bucket. *)
  let bucket_bounds i =
    if i = 0 then (Int64.min_int, 1L)
    else
      ( Int64.shift_left 1L (i - 1),
        if i >= 63 then Int64.max_int else Int64.shift_left 1L i )

  let observe h v =
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- Int64.add h.sum v;
    if Int64.compare v h.max_v > 0 then h.max_v <- v

  let count h = h.count

  let sum h = h.sum

  let max_value h = if h.count = 0 then 0L else h.max_v

  let buckets h = Array.copy h.buckets

  (* Percentile estimate: find the bucket holding the rank-th
     observation and interpolate linearly inside it.  Within one
     power-of-two bracket the estimate is off by at most 2x, which is
     plenty for latency reporting. *)
  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
      let rank = p *. float_of_int h.count in
      let rank = if rank < 1.0 then 1.0 else rank in
      let acc = ref 0.0 in
      let result = ref 0.0 in
      (try
         for i = 0 to bucket_count - 1 do
           let n = float_of_int h.buckets.(i) in
           if n > 0.0 then begin
             if !acc +. n >= rank then begin
               let lo, hi = bucket_bounds i in
               let lo = if i = 0 then 0.0 else Int64.to_float lo in
               let hi = Int64.to_float hi in
               let frac = (rank -. !acc) /. n in
               result := lo +. ((hi -. lo) *. frac);
               raise Exit
             end;
             acc := !acc +. n
           end
         done;
         result := Int64.to_float (max_value h)
       with Exit -> ());
      (* Never report beyond the observed maximum. *)
      let cap = Int64.to_float (max_value h) in
      if !result > cap then cap else !result
    end

  let reset h =
    Array.fill h.buckets 0 bucket_count 0;
    h.count <- 0;
    h.sum <- 0L;
    h.max_v <- Int64.min_int
end

module Counter = struct
  type t = { c_name : string; c_help : string; mutable value : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_help = help; value = 0 } in
      Hashtbl.add registry name c;
      c

  (* Labeled counters share the registry under "name{label}" keys, so
     one dump lists the family together. *)
  let labeled ?help name label = make ?help (name ^ "{" ^ label ^ "}")

  let find name = Hashtbl.find_opt registry name

  let add c n = c.value <- c.value + n

  let incr c = add c 1

  let value c = c.value

  let reset c = c.value <- 0
end

let reset_metrics () =
  Hashtbl.iter (fun _ h -> Histogram.reset h) Histogram.registry;
  Hashtbl.iter (fun _ c -> Counter.reset c) Counter.registry

(* ------------------------------------------------------------------ *)
(* Arming                                                             *)
(* ------------------------------------------------------------------ *)

(* Arming state is domain-local: each OCaml 5 domain carries its own
   sink list, nesting depth and metrics flag.  A freshly spawned domain
   is disarmed (no sinks, metrics off), so uninstrumented workers keep
   the near-zero disarmed cost; a worker that wants its work traced
   installs a local memory sink and the orchestrating domain merges the
   captured items back with [replay].  Nothing is shared, so no
   instrumentation path needs synchronisation. *)
type dstate = {
  mutable sinks : sink list;
  mutable depth : int;
  mutable metrics_enabled : bool;
}

let dstate_key =
  Domain.DLS.new_key (fun () ->
      { sinks = []; depth = 0; metrics_enabled = false })

let dstate () = Domain.DLS.get dstate_key

let enabled () =
  let st = dstate () in
  st.sinks <> [] || st.metrics_enabled

let tracing () = (dstate ()).sinks <> []

let metrics_on () = (dstate ()).metrics_enabled

let set_metrics b = (dstate ()).metrics_enabled <- b

let depth () = (dstate ()).depth

(* ------------------------------------------------------------------ *)
(* Spans and events                                                   *)
(* ------------------------------------------------------------------ *)

let force_args = function Some f -> f () | None -> []

let with_span ?args ?hist name f =
  (* A span is live if a sink wants it, or if it feeds a histogram and
     metrics are on; otherwise it must cost one domain-local load and a
     branch. *)
  let st = dstate () in
  let live =
    match hist with
    | None -> st.sinks <> []
    | Some _ -> st.sinks <> [] || st.metrics_enabled
  in
  if not live then f ()
  else begin
    let d = st.depth in
    st.depth <- d + 1;
    let t0 = now_ns () in
    let finally () =
      let dur = Int64.sub (now_ns ()) t0 in
      st.depth <- d;
      (match hist with
      | Some h when st.metrics_enabled -> Histogram.observe h dur
      | Some _ | None -> ());
      match st.sinks with
      | [] -> ()
      | sinks ->
        let s =
          { name; start_ns = t0; dur_ns = dur; depth = d; args = force_args args }
        in
        List.iter (fun k -> k.on_span s) sinks
    in
    Fun.protect ~finally f
  end

let event ?args ?(payload = No_payload) name =
  match (dstate ()).sinks with
  | [] -> ()
  | sinks ->
    let e =
      {
        ev_name = name;
        ev_ts_ns = now_ns ();
        ev_depth = (dstate ()).depth;
        ev_args = force_args args;
        ev_payload = payload;
      }
    in
    List.iter (fun k -> k.on_event e) sinks

let replay ?(depth_offset = 0) items =
  match (dstate ()).sinks with
  | [] -> ()
  | sinks ->
    List.iter
      (fun item ->
        match item with
        | Span s ->
          let s = { s with depth = s.depth + depth_offset } in
          List.iter (fun k -> k.on_span s) sinks
        | Event e ->
          let e = { e with ev_depth = e.ev_depth + depth_offset } in
          List.iter (fun k -> k.on_event e) sinks)
      items

(* ------------------------------------------------------------------ *)
(* Sink management                                                    *)
(* ------------------------------------------------------------------ *)

let install sink =
  let st = dstate () in
  st.sinks <- sink :: st.sinks

let remove sink =
  let st = dstate () in
  st.sinks <- List.filter (fun s -> s != sink) st.sinks

let exclusive sink f =
  let st = dstate () in
  let saved_sinks = st.sinks and saved_depth = st.depth in
  st.sinks <- [ sink ];
  st.depth <- 0;
  Fun.protect
    ~finally:(fun () ->
      st.sinks <- saved_sinks;
      st.depth <- saved_depth)
    f

let close sink = sink.on_close ()

let with_sink sink f =
  install sink;
  Fun.protect
    ~finally:(fun () ->
      remove sink;
      close sink)
    f

(* ------------------------------------------------------------------ *)
(* JSON plumbing (shared by the jsonl and chrome sinks)               *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_float b f =
  (* %.3f keeps microsecond timestamps readable; JSON numbers must not
     be NaN/inf (cannot happen for clock-derived values). *)
  Buffer.add_string b (Printf.sprintf "%.3f" f)

let json_arg b = function
  | Str s -> json_escape b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> json_float b f
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let json_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      json_escape b k;
      Buffer.add_string b ": ";
      json_arg b v)
    args;
  Buffer.add_char b '}'

let us_of_ns ns = Int64.to_float ns /. 1e3

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

let memory_sink () =
  let items = ref [] in
  let sink =
    {
      on_span = (fun s -> items := Span s :: !items);
      on_event = (fun e -> items := Event e :: !items);
      on_close = (fun () -> ());
    }
  in
  (sink, fun () -> List.rev !items)

let pp_arg ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%.3f" f
  | Bool v -> Format.pp_print_bool ppf v

let pp_args ppf args =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg v) args

(* Human-readable lines, indented by nesting depth.  Spans are emitted
   when they close, so children print before their parent. *)
let text_sink ppf =
  let indent d = String.make (2 * d) ' ' in
  {
    on_span =
      (fun s ->
        Format.fprintf ppf "%s[%s] %.3fms%a@." (indent s.depth) s.name
          (Int64.to_float s.dur_ns /. 1e6)
          pp_args s.args);
    on_event =
      (fun e ->
        Format.fprintf ppf "%s* %s%a@." (indent e.ev_depth) e.ev_name pp_args
          e.ev_args);
    on_close = (fun () -> Format.pp_print_flush ppf ());
  }

(* One JSON object per line; timestamps in microseconds since the sink
   was installed. *)
let jsonl_sink write =
  let t0 = now_ns () in
  let line kind name ts_ns dur_ns depth args =
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"type\": ";
    json_escape b kind;
    Buffer.add_string b ", \"name\": ";
    json_escape b name;
    Buffer.add_string b ", \"ts_us\": ";
    json_float b (us_of_ns (Int64.sub ts_ns t0));
    (match dur_ns with
    | Some d ->
      Buffer.add_string b ", \"dur_us\": ";
      json_float b (us_of_ns d)
    | None -> ());
    Buffer.add_string b ", \"depth\": ";
    Buffer.add_string b (string_of_int depth);
    Buffer.add_string b ", \"args\": ";
    json_args b args;
    Buffer.add_string b "}\n";
    write (Buffer.contents b)
  in
  {
    on_span = (fun s -> line "span" s.name s.start_ns (Some s.dur_ns) s.depth s.args);
    on_event = (fun e -> line "event" e.ev_name e.ev_ts_ns None e.ev_depth e.ev_args);
    on_close = (fun () -> ());
  }

(* Chrome trace_event JSON (the "JSON array format"): complete events
   [ph = "X"] for spans, instant events [ph = "i"] for events.  Load
   the file in chrome://tracing or https://ui.perfetto.dev. *)
let chrome_sink write =
  let t0 = now_ns () in
  let first = ref true in
  let entry add_fields =
    let b = Buffer.create 128 in
    if !first then begin
      Buffer.add_string b "[\n";
      first := false
    end
    else Buffer.add_string b ",\n";
    Buffer.add_char b '{';
    add_fields b;
    Buffer.add_char b '}';
    write (Buffer.contents b)
  in
  let common b name ph ts_ns =
    Buffer.add_string b "\"name\": ";
    json_escape b name;
    Buffer.add_string b ", \"ph\": ";
    json_escape b ph;
    Buffer.add_string b ", \"pid\": 1, \"tid\": 1, \"ts\": ";
    json_float b (us_of_ns (Int64.sub ts_ns t0))
  in
  {
    on_span =
      (fun s ->
        entry (fun b ->
            common b s.name "X" s.start_ns;
            Buffer.add_string b ", \"dur\": ";
            json_float b (us_of_ns s.dur_ns);
            Buffer.add_string b ", \"args\": ";
            json_args b s.args));
    on_event =
      (fun e ->
        entry (fun b ->
            common b e.ev_name "i" e.ev_ts_ns;
            Buffer.add_string b ", \"s\": \"t\", \"args\": ";
            json_args b e.ev_args));
    on_close =
      (fun () -> if !first then write "[\n]\n" else write "\n]\n");
  }

(* ------------------------------------------------------------------ *)
(* Metrics dump                                                       *)
(* ------------------------------------------------------------------ *)

let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let counters () =
  List.map
    (fun k -> Hashtbl.find Counter.registry k)
    (sorted_keys Counter.registry)

let histograms () =
  List.map
    (fun k -> Hashtbl.find Histogram.registry k)
    (sorted_keys Histogram.registry)

let pp_metrics ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (c : Counter.t) ->
      Format.fprintf ppf "counter %s %d@," c.Counter.c_name c.Counter.value)
    (counters ());
  List.iter
    (fun (h : Histogram.t) ->
      if Histogram.count h > 0 then
        Format.fprintf ppf
          "histogram %s count=%d p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus@,"
          h.Histogram.h_name (Histogram.count h)
          (Histogram.percentile h 0.50 /. 1e3)
          (Histogram.percentile h 0.95 /. 1e3)
          (Histogram.percentile h 0.99 /. 1e3)
          (Int64.to_float (Histogram.max_value h) /. 1e3)
      else
        Format.fprintf ppf "histogram %s count=0@," h.Histogram.h_name)
    (histograms ());
  Format.fprintf ppf "@]"
