(* Structured tracing and metrics for the whole engine.

   Design constraints, in order:

   1. Near-zero cost when disarmed.  Every instrumentation site guards
      on one mutable boolean; with no sink installed and metrics off,
      [with_span] is a load, a branch and a tail call.  Argument lists
      are thunks, evaluated only when a sink actually consumes them.
   2. Zero dependencies.  The monotonic clock is a 10-line C stub
      (CLOCK_MONOTONIC); JSON is emitted by hand; sinks write through a
      plain [string -> unit] so they work over files, buffers and pipes
      alike.
   3. One event stream.  Typed solver events ride along as extensible
      [payload]s, so `--explain` (which needs the typed data) and
      `--trace` (which needs the serialized view) are fed by the same
      emission points and cannot drift. *)

external now_ns : unit -> int64 = "entangle_obs_monotonic_ns"

(* Unboxed variant for the recording hot path: no caml_copy_int64, no
   minor allocation, safe to call at every span open/close. *)
external now_ns_i : unit -> int = "entangle_obs_monotonic_ns_int" [@@noalloc]

type arg = Str of string | Int of int | Float of float | Bool of bool

type payload = ..

type payload += No_payload

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * arg) list;
}

type event = {
  ev_name : string;
  ev_ts_ns : int64;
  ev_depth : int;
  ev_args : (string * arg) list;
  ev_payload : payload;
}

type item = Span of span | Event of event

type sink = {
  on_span : span -> unit;
  on_event : event -> unit;
  on_close : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Registry of metrics                                                *)
(* ------------------------------------------------------------------ *)

(* Metric updates are plain mutations: the engine instruments the
   orchestrating domain only (the parallel value loop's workers are
   pure), so no synchronisation is bought where none is needed. *)

module Histogram = struct
  (* Log2-bucketed: bucket 0 counts values <= 0, bucket i >= 1 counts
     values in [2^(i-1), 2^i).  63 value buckets cover every positive
     int64. *)
  let bucket_count = 64

  (* [sum] and [max_v] are plain ints: the histograms observe
     nanosecond durations, and 62 bits of nanoseconds is ~146 years —
     keeping them unboxed lets [observe_i] run without allocating. *)
  type t = {
    h_name : string;
    h_help : string;
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_v : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          buckets = Array.make bucket_count 0;
          count = 0;
          sum = 0;
          max_v = min_int;
        }
      in
      Hashtbl.add registry name h;
      h

  let find name = Hashtbl.find_opt registry name

  let bucket_of v =
    if Int64.compare v 0L <= 0 then 0
    else begin
      (* Positive int64 values fit 63 bits; index = floor(log2 v) + 1. *)
      let rec bits acc v = if v = 0L then acc else bits (acc + 1) (Int64.shift_right_logical v 1) in
      bits 0 v
    end

  (* Inclusive lower / exclusive upper value bound of a bucket. *)
  let bucket_bounds i =
    if i = 0 then (Int64.min_int, 1L)
    else
      ( Int64.shift_left 1L (i - 1),
        if i >= 63 then Int64.max_int else Int64.shift_left 1L i )

  (* Unboxed observation path: every armed span funnels through here,
     so it must not box.  [bucket_of_i] agrees with {!bucket_of} on
     every value an [int] can hold. *)
  let bucket_of_i v =
    if v <= 0 then 0
    else begin
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      bits 0 v
    end

  let observe_i h v =
    let i = bucket_of_i v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v > h.max_v then h.max_v <- v

  let observe h v = observe_i h (Int64.to_int v)

  let count h = h.count

  let sum h = Int64.of_int h.sum

  let max_value h = if h.count = 0 then 0L else Int64.of_int h.max_v

  let buckets h = Array.copy h.buckets

  (* Percentile estimate: find the bucket holding the rank-th
     observation and interpolate linearly inside it.  Within one
     power-of-two bracket the estimate is off by at most 2x, which is
     plenty for latency reporting. *)
  let percentile h p =
    if h.count = 0 then 0.0
    else begin
      let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
      let rank = p *. float_of_int h.count in
      let rank = if rank < 1.0 then 1.0 else rank in
      let acc = ref 0.0 in
      let result = ref 0.0 in
      (try
         for i = 0 to bucket_count - 1 do
           let n = float_of_int h.buckets.(i) in
           if n > 0.0 then begin
             if !acc +. n >= rank then begin
               let lo, hi = bucket_bounds i in
               let lo = if i = 0 then 0.0 else Int64.to_float lo in
               let hi = Int64.to_float hi in
               let frac = (rank -. !acc) /. n in
               result := lo +. ((hi -. lo) *. frac);
               raise Exit
             end;
             acc := !acc +. n
           end
         done;
         result := Int64.to_float (max_value h)
       with Exit -> ());
      (* Never report beyond the observed maximum. *)
      let cap = Int64.to_float (max_value h) in
      if !result > cap then cap else !result
    end

  let reset h =
    Array.fill h.buckets 0 bucket_count 0;
    h.count <- 0;
    h.sum <- 0;
    h.max_v <- min_int
end

module Counter = struct
  type t = { c_name : string; c_help : string; mutable value : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_help = help; value = 0 } in
      Hashtbl.add registry name c;
      c

  (* Labeled counters share the registry under "name{label}" keys, so
     one dump lists the family together. *)
  let labeled ?help name label = make ?help (name ^ "{" ^ label ^ "}")

  let find name = Hashtbl.find_opt registry name

  let add c n = c.value <- c.value + n

  let incr c = add c 1

  let value c = c.value

  let reset c = c.value <- 0
end

module Gauge = struct
  (* Last-write-wins instantaneous values (pool sizes, cache sizes,
     ratios) in the same process-wide registry discipline as counters. *)
  type t = { g_name : string; g_help : string; mutable g_value : float }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
      let g = { g_name = name; g_help = help; g_value = 0.0 } in
      Hashtbl.add registry name g;
      g

  let find name = Hashtbl.find_opt registry name

  let set g v = g.g_value <- v

  let add g v = g.g_value <- g.g_value +. v

  let value g = g.g_value

  let reset g = g.g_value <- 0.0
end

let reset_metrics () =
  Hashtbl.iter (fun _ h -> Histogram.reset h) Histogram.registry;
  Hashtbl.iter (fun _ c -> Counter.reset c) Counter.registry;
  Hashtbl.iter (fun _ g -> Gauge.reset g) Gauge.registry

(* ------------------------------------------------------------------ *)
(* Flight-recorder ring buffers                                       *)
(* ------------------------------------------------------------------ *)

(* A fixed-capacity drop-oldest buffer of items.  One per domain,
   written only by its owning domain (no synchronisation on the push
   path); read by the dumping domain, which tolerates torn snapshots —
   a flight recorder is a diagnostic, not a ledger.

   An array of preallocated mutable slot records, not an [item array]
   and not parallel scalar arrays: a push overwrites the fields of one
   slot in place and allocates nothing, so the always-armed recorder
   never grows the minor heap — and because one slot is one ~64-byte
   record, a push dirties a single cache line where a struct-of-arrays
   layout streams through seven.  Timestamps are stored as plain [int]
   nanoseconds (63 bits outlive the hardware) so no field is boxed;
   the [item] view is only materialised at dump time. *)
type fslot = {
  mutable s_kind : int;   (* 0 span, 1 event *)
  mutable s_name : string; (* "" marks a slot never written *)
  mutable s_ts : int;     (* span start / event timestamp, ns *)
  mutable s_dur : int;    (* span duration, ns; 0 for events *)
  mutable s_depth : int;
  mutable s_args : (string * arg) list;
  mutable s_payload : payload;
}

type fring = {
  fr_cap : int;
  fr_slots : fslot array;
  mutable fr_head : int;  (* index of the oldest item *)
  mutable fr_len : int;
  fr_dom : int;           (* owning domain id *)
}

let ring_slot r =
  let i = (r.fr_head + r.fr_len) mod r.fr_cap in
  if r.fr_len = r.fr_cap then r.fr_head <- (r.fr_head + 1) mod r.fr_cap
  else r.fr_len <- r.fr_len + 1;
  r.fr_slots.(i)

(* Timestamps arrive as plain [int] nanoseconds (from {!now_ns_i}):
   the push path must not touch boxed int64s. *)
let ring_push_span r ~name ~start_ns ~dur_ns ~depth ~args =
  let s = ring_slot r in
  s.s_kind <- 0;
  s.s_name <- name;
  s.s_ts <- start_ns;
  s.s_dur <- dur_ns;
  s.s_depth <- depth;
  s.s_args <- args;
  s.s_payload <- No_payload

let ring_push_event r ~name ~ts_ns ~depth ~args ~payload =
  let s = ring_slot r in
  s.s_kind <- 1;
  s.s_name <- name;
  s.s_ts <- ts_ns;
  s.s_dur <- 0;
  s.s_depth <- depth;
  s.s_args <- args;
  s.s_payload <- payload

(* Oldest-first snapshot, materialising [item]s from the slots.
   Defensive about concurrently mutated slots: an unwritten (or
   mid-push) slot still holding the empty name is skipped rather than
   crashing the dump. *)
let ring_items r =
  let acc = ref [] in
  for k = r.fr_len - 1 downto 0 do
    let s = r.fr_slots.((r.fr_head + k) mod r.fr_cap) in
    let name = s.s_name in
    if name <> "" then
      let it =
        if s.s_kind = 0 then
          Span
            {
              name;
              start_ns = Int64.of_int s.s_ts;
              dur_ns = Int64.of_int s.s_dur;
              depth = s.s_depth;
              args = s.s_args;
            }
        else
          Event
            {
              ev_name = name;
              ev_ts_ns = Int64.of_int s.s_ts;
              ev_depth = s.s_depth;
              ev_args = s.s_args;
              ev_payload = s.s_payload;
            }
      in
      acc := it :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Arming                                                             *)
(* ------------------------------------------------------------------ *)

(* Arming state is domain-local: each OCaml 5 domain carries its own
   sink list, nesting depth and metrics flag.  A freshly spawned domain
   is disarmed (no sinks, metrics off), so uninstrumented workers keep
   the near-zero disarmed cost; a worker that wants its work traced
   installs a local memory sink and the orchestrating domain merges the
   captured items back with [replay].  Nothing is shared, so no
   instrumentation path needs synchronisation. *)
(* [ring] is deliberately not a sink: {!tracing} (and therefore the
   executor's capture-and-replay machinery) must stay false when only
   the flight recorder is armed, and {!exclusive} must suspend sinks
   without suspending the recorder — a worker's ring keeps recording
   through a capture, which is exactly the per-domain isolation the
   recorder exists for. *)
type dstate = {
  mutable sinks : sink list;
  mutable depth : int;
  mutable metrics_enabled : bool;
  mutable ring : fring option;
}

let dstate_key =
  Domain.DLS.new_key (fun () ->
      { sinks = []; depth = 0; metrics_enabled = false; ring = None })

let dstate () = Domain.DLS.get dstate_key

let enabled () =
  let st = dstate () in
  st.sinks <> [] || st.metrics_enabled || st.ring != None

let tracing () = (dstate ()).sinks <> []

let metrics_on () = (dstate ()).metrics_enabled

let set_metrics b = (dstate ()).metrics_enabled <- b

let depth () = (dstate ()).depth

(* ------------------------------------------------------------------ *)
(* Spans and events                                                   *)
(* ------------------------------------------------------------------ *)

let force_args = function Some f -> f () | None -> []

let with_span ?args ?hist name f =
  (* A span is live if a sink wants it, or if it feeds a histogram and
     metrics are on; otherwise it must cost one domain-local load and a
     branch. *)
  let st = dstate () in
  let live =
    match hist with
    | None -> st.sinks <> [] || st.ring != None
    | Some _ -> st.sinks <> [] || st.metrics_enabled || st.ring != None
  in
  if not live then f ()
  else begin
    let d = st.depth in
    st.depth <- d + 1;
    let t0 = now_ns_i () in
    (* Unboxed int timestamps and no [Fun.protect] wrapper: with the
       flight recorder always armed this closes around every span in
       the engine, so the epilogue allocates only when a sink or the
       metrics registry asks for boxed values. *)
    let finish () =
      let dur = now_ns_i () - t0 in
      st.depth <- d;
      (match hist with
      | Some h when st.metrics_enabled -> Histogram.observe_i h dur
      | Some _ | None -> ());
      match (st.sinks, st.ring) with
      | [], None -> ()
      | [], Some r ->
        (* Ring-only spans drop their args: forcing the closure is the
           expensive part of recording (it may snapshot counters or
           build strings), and the always-armed flight recorder must
           stay at ~100ns per span.  As soon as a sink is attached the
           full args are captured — and land in the ring too. *)
        ring_push_span r ~name ~start_ns:t0 ~dur_ns:dur ~depth:d ~args:[]
      | sinks, ring ->
        let args = force_args args in
        (match ring with
        | Some r ->
          ring_push_span r ~name ~start_ns:t0 ~dur_ns:dur ~depth:d ~args
        | None -> ());
        let s =
          {
            name;
            start_ns = Int64.of_int t0;
            dur_ns = Int64.of_int dur;
            depth = d;
            args;
          }
        in
        List.iter (fun k -> k.on_span s) sinks
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let event ?args ?(payload = No_payload) name =
  let st = dstate () in
  match (st.sinks, st.ring) with
  | [], None -> ()
  | [], Some r ->
    (* Ring-only, same bargain as spans: record name, time and depth
       without forcing the args closure (solver milestones build
       member-name strings in theirs — the bulk of the armed cost).
       {!Flight_recorder.incident} pushes its reason directly, so the
       one arg a post-mortem cannot do without always survives. *)
    ring_push_event r ~name ~ts_ns:(now_ns_i ()) ~depth:st.depth ~args:[]
      ~payload
  | sinks, ring ->
    let ts = now_ns_i () and args = force_args args in
    (match ring with
    | Some r ->
      ring_push_event r ~name ~ts_ns:ts ~depth:st.depth ~args ~payload
    | None -> ());
    let e =
      {
        ev_name = name;
        ev_ts_ns = Int64.of_int ts;
        ev_depth = st.depth;
        ev_args = args;
        ev_payload = payload;
      }
    in
    List.iter (fun k -> k.on_event e) sinks

(* Replay feeds sinks only, never the ring: every replayed item was
   already recorded by the emitting domain's own ring at emission time
   ({!exclusive} suspends sinks, not the recorder), so pushing it here
   would double-record it. *)
let replay ?(depth_offset = 0) items =
  match (dstate ()).sinks with
  | [] -> ()
  | sinks ->
    List.iter
      (fun item ->
        match item with
        | Span s ->
          let s = { s with depth = s.depth + depth_offset } in
          List.iter (fun k -> k.on_span s) sinks
        | Event e ->
          let e = { e with ev_depth = e.ev_depth + depth_offset } in
          List.iter (fun k -> k.on_event e) sinks)
      items

(* ------------------------------------------------------------------ *)
(* Sink management                                                    *)
(* ------------------------------------------------------------------ *)

let install sink =
  let st = dstate () in
  st.sinks <- sink :: st.sinks

let remove sink =
  let st = dstate () in
  st.sinks <- List.filter (fun s -> s != sink) st.sinks

let exclusive sink f =
  let st = dstate () in
  let saved_sinks = st.sinks and saved_depth = st.depth in
  st.sinks <- [ sink ];
  st.depth <- 0;
  Fun.protect
    ~finally:(fun () ->
      st.sinks <- saved_sinks;
      st.depth <- saved_depth)
    f

let close sink = sink.on_close ()

let with_sink sink f =
  install sink;
  Fun.protect
    ~finally:(fun () ->
      remove sink;
      close sink)
    f

(* ------------------------------------------------------------------ *)
(* JSON plumbing (shared by the jsonl and chrome sinks)               *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_float b f =
  (* %.3f keeps microsecond timestamps readable; JSON numbers must not
     be NaN/inf (cannot happen for clock-derived values). *)
  Buffer.add_string b (Printf.sprintf "%.3f" f)

let json_arg b = function
  | Str s -> json_escape b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> json_float b f
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let json_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      json_escape b k;
      Buffer.add_string b ": ";
      json_arg b v)
    args;
  Buffer.add_char b '}'

let us_of_ns ns = Int64.to_float ns /. 1e3

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

let memory_sink () =
  let items = ref [] in
  let sink =
    {
      on_span = (fun s -> items := Span s :: !items);
      on_event = (fun e -> items := Event e :: !items);
      on_close = (fun () -> ());
    }
  in
  (sink, fun () -> List.rev !items)

let pp_arg ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%.3f" f
  | Bool v -> Format.pp_print_bool ppf v

let pp_args ppf args =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg v) args

(* Human-readable lines, indented by nesting depth.  Spans are emitted
   when they close, so children print before their parent. *)
let text_sink ppf =
  let indent d = String.make (2 * d) ' ' in
  {
    on_span =
      (fun s ->
        Format.fprintf ppf "%s[%s] %.3fms%a@." (indent s.depth) s.name
          (Int64.to_float s.dur_ns /. 1e6)
          pp_args s.args);
    on_event =
      (fun e ->
        Format.fprintf ppf "%s* %s%a@." (indent e.ev_depth) e.ev_name pp_args
          e.ev_args);
    on_close = (fun () -> Format.pp_print_flush ppf ());
  }

(* One JSON object per line; timestamps in microseconds since the sink
   was installed. *)
let jsonl_sink write =
  let t0 = now_ns () in
  let line kind name ts_ns dur_ns depth args =
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"type\": ";
    json_escape b kind;
    Buffer.add_string b ", \"name\": ";
    json_escape b name;
    Buffer.add_string b ", \"ts_us\": ";
    json_float b (us_of_ns (Int64.sub ts_ns t0));
    (match dur_ns with
    | Some d ->
      Buffer.add_string b ", \"dur_us\": ";
      json_float b (us_of_ns d)
    | None -> ());
    Buffer.add_string b ", \"depth\": ";
    Buffer.add_string b (string_of_int depth);
    Buffer.add_string b ", \"args\": ";
    json_args b args;
    Buffer.add_string b "}\n";
    write (Buffer.contents b)
  in
  {
    on_span = (fun s -> line "span" s.name s.start_ns (Some s.dur_ns) s.depth s.args);
    on_event = (fun e -> line "event" e.ev_name e.ev_ts_ns None e.ev_depth e.ev_args);
    on_close = (fun () -> ());
  }

(* Chrome trace_event JSON (the "JSON array format"): complete events
   [ph = "X"] for spans, instant events [ph = "i"] for events.  Load
   the file in chrome://tracing or https://ui.perfetto.dev. *)
let chrome_sink write =
  let t0 = now_ns () in
  let first = ref true in
  let entry add_fields =
    let b = Buffer.create 128 in
    if !first then begin
      Buffer.add_string b "[\n";
      first := false
    end
    else Buffer.add_string b ",\n";
    Buffer.add_char b '{';
    add_fields b;
    Buffer.add_char b '}';
    write (Buffer.contents b)
  in
  let common b name ph ts_ns =
    Buffer.add_string b "\"name\": ";
    json_escape b name;
    Buffer.add_string b ", \"ph\": ";
    json_escape b ph;
    Buffer.add_string b ", \"pid\": 1, \"tid\": 1, \"ts\": ";
    json_float b (us_of_ns (Int64.sub ts_ns t0))
  in
  {
    on_span =
      (fun s ->
        entry (fun b ->
            common b s.name "X" s.start_ns;
            Buffer.add_string b ", \"dur\": ";
            json_float b (us_of_ns s.dur_ns);
            Buffer.add_string b ", \"args\": ";
            json_args b s.args));
    on_event =
      (fun e ->
        entry (fun b ->
            common b e.ev_name "i" e.ev_ts_ns;
            Buffer.add_string b ", \"s\": \"t\", \"args\": ";
            json_args b e.ev_args));
    on_close =
      (fun () -> if !first then write "[\n]\n" else write "\n]\n");
  }

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

module Flight_recorder = struct
  let armed_flag = Atomic.make false

  (* 1024 items x ~48 bytes of scalar slots keeps a ring's write
     footprint around 50KB — inside L2, so the always-on recorder's
     round-robin writes do not evict the evaluator's working set the
     way a multi-hundred-KB ring measurably does (observability
     ablation).  At ~50 items per solve that is still ~20 solves of
     post-mortem history per domain. *)
  let default_capacity = 1024

  let cap = Atomic.make default_capacity

  (* Protects [rings], [dump_path] and [dumped]; never taken on the
     push path (rings are written lock-free by their owning domain). *)
  let lock = Mutex.create ()

  let rings : fring list ref = ref []

  let dump_path : string option ref = ref None

  let dumped = ref false

  (* Pre-registered at [arm] time (on the arming domain) so [incident]
     never mutates the registry hashtable from a worker domain. *)
  let c_incidents =
    lazy
      (Counter.make ~help:"flight-recorder incidents (aborts, crashes)"
         "flight.incidents")

  let armed () = Atomic.get armed_flag

  let arm_domain () =
    if Atomic.get armed_flag then begin
      let st = dstate () in
      match st.ring with
      | Some _ -> ()
      | None ->
        let c = Atomic.get cap in
        let r =
          {
            fr_cap = c;
            fr_slots =
              Array.init c (fun _ ->
                  {
                    s_kind = 0;
                    s_name = "";
                    s_ts = 0;
                    s_dur = 0;
                    s_depth = 0;
                    s_args = [];
                    s_payload = No_payload;
                  });
            fr_head = 0;
            fr_len = 0;
            fr_dom = (Domain.self () :> int);
          }
        in
        Mutex.lock lock;
        rings := r :: !rings;
        Mutex.unlock lock;
        st.ring <- Some r
    end

  let arm ?capacity () =
    (match capacity with
    | Some c when c < 1 -> invalid_arg "Flight_recorder.arm: capacity < 1"
    | Some c -> Atomic.set cap c
    | None -> Atomic.set cap default_capacity);
    ignore (Lazy.force c_incidents);
    Mutex.lock lock;
    dumped := false;
    Mutex.unlock lock;
    Atomic.set armed_flag true;
    arm_domain ()

  let disarm () =
    Atomic.set armed_flag false;
    (dstate ()).ring <- None;
    Mutex.lock lock;
    rings := [];
    Mutex.unlock lock

  let set_dump_path p =
    Mutex.lock lock;
    dump_path := p;
    Mutex.unlock lock

  let local_items () =
    match (dstate ()).ring with None -> [] | Some r -> ring_items r

  let domains () =
    Mutex.lock lock;
    let rs = !rings in
    Mutex.unlock lock;
    List.map (fun r -> (r.fr_dom, ring_items r)) rs
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let item_ts = function Span s -> s.start_ns | Event e -> e.ev_ts_ns

  (* All rings merged into one (domain, item) stream, oldest first. *)
  let merged () =
    domains ()
    |> List.concat_map (fun (d, items) -> List.map (fun it -> (d, it)) items)
    |> List.stable_sort (fun (_, a) (_, b) -> Int64.compare (item_ts a) (item_ts b))

  (* Chrome trace_event JSON with one [tid] lane per recording domain;
     timestamps rebased to the earliest recorded item. *)
  let write_chrome write items =
    let t0 =
      List.fold_left
        (fun acc (_, it) ->
          let t = item_ts it in
          if Int64.compare t acc < 0 then t else acc)
        Int64.max_int items
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b "[";
    List.iteri
      (fun i (dom, it) ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_char b '{';
        let common name ph ts_ns =
          Buffer.add_string b "\"name\": ";
          json_escape b name;
          Buffer.add_string b ", \"ph\": ";
          json_escape b ph;
          Buffer.add_string b (Printf.sprintf ", \"pid\": 1, \"tid\": %d, \"ts\": " dom);
          json_float b (us_of_ns (Int64.sub ts_ns t0))
        in
        (match it with
        | Span s ->
          common s.name "X" s.start_ns;
          Buffer.add_string b ", \"dur\": ";
          json_float b (us_of_ns s.dur_ns);
          Buffer.add_string b ", \"args\": ";
          json_args b s.args
        | Event e ->
          common e.ev_name "i" e.ev_ts_ns;
          Buffer.add_string b ", \"s\": \"t\", \"args\": ";
          json_args b e.ev_args);
        Buffer.add_char b '}')
      items;
    Buffer.add_string b "\n]\n";
    write (Buffer.contents b)

  let write_jsonl write items =
    let b = Buffer.create 4096 in
    List.iter
      (fun (dom, it) ->
        Buffer.add_string b "{\"type\": ";
        (match it with
        | Span s ->
          json_escape b "span";
          Buffer.add_string b ", \"name\": ";
          json_escape b s.name;
          Buffer.add_string b ", \"ts_us\": ";
          json_float b (us_of_ns s.start_ns);
          Buffer.add_string b ", \"dur_us\": ";
          json_float b (us_of_ns s.dur_ns);
          Buffer.add_string b (Printf.sprintf ", \"depth\": %d" s.depth);
          Buffer.add_string b (Printf.sprintf ", \"dom\": %d, \"args\": " dom);
          json_args b s.args
        | Event e ->
          json_escape b "event";
          Buffer.add_string b ", \"name\": ";
          json_escape b e.ev_name;
          Buffer.add_string b ", \"ts_us\": ";
          json_float b (us_of_ns e.ev_ts_ns);
          Buffer.add_string b (Printf.sprintf ", \"depth\": %d" e.ev_depth);
          Buffer.add_string b (Printf.sprintf ", \"dom\": %d, \"args\": " dom);
          json_args b e.ev_args);
        Buffer.add_string b "}\n")
      items;
    write (Buffer.contents b)

  let dump_to_file path =
    let items = merged () in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        if Filename.check_suffix path ".jsonl" then
          write_jsonl (output_string oc) items
        else write_chrome (output_string oc) items)

  (* Called on the failure paths (typed Abort, degraded solve, worker
     crash).  Marks the trigger in the local ring, counts it, and dumps
     the merged window once per arm — the first incident's window is
     the one that explains the failure; later incidents in the same run
     (e.g. each per-shard abort of one degraded solve) only count. *)
  let incident reason =
    if Atomic.get armed_flag then begin
      Counter.incr (Lazy.force c_incidents);
      (match (dstate ()).ring with
      | Some r ->
        ring_push_event r ~name:"flight.incident" ~ts_ns:(now_ns_i ())
          ~depth:(dstate ()).depth
          ~args:[ ("reason", Str reason) ]
          ~payload:No_payload
      | None -> ());
      let path =
        Mutex.lock lock;
        let p = if !dumped then None else !dump_path in
        (match p with Some _ -> dumped := true | None -> ());
        Mutex.unlock lock;
        p
      in
      match path with
      | None -> ()
      | Some p -> ( try dump_to_file p with Sys_error _ -> ())
    end
end

(* ------------------------------------------------------------------ *)
(* Metrics dump                                                       *)
(* ------------------------------------------------------------------ *)

let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let counters () =
  List.map
    (fun k -> Hashtbl.find Counter.registry k)
    (sorted_keys Counter.registry)

let histograms () =
  List.map
    (fun k -> Hashtbl.find Histogram.registry k)
    (sorted_keys Histogram.registry)

let gauges () =
  List.map (fun k -> Hashtbl.find Gauge.registry k) (sorted_keys Gauge.registry)

let pp_metrics ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (c : Counter.t) ->
      Format.fprintf ppf "counter %s %d@," c.Counter.c_name c.Counter.value)
    (counters ());
  List.iter
    (fun (g : Gauge.t) ->
      Format.fprintf ppf "gauge %s %g@," g.Gauge.g_name g.Gauge.g_value)
    (gauges ());
  List.iter
    (fun (h : Histogram.t) ->
      if Histogram.count h > 0 then
        Format.fprintf ppf
          "histogram %s count=%d p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus@,"
          h.Histogram.h_name (Histogram.count h)
          (Histogram.percentile h 0.50 /. 1e3)
          (Histogram.percentile h 0.95 /. 1e3)
          (Histogram.percentile h 0.99 /. 1e3)
          (Int64.to_float (Histogram.max_value h) /. 1e3)
      else
        Format.fprintf ppf "histogram %s count=0@," h.Histogram.h_name)
    (histograms ());
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Registry snapshots (JSON and Prometheus text)                      *)
(* ------------------------------------------------------------------ *)

let metrics_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": [";
  List.iteri
    (fun i (c : Counter.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {\"name\": ";
      json_escape b c.Counter.c_name;
      Buffer.add_string b ", \"value\": ";
      Buffer.add_string b (string_of_int c.Counter.value);
      Buffer.add_char b '}')
    (counters ());
  Buffer.add_string b "\n  ],\n  \"gauges\": [";
  List.iteri
    (fun i (g : Gauge.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {\"name\": ";
      json_escape b g.Gauge.g_name;
      Buffer.add_string b ", \"value\": ";
      json_float b g.Gauge.g_value;
      Buffer.add_char b '}')
    (gauges ());
  Buffer.add_string b "\n  ],\n  \"histograms\": [";
  List.iteri
    (fun i (h : Histogram.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {\"name\": ";
      json_escape b h.Histogram.h_name;
      Buffer.add_string b
        (Printf.sprintf ", \"count\": %d, \"sum\": %Ld, \"max\": %Ld"
           (Histogram.count h) (Histogram.sum h) (Histogram.max_value h));
      Buffer.add_string b ", \"p50\": ";
      json_float b (Histogram.percentile h 0.50);
      Buffer.add_string b ", \"p95\": ";
      json_float b (Histogram.percentile h 0.95);
      Buffer.add_string b ", \"p99\": ";
      json_float b (Histogram.percentile h 0.99);
      Buffer.add_char b '}')
    (histograms ());
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Prometheus exposition text.  Registry names like "eval.probes{F,H}"
   split into a sanitised family name and an opaque [label="..."] pair;
   histograms render as summaries with quantile labels. *)
let prom_sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    s

let prom_split name =
  match String.index_opt name '{' with
  | Some i when name.[String.length name - 1] = '}' ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 2)) )
  | _ -> (name, None)

let metrics_prometheus () =
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let header base kind help =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.add typed base ();
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" base help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (c : Counter.t) ->
      let raw, label = prom_split c.Counter.c_name in
      let base = "entangle_" ^ prom_sanitize raw in
      header base "counter" c.Counter.c_help;
      match label with
      | None -> Buffer.add_string b (Printf.sprintf "%s %d\n" base c.Counter.value)
      | Some l ->
        Buffer.add_string b
          (Printf.sprintf "%s{label=%S} %d\n" base l c.Counter.value))
    (counters ());
  List.iter
    (fun (g : Gauge.t) ->
      let raw, label = prom_split g.Gauge.g_name in
      let base = "entangle_" ^ prom_sanitize raw in
      header base "gauge" g.Gauge.g_help;
      match label with
      | None ->
        Buffer.add_string b (Printf.sprintf "%s %.6g\n" base g.Gauge.g_value)
      | Some l ->
        Buffer.add_string b
          (Printf.sprintf "%s{label=%S} %.6g\n" base l g.Gauge.g_value))
    (gauges ());
  List.iter
    (fun (h : Histogram.t) ->
      let base = "entangle_" ^ prom_sanitize h.Histogram.h_name in
      header base "summary" h.Histogram.h_help;
      List.iter
        (fun (q, p) ->
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"%s\"} %.3f\n" base q
               (Histogram.percentile h p)))
        [ ("0.5", 0.50); ("0.95", 0.95); ("0.99", 0.99) ];
      Buffer.add_string b
        (Printf.sprintf "%s_sum %Ld\n%s_count %d\n" base (Histogram.sum h) base
           (Histogram.count h)))
    (histograms ());
  Buffer.contents b
