/* Monotonic clock for the observability subsystem.

   CLOCK_MONOTONIC is immune to wall-clock adjustments (NTP steps,
   manual changes), so span durations can never go negative.  One C
   call, no dependencies. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value entangle_obs_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                         + (int64_t)ts.tv_nsec);
}
