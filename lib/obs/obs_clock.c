/* Monotonic clock for the observability subsystem.

   CLOCK_MONOTONIC is immune to wall-clock adjustments (NTP steps,
   manual changes), so span durations can never go negative.  One C
   call, no dependencies. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value entangle_obs_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                         + (int64_t)ts.tv_nsec);
}

/* Same clock as a tagged immediate ([@@noalloc] on the OCaml side):
   the flight recorder timestamps every span and must not box.  63-bit
   nanoseconds overflow in ~146 years of uptime. */
CAMLprim value entangle_obs_monotonic_ns_int(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
