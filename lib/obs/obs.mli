(** Structured tracing and metrics for the engine and the solvers.

    A process-wide, zero-dependency observability layer: monotonic-clock
    spans with parent/child nesting, typed events, log2-bucketed
    histograms and labeled counters, and pluggable sinks (human-readable
    text, JSONL, Chrome [trace_event] JSON loadable in
    [chrome://tracing] / Perfetto, and an in-memory sink for tests and
    {!Coordination.Explain}).

    When nothing is armed — no sink installed, metrics off — every
    instrumentation site reduces to one domain-local load and a branch,
    so the engine can stay instrumented permanently (verified by the
    [observability] ablation in [bench/ablations.ml]).

    Arming state (sinks, nesting depth, metrics flag) is domain-local:
    a freshly spawned domain starts disarmed, so worker domains pay the
    disarmed cost unless they install their own (typically memory)
    sink.  {!Coordination.Executor} uses this to capture each shard's
    items on the worker and {!replay} them deterministically on the
    orchestrating domain.  The {!Histogram} and {!Counter} registries
    remain process-wide and are not synchronised — record metrics from
    one domain at a time (the executor keeps worker metrics off). *)

val now_ns : unit -> int64
(** Monotonic timestamp in nanoseconds ([CLOCK_MONOTONIC]): differences
    are durations, immune to wall-clock adjustment.  The epoch is
    arbitrary (boot time on Linux) — only differences are meaningful. *)

(** Argument values attached to spans and events. *)
type arg = Str of string | Int of int | Float of float | Bool of bool

(** Typed payloads let instrumentation points attach structured data
    (e.g. {!Coordination.Scc_algo.event}) that in-process consumers
    recover exactly, while serializing sinks render only the plain
    [args].  Extend with [type Obs.payload += My_event of t]. *)
type payload = ..

type payload += No_payload

type span = {
  name : string;
  start_ns : int64;  (** monotonic start time *)
  dur_ns : int64;
  depth : int;       (** nesting depth at entry; top-level spans are 0 *)
  args : (string * arg) list;
}

type event = {
  ev_name : string;
  ev_ts_ns : int64;
  ev_depth : int;
  ev_args : (string * arg) list;
  ev_payload : payload;
}

type item = Span of span | Event of event

(** {1 Arming} *)

val enabled : unit -> bool
(** Anything armed at all (sink installed or metrics on).  The guard for
    instrumentation whose cost must vanish otherwise. *)

val tracing : unit -> bool
(** At least one sink is installed. *)

val metrics_on : unit -> bool

val set_metrics : bool -> unit
(** Turn histogram/counter recording on or off. *)

(** {1 Metrics} *)

module Histogram : sig
  (** Log2-bucketed histograms in a process-wide registry.  Bucket 0
      counts values [<= 0]; bucket [i >= 1] counts values in
      [2^(i-1), 2^i). *)

  type t

  val make : ?help:string -> string -> t
  (** Get-or-create by name (process-wide). *)

  val find : string -> t option

  val observe : t -> int64 -> unit

  val count : t -> int

  val sum : t -> int64

  val max_value : t -> int64
  (** Exact observed maximum ([0L] when empty). *)

  val percentile : t -> float -> float
  (** [percentile h 0.99]: estimate by linear interpolation inside the
      rank's bucket; within a factor of 2 (one bucket), capped at the
      exact observed maximum.  [0.0] when empty. *)

  val buckets : t -> int array

  val bucket_of : int64 -> int
  (** Index of the bucket a value lands in (exposed for tests). *)

  val bucket_bounds : int -> int64 * int64
  (** [(inclusive lower, exclusive upper)] value bounds of a bucket. *)

  val reset : t -> unit
end

module Counter : sig
  (** Monotone counters in the same process-wide registry. *)

  type t

  val make : ?help:string -> string -> t

  val labeled : ?help:string -> string -> string -> t
  (** [labeled name label] registers ["name{label}"] — a labeled family
      member that dumps alongside its base counter. *)

  val find : string -> t option

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int

  val reset : t -> unit
end

val reset_metrics : unit -> unit
(** Zero every registered counter and histogram (registrations remain). *)

val pp_metrics : Format.formatter -> unit -> unit
(** Dump the registry: one line per counter, one per histogram with
    count and p50/p95/p99/max in microseconds. *)

(** {1 Spans and events} *)

val with_span :
  ?args:(unit -> (string * arg) list) ->
  ?hist:Histogram.t ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f] and reports it to every sink as a span
    nested under the enclosing [with_span].  [args] is a thunk,
    evaluated once after [f] returns (so it can report deltas) and only
    when a sink is installed.  [hist], if given, receives the span
    duration in nanoseconds whenever metrics are on — even with no sink
    installed.  Disarmed cost: one branch.  Exceptions propagate; the
    span still closes. *)

val event :
  ?args:(unit -> (string * arg) list) -> ?payload:payload -> string -> unit
(** Instant event at the current nesting depth; dropped unless a sink is
    installed. *)

val depth : unit -> int
(** Current span nesting depth on the calling domain (0 outside any
    span).  Used as the [depth_offset] when {!replay}ing items captured
    on a worker domain, whose depth starts at 0. *)

val replay : ?depth_offset:int -> item list -> unit
(** Re-emit captured items (from a {!memory_sink} drain, typically on
    another domain) to the calling domain's sinks, in list order, with
    every depth shifted by [depth_offset].  Timestamps are preserved
    verbatim.  No-op when no sink is installed. *)

(** {1 Sinks} *)

type sink

val install : sink -> unit

val remove : sink -> unit

val close : sink -> unit
(** Let the sink write its trailer and flush.  Does not close the
    underlying channel. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install around [f], then remove and {!close} (also on exception). *)

val exclusive : sink -> (unit -> 'a) -> 'a
(** Run [f] with [sink] as the calling domain's {e only} sink and the
    span depth reset to 0, restoring the previous sinks and depth
    afterwards (also on exception).  This is how an orchestrator
    captures a thunk's emissions in isolation when the thunk runs on a
    domain that already has live sinks — a pool worker scheduled on the
    orchestrator's own domain.  A plain {!install} would double-deliver
    every item: once live, in execution order, and once again in the
    deterministic {!replay}; and the captured depths would be relative
    to the orchestrator's span nesting instead of starting at 0 like a
    freshly spawned domain's. *)

val text_sink : Format.formatter -> sink
(** Human-readable lines, indented by depth.  Spans print when they
    close, i.e. children before their parents. *)

val jsonl_sink : (string -> unit) -> sink
(** One JSON object per line through the writer:
    [{"type": "span"|"event", "name", "ts_us", "dur_us"?, "depth",
    "args"}].  Timestamps are microseconds since sink creation. *)

val chrome_sink : (string -> unit) -> sink
(** Chrome [trace_event] JSON array: ["ph": "X"] complete events for
    spans, ["ph": "i"] instants for events.  {!close} writes the closing
    bracket — without it the file is not valid JSON. *)

val memory_sink : unit -> sink * (unit -> item list)
(** In-memory sink and a drain returning items in emission order
    (spans appear at their close time), payloads intact. *)
