(** Structured tracing and metrics for the engine and the solvers.

    A process-wide, zero-dependency observability layer: monotonic-clock
    spans with parent/child nesting, typed events, log2-bucketed
    histograms and labeled counters, and pluggable sinks (human-readable
    text, JSONL, Chrome [trace_event] JSON loadable in
    [chrome://tracing] / Perfetto, and an in-memory sink for tests and
    {!Coordination.Explain}).

    When nothing is armed — no sink installed, metrics off — every
    instrumentation site reduces to one domain-local load and a branch,
    so the engine can stay instrumented permanently (verified by the
    [observability] ablation in [bench/ablations.ml]).

    Arming state (sinks, nesting depth, metrics flag) is domain-local:
    a freshly spawned domain starts disarmed, so worker domains pay the
    disarmed cost unless they install their own (typically memory)
    sink.  {!Coordination.Executor} uses this to capture each shard's
    items on the worker and {!replay} them deterministically on the
    orchestrating domain.  The {!Histogram} and {!Counter} registries
    remain process-wide and are not synchronised — record metrics from
    one domain at a time (the executor keeps worker metrics off). *)

val now_ns : unit -> int64
(** Monotonic timestamp in nanoseconds ([CLOCK_MONOTONIC]): differences
    are durations, immune to wall-clock adjustment.  The epoch is
    arbitrary (boot time on Linux) — only differences are meaningful. *)

(** Argument values attached to spans and events. *)
type arg = Str of string | Int of int | Float of float | Bool of bool

(** Typed payloads let instrumentation points attach structured data
    (e.g. {!Coordination.Scc_algo.event}) that in-process consumers
    recover exactly, while serializing sinks render only the plain
    [args].  Extend with [type Obs.payload += My_event of t]. *)
type payload = ..

type payload += No_payload

type span = {
  name : string;
  start_ns : int64;  (** monotonic start time *)
  dur_ns : int64;
  depth : int;       (** nesting depth at entry; top-level spans are 0 *)
  args : (string * arg) list;
}

type event = {
  ev_name : string;
  ev_ts_ns : int64;
  ev_depth : int;
  ev_args : (string * arg) list;
  ev_payload : payload;
}

type item = Span of span | Event of event

(** {1 Arming} *)

val enabled : unit -> bool
(** Anything armed at all (sink installed, metrics on, or the
    {!Flight_recorder} recording on this domain).  The guard for
    instrumentation whose cost must vanish otherwise. *)

val tracing : unit -> bool
(** At least one sink is installed.  Deliberately {e false} when only
    the {!Flight_recorder} is armed: capture-and-replay machinery keyed
    on this (the parallel executor) must not engage for the recorder,
    whose whole point is per-domain in-place recording. *)

val metrics_on : unit -> bool

val set_metrics : bool -> unit
(** Turn histogram/counter recording on or off. *)

(** {1 Metrics} *)

module Histogram : sig
  (** Log2-bucketed histograms in a process-wide registry.  Bucket 0
      counts values [<= 0]; bucket [i >= 1] counts values in
      [2^(i-1), 2^i). *)

  type t

  val make : ?help:string -> string -> t
  (** Get-or-create by name (process-wide). *)

  val find : string -> t option

  val observe : t -> int64 -> unit

  val observe_i : t -> int -> unit
  (** Unboxed fast path, equivalent to [observe h (Int64.of_int v)].
      Armed spans record through this so the hot path allocates
      nothing. *)

  val count : t -> int

  val sum : t -> int64

  val max_value : t -> int64
  (** Exact observed maximum ([0L] when empty). *)

  val percentile : t -> float -> float
  (** [percentile h 0.99]: estimate by linear interpolation inside the
      rank's bucket; within a factor of 2 (one bucket), capped at the
      exact observed maximum.  [0.0] when empty. *)

  val buckets : t -> int array

  val bucket_of : int64 -> int
  (** Index of the bucket a value lands in (exposed for tests). *)

  val bucket_bounds : int -> int64 * int64
  (** [(inclusive lower, exclusive upper)] value bounds of a bucket. *)

  val reset : t -> unit
end

module Counter : sig
  (** Monotone counters in the same process-wide registry. *)

  type t

  val make : ?help:string -> string -> t

  val labeled : ?help:string -> string -> string -> t
  (** [labeled name label] registers ["name{label}"] — a labeled family
      member that dumps alongside its base counter. *)

  val find : string -> t option

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int

  val reset : t -> unit
end

module Gauge : sig
  (** Last-write-wins instantaneous values (cache sizes, ratios,
      versions) in the same process-wide registry discipline as
      {!Counter}. *)

  type t

  val make : ?help:string -> string -> t

  val find : string -> t option

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float

  val reset : t -> unit
end

val reset_metrics : unit -> unit
(** Zero every registered counter, gauge and histogram (registrations
    remain). *)

val pp_metrics : Format.formatter -> unit -> unit
(** Dump the registry: one line per counter and gauge, one per
    histogram with count and p50/p95/p99/max in microseconds. *)

val metrics_json : unit -> string
(** The whole registry as one JSON document:
    [{"counters": [{"name", "value"}...], "gauges": [...],
    "histograms": [{"name", "count", "sum", "max", "p50", "p95",
    "p99"}...]}], names sorted.  Histogram values are nanoseconds (or
    whatever unit the histogram observes). *)

val metrics_prometheus : unit -> string
(** The registry in Prometheus exposition text: every name prefixed
    [entangle_] and sanitised, [# HELP]/[# TYPE] headers, labeled
    registry entries (["name{label}"]) rendered as [label="..."] pairs,
    histograms as summaries with [quantile] labels plus [_sum] and
    [_count]. *)

(** {1 Spans and events} *)

val with_span :
  ?args:(unit -> (string * arg) list) ->
  ?hist:Histogram.t ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f] and reports it to every sink as a span
    nested under the enclosing [with_span].  [args] is a thunk,
    evaluated once after [f] returns (so it can report deltas) and only
    when a sink is installed (the {!Flight_recorder} alone records the
    span without args — see its docs).  [hist], if given, receives the
    span duration in nanoseconds whenever metrics are on — even with no
    sink installed.  Disarmed cost: one branch.  Exceptions propagate;
    the span still closes. *)

val event :
  ?args:(unit -> (string * arg) list) -> ?payload:payload -> string -> unit
(** Instant event at the current nesting depth; dropped unless a sink
    is installed or the {!Flight_recorder} is recording on this domain
    (ring-only, args stay unforced — see the recorder's docs). *)

val depth : unit -> int
(** Current span nesting depth on the calling domain (0 outside any
    span).  Used as the [depth_offset] when {!replay}ing items captured
    on a worker domain, whose depth starts at 0. *)

val replay : ?depth_offset:int -> item list -> unit
(** Re-emit captured items (from a {!memory_sink} drain, typically on
    another domain) to the calling domain's sinks, in list order, with
    every depth shifted by [depth_offset].  Timestamps are preserved
    verbatim.  No-op when no sink is installed. *)

(** {1 Sinks} *)

type sink

val install : sink -> unit

val remove : sink -> unit

val close : sink -> unit
(** Let the sink write its trailer and flush.  Does not close the
    underlying channel. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install around [f], then remove and {!close} (also on exception). *)

val exclusive : sink -> (unit -> 'a) -> 'a
(** Run [f] with [sink] as the calling domain's {e only} sink and the
    span depth reset to 0, restoring the previous sinks and depth
    afterwards (also on exception).  This is how an orchestrator
    captures a thunk's emissions in isolation when the thunk runs on a
    domain that already has live sinks — a pool worker scheduled on the
    orchestrator's own domain.  A plain {!install} would double-deliver
    every item: once live, in execution order, and once again in the
    deterministic {!replay}; and the captured depths would be relative
    to the orchestrator's span nesting instead of starting at 0 like a
    freshly spawned domain's. *)

val text_sink : Format.formatter -> sink
(** Human-readable lines, indented by depth.  Spans print when they
    close, i.e. children before their parents. *)

val jsonl_sink : (string -> unit) -> sink
(** One JSON object per line through the writer:
    [{"type": "span"|"event", "name", "ts_us", "dur_us"?, "depth",
    "args"}].  Timestamps are microseconds since sink creation. *)

val chrome_sink : (string -> unit) -> sink
(** Chrome [trace_event] JSON array: ["ph": "X"] complete events for
    spans, ["ph": "i"] instants for events.  {!close} writes the closing
    bracket — without it the file is not valid JSON. *)

val memory_sink : unit -> sink * (unit -> item list)
(** In-memory sink and a drain returning items in emission order
    (spans appear at their close time), payloads intact. *)

(** {1 Flight recorder}

    A fixed-capacity, drop-oldest ring buffer of {!item}s per domain,
    recording every span and event the domain emits whether or not any
    sink is installed.  The ring is an array of preallocated mutable
    slot records and a push overwrites one slot's fields in place, so
    recording allocates nothing and dirties one cache line;
    to keep that cost (~100ns/item), ring-only recording stores names,
    times and depths but does {e not} force [args] thunks — full args
    appear whenever a sink is also installed, and {!incident} pushes
    its [reason] arg explicitly so aborts keep their cause.  Disarmed
    it adds one load and branch to the instrumentation guard.  Unlike a
    sink, the recorder survives {!exclusive} (the executor's capture)
    and does not make {!tracing} true, so arming it never changes
    solver/executor behaviour.

    On an {!Flight_recorder.incident} — reported by the resilience
    layer on a typed [Abort], by the executor on [Worker_crashed] — the
    merged window of all rings is written once to the configured dump
    path (Chrome trace_event JSON, or JSONL when the path ends in
    [.jsonl]), giving a post-hoc view of the moments preceding the
    failure. *)
module Flight_recorder : sig
  val arm : ?capacity:int -> unit -> unit
  (** Arm the recorder process-wide and attach a ring (default capacity
      1024 items — about 50KB of slots, small enough to live in L2
      under the evaluator's working set) to the calling domain.
      Re-arming resets the dumped-once latch.
      @raise Invalid_argument if [capacity < 1]. *)

  val arm_domain : unit -> unit
  (** Attach a ring to the calling domain if the recorder is armed
      process-wide; no-op otherwise.  Worker domains call this on
      entry. *)

  val disarm : unit -> unit
  (** Disarm process-wide, detach the calling domain's ring and drop
      every registered ring. *)

  val armed : unit -> bool

  val set_dump_path : string option -> unit
  (** Where {!incident} writes the merged window ([None] disables
      dumping; incidents are still counted and marked in the ring). *)

  val incident : string -> unit
  (** Report a failure worth a flight dump.  Counts
      [flight.incidents], appends a ["flight.incident"] event (carrying
      [reason]) to the calling domain's ring, and — first incident
      since arming only — dumps the merged window to the dump path.
      No-op when disarmed. *)

  val local_items : unit -> item list
  (** The calling domain's ring, oldest first (empty when detached). *)

  val domains : unit -> (int * item list) list
  (** Every registered ring as [(domain id, items oldest first)],
      sorted by domain id.  Rings of still-running domains are
      snapshot racily — fine for diagnostics and tests that quiesce
      first. *)

  val dump_to_file : string -> unit
  (** Write the merged window of all rings now (Chrome trace_event
      JSON; JSONL when the path ends in [.jsonl]), one [tid] lane per
      domain, timestamps rebased to the earliest recorded item. *)
end
