let generate rng ~nodes ~edges_per_node =
  if nodes < 1 then invalid_arg "Scale_free.generate: nodes < 1";
  if edges_per_node < 1 then invalid_arg "Scale_free.generate: edges_per_node < 1";
  Obs.with_span
    ~args:(fun () ->
      [ ("nodes", Obs.Int nodes); ("edges_per_node", Obs.Int edges_per_node) ])
    "workload.scale_free"
  @@ fun () ->
  let g = Graphs.Digraph.create nodes in
  (* Preferential attachment via a repeated-endpoints urn: every target
     endpoint appears once per received edge, plus once unconditionally
     so isolated nodes stay reachable. *)
  let urn = ref [] in
  let urn_size = ref 0 in
  let add_to_urn v =
    urn := v :: !urn;
    incr urn_size
  in
  add_to_urn 0;
  let urn_array = ref [||] in
  let urn_dirty = ref true in
  let draw_target () =
    if !urn_dirty then begin
      urn_array := Array.of_list !urn;
      urn_dirty := false
    end;
    (!urn_array).(Prng.int rng !urn_size)
  in
  for v = 1 to nodes - 1 do
    let wanted = min edges_per_node v in
    let chosen = Hashtbl.create 4 in
    (* Rejection-sample distinct targets; v existing nodes guarantee
       termination because wanted <= v. *)
    while Hashtbl.length chosen < wanted do
      let t = draw_target () in
      if t <> v && not (Hashtbl.mem chosen t) then Hashtbl.add chosen t ()
    done;
    Hashtbl.iter
      (fun t () ->
        Graphs.Digraph.add_edge g v t;
        add_to_urn t;
        urn_dirty := true)
      chosen;
    add_to_urn v;
    urn_dirty := true
  done;
  g

let in_degree_histogram g =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let d = Graphs.Digraph.in_degree g v in
      Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
    (Graphs.Digraph.nodes g);
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
