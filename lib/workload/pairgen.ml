open Relational
open Entangled

let answer_atom u v = { Cq.rel = "R"; args = [| Term.Const u; v |] }

let posts_atom ~var topic =
  { Cq.rel = "Posts"; args = [| Term.Var var; Term.Const (Value.Str topic) |] }

(* A topic guaranteed absent: Social.topic only emits "t<i>". *)
let missing_topic = "t-missing"

let make ?backend ?rows ?(topics = 100) ?(p_unsat = 0.) ?(p_dependent = 0.) ~seed n =
  Obs.with_span
    ~args:(fun () -> [ ("n", Obs.Int n); ("topics", Obs.Int topics) ])
    "workload.pairgen"
  @@ fun () ->
  let rng = Prng.create seed in
  let db = Database.create ?backend () in
  ignore (Social.install_posts ?rows ~topics db);
  let topic () = Social.topic (Prng.int rng topics) in
  let queries =
    List.concat
      (List.init n (fun i ->
           let ua = Value.Str (Printf.sprintf "a%d" i) in
           let ub = Value.Str (Printf.sprintf "b%d" i) in
           let unsat = p_unsat > 0. && Prng.float rng < p_unsat in
           let dependent =
             p_dependent > 0. && Prng.float rng < p_dependent
           in
           let topic_a = if unsat then missing_topic else topic () in
           let qa =
             Query.make
               ~name:(Printf.sprintf "a%d" i)
               ~post:[ answer_atom ub (Term.Var "y") ]
               ~head:[ answer_atom ua (Term.Var "x") ]
               [ posts_atom ~var:"x" topic_a ]
           in
           let qb =
             Query.make
               ~name:(Printf.sprintf "b%d" i)
               ~post:[ answer_atom ua (Term.Var "y") ]
               ~head:[ answer_atom ub (Term.Var "x") ]
               [ posts_atom ~var:"x" (topic ()) ]
           in
           if not dependent then [ qa; qb ]
           else
             let us = Value.Str (Printf.sprintf "s%d" i) in
             let qs =
               Query.make
                 ~name:(Printf.sprintf "s%d" i)
                 ~post:[ answer_atom ua (Term.Var "z") ]
                 ~head:[ answer_atom us (Term.Var "w") ]
                 [ posts_atom ~var:"w" (topic ()) ]
             in
             [ qa; qb; qs ]))
  in
  (db, queries)

let ring ?backend ?rows ?(topics = 100) ~seed n =
  Obs.with_span
    ~args:(fun () -> [ ("n", Obs.Int n); ("topics", Obs.Int topics) ])
    "workload.ring"
  @@ fun () ->
  let rng = Prng.create seed in
  let db = Database.create ?backend () in
  ignore (Social.install_posts ?rows ~topics db);
  let user i = Value.Str (Printf.sprintf "r%d" i) in
  let queries =
    List.init n (fun i ->
        Query.make
          ~name:(Printf.sprintf "r%d" i)
          ~post:[ answer_atom (user ((i + 1) mod n)) (Term.Var "y") ]
          ~head:[ answer_atom (user i) (Term.Var "x") ]
          [ posts_atom ~var:"x" (Social.topic (Prng.int rng topics)) ])
  in
  (db, queries)
