(** Many independent coordination pairs — the sharding workload.

    [n] two-query cycles: the users of pair [i] each require the other's
    answer, so every pair is one strongly connected component and (with
    its optional dependent) one weakly connected component.  The batch
    therefore shards perfectly: [n] components that share no queries and
    no edges, which is what the component-sharded executor scales on and
    what the differential suite permutes across domain counts.

    The set is safe by construction — every user is distinct and every
    postcondition names exactly one user's head.  It is {e not} unique:
    uniqueness (Definition 3) demands a directed path between every two
    queries, i.e. a single SCC, and independent pairs are the opposite
    of that.  Gupta's algorithm therefore rejects [make]'s output; use
    {!ring} for a workload all three batch algorithms accept.

    Knobs, all deterministic from [seed]:
    - [p_unsat]: probability that one body of a pair asks for a topic
      that is not in the table, making the whole component fail
      (exercises failed candidates, and [Skipped] events on its
      dependent);
    - [p_dependent]: probability of a third query that needs pair [i]'s
      first answer, growing that component to 3 queries (weight
      imbalance for the work-stealing pool, and a dependent SCC that is
      skipped when its pair fails). *)

open Relational
open Entangled

val make :
  ?backend:Database.backend ->
  ?rows:int ->
  ?topics:int ->
  ?p_unsat:float ->
  ?p_dependent:float ->
  seed:int ->
  int ->
  Database.t * Query.t list
(** [make ~seed n] builds the Posts table ({!Social.install_posts}) and
    [n] pairs.  [p_unsat] and [p_dependent] default to [0.]; [backend]
    selects the storage backend of the generated database (default row). *)

val ring :
  ?backend:Database.backend ->
  ?rows:int ->
  ?topics:int ->
  seed:int ->
  int ->
  Database.t * Query.t list
(** [ring ~seed n] is one [n]-query cycle: query [i] posts for query
    [i+1 mod n], so the coordination graph is a single SCC and the set
    is safe {e and} unique — the shape {!Coordination.Gupta} requires.
    Every body is satisfiable, so the ring coordinates as a whole. *)
