open Relational
open Entangled

let user i = Value.Str (Printf.sprintf "u%d" i)

let answer_atom u v = { Cq.rel = "R"; args = [| Term.Const u; v |] }

let body_atom rng ~topics =
  {
    Cq.rel = "Posts";
    args = [| Term.Var "x"; Term.Const (Value.Str (Social.topic (Prng.int rng topics))) |];
  }

let queries ?(topics = 100) rng ~n =
  Obs.with_span
    ~args:(fun () -> [ ("n", Obs.Int n); ("topics", Obs.Int topics) ])
    "workload.list_queries"
  @@ fun () ->
  List.init n (fun i ->
      let post =
        if i < n - 1 then [ answer_atom (user (i + 1)) (Term.Var "y") ] else []
      in
      Query.make
        ~name:(Printf.sprintf "u%d" i)
        ~post
        ~head:[ answer_atom (user i) (Term.Var "x") ]
        [ body_atom rng ~topics ])

let make ?backend ?rows ?(topics = 100) ~seed n =
  let rng = Prng.create seed in
  let db = Database.create ?backend () in
  ignore (Social.install_posts ?rows ~topics db);
  (db, queries ~topics rng ~n)
