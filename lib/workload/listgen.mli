(** The list-structure workload of Figure 4.

    [n] queries in a chain: query [i] asks to coordinate with query
    [i+1]; the last has no coordination partner.  The set is safe but
    not unique — there is a distinct coordinating set for every suffix,
    which is the worst case for the SCC algorithm (one database probe
    per suffix). *)

open Relational
open Entangled

val user : int -> Value.t
(** The user constant for query [i]. *)

val queries : ?topics:int -> Prng.t -> n:int -> Query.t list
(** Query [i]: [{R(u<i+1>, y)} R(u<i>, x) :- Posts(x, t)] with a random
    topic from the pool (all pool topics exist in the table built by
    {!Social.install_posts} with the same [topics]). *)

val make :
  ?backend:Database.backend ->
  ?rows:int ->
  ?topics:int ->
  seed:int ->
  int ->
  Database.t * Query.t list
(** Database plus chain, ready for {!Coordination.Scc_algo.solve}.
    [backend] selects the generated database's storage backend
    (default row). *)
