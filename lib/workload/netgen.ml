open Relational
open Entangled

let queries_of_graph ?(topics = 100) rng g =
  Obs.with_span
    ~args:(fun () ->
      [
        ("nodes", Obs.Int (Graphs.Digraph.node_count g));
        ("topics", Obs.Int topics);
      ])
    "workload.network_queries"
  @@ fun () ->
  List.init (Graphs.Digraph.node_count g) (fun i ->
      let post =
        List.mapi
          (fun k j ->
            {
              Cq.rel = "R";
              args = [| Term.Const (Listgen.user j); Term.Var (Printf.sprintf "y%d" k) |];
            })
          (Graphs.Digraph.successors g i)
      in
      Query.make
        ~name:(Printf.sprintf "u%d" i)
        ~post
        ~head:[ { Cq.rel = "R"; args = [| Term.Const (Listgen.user i); Term.Var "x" |] } ]
        [
          {
            Cq.rel = "Posts";
            args =
              [|
                Term.Var "x";
                Term.Const (Value.Str (Social.topic (Prng.int rng topics)));
              |];
          };
        ])

let make ?rows ?(topics = 100) ?(edges_per_node = 2) ~seed n =
  let rng = Prng.create seed in
  let db = Database.create () in
  ignore (Social.install_posts ?rows ~topics db);
  let g = Scale_free.generate rng ~nodes:n ~edges_per_node in
  (db, queries_of_graph ~topics rng g, g)
