open Relational
module Cquery = Coordination.Consistent_query

let movies_schema = Schema.make "M" [ "movie_id"; "cinema"; "movie" ]

let config =
  Cquery.make_config ~s_schema:movies_schema ~friends:"C" ~answer:"R"
    ~coord_attrs:[ 0 ] (* cinema *)

let chris = Value.Str "Chris"
let guy = Value.Str "Guy"
let jonny = Value.Str "Jonny"
let will = Value.Str "Will"

let make ?backend () =
  let db = Database.create ?backend () in
  let m = Database.create_table db movies_schema in
  List.iter
    (fun (id, cinema, movie) ->
      ignore (Relation.insert m [| Value.Int id; Value.Str cinema; Value.Str movie |]))
    [
      (1, "Regal", "Contagion");
      (2, "Regal", "Hugo");
      (3, "AMC", "Project X");
      (4, "AMC", "Hugo");
      (5, "Cinemark", "Hugo");
    ];
  let c = Database.create_table' db "C" [ "user"; "friend" ] in
  List.iter
    (fun (u, f) -> ignore (Relation.insert c [| u; f |]))
    [
      (chris, jonny); (chris, guy);
      (guy, chris); (guy, jonny);
      (jonny, chris); (jonny, will);
      (will, chris); (will, guy);
    ];
  let q_chris =
    Cquery.make config ~user:chris
      ~own:[ Cquery.Exact (Value.Str "Regal"); Cquery.Exact (Value.Str "Contagion") ]
      ~partners:[ Cquery.Named will ]
  in
  let q_guy =
    Cquery.make config ~user:guy
      ~own:[ Cquery.Exact (Value.Str "AMC"); Cquery.Exact (Value.Str "Project X") ]
      ~partners:[ Cquery.Any_friend ]
  in
  let q_of_hugo_fan user =
    Cquery.make config ~user
      ~own:[ Cquery.Any; Cquery.Exact (Value.Str "Hugo") ]
      ~partners:[ Cquery.Any_friend ]
  in
  (db, [ q_chris; q_guy; q_of_hugo_fan jonny; q_of_hugo_fan will ])
