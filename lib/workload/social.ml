open Relational

let slashdot_row_count = 82168

let posts_schema = Schema.make "Posts" [ "pid"; "topic" ]

let topic i = Printf.sprintf "t%d" i

let install_posts ?(rows = slashdot_row_count) ?(topics = 100) db =
  Obs.with_span
    ~args:(fun () -> [ ("rows", Obs.Int rows); ("topics", Obs.Int topics) ])
    "workload.install_posts"
  @@ fun () ->
  let r = Database.create_table db posts_schema in
  for pid = 0 to rows - 1 do
    ignore
      (Relation.insert r [| Value.Int pid; Value.Str (topic (pid mod topics)) |])
  done;
  r
