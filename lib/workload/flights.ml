open Relational
module Cquery = Coordination.Consistent_query

let flights_schema = Schema.make "Flights" [ "fid"; "dest"; "day"; "src"; "airline" ]

let config =
  Cquery.make_config ~s_schema:flights_schema ~friends:"Friends" ~answer:"R"
    ~coord_attrs:[ 0; 1 ] (* dest, day *)

let install_flights db ~rows =
  Obs.with_span
    ~args:(fun () -> [ ("rows", Obs.Int rows) ])
    "workload.install_flights"
  @@ fun () ->
  let r = Database.create_table db flights_schema in
  for i = 0 to rows - 1 do
    ignore
      (Relation.insert r
         [|
           Value.Int i;
           Value.Str (Printf.sprintf "D%d" i);
           Value.Str (Printf.sprintf "Y%d" i);
           Value.Str (Printf.sprintf "S%d" (i mod 10));
           Value.Str (Printf.sprintf "A%d" (i mod 5));
         |])
  done;
  r

let user i = Value.Str (Printf.sprintf "p%d" i)

let install_complete_friends db ~users =
  Obs.with_span
    ~args:(fun () -> [ ("users", Obs.Int users) ])
    "workload.install_friends"
  @@ fun () ->
  let r = Database.create_table' db "Friends" [ "user"; "friend" ] in
  for i = 0 to users - 1 do
    for j = 0 to users - 1 do
      if i <> j then ignore (Relation.insert r [| user i; user j |])
    done
  done;
  r

let worst_case_queries ~users =
  List.init users (fun i ->
      Cquery.make config ~user:(user i)
        ~own:[ Cquery.Any; Cquery.Any; Cquery.Any; Cquery.Any ]
        ~partners:[ Cquery.Any_friend ])

let make_worst_case ~rows ~users =
  let db = Database.create () in
  ignore (install_flights db ~rows);
  ignore (install_complete_friends db ~users);
  (db, worst_case_queries ~users)

let cascade_queries ~users =
  List.init users (fun i ->
      let dest =
        if i = users - 1 then Cquery.Exact (Value.Str "D0") else Cquery.Any
      in
      let partners =
        if i = users - 1 then [] else [ Cquery.Named (user (i + 1)) ]
      in
      Cquery.make config ~user:(user i)
        ~own:[ dest; Cquery.Any; Cquery.Any; Cquery.Any ]
        ~partners)

let constrained_queries rng ~users ~rows ~constrain_fraction =
  List.init users (fun i ->
      let pin () = Prng.float rng < constrain_fraction in
      let row = Prng.int rng rows in
      let dest =
        if pin () then Cquery.Exact (Value.Str (Printf.sprintf "D%d" row))
        else Cquery.Any
      in
      let src =
        if pin () then Cquery.Exact (Value.Str (Printf.sprintf "S%d" (row mod 10)))
        else Cquery.Any
      in
      Cquery.make config ~user:(user i)
        ~own:[ dest; Cquery.Any; src; Cquery.Any ]
        ~partners:[ Cquery.Any_friend ])
