(** The movie-night example of Section 5, verbatim.

    Coldplay's members each want to go to a cinema with at least one
    friend; the coordination attribute is the cinema.  The paper's tables
    and queries are reproduced exactly, so tests can assert the worked
    example's conclusions: no coordinating set at Cinemark, and
    {Chris, Jonny, Will} at Regal. *)

open Relational

val movies_schema : Schema.t
(** [M(movie_id, cinema, movie)]. *)

val config : Coordination.Consistent_query.config
(** Coordination on the cinema attribute only. *)

val chris : Value.t
val guy : Value.t
val jonny : Value.t
val will : Value.t

val make :
  ?backend:Database.backend ->
  unit ->
  Database.t * Coordination.Consistent_query.t list
(** Database (movies at Regal/AMC/Cinemark, the C friendship table) and
    the four queries qc, qg, qj, qw in that order.  [backend] selects
    the generated database's storage backend (default row). *)
