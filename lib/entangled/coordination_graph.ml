open Relational

type edge = {
  src : int;
  post_index : int;
  dst : int;
  head_index : int;
}

type t = {
  queries : Query.t array;
  extended : edge list;
  graph : Graphs.Digraph.t;
}

let compatible (a : Cq.atom) (b : Cq.atom) =
  a.rel = b.rel
  && Array.length a.args = Array.length b.args
  &&
  let n = Array.length a.args in
  let rec loop i =
    i = n
    ||
    match (a.args.(i), b.args.(i)) with
    | Term.Const u, Term.Const v -> Value.equal u v && loop (i + 1)
    | (Term.Var _, _ | _, Term.Var _) -> loop (i + 1)
  in
  loop 0

(* Atoms are bucketed two levels deep: by relation symbol, then by the
   constant in their first argument position (atoms whose first argument
   is a variable go into a separate wildcard list).  Real workloads name
   the coordination partner in the first position — R(user, x) — so a
   probe atom with a constant there only ever scans the handful of
   stored atoms that could match, making graph construction near-linear
   instead of quadratic (the quantity Figure 6 measures) and giving the
   online engine O(candidates) incremental edge discovery per arrival. *)
module Atom_index = struct
  type 'a bucket = {
    by_first_const : (Cq.atom * 'a) list Value.Hashtbl.t;
    mutable var_first : (Cq.atom * 'a) list;
  }

  type 'a t = (string, 'a bucket) Hashtbl.t

  let create () : 'a t = Hashtbl.create 16

  let first_term (a : Cq.atom) =
    if Array.length a.args = 0 then Term.Var "" else a.args.(0)

  let add (t : 'a t) (a : Cq.atom) payload =
    let bucket =
      match Hashtbl.find_opt t a.rel with
      | Some b -> b
      | None ->
        let b = { by_first_const = Value.Hashtbl.create 16; var_first = [] } in
        Hashtbl.add t a.rel b;
        b
    in
    let entry = (a, payload) in
    match first_term a with
    | Term.Const v ->
      let l =
        Option.value ~default:[] (Value.Hashtbl.find_opt bucket.by_first_const v)
      in
      Value.Hashtbl.replace bucket.by_first_const v (entry :: l)
    | Term.Var _ -> bucket.var_first <- entry :: bucket.var_first

  let remove (t : 'a t) (a : Cq.atom) pred =
    match Hashtbl.find_opt t a.rel with
    | None -> ()
    | Some bucket -> (
      let keep (_, payload) = not (pred payload) in
      match first_term a with
      | Term.Const v -> (
        match Value.Hashtbl.find_opt bucket.by_first_const v with
        | None -> ()
        | Some l ->
          Value.Hashtbl.replace bucket.by_first_const v (List.filter keep l))
      | Term.Var _ -> bucket.var_first <- List.filter keep bucket.var_first)

  let probe (t : 'a t) (p : Cq.atom) =
    match Hashtbl.find_opt t p.rel with
    | None -> []
    | Some bucket ->
      let candidates =
        match first_term p with
        | Term.Const v ->
          Option.value ~default:[]
            (Value.Hashtbl.find_opt bucket.by_first_const v)
          @ bucket.var_first
        | Term.Var _ ->
          Value.Hashtbl.fold
            (fun _ l acc -> l @ acc)
            bucket.by_first_const bucket.var_first
      in
      List.filter (fun (a, _) -> compatible p a) candidates
end

let build queries =
  let n = Array.length queries in
  let heads = Atom_index.create () in
  Array.iteri
    (fun j q ->
      List.iteri (fun hi (h : Cq.atom) -> Atom_index.add heads h (j, hi)) q.Query.head)
    queries;
  let graph = Graphs.Digraph.create n in
  let extended = ref [] in
  Array.iteri
    (fun i q ->
      List.iteri
        (fun pi (p : Cq.atom) ->
          List.iter
            (fun (_, (j, hi)) ->
              extended :=
                { src = i; post_index = pi; dst = j; head_index = hi }
                :: !extended;
              Graphs.Digraph.add_edge graph i j)
            (Atom_index.probe heads p))
        q.Query.post)
    queries;
  (* Deterministic edge order: by (src, post_index, dst, head_index). *)
  let extended = List.sort compare !extended in
  { queries; extended; graph }

let post_targets g ~src ~post_index =
  List.filter_map
    (fun e ->
      if e.src = src && e.post_index = post_index then Some (e.dst, e.head_index)
      else None)
    g.extended

let post_count g =
  Array.fold_left (fun acc q -> acc + List.length q.Query.post) 0 g.queries

let prune_unsatisfiable g ~alive =
  let n = Array.length g.queries in
  if Array.length alive <> n then
    invalid_arg "Coordination_graph.prune_unsatisfiable: mask size mismatch";
  (* For each (src, post_index), the list of candidate dst queries. *)
  let candidates = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.src, e.post_index) in
      let l = Option.value ~default:[] (Hashtbl.find_opt candidates key) in
      Hashtbl.replace candidates key (e.dst :: l))
    g.extended;
  let has_live_candidate src post_index =
    match Hashtbl.find_opt candidates (src, post_index) with
    | None -> false
    | Some ds -> List.exists (fun d -> alive.(d)) ds
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i q ->
        if alive.(i) then
          List.iteri
            (fun pi (_ : Cq.atom) ->
              if alive.(i) && not (has_live_candidate i pi) then begin
                alive.(i) <- false;
                changed := true
              end)
            q.Query.post)
      g.queries
  done

let pp ppf g =
  Format.fprintf ppf "@[<v>coordination graph over %d queries"
    (Array.length g.queries);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  (%s, post %d) -> (%s, head %d)"
        g.queries.(e.src).Query.name e.post_index g.queries.(e.dst).Query.name
        e.head_index)
    g.extended;
  Format.fprintf ppf "@]"
