(** Coordination graphs (Section 2.3).

    The {e extended} coordination graph has an edge
    [((q, ap), (q', ah))] whenever postcondition atom [ap] of [q] is
    unifiable with head atom [ah] of [q'] — same relation symbol and no
    position holding two different constants.  Collapsing parallel edges
    gives the {e coordination graph} proper, a plain digraph over query
    indexes. *)

open Relational

type edge = {
  src : int;         (** query owning the postcondition *)
  post_index : int;  (** index into [post] of [src] *)
  dst : int;         (** query owning the head atom *)
  head_index : int;  (** index into [head] of [dst] *)
}

type t = private {
  queries : Query.t array;
  extended : edge list;
  graph : Graphs.Digraph.t;   (** collapsed; node ids = query indexes *)
}

val compatible : Cq.atom -> Cq.atom -> bool
(** The paper's unifiability test for graph edges: same relation symbol,
    same arity, and no position where both atoms carry different
    constants.  Weaker than MGU existence (repeated variables can still
    make real unification fail — the algorithms handle that later). *)

(** A two-level atom index: relation symbol, then the constant in the
    first argument position (wildcard bucket for atoms whose first
    argument is a variable).  {!build} uses one for near-linear graph
    construction; the online engine keeps persistent indexes of pooled
    postconditions and heads so a new arrival discovers its coordination
    edges by probing instead of re-unifying against the whole pool. *)
module Atom_index : sig
  type 'a t

  val create : unit -> 'a t

  val add : 'a t -> Cq.atom -> 'a -> unit
  (** Register an atom with a caller payload (typically its owner). *)

  val remove : 'a t -> Cq.atom -> ('a -> bool) -> unit
  (** [remove t a pred] drops every entry under [a]'s buckets whose
      payload satisfies [pred] — pass the same atom used in {!add}. *)

  val probe : 'a t -> Cq.atom -> (Cq.atom * 'a) list
  (** All stored atoms {!compatible} with the probe atom, bucket order
      (first-argument-constant matches before wildcards). *)
end

val build : Query.t array -> t
(** Queries are expected to be renamed apart (see {!Query.rename_set});
    variable names shared between queries would create spurious unifier
    interactions downstream. *)

val post_targets : t -> src:int -> post_index:int -> (int * int) list
(** Candidate [(query, head_index)] pairs for one postcondition atom, in
    edge order. *)

val prune_unsatisfiable : t -> alive:bool array -> unit
(** Iteratively clears [alive.(q)] for every query [q] having a
    postcondition atom none of whose candidate heads belongs to a live
    query.  This is the preprocessing step of the implementation in
    Section 6.1; it runs to a fixpoint. *)

val post_count : t -> int
(** Total number of postcondition atoms across all queries. *)

val pp : Format.formatter -> t -> unit
