(* Coordination as a service: a single-threaded select loop
   multiplexing socket sessions onto one Online engine.  See the .mli
   for the protocol; the design constraints that shape this file:

   - No JSON or async dependency exists in the tree, so frames carry a
     hand-rolled minimal JSON (module Json) and the loop is plain
     Unix.select — the same zero-dependency discipline as lib/obs.
   - Determinism: sessions are processed in session-id order every
     round, so one arrival order always yields one engine-operation
     order.  The differential suite replays that order against a
     sequential reference engine and demands state equality.
   - A disconnecting client is a per-session event, never a process
     event: SIGPIPE is ignored at [create], EPIPE/ECONNRESET tear down
     exactly one session (flight-recorder incident, resources
     released) while every other session continues. *)

open Relational
module Online = Coordination.Online
module Online_sharded = Coordination.Online_sharded

(* ------------------------------ JSON ------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse_exn s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      String.iter expect word;
      value
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'
          | Some '\\' -> advance (); Buffer.add_char b '\\'
          | Some '/' -> advance (); Buffer.add_char b '/'
          | Some 'b' -> advance (); Buffer.add_char b '\b'
          | Some 'f' -> advance (); Buffer.add_char b '\012'
          | Some 'n' -> advance (); Buffer.add_char b '\n'
          | Some 'r' -> advance (); Buffer.add_char b '\r'
          | Some 't' -> advance (); Buffer.add_char b '\t'
          | Some 'u' ->
            advance ();
            let cp = hex4 () in
            (* UTF-8 encode the code point (surrogate pairs land as two
               separate 3-byte sequences — good enough for diagnostic
               strings, which is all \u is used for here). *)
            if cp < 0x80 then Buffer.add_char b (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
            end
          | _ -> fail "bad escape");
          go ()
        | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while match peek () with Some c when is_num_char c -> true | _ -> false
      do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "empty input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields (kv :: acc)
            | Some '}' ->
              advance ();
              List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes";
    v

  let parse s = match parse_exn s with v -> Ok v | exception Bad m -> Error m

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let to_string v =
    let b = Buffer.create 64 in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool true -> Buffer.add_string b "true"
      | Bool false -> Buffer.add_string b "false"
      | Int i -> Buffer.add_string b (string_of_int i)
      | Float f -> Buffer.add_string b (Printf.sprintf "%.12g" f)
      | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
      | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          items;
        Buffer.add_char b ']'
      | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            go v)
          fields;
        Buffer.add_char b '}'
    in
    go v;
    Buffer.contents b

  let mem key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let str_mem key v =
    match mem key v with Some (Str s) -> Some s | _ -> None

  let int_mem key v = match mem key v with Some (Int i) -> Some i | _ -> None
end

(* ----------------------------- framing ---------------------------- *)

let frame json =
  let payload = Json.to_string json in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* ---------------------------- metrics ----------------------------- *)

let h_request_ns =
  lazy (Obs.Histogram.make ~help:"per-request service latency" "server.request_ns")

let c_requests =
  lazy (Obs.Counter.make ~help:"request frames dispatched" "server.requests")

let c_overloaded =
  lazy
    (Obs.Counter.make ~help:"submissions refused by admission control"
       "server.overloaded")

let c_abnormal =
  lazy
    (Obs.Counter.make ~help:"sessions torn down abnormally"
       "server.abnormal_disconnects")

let c_sessions =
  lazy (Obs.Counter.make ~help:"sessions accepted" "server.sessions")

let c_notifications =
  lazy
    (Obs.Counter.make ~help:"notification frames pushed"
       "server.notifications")

(* ----------------------------- server ----------------------------- *)

type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  max_pending : int;
  max_sessions : int;
  max_frame : int;
  max_buffered : int;
  verbose : bool;
}

let default_config listen =
  {
    listen;
    max_pending = 1024;
    max_sessions = 0;
    max_frame = 1 lsl 20;
    max_buffered = 4 lsl 20;
    verbose = false;
  }

(* One engine shape per binding; every request dispatches through the
   eng_* helpers so the protocol layer never cares which.  The sharded
   engine's operations and journal stream are observationally identical
   to the sequential one's, so the differential suite can compare a
   sharded server against a sequential reference verbatim. *)
type engine =
  | Sequential of Online.t
  | Sharded of Online_sharded.t

type binding = {
  db : Database.t;
  engine : engine;
  durable : Durable.t option;
  guard : Resilient.t option;
}

let eng_submit = function
  | Sequential e -> Online.submit e
  | Sharded e -> Online_sharded.submit e

let eng_withdraw = function
  | Sequential e -> Online.withdraw e
  | Sharded e -> Online_sharded.withdraw e

let eng_flush = function
  | Sequential e -> Online.flush e
  | Sharded e -> Online_sharded.flush e

let eng_pending_count = function
  | Sequential e -> Online.pending_count e
  | Sharded e -> Online_sharded.pending_count e

let eng_next_id = function
  | Sequential e -> Online.next_id e
  | Sharded e -> Online_sharded.next_id e

let eng_total_coordinated = function
  | Sequential e -> Online.total_coordinated e
  | Sharded e -> Online_sharded.total_coordinated e

let eng_last_degradation = function
  | Sequential e -> Online.last_degradation e
  | Sharded e -> Online_sharded.last_degradation e

let eng_domains = function
  | Sequential _ -> 1
  | Sharded e -> Online_sharded.domains e

(* Re-shard a just-recovered durable engine.  The recovered sequential
   engine stays attached to the WAL as the snapshot mirror: the sharded
   engine's record stream is byte-equivalent to a sequential engine's,
   so teeing each record through Online.mirror_sink (replaying its
   effect on the mirror, mutating no store state) before the WAL sink
   keeps the mirror — which Durable snapshots encode — exactly in step
   with the authoritative sharded pool at every commit boundary. *)
let shard_durable ~domains durable db mirror =
  let sharded = Online_sharded.of_online ~domains db mirror in
  let apply = Online.mirror_sink mirror in
  let wal = Durable.journal_sink durable in
  Online_sharded.set_journal sharded
    (Some
       (fun record ->
         apply record;
         wal record));
  sharded

type session = {
  sid : int;
  fd : Unix.file_descr;
  mutable inb : string;  (* inbound bytes not yet framed *)
  mutable out : string;  (* outbound bytes not yet written *)
  mutable subscribed : bool;
  mutable dead : bool;
}

type t = {
  cfg : config;
  binding : binding;
  mutable listen_fd : Unix.file_descr option;
  bound_port : int;
  sessions : (int, session) Hashtbl.t;
  mutable next_sid : int;
  mutable accepted : int;
  mutable stopped : bool;
}

let resolve_addr = function
  | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    let addr =
      match Unix.inet_addr_of_string host with
      | a -> a
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
          addrs.(0)
        | _ | (exception Not_found) ->
          invalid_arg (Printf.sprintf "cannot resolve host %s" host))
    in
    (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let create cfg binding =
  (* A client hanging up between our select and our write must surface
     as EPIPE on that one session, not as a fatal signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain, addr = resolve_addr cfg.listen in
  (match cfg.listen with
  | Unix_socket path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.listen with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_socket _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> -1
  in
  {
    cfg;
    binding;
    listen_fd = Some fd;
    bound_port;
    sessions = Hashtbl.create 16;
    next_sid = 0;
    accepted = 0;
    stopped = false;
  }

let port t =
  if t.bound_port < 0 then invalid_arg "Server.port: unix-domain server"
  else t.bound_port

let live_sessions t =
  Hashtbl.fold (fun _ s n -> if s.dead then n else n + 1) t.sessions 0

let sessions_served t = t.accepted

let close_listener t =
  match t.listen_fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match t.cfg.listen with
    | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    t.listen_fd <- None

let teardown t s ~abnormal ~reason =
  if not s.dead then begin
    s.dead <- true;
    (try Unix.close s.fd with Unix.Unix_error _ -> ());
    if abnormal then begin
      if Obs.metrics_on () then Obs.Counter.incr (Lazy.force c_abnormal);
      Obs.event
        ~args:(fun () ->
          [ ("sid", Obs.Int s.sid); ("reason", Obs.Str reason) ])
        "server.abnormal_disconnect";
      Obs.Flight_recorder.incident
        (Printf.sprintf "session %d abnormal disconnect: %s" s.sid reason)
    end
    else
      Obs.event
        ~args:(fun () -> [ ("sid", Obs.Int s.sid) ])
        "server.session_close";
    if t.cfg.verbose then
      Printf.printf "session %d: closed%s\n%!" s.sid
        (if abnormal then Printf.sprintf " (%s)" reason else "")
  end

(* Remove dead sessions from the table after each round (never during
   iteration). *)
let sweep t =
  let dead =
    Hashtbl.fold (fun sid s acc -> if s.dead then sid :: acc else acc)
      t.sessions []
  in
  List.iter (Hashtbl.remove t.sessions) dead

let enqueue t s json =
  if not s.dead then begin
    s.out <- s.out ^ frame json;
    if String.length s.out > t.cfg.max_buffered then
      (* The client stopped draining its socket; buffering without
         bound would let one slow consumer take the server down. *)
      teardown t s ~abnormal:true ~reason:"slow consumer"
  end

let subscribed_sessions t =
  Hashtbl.fold
    (fun _ s acc -> if s.subscribed && not s.dead then s :: acc else acc)
    t.sessions []
  |> List.sort (fun a b -> compare a.sid b.sid)

let queries_json (c : Online.coordinated) =
  Json.Arr
    (List.map (fun q -> Json.Str q.Entangled.Query.name) c.Online.queries)

let notify_matched t fired =
  if fired <> [] then
    match subscribed_sessions t with
    | [] -> ()
    | subs ->
      List.iter
        (fun c ->
          let fr =
            Json.Obj
              [ ("notify", Json.Str "matched"); ("queries", queries_json c) ]
          in
          List.iter
            (fun s ->
              enqueue t s fr;
              if Obs.metrics_on () then
                Obs.Counter.incr (Lazy.force c_notifications))
            subs)
        fired

let notify_degraded t = function
  | None -> ()
  | Some (d : Resilient.degradation) ->
    let fr =
      Json.Obj
        [
          ("notify", Json.Str "degraded");
          ("reason", Json.Str (Resilient.error_to_string d.Resilient.reason));
          ("note", Json.Str d.Resilient.note);
        ]
    in
    List.iter
      (fun s ->
        enqueue t s fr;
        if Obs.metrics_on () then
          Obs.Counter.incr (Lazy.force c_notifications))
      (subscribed_sessions t)

(* --------------------------- dispatch ----------------------------- *)

exception Bad_request of string

let value_of_json = function
  | Json.Int i -> Value.int i
  | Json.Str s -> Value.str s
  | Json.Bool b -> Value.bool b
  | _ -> raise (Bad_request "bad_value")

let request_id req =
  match Json.mem "id" req with Some v -> v | None -> Json.Null

let handle_request t s req =
  let respond ~ok fields =
    enqueue t s
      (Json.Obj (("id", request_id req) :: ("ok", Json.Bool ok) :: fields))
  in
  let err ?(fields = []) code =
    respond ~ok:false (("error", Json.Str code) :: fields)
  in
  let degraded_fields = function
    | None -> []
    | Some (_ : Resilient.degradation) -> [ ("degraded", Json.Bool true) ]
  in
  let require f key =
    match f key req with Some v -> v | None -> raise (Bad_request ("missing_" ^ key))
  in
  match Json.str_mem "op" req with
  | None -> err "missing_op"
  | Some op -> (
    try
      match op with
      | "submit" -> (
        let src = require Json.str_mem "query" in
        match Entangled.Parser.parse_query src with
        | exception Entangled.Parser.Syntax_error (pos, msg) ->
          err "syntax"
            ~fields:
              [ ("detail", Json.Str (Printf.sprintf "%d: %s" pos msg)) ]
        | q ->
          if eng_pending_count t.binding.engine >= t.cfg.max_pending
          then begin
            (* Typed admission-control refusal instead of unbounded
               queueing: the client backs off, the pool stays bounded. *)
            if Obs.metrics_on () then
              Obs.Counter.incr (Lazy.force c_overloaded);
            err "overloaded"
              ~fields:
                [
                  ("pending", Json.Int (eng_pending_count t.binding.engine));
                  ("max_pending", Json.Int t.cfg.max_pending);
                ]
          end
          else begin
            Option.iter Resilient.start_solve t.binding.guard;
            let pool_id = eng_next_id t.binding.engine in
            let r = eng_submit t.binding.engine q in
            let degraded = eng_last_degradation t.binding.engine in
            (* Notifications are enqueued BEFORE the response, so a
               subscribed requester reads its own match/degradation
               push frames first and the echoed response last — a
               deterministic frame order scripted clients rely on. *)
            (match r with
            | Online.Coordinated c -> notify_matched t [ c ]
            | Online.Pending | Online.Rejected_unsafe _ -> ());
            notify_degraded t degraded;
            match r with
            | Online.Coordinated c ->
              respond ~ok:true
                (("result", Json.Str "coordinated")
                :: ("queries", queries_json c)
                :: degraded_fields degraded)
            | Online.Pending ->
              respond ~ok:true
                (("result", Json.Str "pending")
                :: ("pool_id", Json.Int pool_id)
                :: degraded_fields degraded)
            | Online.Rejected_unsafe ws ->
              respond ~ok:true
                (("result", Json.Str "rejected_unsafe")
                :: ("conflicts", Json.Int (List.length ws))
                :: degraded_fields degraded)
          end)
      | "retire" ->
        let pool_id = require Json.int_mem "pool_id" in
        if eng_withdraw t.binding.engine pool_id then
          respond ~ok:true [ ("result", Json.Str "withdrawn") ]
        else err "not_found" ~fields:[ ("pool_id", Json.Int pool_id) ]
      | "flush" ->
        Option.iter Resilient.start_solve t.binding.guard;
        let fired = eng_flush t.binding.engine in
        let degraded = eng_last_degradation t.binding.engine in
        notify_matched t fired;
        notify_degraded t degraded;
        respond ~ok:true
          (("result", Json.Str "flushed")
          :: ("fired", Json.Int (List.length fired))
          :: ("sets", Json.Arr (List.map queries_json fired))
          :: degraded_fields degraded)
      | "status" ->
        let wal =
          match t.binding.durable with
          | None -> Json.Null
          | Some d ->
            Json.Obj
              [
                ("dir", Json.Str (Durable.dir d));
                ("last_lsn", Json.Int (Int64.to_int (Durable.last_lsn d)));
              ]
        in
        respond ~ok:true
          [
            ("result", Json.Str "status");
            ("pending", Json.Int (eng_pending_count t.binding.engine));
            ("satisfied", Json.Int (eng_total_coordinated t.binding.engine));
            ("next_id", Json.Int (eng_next_id t.binding.engine));
            ("domains", Json.Int (eng_domains t.binding.engine));
            ("sessions", Json.Int (live_sessions t));
            ("served", Json.Int t.accepted);
            ("wal", wal);
          ]
      | "subscribe" ->
        s.subscribed <- true;
        respond ~ok:true [ ("result", Json.Str "subscribed") ]
      | "insert" -> (
        let rel = require Json.str_mem "rel" in
        let tuple =
          match Json.mem "tuple" req with
          | Some (Json.Arr items) -> List.map value_of_json items
          | _ -> raise (Bad_request "missing_tuple")
        in
        match Database.relation_opt t.binding.db rel with
        | None -> err "no_table" ~fields:[ ("rel", Json.Str rel) ]
        | Some _ ->
          Database.insert t.binding.db rel tuple;
          Option.iter
            (fun d -> Durable.journal_insert d rel tuple)
            t.binding.durable;
          respond ~ok:true [ ("result", Json.Str "inserted") ])
      | "create_table" ->
        let name = require Json.str_mem "name" in
        let attrs =
          match Json.mem "attrs" req with
          | Some (Json.Arr items) ->
            List.map
              (function
                | Json.Str a -> a
                | _ -> raise (Bad_request "bad_attrs"))
              items
          | _ -> raise (Bad_request "missing_attrs")
        in
        ignore (Database.create_table' t.binding.db name attrs);
        Option.iter
          (fun d -> Durable.journal_create_table d name attrs)
          t.binding.durable;
        respond ~ok:true [ ("result", Json.Str "table_created") ]
      | other -> err "bad_op" ~fields:[ ("op", Json.Str other) ]
    with Bad_request code -> err code)

let handle_frame t s payload =
  let t0 = Obs.now_ns () in
  (match Json.parse payload with
  | Error why ->
    enqueue t s
      (Json.Obj
         [
           ("id", Json.Null);
           ("ok", Json.Bool false);
           ("error", Json.Str "bad_json");
           ("detail", Json.Str why);
         ])
  | Ok req -> handle_request t s req);
  if Obs.metrics_on () then begin
    Obs.Counter.incr (Lazy.force c_requests);
    Obs.Histogram.observe (Lazy.force h_request_ns)
      (Int64.sub (Obs.now_ns ()) t0)
  end

let drain_frames t s =
  let continue = ref true in
  while !continue && not s.dead do
    let len = String.length s.inb in
    if len < 4 then continue := false
    else begin
      let n = Int32.to_int (String.get_int32_be s.inb 0) in
      if n < 0 || n > t.cfg.max_frame then begin
        (* Framing is no longer trustworthy past an insane length;
           answer once, then drop the session. *)
        enqueue t s
          (Json.Obj
             [
               ("id", Json.Null);
               ("ok", Json.Bool false);
               ("error", Json.Str "frame_too_large");
             ]);
        (try
           ignore
             (Unix.write_substring s.fd s.out 0 (String.length s.out))
         with Unix.Unix_error _ -> ());
        teardown t s ~abnormal:true ~reason:"oversized frame";
        continue := false
      end
      else if len < 4 + n then continue := false
      else begin
        let payload = String.sub s.inb 4 n in
        s.inb <- String.sub s.inb (4 + n) (len - 4 - n);
        handle_frame t s payload
      end
    end
  done

let read_buf = Bytes.create 8192

let read_session t s =
  match Unix.read s.fd read_buf 0 (Bytes.length read_buf) with
  | 0 ->
    (* EOF mid-frame, or with responses still undelivered, is an
       abnormal end; a bare EOF between frames is the clean goodbye. *)
    if s.inb <> "" || s.out <> "" then
      teardown t s ~abnormal:true ~reason:"eof mid-stream"
    else teardown t s ~abnormal:false ~reason:"eof"
  | n ->
    s.inb <- s.inb ^ Bytes.sub_string read_buf 0 n;
    drain_frames t s
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
    teardown t s ~abnormal:true ~reason:"connection reset"

let write_session t s =
  if s.out <> "" && not s.dead then
    match Unix.write_substring s.fd s.out 0 (String.length s.out) with
    | n -> s.out <- String.sub s.out n (String.length s.out - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      teardown t s ~abnormal:true ~reason:"broken pipe"

let rec accept_loop t =
  match t.listen_fd with
  | None -> ()
  | Some lfd -> (
    match Unix.accept lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.next_sid <- t.next_sid + 1;
      t.accepted <- t.accepted + 1;
      let s =
        {
          sid = t.next_sid;
          fd;
          inb = "";
          out = "";
          subscribed = false;
          dead = false;
        }
      in
      Hashtbl.replace t.sessions s.sid s;
      if Obs.metrics_on () then Obs.Counter.incr (Lazy.force c_sessions);
      Obs.event
        ~args:(fun () -> [ ("sid", Obs.Int s.sid) ])
        "server.session_open";
      if t.cfg.verbose then Printf.printf "session %d: connected\n%!" s.sid;
      if t.cfg.max_sessions > 0 && t.accepted >= t.cfg.max_sessions then
        close_listener t
      else accept_loop t
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ())

let sorted_sessions t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
  |> List.sort (fun a b -> compare a.sid b.sid)

let step ?(timeout = 0.05) t =
  if t.stopped then false
  else begin
    let sess = sorted_sessions t in
    let rds =
      (match t.listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.filter_map (fun s -> if s.dead then None else Some s.fd) sess
    in
    let wrs =
      List.filter_map
        (fun s -> if (not s.dead) && s.out <> "" then Some s.fd else None)
        sess
    in
    (match Unix.select rds wrs [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | rd, wr, _ ->
      (match t.listen_fd with
      | Some lfd when List.mem lfd rd -> accept_loop t
      | _ -> ());
      List.iter
        (fun s -> if (not s.dead) && List.mem s.fd wr then write_session t s)
        sess;
      List.iter
        (fun s -> if (not s.dead) && List.mem s.fd rd then read_session t s)
        sess;
      (* Push responses produced this round without waiting for the
         next select — interactive latency, and frames reach a client
         that disconnects right after its request. *)
      List.iter (fun s -> write_session t s) sess);
    sweep t;
    if
      t.cfg.max_sessions > 0 && t.listen_fd = None
      && Hashtbl.length t.sessions = 0
    then t.stopped <- true;
    not t.stopped
  end

let run t = while step t do () done

let stop t =
  if not t.stopped then begin
    List.iter
      (fun s -> teardown t s ~abnormal:false ~reason:"server stop")
      (sorted_sessions t);
    sweep t;
    close_listener t;
    t.stopped <- true
  end

(* ----------------------------- client ----------------------------- *)

module Client = struct
  type conn = { fd : Unix.file_descr; mutable inb : string }

  let connect ?(retries = 40) listen =
    let domain, addr = resolve_addr listen in
    let rec go n =
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0
        ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        go (n - 1)
    in
    { fd = go retries; inb = "" }

  let send conn json =
    let data = frame json in
    let len = String.length data in
    let rec w off =
      if off < len then
        match Unix.write_substring conn.fd data off (len - off) with
        | n -> w (off + n)
        | exception Unix.Unix_error (EINTR, _, _) -> w off
    in
    w 0

  let take_frame conn =
    let len = String.length conn.inb in
    if len < 4 then None
    else
      let n = Int32.to_int (String.get_int32_be conn.inb 0) in
      if len < 4 + n then None
      else begin
        let payload = String.sub conn.inb 4 n in
        conn.inb <- String.sub conn.inb (4 + n) (len - 4 - n);
        match Json.parse payload with Ok j -> Some j | Error _ -> None
      end

  let buf = Bytes.create 8192

  let try_recv conn =
    match take_frame conn with
    | Some j -> Some j
    | None -> (
      Unix.set_nonblock conn.fd;
      Fun.protect
        ~finally:(fun () ->
          try Unix.clear_nonblock conn.fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.read conn.fd buf 0 (Bytes.length buf) with
          | 0 -> None
          | n ->
            conn.inb <- conn.inb ^ Bytes.sub_string buf 0 n;
            take_frame conn
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            ->
            None))

  let recv ?(timeout = 5.0) conn =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      match take_frame conn with
      | Some j -> Some j
      | None ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then None
        else (
          match Unix.select [ conn.fd ] [] [] remaining with
          | [], _, _ -> None
          | _ -> (
            match Unix.read conn.fd buf 0 (Bytes.length buf) with
            | 0 -> None
            | n ->
              conn.inb <- conn.inb ^ Bytes.sub_string buf 0 n;
              go ()
            | exception Unix.Unix_error (EINTR, _, _) -> go ())
          | exception Unix.Unix_error (EINTR, _, _) -> go ())
    in
    go ()

  let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

  let abort conn =
    (* Zero linger turns close into an RST: the server sees
       ECONNRESET/EPIPE immediately — the mid-stream client death the
       teardown tests simulate. *)
    (try Unix.setsockopt_optint conn.fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ -> ());
    close conn
end
