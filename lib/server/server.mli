(** Coordination as a service: a long-lived socket server multiplexing
    many client sessions onto one {!Coordination.Online} engine, with
    the {!Durable} WAL underneath when durability is requested.

    The Enmeshed Queries system (Chen et al.) is the production shape
    this reproduces: clients submit coordination requests over a wire
    and receive asynchronous match notifications when a set fires.
    Multiplexing independent sessions onto one engine is justified by
    coordination avoidance — only graph-linked work must serialize, and
    the engine already serializes exactly that.

    {2 Wire protocol}

    Frames are 4-byte big-endian length prefixes followed by one JSON
    object ({!Json}).  Requests carry ["op"] and an optional ["id"]
    echoed verbatim in the response:

    - [{"id":1,"op":"submit","query":"q1 { ... }"}] — parse and submit
      one entangled query statement.  Responses: [result]
      ["coordinated"] (with the fired set), ["pending"] (with the
      assigned ["pool_id"]), or ["rejected_unsafe"].  When the pending
      pool is at [max_pending] the typed failure
      [{"ok":false,"error":"overloaded"}] is returned instead of
      queueing unboundedly.
    - [{"op":"retire","pool_id":7}] — withdraw a pending submission
      ({!Coordination.Online.withdraw}).
    - [{"op":"flush"}] — evaluate pending components.
    - [{"op":"status"}] — engine counters, live sessions, WAL position.
    - [{"op":"subscribe"}] — opt into asynchronous notification frames:
      [{"notify":"matched","queries":[...]}] after any set fires and
      [{"notify":"degraded","reason":...}] when an evaluation hit an
      armed {!Resilient} guard limit.
    - [{"op":"insert","rel":"F","tuple":[1,"Zurich"]}] and
      [{"op":"create_table","name":"F","attrs":["fid","dest"]}] — store
      mutations, journaled like repl [fact]/[table] statements.

    Malformed JSON, unknown ops and bad arguments get
    [{"ok":false,"error":...}] responses; framing stays intact, the
    session survives.  Oversized frames and clients that stop draining
    their socket are abnormal disconnects: the session is torn down
    (flight-recorder incident, resources released), others continue.

    {2 Threading model}

    The server is a single-threaded [select] loop.  {!step} runs one
    round (accept, read, dispatch, write) and is public so tests and
    benchmarks can drive a server and in-process clients
    deterministically from one thread; {!run} loops {!step}.  Sessions
    are processed in session-id order, so a given arrival order always
    produces the same engine-operation order — the property the
    differential suite leans on. *)

(** Minimal JSON: parser and printer for the frame payloads (the repo
    deliberately has no JSON dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val to_string : t -> string

  val mem : string -> t -> t option
  (** Field lookup on an [Obj]; [None] on anything else. *)

  val str_mem : string -> t -> string option
  val int_mem : string -> t -> int option
end

type listen =
  | Unix_socket of string  (** path; unlinked on {!stop} *)
  | Tcp of string * int    (** host, port; port [0] binds ephemeral *)

type config = {
  listen : listen;
  max_pending : int;
      (** admission control: submissions arriving with this many
          entries already pending are refused with an [overloaded]
          frame instead of growing the pool unboundedly *)
  max_sessions : int;
      (** stop after this many sessions have disconnected ([0] = serve
          forever) — scripted tests and cram sessions use this to
          terminate deterministically *)
  max_frame : int;  (** largest accepted frame payload, bytes *)
  max_buffered : int;
      (** per-session outbound backlog cap: a client that stops
          reading is disconnected, not buffered forever *)
  verbose : bool;  (** print session lifecycle lines to stdout *)
}

val default_config : listen -> config
(** [max_pending 1024], [max_sessions 0], [max_frame 1 MiB],
    [max_buffered 4 MiB], quiet. *)

(** The engine a server multiplexes onto: the sequential incremental
    engine, or the domain-sharded one ({!Coordination.Online_sharded})
    when [serve --domains N] asked for parallelism.  Both are
    observationally identical — the protocol layer dispatches blindly;
    [status] reports ["domains"] ([1] for [Sequential]). *)
type engine =
  | Sequential of Coordination.Online.t
  | Sharded of Coordination.Online_sharded.t

(** What the server serves: one engine, its database, optionally the
    WAL handle journaling it and a {!Resilient} guard armed on the
    database ({!Resilient.start_solve} is called per request). *)
type binding = {
  db : Relational.Database.t;
  engine : engine;
  durable : Durable.t option;
  guard : Resilient.t option;
}

val shard_durable :
  domains:int ->
  Durable.t ->
  Relational.Database.t ->
  Coordination.Online.t ->
  Coordination.Online_sharded.t
(** [shard_durable ~domains t db engine] re-shards a just-recovered (or
    just-created) durable engine across [domains] shards.  [engine]
    stays attached to [t] as the WAL's snapshot mirror; every record
    the sharded engine journals is applied to the mirror (via
    {!Coordination.Online.mirror_sink}) and then written to the WAL, so
    snapshots and recovery see exactly the sharded pool.  A later
    recovery can re-shard at {e any} domain count — the journal is
    byte-equivalent to a sequential engine's. *)

type t

val create : config -> binding -> t
(** Bind and listen.  Ignores [SIGPIPE] process-wide (a disconnecting
    client must surface as [EPIPE] on that session's writes, never as a
    process-killing signal).
    @raise Unix.Unix_error when the address cannot be bound. *)

val step : ?timeout:float -> t -> bool
(** One event-loop round, blocking in [select] at most [timeout]
    seconds (default 0.05).  Returns [false] once the server stopped —
    {!stop} was called or [max_sessions] sessions have come and gone
    (the listener closes as soon as that many sessions have been
    accepted). *)

val run : t -> unit
(** Loop {!step} until it returns [false]. *)

val stop : t -> unit
(** Close every session and the listener (unlinking a Unix-socket
    path).  Does NOT close the binding's [durable] handle — the caller
    owns it; tests simulate a crash by stopping the server and
    recovering the WAL directory without a clean {!Durable.close}. *)

val port : t -> int
(** The actually-bound TCP port (useful with [Tcp (_, 0)]).
    @raise Invalid_argument on a Unix-socket server. *)

val live_sessions : t -> int

val sessions_served : t -> int
(** Sessions accepted over the server's lifetime (live ones included). *)

(** A blocking client for the frame protocol — the CLI [client]
    subcommand, the cram scripts and the bench harness all speak
    through this. *)
module Client : sig
  type conn

  val connect : ?retries:int -> listen -> conn
  (** Retries [ECONNREFUSED]/[ENOENT] with a 50 ms pause, [retries]
      times (default 40 — two seconds for a server still starting). *)

  val send : conn -> Json.t -> unit
  val recv : ?timeout:float -> conn -> Json.t option
  (** Next frame, blocking up to [timeout] seconds (default 5).
      [None] on timeout or EOF. *)

  val try_recv : conn -> Json.t option
  (** Non-blocking: a frame if one is already buffered/readable.  Used
      by in-process tests that interleave {!step} calls with client
      reads on one thread. *)

  val close : conn -> unit

  val abort : conn -> unit
  (** Close abruptly with pending data unread and linger zeroed where
      possible — the mid-stream client death the SIGPIPE tests need. *)
end
