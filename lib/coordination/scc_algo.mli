(** The SCC Coordination Algorithm (Section 4).

    Works on any {e safe} set of entangled queries — uniqueness is not
    required.  The coordination graph is condensed into its strongly
    connected components; components are processed in reverse topological
    order.  Each component's candidate set is its SCC together with every
    query reachable from it (the paper's [R(q)]); the candidate is unified
    into a single combined query and sent to the database once.  Among
    the successful candidates, a selection criterion picks the answer —
    maximal size by default, as in the paper.

    Guarantee (as in the paper): if any coordinating set exists, a
    coordinating set is found, and it has maximum size among
    [{R(q) | q in Q}].  Finding the overall maximum coordinating set is
    NP-hard (Theorem 2). *)

open Relational
open Entangled

type error = Not_safe of (int * int) list

type candidate = {
  covered : int list;            (** query indexes, sorted *)
  assignment : Eval.valuation;
}

type selection =
  | Largest                      (** the paper's default: maximal size *)
  | First_found
      (** earliest successful component; stops issuing database probes as
          soon as one candidate grounds *)
  | Preferred of (Query.t array -> candidate -> int)
      (** custom score; largest score wins, ties broken by discovery
          order (the airline gold-status example of Section 4) *)

type outcome = {
  queries : Query.t array;
  graph : Coordination_graph.t;
  candidates : candidate list;   (** all successful components, discovery order *)
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
      (** [Some _] when an armed {!Resilient.t} guard cut the solve
          short: [candidates] (and [solution]) hold everything probed
          before the abort — a prefix of the fault-free run's discovery
          order — and the degradation lists the components that went
          unprobed.  [None]: the solve ran to completion. *)
}

(** Execution events, emitted in order on the {!Obs} stream as
    {!Scc_event} payloads — the raw material for {!Explain} traces.
    Serializing trace sinks render the same emissions as named events
    with query-name args. *)
type event =
  | Pruned of int list
      (** queries dropped by preprocessing (unsatisfiable postconditions) *)
  | Skipped of { component : int list }
      (** a successor component had already failed *)
  | Unify_failed of { component : int list; failure : Combine.failure }
  | Probed of {
      component : int list;
      members : int list;        (** the candidate set R(q) *)
      body : Relational.Cq.t;    (** the combined query sent to the database *)
      witness : Eval.valuation option;  (** [None]: unsatisfiable *)
    }

type Obs.payload += Scc_event of event

val solve :
  ?selection:selection ->
  ?preprocess:bool ->
  ?graph_only:bool ->
  ?minimize:bool ->
  Database.t ->
  Query.t list ->
  (outcome, error) result
(** [preprocess] (default [true]) iteratively drops queries with an
    unsatisfiable postcondition before the SCC phase, as in the
    implementation described in Section 6.1.  Disabling it is exposed for
    the ablation benchmark; results are identical because such queries
    can never unify, but more components fail late, costing unification
    work and database probes.

    [graph_only] (default [false]) stops after graph construction,
    preprocessing and SCC condensation, returning an outcome with no
    candidates — the quantity Figure 6 measures.

    [minimize] (default [false]) grounds each candidate through the core
    of its combined query (see {!Entangled.Ground.solve}); identical
    answers with fewer joins when unification makes atoms redundant. *)

(** {2 Component-level execution}

    The solver split open for {!Executor}: a database-free analysis
    phase shared by every shard, and a per-component probing step.  The
    sequential {!solve} is [analyze] followed by [probe_component] over
    components in ascending SCC id (reverse topological) order; a shard
    runs the same step over its own component list with a private
    {!ctx}, which is sound because condensation edges never cross
    weakly-connected components. *)

type analysis = {
  an_queries : Query.t array;  (** renamed-apart ({!Query.rename_set}) *)
  an_graph : Coordination_graph.t;
  an_alive : bool array;       (** [false] for preprocessing-pruned queries *)
  an_scc : Graphs.Scc.result;
  an_cond : Graphs.Digraph.t;  (** condensation; ids sinks-first *)
}

val analyze :
  ?preprocess:bool -> Query.t array -> (analysis, error) result
(** Graph construction, optional preprocessing, safety check and SCC
    condensation over already-renamed queries.  Emits the same
    [scc.graph]/[scc.preprocess]/[scc.condense] spans and [scc.pruned]
    event as {!solve}; touches no database. *)

type ctx
(** Mutable per-run probing state: failure and coverage maps keyed by
    SCC id, plus the database handle and the {!Stats.t} that
    [probe_component] charges unify/ground time and candidate counts
    to. *)

val make_ctx : ?minimize:bool -> stats:Stats.t -> Database.t -> ctx

val probe_component : ctx -> analysis -> int -> candidate option
(** [probe_component ctx a c] processes SCC [c]: skip if a successor
    failed, otherwise unify and ground the candidate set R(q), updating
    [ctx] and emitting the [scc.skipped]/[scc.unify_failed]/[scc.probed]
    events.  Must be called in ascending SCC id order relative to the
    other components handled through the same [ctx].  A guard abort
    ({!Resilient.Abort}) propagates to the caller. *)

val select : selection -> Query.t array -> candidate list -> candidate option
(** The selection criterion applied to candidates in discovery order:
    first for [First_found], otherwise the highest-scoring candidate
    with ties broken towards earliest discovery.  Exposed so the
    executor's deterministically merged candidate list goes through
    exactly the sequential tie-breaking. *)
