(** The SCC Coordination Algorithm (Section 4).

    Works on any {e safe} set of entangled queries — uniqueness is not
    required.  The coordination graph is condensed into its strongly
    connected components; components are processed in reverse topological
    order.  Each component's candidate set is its SCC together with every
    query reachable from it (the paper's [R(q)]); the candidate is unified
    into a single combined query and sent to the database once.  Among
    the successful candidates, a selection criterion picks the answer —
    maximal size by default, as in the paper.

    Guarantee (as in the paper): if any coordinating set exists, a
    coordinating set is found, and it has maximum size among
    [{R(q) | q in Q}].  Finding the overall maximum coordinating set is
    NP-hard (Theorem 2). *)

open Relational
open Entangled

type error = Not_safe of (int * int) list

type candidate = {
  covered : int list;            (** query indexes, sorted *)
  assignment : Eval.valuation;
}

type selection =
  | Largest                      (** the paper's default: maximal size *)
  | First_found
      (** earliest successful component; stops issuing database probes as
          soon as one candidate grounds *)
  | Preferred of (Query.t array -> candidate -> int)
      (** custom score; largest score wins, ties broken by discovery
          order (the airline gold-status example of Section 4) *)

type outcome = {
  queries : Query.t array;
  graph : Coordination_graph.t;
  candidates : candidate list;   (** all successful components, discovery order *)
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
      (** [Some _] when an armed {!Resilient.t} guard cut the solve
          short: [candidates] (and [solution]) hold everything probed
          before the abort — a prefix of the fault-free run's discovery
          order — and the degradation lists the components that went
          unprobed.  [None]: the solve ran to completion. *)
}

(** Execution events, emitted in order on the {!Obs} stream as
    {!Scc_event} payloads — the raw material for {!Explain} traces.
    Serializing trace sinks render the same emissions as named events
    with query-name args. *)
type event =
  | Pruned of int list
      (** queries dropped by preprocessing (unsatisfiable postconditions) *)
  | Skipped of { component : int list }
      (** a successor component had already failed *)
  | Unify_failed of { component : int list; failure : Combine.failure }
  | Probed of {
      component : int list;
      members : int list;        (** the candidate set R(q) *)
      body : Relational.Cq.t;    (** the combined query sent to the database *)
      witness : Eval.valuation option;  (** [None]: unsatisfiable *)
    }

type Obs.payload += Scc_event of event

val solve :
  ?selection:selection ->
  ?preprocess:bool ->
  ?graph_only:bool ->
  ?minimize:bool ->
  Database.t ->
  Query.t list ->
  (outcome, error) result
(** [preprocess] (default [true]) iteratively drops queries with an
    unsatisfiable postcondition before the SCC phase, as in the
    implementation described in Section 6.1.  Disabling it is exposed for
    the ablation benchmark; results are identical because such queries
    can never unify, but more components fail late, costing unification
    work and database probes.

    [graph_only] (default [false]) stops after graph construction,
    preprocessing and SCC condensation, returning an outcome with no
    candidates — the quantity Figure 6 measures.

    [minimize] (default [false]) grounds each candidate through the core
    of its combined query (see {!Entangled.Ground.solve}); identical
    answers with fewer joins when unification makes atoms redundant. *)
