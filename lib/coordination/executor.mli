(** Component-sharded multicore batch executor.

    The paper observes (§6.2) that its algorithms "naturally break into
    parallel processes": the coordination graph decomposes every batch
    into weakly-connected components that share no queries, no
    condensation edges and (after {!Query.rename_set}) no variables.
    This module partitions a batch into those WCC shards and solves them
    concurrently on a pool of OCaml 5 domains with read-only access to
    the shared store, then merges per-shard results {e deterministically}:

    - shards are formed by union-find over the coordination structure
      and ordered by their first component/query id;
    - the pool schedules largest-shard-first via per-worker
      work-stealing deques (owner pops the front, thieves the back);
    - each shard solves against a {!Relational.Database.worker_view} —
      private counters, shared store, shared compile-once plan cache
      behind a lock — after {!Relational.Database.warm_indexes} makes
      all index reads pure;
    - candidates and captured {!Obs} items are merged in ascending
      component id (the sequential discovery order), per-shard
      {!Stats.t} and view counters are summed, so output, stats and
      trace events are byte-identical to the sequential run (timestamps
      aside) regardless of domain count or steal order;
    - an armed {!Resilient.t} guard is {!Resilient.split} across shards
      and folded back with {!Resilient.absorb}: a shard abort degrades
      {e only that shard}, everything else completes.

    Caveats, all deliberate: [First_found] selection still returns the
    sequential solution (the earliest successful component over all
    shards) but sibling shards may probe past their own first success,
    so probe counts can exceed the sequential run's; guard-armed runs
    spend their budget per shard rather than in global component order
    (see {!Resilient.split}); the shared plan cache means {e which}
    probe takes each plan-shape's compile miss follows shard execution
    order — the [plan_hit] span argument can flip between runs even
    though total hits and misses are deterministic; and worker domains
    keep metrics off — the {!Obs} registries are process-wide — so
    [--metrics] aggregates only orchestrator-side work under
    [--parallel]. *)

open Relational
open Entangled

exception Worker_crashed of string
(** A worker domain raised something other than {!Resilient.Abort}
    (an engine bug, not a fault).  Every sibling domain was still
    joined before this propagates. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — what
    [?domains:None] resolves to. *)

(** The underlying domain pool, exposed for the online flush path and
    for tests. *)
module Pool : sig
  val map :
    domains:int -> weights:int array -> (int -> 'a) -> ('a, exn) result array
  (** [map ~domains ~weights f] runs [f i] for every task index
      [i < Array.length weights] on [min domains (length weights)]
      domains (the caller's domain included) and returns the results
      {e in task order}, each [Error] carrying the exception that task
      raised.  Tasks are dealt round-robin in descending-weight order
      onto per-worker deques; idle workers steal from the back of
      sibling deques.  All spawned domains are joined before returning,
      whatever the tasks do. *)
end

val raise_first_crash : ('a, exn) result array -> unit
(** Surface the first trapped worker exception from a {!Pool.map}
    result array as {!Worker_crashed}, after recording a
    flight-recorder incident so every domain's final moments are
    dumped.  Call it only after the pool has returned — i.e. after
    every sibling domain was joined — so one shard's crash never
    leaves another detached.  No-op when every slot is [Ok]. *)

val solve_scc :
  ?selection:Scc_algo.selection ->
  ?preprocess:bool ->
  ?minimize:bool ->
  ?domains:int ->
  Database.t ->
  Query.t list ->
  (Scc_algo.outcome, Scc_algo.error) result
(** Parallel {!Scc_algo.solve}: analysis (graph, preprocessing, safety,
    condensation) runs once on the calling domain, then each WCC of the
    condensation becomes a shard whose components are probed in
    ascending SCC id by {!Scc_algo.probe_component}.  Same outcome,
    stats counters and trace events as the sequential solver for
    [Largest]/[Preferred] selections on unguarded runs; see the module
    header for the [First_found] and guard caveats. *)

val solve_gupta :
  ?domains:int ->
  Database.t ->
  Query.t list ->
  (Gupta.outcome, Gupta.error) result
(** Parallel {!Gupta.solve}: the combined query of a safe-and-unique
    set is the disjoint union of its per-WCC combined queries (renamed
    queries share no variables), so each WCC unifies and grounds
    independently and the witnesses union into the sequential
    assignment.  Stats differ in shape from the sequential baseline —
    one probe {e per shard} rather than one for the whole set, with
    [candidates] reporting the shard count — but are identical across
    domain counts. *)

val solve_consistent :
  ?domains:int ->
  Database.t ->
  Consistent_query.config ->
  Consistent_query.t list ->
  (Consistent.outcome, Consistent.error) result
(** Parallel consistent coordination ({!Consistent} staged interface):
    [prepare] and [finalize] run on the calling domain; the pure
    per-value survivor computation fans out one task per v in V(Q).
    {!Parallel.solve} delegates here.  Equivalent to
    [Consistent.solve ~selection:`Largest]. *)
