open Relational
open Entangled

type error =
  | Too_many_posts of int
  | Not_single_connected of int * int

let pp_error queries ppf = function
  | Too_many_posts q ->
    Format.fprintf ppf "query %s has more than one postcondition"
      queries.(q).Query.name
  | Not_single_connected (a, b) ->
    Format.fprintf ppf
      "queries %s and %s are connected by more than one simple path"
      queries.(a).Query.name queries.(b).Query.name

let check (graph : Coordination_graph.t) =
  let n = Array.length graph.queries in
  let too_many =
    Array.to_list graph.queries
    |> List.mapi (fun i q -> (i, List.length q.Query.post))
    |> List.find_opt (fun (_, k) -> k > 1)
  in
  match too_many with
  | Some (i, _) -> Error (Too_many_posts i)
  | None -> (
    (* Cycles (including self-loops) give two queries on a common cycle,
       hence two simple paths between them in at least one direction. *)
    let self_loop =
      List.find_opt (fun v -> Graphs.Digraph.mem_edge graph.graph v v)
        (Graphs.Digraph.nodes graph.graph)
    in
    match self_loop with
    | Some v -> Error (Not_single_connected (v, v))
    | None -> (
      let scc = Graphs.Scc.compute graph.graph in
      let big =
        Array.to_list scc.members
        |> List.find_opt (fun ms -> List.length ms >= 2)
      in
      match big with
      | Some (a :: b :: _) -> Error (Not_single_connected (a, b))
      | Some _ -> assert false
      | None -> (
        let witness = ref None in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if u <> v && !witness = None then
              if Graphs.Reach.simple_path_count graph.graph u v ~max:2 >= 2 then
                witness := Some (u, v)
          done
        done;
        match !witness with
        | Some (u, v) -> Error (Not_single_connected (u, v))
        | None -> Ok ())))

type outcome = {
  queries : Query.t array;
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
}

let solve db input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "single_connected.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let queries = Query.rename_set input in
  let finish result =
    stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    result
  in
  let graph, graph_ns =
    Stats.timed (fun () ->
        Obs.with_span "single_connected.graph" (fun () ->
            Coordination_graph.build queries))
  in
  stats.graph_ns <- graph_ns;
  match Obs.with_span "single_connected.check" (fun () -> check graph) with
  | Error e -> finish (Error e)
  | Ok () ->
    let n = Array.length queries in
    (* Per-query body satisfiability, memoised: one probe each, used to
       prune chains early (the paper's preprocessing). *)
    let body_ok = Array.make n None in
    let body_satisfiable q =
      match body_ok.(q) with
      | Some b -> b
      | None ->
        let b = Eval.satisfiable db queries.(q).Query.body in
        body_ok.(q) <- Some b;
        b
    in
    (* DFS from a root: follow the (single) postcondition of each query,
       trying candidate heads in edge order; a complete chain costs one
       combined probe. *)
    let best = ref None in
    let consider members assignment =
      let size = List.length members in
      match !best with
      | Some (s, _, _) when s >= size -> ()
      | _ -> best := Some (size, members, assignment)
    in
    let exception Found of int list * Eval.valuation in
    let rec descend path subst q =
      (* [path] is the chain so far, most recent first; [q] its tip. *)
      if body_satisfiable q then
        match queries.(q).Query.post with
        | [] -> (
          let members = List.sort_uniq Int.compare (q :: path) in
          stats.candidates <- stats.candidates + 1;
          match Ground.solve db queries ~members subst with
          | Some assignment -> raise (Found (members, assignment))
          | None -> ())
        | p :: _ ->
          let targets = Coordination_graph.post_targets graph ~src:q ~post_index:0 in
          List.iter
            (fun (d, hi) ->
              let h = List.nth queries.(d).Query.head hi in
              match Subst.unify_atoms subst p h with
              | None -> ()
              | Some subst' -> descend (q :: path) subst' d)
            targets
    in
    let degraded = ref None in
    let exception Stop_all of Resilient.error * int in
    Obs.with_span
      ~args:(fun () -> [ ("candidates", Obs.Int stats.candidates) ])
      "single_connected.chains"
      (fun () ->
        try
          for root = 0 to n - 1 do
            (* A covered root's chain is a subchain of a found solution;
               skip. *)
            let covered =
              match !best with
              | Some (_, ms, _) -> List.mem root ms
              | None -> false
            in
            if not covered then
              try descend [] Subst.empty root with
              | Found (members, assignment) -> consider members assignment
              | Resilient.Abort reason -> raise (Stop_all (reason, root))
          done
        with Stop_all (reason, root) ->
          (* Keep the best closure found from earlier roots; the roots
             from the aborted one on were never (fully) descended. *)
          let unprobed = List.init (n - root) (fun i -> [ root + i ]) in
          degraded :=
            Some
              (Resilient.degraded ~unprobed
                 ~note:
                   (Printf.sprintf "%d of %d roots unprobed" (n - root) n)
                 reason));
    let solution =
      Option.map
        (fun (_, members, assignment) -> Solution.make ~members ~assignment)
        !best
    in
    finish (Ok { queries; solution; stats; degraded = !degraded })
