(** Single-connected query sets (Definition 6, Theorem 3).

    A set is single-connected when every query has at most one
    postcondition atom and the coordination graph has at most one simple
    path between any two queries.  Such sets may be unsafe (a
    postcondition may have several candidate heads), yet a coordinating
    set can be found with a linear number of database queries: because
    branches never reconverge, per-query results compose without
    interference, so a memoised top-down search never backtracks across
    queries.

    The paper states Theorem 3 without an algorithm; this implementation
    covers the acyclic case (the coordination graph of the set must be a
    DAG — cycles would make two queries lie on a common cycle, giving two
    simple paths between them unless the cycle is the whole component).
    Cyclic inputs are rejected with [Not_single_connected]. *)

open Relational
open Entangled

type error =
  | Too_many_posts of int     (** this query has 2+ postcondition atoms *)
  | Not_single_connected of int * int
      (** two distinct simple paths exist between these queries, or they
          lie on a directed cycle *)

val pp_error : Query.t array -> Format.formatter -> error -> unit

val check : Coordination_graph.t -> (unit, error) result
(** Definition 6, checked literally (exponential path counting bounded at
    two paths, plus a DAG requirement). *)

type outcome = {
  queries : Query.t array;
  solution : Solution.t option;  (** largest closure found *)
  stats : Stats.t;
  degraded : Resilient.degradation option;
      (** [Some _] when an armed guard aborted the root loop: [solution]
          is the best closure among the roots probed before the abort,
          and the degradation lists the roots never descended from *)
}

val solve : Database.t -> Query.t list -> (outcome, error) result
(** Per query [q], computes the best coordinating set containing [q] and
    everything [q]'s chain pulls in; returns the largest over all [q].
    Issues O(|Q| + edges) database probes. *)
