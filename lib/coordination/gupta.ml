open Relational
open Entangled

type error =
  | Not_safe of (int * int) list
  | Not_unique
  | Unification_failed of Combine.failure

let pp_error queries ppf = function
  | Not_safe ws ->
    Format.fprintf ppf "query set is not safe (%d unsafe postconditions)"
      (List.length ws)
  | Not_unique -> Format.fprintf ppf "query set is not unique"
  | Unification_failed f ->
    Format.fprintf ppf "unification failed: %a" (Combine.pp_failure queries) f

type outcome = {
  queries : Query.t array;
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
}

let solve db input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "gupta.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let queries = Query.rename_set input in
  let counters0 = Database.snapshot_counters db in
  let finish result =
    stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    result
  in
  if Array.length queries = 0 then
    finish (Ok { queries; solution = None; stats; degraded = None })
  else
  let graph, graph_ns =
    Stats.timed (fun () ->
        Obs.with_span "gupta.graph" (fun () -> Coordination_graph.build queries))
  in
  stats.graph_ns <- graph_ns;
  match Safety.classify graph with
  | `Unsafe -> finish (Error (Not_safe (Safety.unsafe_posts graph)))
  | `Safe -> finish (Error Not_unique)
  | `Safe_unique -> (
    let members = List.init (Array.length queries) Fun.id in
    let unified, unify_ns =
      Stats.timed (fun () ->
          Obs.with_span "gupta.unify" (fun () -> Combine.unify_set graph ~members))
    in
    stats.unify_ns <- unify_ns;
    match unified with
    | Error f -> finish (Error (Unification_failed f))
    | Ok subst -> (
      (* The single combined probe is the only database work: an abort
         here degrades to "nothing probed" rather than raising. *)
      let witness, ground_ns =
        Stats.timed (fun () ->
            Obs.with_span "gupta.ground" (fun () ->
                match Ground.solve db queries ~members subst with
                | w -> Ok w
                | exception Resilient.Abort reason -> Error reason))
      in
      stats.ground_ns <- ground_ns;
      stats.candidates <- 1;
      match witness with
      | Error reason ->
        finish
          (Ok
             {
               queries;
               solution = None;
               stats;
               degraded =
                 Some
                   (Resilient.degraded ~unprobed:[ members ]
                      ~note:"combined query unprobed" reason);
             })
      | Ok None ->
        finish (Ok { queries; solution = None; stats; degraded = None })
      | Ok (Some assignment) ->
        finish
          (Ok
             {
               queries;
               solution = Some (Solution.make ~members ~assignment);
               stats;
               degraded = None;
             })))
