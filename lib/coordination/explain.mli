(** Human-readable execution traces of the SCC Coordination Algorithm.

    Built from {!Scc_algo.solve}'s observer events; shows, per
    condensation component, the candidate set [R(q)], the combined
    conjunctive query rendered as the SQL the paper's implementation
    would send to MySQL, and the outcome.  Exposed through
    [entangle solve --explain]. *)

open Relational
open Entangled

type report = {
  outcome : Scc_algo.outcome;
  events : Scc_algo.event list;  (** in execution order *)
}

val trace :
  ?selection:Scc_algo.selection ->
  ?preprocess:bool ->
  ?minimize:bool ->
  Database.t ->
  Query.t list ->
  (report, Scc_algo.error) result

val pp : Database.t -> Format.formatter -> report -> unit
(** Renders the pruning step, each component's fate (skipped, unifier
    clash, SQL probe + satisfiable-or-not), and the chosen solution. *)

val pp_analyze : Format.formatter -> Database.t -> unit
(** EXPLAIN ANALYZE: every cached plan ({!Database.cached_plans}, in
    deterministic key order) rendered with {!Plan.pp_analyze} —
    join order, access paths, estimated vs observed cardinalities,
    scan/emit counts, selectivity, and (when the run happened under
    {!with_analyze}) per-step times.  Exposed through
    [entangle solve --explain-analyze]. *)

val with_analyze : (unit -> 'a) -> 'a
(** Run [f] with {!Relational.Plan.set_analyze} armed, disarming on the
    way out (exceptions included). *)
