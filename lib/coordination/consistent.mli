(** The Consistent Coordination Algorithm (Section 5).

    Input: one A-consistent query per user (see {!Consistent_query}).
    The set may be unsafe and non-unique.  The algorithm:

    + computes, per query [q], the option list [V(q)] of
      coordination-attribute values whose substitution makes [q]'s own
      tuple requirement satisfiable (one database probe per query);
    + fetches each user's partner pool per binary relation the query
      mentions (one probe per query-relation pair);
    + builds the pruned coordination graph — vertices are queries with a
      non-empty [V(q)], and an edge [(qi, qj)] exists when [qi] names
      [qj]'s user or [qj]'s user is in one of [qi]'s partner pools;
    + for every value [v] in [V(Q)], restricts to [Gv] and iteratively
      removes queries whose coordination requirements fail (a named
      partner gone, or fewer pool partners left than required);
    + returns the surviving set of the best [v] (largest by default) and
      grounds each member to a concrete key (one probe per member).

    Guarantee (Proposition 1): among sets in which everybody agrees on
    the coordination attributes, a maximum one is found if any
    coordinating set exists at all.

    Beyond the paper's core fragment, partners may be drawn from several
    binary relations ([Any_from]) and a query may require [k] distinct
    friends ([K_friends]) — the Section 5 generalizations. *)

open Relational

type error =
  | Duplicate_user of Value.t
  | Missing_relation of string
  | Bad_k of Value.t * int
      (** a [K_friends k] partner with [k < 1] *)
  | Worker_crashed of string
      (** a {!Parallel.solve} worker domain raised; the message is the
          printed exception.  All sibling domains were still joined. *)

val pp_error : Format.formatter -> error -> unit

type outcome = {
  config : Consistent_query.config;
  queries : Consistent_query.t array;
  options : Tuple.Set.t array;  (** V(q) per query *)
  candidates : (Tuple.t * int) list;
      (** per v in V(Q): surviving-set size (0 when it cleans to empty) *)
  chosen_value : Tuple.t option;  (** the winning v *)
  members : int list;             (** query indexes of the coordinating set *)
  choices : (Value.t * Value.t) list;  (** user -> chosen S key *)
  partner_choices : (int * Value.t list list) list;
      (** per member: for each partner slot, the user(s) chosen for it *)
  stats : Stats.t;
  degraded : Resilient.degradation option;
      (** [Some _] when an armed guard aborted the solve — during the
          option-list/pool probes (everything empty) or during final
          grounding ([members] survives, [choices] is empty) *)
}

val solve :
  ?selection:[ `Largest | `First ] ->
  Database.t ->
  Consistent_query.config ->
  Consistent_query.t list ->
  (outcome, error) result

(** {2 Staged interface}

    The value loop is embarrassingly parallel (each [v] is independent —
    the parallelisation the paper leaves as future work, implemented in
    {!Parallel}).  [prepare] performs all database work up front;
    {!survivors} is pure and safe to call from multiple domains. *)

type prepared

val prepare :
  Database.t ->
  Consistent_query.config ->
  Consistent_query.t list ->
  (prepared, error) result
(** Steps 1–3: option lists, partner pools, pruned graph.  Issues all
    pre-loop database probes. *)

val values : prepared -> Tuple.t list
(** V(Q), in deterministic (tuple) order. *)

val survivors : prepared -> Tuple.t -> int list * int
(** [survivors p v] is the cleaned member set of [Gv] (sorted query
    indexes) and the number of cleaning rounds used.  Pure. *)

val finalize :
  Database.t ->
  prepared ->
  candidates:(Tuple.t * int) list ->
  best:(Tuple.t * int list) option ->
  Stats.t ->
  outcome
(** Step 5: grounds the winning set (one probe per member) and packages
    the outcome.  [candidates] is recorded verbatim.  A guard abort
    mid-grounding is caught and recorded as the outcome's
    [degraded]. *)

val degraded_outcome :
  Consistent_query.config ->
  Consistent_query.t list ->
  Stats.t ->
  Resilient.error ->
  outcome
(** The empty outcome a solve degrades to when {!prepare} is aborted by
    an armed guard (shared with {!Parallel.solve}). *)

val to_solution :
  Database.t ->
  outcome ->
  (Entangled.Query.t array * Entangled.Solution.t) option
(** Re-expresses a successful outcome in the general formalism: compiles
    the typed queries with {!Consistent_query.compile_set} and builds a
    full Definition-1 assignment (own tuples, partner tuples, friend
    variables).  [None] when the outcome found no coordinating set, or
    when some query uses [K_friends] (not expressible as an entangled
    query).  Used to cross-validate against {!Entangled.Solution.validate}. *)
