(** The restricted query form of Section 5.

    The database holds a "thing" relation [S] whose first column is a
    unique key, the remaining [d] columns are attributes, and a binary
    friendship relation [F].  A user asks for one [S]-tuple for herself
    and one per coordination partner; partners are either named users or
    "any of my friends" (the paper's friend variable [f1]).  Coordination
    attributes [A] are those on which the user and all partners must
    agree (Definitions 7–9). *)

open Relational
open Entangled

type config = {
  s_schema : Schema.t;    (** key first, then [d] attributes *)
  friends : string;       (** binary friendship relation name *)
  answer : string;        (** answer relation symbol, e.g. ["R"] *)
  coord_attrs : int list; (** 0-based indices into the non-key attributes *)
}

val make_config :
  s_schema:Schema.t -> friends:string -> answer:string -> coord_attrs:int list
  -> config
(** @raise Invalid_argument when [S] has arity < 2 or an index is out of
    range or duplicated. *)

val attr_count : config -> int
(** [d], the number of non-key attributes of [S]. *)

type attr_spec =
  | Exact of Value.t  (** the user requires this constant *)
  | Any               (** the paper's "don't care" *)

type partner_spec =
  | Same             (** shares the user's term for this attribute *)
  | Free             (** a fresh variable, distinct from everything *)
  | Fixed of Value.t (** the user constrains the partner's attribute *)

type partner =
  | Named of Value.t  (** a specific user *)
  | Any_friend        (** any user related to me in the config's [F] *)
  | Any_from of string
      (** any user related to me in this other binary relation — the
          "more than one binary relation" generalization of Section 5 *)
  | K_friends of int
      (** at least [k] distinct friends must coordinate — the Section 5
          extension the paper notes is {e not expressible} in entangled
          query syntax at all; consequently {!to_entangled} rejects it *)

type t = {
  user : Value.t;
  own : attr_spec array;                     (** length [d] *)
  partners : (partner * partner_spec array) list;
}

val make :
  config -> user:Value.t -> own:attr_spec list -> partners:partner list -> t
(** Builds an A-consistent query: every partner gets [Same] on the
    coordination attributes and [Free] elsewhere.
    @raise Invalid_argument when [own] has the wrong length. *)

val make_raw :
  config ->
  user:Value.t ->
  own:attr_spec list ->
  partners:(partner * partner_spec list) list ->
  t
(** Fully explicit constructor — may produce non-consistent queries; used
    by tests of Definitions 7–9 and by the Appendix B reduction. *)

(** {2 Definitions 7–9} *)

val is_coordinating : config -> attrs:int list -> t -> bool
(** Definition 7 restricted to the given attributes: user and every
    partner share the same constant or the same variable there. *)

val is_non_coordinating : config -> attrs:int list -> t -> bool
(** Definition 8: on the given attributes every partner entry is a fresh
    distinct variable. *)

val is_consistent : config -> t -> bool
(** Definition 9: [coord_attrs]-coordinating and non-coordinating on the
    complement. *)

(** {2 Compilation to the general formalism} *)

val expressible : t -> bool
(** Whether the query stays inside the entangled-query formalism —
    i.e. uses no [K_friends] partner. *)

val to_entangled : config -> t -> Query.t
(** The general entangled query of Section 5:
    [{R(y1,p1), ..., R(yk,pk)} R(x, User) :- S(x, ...), F(User, f), S(y1, ...), ...].
    @raise Invalid_argument on a [K_friends] partner (see {!expressible}). *)

val compile_set : config -> t list -> Query.t array
(** [to_entangled] on each query, renamed apart with {!Query.rename_set}. *)

val of_entangled :
  Database.t -> Query.t list -> (config * t list, string) result
(** Inverse of {!to_entangled}, up to variable naming: recognizes a
    parsed (un-renamed) program in the Section-5 shape — one head atom
    [ans(x, User)], one body atom keyed by [x] over a single thing
    relation [S], per postcondition one [S] atom keyed by its partner
    variable and (for friend partners) one binary relationship atom
    [rel(User, f)] — and rebuilds the typed queries plus a shared
    {!config}.  Coordination attributes are inferred as the attributes
    on which {e every} partner of {e every} query agrees with its user;
    each query must then be A-consistent for that common set.  The
    thing relation's schema is taken from [db].  [Error] carries a
    human-readable reason naming the offending query. *)

val pp : config -> Format.formatter -> t -> unit
