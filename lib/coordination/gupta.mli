(** The baseline evaluation algorithm of Gupta et al. (SIGMOD 2011), as
    summarised in Section 2.3 of the paper: applicable only to safe and
    unique query sets, it unifies all queries into one combined query and
    issues it to the database once. *)

open Relational
open Entangled

type error =
  | Not_safe of (int * int) list
      (** witnesses: postconditions with several candidate heads *)
  | Not_unique
  | Unification_failed of Combine.failure

val pp_error : Query.t array -> Format.formatter -> error -> unit

type outcome = {
  queries : Query.t array;  (** renamed-apart input queries *)
  solution : Solution.t option;
      (** the full set with a witness assignment, or [None] when the
          combined query is unsatisfiable *)
  stats : Stats.t;
  degraded : Resilient.degradation option;
      (** [Some _] when an armed guard aborted the single combined
          probe: the answer is unknown, not "no coordinating set" *)
}

val solve : Database.t -> Query.t list -> (outcome, error) result
(** All-or-nothing semantics: under uniqueness the only possible
    coordinating set is the full set. *)
