open Relational
open Entangled

(* A bucket key mirrors Coordination_graph.Atom_index's partition of
   atoms: relation symbol × first-argument constant, with [None] for
   var-first (wildcard) atoms.  Two atoms can only be compatible when
   they share a relation and their first arguments unify, so every
   coordination edge connects entries that share a bucket key — or a
   const-first bucket with the relation's wildcard bucket. *)
type bucket_key = string * Value.t option

(* A bucket group: a union-find class of bucket keys that have co-
   occurred in one entry (or been wildcard-linked).  Every real
   component of the coordination graph lies inside one group, so
   owning groups — not components — is enough to route arrivals; the
   over-approximation only coarsens placement, never correctness.
   [g_members] is pruned lazily against [entry_shard]. *)
type group = {
  mutable g_keys : bucket_key list;
  mutable g_members : int list;
  mutable g_live : int;
  mutable g_shard : int;  (* owning shard, or -1 while unplaced *)
}

type t = {
  db : Database.t;
  domains : int;
  consume : bool;
  shards : Online.t array;
  views : Database.t array;
  (* routing state *)
  bucket_ids : (bucket_key, int) Hashtbl.t;
  bucket_uf : Graphs.Union_find.t;
  groups : (int, group) Hashtbl.t;  (* uf root -> group *)
  rel_buckets : (string, int list ref) Hashtbl.t;
  rel_wildcard : (string, unit) Hashtbl.t;
  entry_shard : (int, int) Hashtbl.t;  (* live id -> shard *)
  entry_bucket : (int, int) Hashtbl.t;  (* live id -> a bucket of its group *)
  shard_live : int array;  (* live entries per shard, current mid-route *)
  mutable next_bucket : int;
  mutable next_id : int;
  mutable base_satisfied : int;  (* satisfied before this engine took over *)
  mutable migrations : int;
  mutable last_degradation : Resilient.degradation option;
  mutable last_conflict : Online.inventory_conflict option;
  mutable journal : Online.Journal.sink option;
}

let create ?(selection = Scc_algo.Largest) ?(eager = true) ?(consume = false)
    ?(domains = Executor.default_domains ()) db =
  if domains < 1 then
    invalid_arg
      (Printf.sprintf "Online_sharded.create: domains must be positive (%d)"
         domains);
  let views = Array.init domains (fun _ -> Database.worker_view db) in
  let shards =
    Array.map
      (fun v -> Online.create ~selection ~eager ~consume ~mode:Online.Incremental v)
      views
  in
  {
    db;
    domains;
    consume;
    shards;
    views;
    bucket_ids = Hashtbl.create 256;
    bucket_uf = Graphs.Union_find.create ();
    groups = Hashtbl.create 256;
    rel_buckets = Hashtbl.create 16;
    rel_wildcard = Hashtbl.create 4;
    entry_shard = Hashtbl.create 256;
    entry_bucket = Hashtbl.create 256;
    shard_live = Array.make domains 0;
    next_bucket = 0;
    next_id = 0;
    base_satisfied = 0;
    migrations = 0;
    last_degradation = None;
    last_conflict = None;
    journal = None;
  }

let domains t = t.domains
let consume t = t.consume
let migrations t = t.migrations
let set_journal t sink = t.journal <- sink

let emit t record =
  match t.journal with None -> () | Some sink -> sink record

let shard_sizes t = Array.map Online.pending_count t.shards

(* ------------------------------- routing ------------------------------- *)

let atom_key (a : Cq.atom) : bucket_key =
  if Array.length a.args = 0 then (a.rel, None)
  else
    match a.args.(0) with
    | Term.Const v -> (a.rel, Some v)
    | Term.Var _ -> (a.rel, None)

let find_root t b = Graphs.Union_find.find t.bucket_uf b
let group_of t b = Hashtbl.find t.groups (find_root t b)

let rel_bucket_list t rel =
  match Hashtbl.find_opt t.rel_buckets rel with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.rel_buckets rel l;
    l

(* Look up or create the bucket for [key].  Creation registers a fresh
   singleton group; any wildcard co-location this bucket implies is
   returned as extra bucket ids for the caller to union (unions are
   deferred to [route] so a cross-shard collision migrates before the
   groups fuse). *)
let bucket_id t key =
  match Hashtbl.find_opt t.bucket_ids key with
  | Some b -> (b, [])
  | None ->
    let b = t.next_bucket in
    t.next_bucket <- b + 1;
    Hashtbl.replace t.bucket_ids key b;
    Graphs.Union_find.ensure t.bucket_uf b;
    Hashtbl.replace t.groups b
      { g_keys = [ key ]; g_members = []; g_live = 0; g_shard = -1 };
    let rel = fst key in
    let all = rel_bucket_list t rel in
    let linked =
      match snd key with
      | Some _ ->
        if Hashtbl.mem t.rel_wildcard rel then
          [ Hashtbl.find t.bucket_ids (rel, None) ]
        else []
      | None ->
        (* First var-first atom of [rel]: it can partner with any
           const-first atom of the relation, so its bucket must co-
           locate with every live bucket of [rel] — current and (via
           [rel_wildcard]) future.  Prune retired buckets while
           walking. *)
        Hashtbl.replace t.rel_wildcard rel ();
        let live =
          List.filter (fun b' -> Hashtbl.mem t.groups (find_root t b')) !all
        in
        all := live;
        live
    in
    all := b :: !all;
    (b, linked)

(* Merge the group records when two bucket roots fuse.  The caller has
   already resolved any shard conflict, so inheriting either side's
   [g_shard] (they are equal, or one is -1) is sound. *)
let union_buckets t a b =
  let ra = find_root t a and rb = find_root t b in
  if ra <> rb then begin
    let ga = Hashtbl.find t.groups ra and gb = Hashtbl.find t.groups rb in
    let r = Graphs.Union_find.union t.bucket_uf a b in
    Hashtbl.remove t.groups ra;
    Hashtbl.remove t.groups rb;
    Hashtbl.replace t.groups r
      {
        g_keys = List.rev_append ga.g_keys gb.g_keys;
        g_members = List.rev_append ga.g_members gb.g_members;
        g_live = ga.g_live + gb.g_live;
        g_shard = (if ga.g_shard >= 0 then ga.g_shard else gb.g_shard);
      }
  end

let purge_group t root g =
  List.iter
    (fun key ->
      Hashtbl.remove t.bucket_ids key;
      if snd key = None then Hashtbl.remove t.rel_wildcard (fst key))
    g.g_keys;
  Hashtbl.remove t.groups root

(* An id left the pool (fired, rejected or withdrawn): release its
   routing state, dissolving the whole group when its last live entry
   goes — the next arrival on those atoms starts a fresh group, so
   bucket co-location never coarsens past the live pool's lifetime. *)
let release_ids t ids =
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.entry_bucket id with
      | None -> ()
      | Some b ->
        let root = find_root t b in
        let g = Hashtbl.find t.groups root in
        g.g_live <- g.g_live - 1;
        (match Hashtbl.find_opt t.entry_shard id with
        | Some s -> t.shard_live.(s) <- t.shard_live.(s) - 1
        | None -> ());
        Hashtbl.remove t.entry_bucket id;
        Hashtbl.remove t.entry_shard id;
        if g.g_live = 0 then purge_group t root g)
    ids

(* Balance on the router's own live counts, not the shard engines' —
   during a [submit_all] batch, admission is deferred to the parallel
   attach, so the engines' pool sizes lag the routing decisions. *)
let least_loaded t =
  let best = ref 0 in
  for i = 1 to t.domains - 1 do
    if t.shard_live.(i) < t.shard_live.(!best) then best := i
  done;
  !best

(* Route an arrival: find the groups its atoms touch, migrate every
   colliding group into the shard that already holds the most involved
   live entries (fewest entries move; ties break to the lowest shard
   index), fuse the groups, and record the arrival.  Returns the owning
   shard; the caller admits the entry there. *)
let route t ~id (q : Query.t) =
  let atoms = q.Query.post @ q.Query.head in
  let keys =
    List.sort_uniq compare (List.map atom_key atoms)
  in
  let keys = if keys = [] then [ (("", None) : bucket_key) ] else keys in
  let bids =
    List.concat_map
      (fun key ->
        let b, linked = bucket_id t key in
        b :: linked)
      keys
  in
  let roots = List.sort_uniq Int.compare (List.map (find_root t) bids) in
  let involved = List.map (fun r -> (r, Hashtbl.find t.groups r)) roots in
  (* Live entries per involved shard. *)
  let by_shard = Hashtbl.create 4 in
  List.iter
    (fun (_, g) ->
      if g.g_shard >= 0 && g.g_live > 0 then
        Hashtbl.replace by_shard g.g_shard
          (g.g_live
          + Option.value ~default:0 (Hashtbl.find_opt by_shard g.g_shard)))
    involved;
  let owners =
    Hashtbl.fold (fun s n acc -> (s, n) :: acc) by_shard []
    |> List.sort (fun (s1, n1) (s2, n2) ->
           if n1 <> n2 then Int.compare n2 n1 else Int.compare s1 s2)
  in
  let target =
    match owners with [] -> least_loaded t | (s, _) :: _ -> s
  in
  (* Migrate every involved group owned elsewhere into [target]. *)
  (match owners with
  | [] | [ _ ] -> ()
  | _ ->
    List.iter
      (fun (s, _) ->
        if s <> target then begin
          let ids =
            List.concat_map
              (fun (_, g) ->
                if g.g_shard = s then
                  List.filter
                    (fun m -> Hashtbl.find_opt t.entry_shard m = Some s)
                    (List.sort_uniq Int.compare g.g_members)
                else [])
              involved
          in
          let ids = List.sort_uniq Int.compare ids in
          if ids <> [] then begin
            let moved = Online.detach t.shards.(s) ids in
            Online.attach t.shards.(target) moved;
            let n = List.length ids in
            t.shard_live.(s) <- t.shard_live.(s) - n;
            t.shard_live.(target) <- t.shard_live.(target) + n;
            List.iter (fun i -> Hashtbl.replace t.entry_shard i target) ids;
            t.migrations <- t.migrations + 1
          end
        end)
      owners);
  (* Fuse the involved groups and record the arrival. *)
  let b0 = List.hd bids in
  List.iter (fun b -> union_buckets t b0 b) (List.tl bids);
  let g = group_of t b0 in
  g.g_shard <- target;
  g.g_members <- id :: g.g_members;
  g.g_live <- g.g_live + 1;
  t.shard_live.(target) <- t.shard_live.(target) + 1;
  Hashtbl.replace t.entry_shard id target;
  Hashtbl.replace t.entry_bucket id b0;
  target

(* ---------------------------- op plumbing ----------------------------- *)

(* Bracket every public operation exactly as the sequential engine
   does: clear last-op verdicts, absorb external database mutations
   into every shard's dirty set, and propagate the database's current
   guard to the worker views so sequentially-committed evaluations are
   governed like the oracle's. *)
let prepare_all t =
  t.last_degradation <- None;
  t.last_conflict <- None;
  let g = Database.guard t.db in
  Array.iter (fun v -> Database.set_guard v g) t.views;
  Array.iter Online.prepare_op t.shards

(* Absorb the operation's own inventory deletions on every shard:
   deletions are monotone, so no shard's cached "cannot fire" verdicts
   are invalidated — exactly why the sequential engine does not re-
   dirty its own pool either. *)
let finish_all t = Array.iter Online.finish_op t.shards

let note_degradation t s =
  match Online.last_degradation t.shards.(s) with
  | Some d -> t.last_degradation <- Some d
  | None -> ()

let note_conflict t s =
  match Online.last_inventory_conflict t.shards.(s) with
  | Some c -> t.last_conflict <- Some c
  | None -> ()

(* Journal tee for sequentially-committed shard operations: forward
   retirements, consume deletions and evictions to the sharded sink
   (updating routing state), drop the shard's own [Submitted]/[Op_end]
   — the sharded engine emits those itself, so the record stream is
   byte-equivalent to the sequential engine's. *)
let with_tee t s f =
  let tee : Online.Journal.sink = function
    | Online.Journal.Submitted _ | Online.Journal.Op_end _ -> ()
    | Online.Journal.Retired { ids } as r ->
      release_ids t ids;
      emit t r
    | Online.Journal.Rejected { id } as r ->
      release_ids t [ id ];
      emit t r
    | Online.Journal.Consumed _ as r -> emit t r
  in
  Online.set_journal t.shards.(s) (Some tee);
  Fun.protect
    ~finally:(fun () -> Online.set_journal t.shards.(s) None)
    f

(* ---------------------------- flush rounds ---------------------------- *)

(* Non-consume flush: the store cannot move during the rounds, so the
   shards' components are fully independent and every shard can run its
   sequential flush to fixpoint concurrently.  Each shard's fire stream
   is non-decreasing in [f_key] (Online.fired), so a stable merge by
   key reproduces the sequential engine's fire order exactly; the
   retirement records are journaled post-hoc in that order.  Guards are
   split per shard and re-absorbed, as the batch executor does. *)
let flush_parallel t =
  Database.warm_indexes t.db;
  let guard = Database.guard t.db in
  let children =
    match guard with
    | None -> [||]
    | Some g ->
      let c = Resilient.split g t.domains in
      Array.iteri (fun i v -> Database.set_guard v (Some c.(i))) t.views;
      c
  in
  let weights = Array.map Online.pending_count t.shards in
  let results =
    Executor.Pool.map ~domains:t.domains ~weights (fun i ->
        Online.flush_fired t.shards.(i))
  in
  (* Every domain is joined before any crash surfaces (Pool.map joins
     unconditionally); restore the guard topology first so a crash in
     one shard never leaves split children armed. *)
  (match guard with
  | None -> ()
  | Some g ->
    Resilient.absorb g children;
    Array.iter (fun v -> Database.set_guard v guard) t.views);
  Executor.raise_first_crash results;
  let fired =
    Array.to_list results
    |> List.concat_map (function Ok l -> l | Error _ -> [])
    |> List.stable_sort (fun (a : Online.fired) b ->
           Int.compare a.f_key b.f_key)
  in
  List.iter
    (fun (fr : Online.fired) ->
      release_ids t fr.f_ids;
      emit t (Online.Journal.Retired { ids = fr.f_ids }))
    fired;
  for s = 0 to t.domains - 1 do
    note_degradation t s
  done;
  fired

(* Consume flush: fired sets delete inventory from the shared store, so
   components are no longer independent — a fire in one shard can
   invalidate a candidate in another.  Commit components one at a time
   in the global canonical order (smallest member id first, restarting
   after every fire), each through its owning shard's sequential
   evaluation: the fire sequence, deletions, conflicts and stats are
   exactly the sequential engine's. *)
let flush_sequential t =
  let fired = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    let due =
      Array.to_list
        (Array.mapi
           (fun s e ->
             List.map (fun ids -> (List.hd ids, s, ids)) (Online.due_components e))
           t.shards)
      |> List.concat
      |> List.sort (fun (k1, _, _) (k2, _, _) -> Int.compare k1 k2)
    in
    (try
       List.iter
         (fun (_, s, ids) ->
           match with_tee t s (fun () -> Online.evaluate_due t.shards.(s) ids) with
           | `Fired fr ->
             fired := fr :: !fired;
             note_degradation t s;
             note_conflict t s;
             progress := true;
             raise Exit
           | `Quiet | `Unsafe -> note_degradation t s)
         due
     with Exit -> ())
  done;
  List.rev !fired

let flush_fired t = if t.consume then flush_sequential t else flush_parallel t

(* ---------------------------- public ops ------------------------------ *)

let submit t query =
  Obs.with_span
    ~args:(fun () ->
      [
        ("query", Obs.Str query.Query.name);
        ("domains", Obs.Int t.domains);
      ])
    "online_sharded.submit"
  @@ fun () ->
  prepare_all t;
  let id = t.next_id in
  t.next_id <- id + 1;
  let s = route t ~id query in
  emit t (Online.Journal.Submitted { id; query });
  let result = with_tee t s (fun () -> Online.submit ~id t.shards.(s) query) in
  note_degradation t s;
  note_conflict t s;
  emit t
    (Online.Journal.Op_end
       {
         op = Online.Journal.Submit_op;
         fired =
           (match result with
           | Online.Coordinated c -> List.length c.Online.queries
           | _ -> 0);
       });
  finish_all t;
  result

let withdraw t id =
  Obs.with_span
    ~args:(fun () -> [ ("id", Obs.Int id); ("domains", Obs.Int t.domains) ])
    "online_sharded.withdraw"
  @@ fun () ->
  prepare_all t;
  match Hashtbl.find_opt t.entry_shard id with
  | None -> false
  | Some s ->
    let ok = with_tee t s (fun () -> Online.withdraw t.shards.(s) id) in
    assert ok;
    emit t
      (Online.Journal.Op_end { op = Online.Journal.Withdraw_op; fired = 0 });
    finish_all t;
    true

let flush t =
  Obs.with_span
    ~args:(fun () ->
      [
        ("pool", Obs.Int (Hashtbl.length t.entry_shard));
        ("domains", Obs.Int t.domains);
      ])
    "online_sharded.flush"
  @@ fun () ->
  prepare_all t;
  let fired = flush_fired t in
  emit t
    (Online.Journal.Op_end
       { op = Online.Journal.Flush_op; fired = List.length fired });
  finish_all t;
  List.map (fun (fr : Online.fired) -> fr.f_set) fired

let submit_all t queries =
  Obs.with_span
    ~args:(fun () ->
      [
        ("batch", Obs.Int (List.length queries));
        ("domains", Obs.Int t.domains);
      ])
    "online_sharded.submit_all"
  @@ fun () ->
  prepare_all t;
  let batches = Array.make t.domains [] in
  List.iter
    (fun q ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let s = route t ~id q in
      emit t (Online.Journal.Submitted { id; query = q });
      batches.(s) <-
        { Online.mv_id = id; mv_query = q; mv_dirty = true } :: batches.(s))
    queries;
  let batches = Array.map List.rev batches in
  (* Index and union-find maintenance is shard-local, so admission fans
     out too; evaluation happens in the flush below. *)
  Database.warm_indexes t.db;
  let admitted =
    Executor.Pool.map ~domains:t.domains
      ~weights:(Array.map List.length batches)
      (fun i -> Online.attach t.shards.(i) batches.(i))
  in
  Executor.raise_first_crash admitted;
  let fired = flush_fired t in
  emit t
    (Online.Journal.Op_end
       { op = Online.Journal.Submit_all_op; fired = List.length fired });
  finish_all t;
  List.map (fun (fr : Online.fired) -> fr.f_set) fired

(* ------------------------------ readers ------------------------------- *)

let pending_entries t =
  Array.to_list t.shards
  |> List.concat_map Online.pending_entries
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pending t = List.map snd (pending_entries t)
let next_id t = t.next_id

let pending_count t =
  Array.fold_left (fun acc e -> acc + Online.pending_count e) 0 t.shards

let total_coordinated t =
  t.base_satisfied
  + Array.fold_left (fun acc e -> acc + Online.total_coordinated e) 0 t.shards

let stats t =
  let s = Stats.create () in
  Array.iter (fun e -> Stats.merge ~into:s (Online.stats e)) t.shards;
  s

let last_degradation t = t.last_degradation
let last_inventory_conflict t = t.last_conflict

let components t =
  let position = Hashtbl.create 64 in
  List.iteri (fun i (id, _) -> Hashtbl.replace position id i) (pending_entries t);
  Array.to_list t.shards
  |> List.concat_map (fun e ->
         let local = Array.of_list (Online.pending_entries e) in
         List.map
           (fun comp ->
             List.map (fun p -> Hashtbl.find position (fst local.(p))) comp)
           (Online.components e))
  |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))

(* ----------------------------- re-sharding ---------------------------- *)

let of_online ~domains db src =
  let t =
    create ~selection:(Online.selection src) ~eager:(Online.eager src)
      ~consume:(Online.consume src) ~domains db
  in
  t.next_id <- Online.next_id src;
  t.base_satisfied <- Online.total_coordinated src;
  List.iter
    (fun (id, q) ->
      let s = route t ~id q in
      Online.attach t.shards.(s)
        [ { Online.mv_id = id; mv_query = q; mv_dirty = true } ])
    (Online.pending_entries src);
  t
