(** Parallel Consistent Coordination.

    Section 6.2 closes: "our implementation does not use any
    parallelism, although our algorithm naturally breaks into parallel
    processes, where each possible value can be easily checked
    independently ... we leave this enhancement open for future work."
    This module is that enhancement: the per-value cleaning kernel
    ({!Consistent.survivors}) is pure, so the loop over [V(Q)] is split
    across OCaml 5 domains.  Database work (option lists, pools, final
    grounding) stays on the calling domain — the shared store is not
    touched concurrently.

    Since the sharded batch executor landed this is a thin alias of
    {!Executor.solve_consistent}, which schedules one task per value on
    the work-stealing pool; the CLI reaches it through
    [solve --algorithm consistent --parallel].

    Results are identical to {!Consistent.solve} with [`Largest]
    selection: candidates come back in the same deterministic value
    order and ties break the same way. *)

open Relational

val solve :
  ?domains:int ->
  Database.t ->
  Consistent_query.config ->
  Consistent_query.t list ->
  (Consistent.outcome, Consistent.error) result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at the number of values.  [domains = 1] degenerates to the
    sequential loop. *)
