open Relational
open Entangled

exception Worker_crashed of string

let default_domains () = max 1 (Domain.recommended_domain_count ())

let domain_count = function
  | Some d -> max 1 d
  | None -> default_domains ()

(* ------------------------------------------------------------------ *)
(* Work-stealing domain pool                                          *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* One deque per worker, pre-filled round-robin from the tasks sorted
     by descending weight (largest first), so loads start balanced and
     the heaviest tasks begin immediately.  The owner pops from the
     front, thieves from the back — victims lose their smallest pending
     tasks first.  A plain mutex per deque: shards are coarse (a whole
     component solve), so the lock is nowhere near the hot path. *)
  type deque = {
    tasks : int array;
    mutable lo : int;
    mutable hi : int;  (* exclusive *)
    lock : Mutex.t;
  }

  let pop d =
    Mutex.lock d.lock;
    let r =
      if d.lo < d.hi then begin
        let t = d.tasks.(d.lo) in
        d.lo <- d.lo + 1;
        Some t
      end
      else None
    in
    Mutex.unlock d.lock;
    r

  let steal d =
    Mutex.lock d.lock;
    let r =
      if d.lo < d.hi then begin
        d.hi <- d.hi - 1;
        Some d.tasks.(d.hi)
      end
      else None
    in
    Mutex.unlock d.lock;
    r

  let map ~domains ~weights f =
    let n = Array.length weights in
    if n = 0 then [||]
    else begin
      let k = max 1 (min domains n) in
      let order = Array.init n Fun.id in
      (* Descending weight, ties towards lower index: deterministic
         initial placement whatever the caller's weights. *)
      Array.sort
        (fun a b ->
          match compare weights.(b) weights.(a) with
          | 0 -> compare a b
          | c -> c)
        order;
      let per = Array.make k [] in
      Array.iteri (fun pos t -> per.(pos mod k) <- t :: per.(pos mod k)) order;
      let deques =
        Array.map
          (fun l ->
            let tasks = Array.of_list (List.rev l) in
            { tasks; lo = 0; hi = Array.length tasks; lock = Mutex.create () })
          per
      in
      (* Each slot is written by exactly one worker (the one that popped
         or stole the task) and read only after every domain is joined,
         so the array needs no lock of its own. *)
      let results = Array.make n None in
      let worker w () =
        (* A fresh domain starts with empty domain-local Obs state; give
           it a flight-recorder ring when the recorder is armed so the
           incident dump covers every domain's final moments.  (Worker 0
           runs on the orchestrating domain, whose ring already
           exists — arm_domain is idempotent.) *)
        Obs.Flight_recorder.arm_domain ();
        let run t = results.(t) <- Some (try Ok (f t) with e -> Error e) in
        let rec own () =
          match pop deques.(w) with
          | Some t ->
            run t;
            own ()
          | None -> ()
        in
        own ();
        (* No task is ever added after start, so repeated full scans of
           the other deques terminate: one scan with nothing stolen
           means every deque is empty. *)
        let rec scan () =
          let found = ref false in
          for i = 1 to k - 1 do
            match steal deques.((w + i) mod k) with
            | Some t ->
              found := true;
              run t;
              own ()
            | None -> ()
          done;
          if !found then scan ()
        in
        scan ()
      in
      (* Workers trap every exception into their result slot, so the
         joins below cannot be skipped — no domain is ever leaked. *)
      let handles = List.init (k - 1) (fun i -> Domain.spawn (worker (i + 1))) in
      worker 0 ();
      List.iter Domain.join handles;
      Array.map (function Some r -> r | None -> assert false) results
    end
end

(* ------------------------------------------------------------------ *)
(* Shared shard plumbing                                              *)
(* ------------------------------------------------------------------ *)

(* Group vertices into weakly-connected components of [g] restricted to
   [keep], each group ascending, the groups ordered by first vertex —
   the deterministic shard list. *)
let wcc_groups g ~count ~keep =
  let uf = Graphs.Union_find.create ~capacity:(max 1 count) () in
  if count > 0 then Graphs.Union_find.ensure uf (count - 1);
  Graphs.Digraph.iter_edges (fun u v -> ignore (Graphs.Union_find.union uf u v)) g;
  let groups = Hashtbl.create 64 in
  for v = count - 1 downto 0 do
    if keep v then begin
      let r = Graphs.Union_find.find uf v in
      Hashtbl.replace groups r
        (v :: Option.value ~default:[] (Hashtbl.find_opt groups r))
    end
  done;
  Hashtbl.fold (fun _ vs acc -> vs :: acc) groups []
  |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))

(* Capture the Obs items a thunk emits on the calling (worker) domain
   into [buf] under [key], via an exclusive domain-local memory sink:
   when the worker runs on the orchestrator's own domain the live sinks
   are suspended, so items reach the outside world only through the
   sorted replay.  The drain runs in the [finally] so an abort mid-thunk
   still keeps the items emitted so far — exactly what the sequential
   trace would contain. *)
let with_capture ~tracing buf key f =
  if not tracing then f ()
  else begin
    let sink, drain = Obs.memory_sink () in
    Fun.protect
      ~finally:(fun () -> buf := (key, drain ()) :: !buf)
      (fun () -> Obs.exclusive sink f)
  end

(* Replay captured items in ascending key order — the sequential
   emission order — at the orchestrator's current span depth. *)
let replay_captured captured =
  let items = List.sort (fun (a, _) (b, _) -> Int.compare a b) captured in
  let offset = Obs.depth () in
  List.iter (fun (_, items) -> Obs.replay ~depth_offset:offset items) items

let split_guards guard n =
  match guard with
  | Some g when n > 0 -> Some (g, Resilient.split g n)
  | _ -> None

let child_guard children i =
  match children with Some (_, cs) -> Some cs.(i) | None -> None

let absorb_guards children =
  Option.iter (fun (g, cs) -> Resilient.absorb g cs) children

let raise_first_crash results =
  Array.iter
    (function
      | Error e ->
        Obs.Flight_recorder.incident "worker_crashed";
        raise (Worker_crashed (Printexc.to_string e))
      | Ok _ -> ())
    results

(* ------------------------------------------------------------------ *)
(* SCC algorithm, sharded                                             *)
(* ------------------------------------------------------------------ *)

type scc_report = {
  sr_cands : (int * Scc_algo.candidate) list;  (* (scc id, candidate) *)
  sr_stats : Stats.t;
  sr_counters : Counters.t;
  sr_trace : (int * Obs.item list) list;
  sr_abort : (Resilient.error * (int * int list) list) option;
      (* reason, unprobed (scc id, members) *)
}

let run_scc_shard ~tracing ~selection ~minimize (a : Scc_algo.analysis) view
    sccs =
  let stats = Stats.create () in
  let ctx = Scc_algo.make_ctx ~minimize ~stats view in
  let cands = ref [] in
  let trace = ref [] in
  let abort = ref None in
  let rec go = function
    | [] -> ()
    | c :: rest -> (
      match
        with_capture ~tracing trace c (fun () ->
            Scc_algo.probe_component ctx a c)
      with
      | exception Resilient.Abort reason ->
        (* The component that aborted counts as unprobed, like the
           sequential solver's cut-off. *)
        let unprobed =
          List.map (fun c -> (c, a.an_scc.members.(c))) (c :: rest)
        in
        abort := Some (reason, unprobed)
      | None -> go rest
      | Some cand ->
        cands := (c, cand) :: !cands;
        (* First-found stops this shard; the merge keeps the earliest
           component over all shards, which is the sequential answer. *)
        (match selection with
        | Scc_algo.First_found -> ()
        | Scc_algo.Largest | Scc_algo.Preferred _ -> go rest))
  in
  go sccs;
  {
    sr_cands = List.rev !cands;
    sr_stats = stats;
    sr_counters = Database.snapshot_counters view;
    sr_trace = !trace;
    sr_abort = !abort;
  }

let solve_scc ?(selection = Scc_algo.Largest) ?(preprocess = true)
    ?(minimize = false) ?domains db input =
  let k = domain_count domains in
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "scc.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let queries = Query.rename_set input in
  let finish result =
    stats.Stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    result
  in
  let t_graph = Stats.now_ns () in
  match Scc_algo.analyze ~preprocess queries with
  | Error e ->
    stats.Stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    finish (Error e)
  | Ok a ->
    stats.Stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    let scc = a.Scc_algo.an_scc in
    Database.warm_indexes db;
    let shards =
      wcc_groups a.Scc_algo.an_cond ~count:scc.Graphs.Scc.count
        ~keep:(fun _ -> true)
    in
    let shard_arr = Array.of_list shards in
    let weights =
      Array.map
        (fun cs ->
          List.fold_left
            (fun acc c -> acc + List.length scc.Graphs.Scc.members.(c))
            0 cs)
        shard_arr
    in
    let children = split_guards (Database.guard db) (Array.length shard_arr) in
    let tracing = Obs.tracing () in
    let reports =
      Pool.map ~domains:k ~weights (fun i ->
          let view = Database.worker_view ?guard:(child_guard children i) db in
          run_scc_shard ~tracing ~selection ~minimize a view shard_arr.(i))
    in
    absorb_guards children;
    raise_first_crash reports;
    let reports =
      Array.map (function Ok r -> r | Error _ -> assert false) reports
    in
    (* Deterministic merge, independent of domain count and steal order:
       trace items and candidates in ascending SCC id (the sequential
       discovery order), stats by commutative addition. *)
    if tracing then
      replay_captured
        (Array.to_list reports |> List.concat_map (fun r -> r.sr_trace));
    Array.iter
      (fun r ->
        Stats.merge ~into:stats r.sr_stats;
        Stats.add_counters stats r.sr_counters)
      reports;
    (* merge added the shards' zero total_ns/graph_ns; re-assert ours *)
    let candidates =
      Array.to_list reports
      |> List.concat_map (fun r -> r.sr_cands)
      |> List.sort (fun (c1, _) (c2, _) -> Int.compare c1 c2)
      |> List.map snd
    in
    let aborts =
      Array.to_list reports |> List.filter_map (fun r -> r.sr_abort)
    in
    let degraded =
      match aborts with
      | [] -> None
      | _ :: _ ->
        let unprobed =
          List.concat_map snd aborts
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        let reason =
          (* The abort of the shard owning the earliest unprobed
             component — a deterministic choice. *)
          List.sort
            (fun (_, u1) (_, u2) ->
              Int.compare (fst (List.hd u1)) (fst (List.hd u2)))
            aborts
          |> List.hd |> fst
        in
        Some
          (Resilient.degraded
             ~unprobed:(List.map snd unprobed)
             ~note:
               (Printf.sprintf "%d of %d components unprobed"
                  (List.length unprobed) scc.Graphs.Scc.count)
             reason)
    in
    let solution =
      Option.map
        (fun (c : Scc_algo.candidate) ->
          Solution.make ~members:c.covered ~assignment:c.assignment)
        (Scc_algo.select selection queries candidates)
    in
    finish
      (Ok
         {
           Scc_algo.queries;
           graph = a.Scc_algo.an_graph;
           candidates;
           solution;
           stats;
           degraded;
         })

(* ------------------------------------------------------------------ *)
(* Gupta baseline, sharded                                            *)
(* ------------------------------------------------------------------ *)

type gupta_report = {
  gr_witness :
    (Eval.valuation option, Combine.failure) result option;
      (* None: the shard's ground was aborted *)
  gr_abort : Resilient.error option;
  gr_stats : Stats.t;
  gr_counters : Counters.t;
  gr_trace : (int * Obs.item list) list;
}

let failure_key : Combine.failure -> int * int = function
  | Combine.Unsatisfiable_post (q, p) -> (q, p)
  | Combine.Ambiguous_post (q, p, _) -> (q, p)
  | Combine.Clash (q, p) -> (q, p)

let run_gupta_shard ~tracing graph queries view shard_index members =
  let stats = Stats.create () in
  let trace = ref [] in
  let report witness abort =
    {
      gr_witness = witness;
      gr_abort = abort;
      gr_stats = stats;
      gr_counters = Database.snapshot_counters view;
      gr_trace = !trace;
    }
  in
  with_capture ~tracing trace shard_index @@ fun () ->
  let unified, unify_ns =
    Stats.timed (fun () ->
        Obs.with_span "gupta.unify" (fun () ->
            Combine.unify_set graph ~members))
  in
  stats.Stats.unify_ns <- unify_ns;
  match unified with
  | Error f -> report (Some (Error f)) None
  | Ok subst -> (
    let witness, ground_ns =
      Stats.timed (fun () ->
          Obs.with_span "gupta.ground" (fun () ->
              match Ground.solve view queries ~members subst with
              | w -> Ok w
              | exception Resilient.Abort reason -> Error reason))
    in
    stats.Stats.ground_ns <- ground_ns;
    match witness with
    | Error reason -> report None (Some reason)
    | Ok w -> report (Some (Ok w)) None)

let solve_gupta ?domains db input =
  let k = domain_count domains in
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "gupta.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let queries = Query.rename_set input in
  let counters0 = Database.snapshot_counters db in
  let finish result =
    stats.Stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    result
  in
  if Array.length queries = 0 then
    finish
      (Ok { Gupta.queries; solution = None; stats; degraded = None })
  else begin
    let graph, graph_ns =
      Stats.timed (fun () ->
          Obs.with_span "gupta.graph" (fun () ->
              Coordination_graph.build queries))
    in
    stats.Stats.graph_ns <- graph_ns;
    match Safety.classify graph with
    | `Unsafe -> finish (Error (Gupta.Not_safe (Safety.unsafe_posts graph)))
    | `Safe -> finish (Error Gupta.Not_unique)
    | `Safe_unique ->
      (* Renamed-apart queries share no variables, so the combined query
         of the whole set is the disjoint union of the per-WCC combined
         queries: the set coordinates iff every WCC's combined query is
         satisfiable, and the union of per-WCC witnesses is a witness
         for the whole set. *)
      Database.warm_indexes db;
      let n = Array.length queries in
      let shards =
        wcc_groups graph.Coordination_graph.graph ~count:n ~keep:(fun _ ->
            true)
      in
      let shard_arr = Array.of_list shards in
      let weights = Array.map List.length shard_arr in
      let children =
        split_guards (Database.guard db) (Array.length shard_arr)
      in
      let tracing = Obs.tracing () in
      let reports =
        Pool.map ~domains:k ~weights (fun i ->
            let view =
              Database.worker_view ?guard:(child_guard children i) db
            in
            run_gupta_shard ~tracing graph queries view i shard_arr.(i))
      in
      absorb_guards children;
      raise_first_crash reports;
      let reports =
        Array.map (function Ok r -> r | Error _ -> assert false) reports
      in
      if tracing then
        replay_captured
          (Array.to_list reports |> List.concat_map (fun r -> r.gr_trace));
      Array.iter
        (fun r ->
          Stats.merge ~into:stats r.gr_stats;
          Stats.add_counters stats r.gr_counters)
        reports;
      stats.Stats.candidates <- Array.length shard_arr;
      let failures =
        Array.to_list reports
        |> List.filter_map (fun r ->
               match r.gr_witness with Some (Error f) -> Some f | _ -> None)
      in
      match failures with
      | _ :: _ ->
        (* The sequential combined unification stops at the failure with
           the smallest (member, post) position; per-shard unification
           finds all of them, so the minimum is the sequential one. *)
        let f =
          List.sort
            (fun a b -> compare (failure_key a) (failure_key b))
            failures
          |> List.hd
        in
        finish (Error (Gupta.Unification_failed f))
      | [] -> (
        let aborted =
          Array.to_list reports
          |> List.mapi (fun i r -> (i, r.gr_abort))
          |> List.filter_map (fun (i, a) ->
                 Option.map (fun reason -> (i, reason)) a)
        in
        match aborted with
        | (_, reason) :: _ ->
          finish
            (Ok
               {
                 Gupta.queries;
                 solution = None;
                 stats;
                 degraded =
                   Some
                     (Resilient.degraded
                        ~unprobed:
                          (List.map (fun (i, _) -> shard_arr.(i)) aborted)
                        ~note:"combined query unprobed" reason);
               })
        | [] ->
          let witnesses =
            Array.to_list reports
            |> List.map (fun r ->
                   match r.gr_witness with
                   | Some (Ok w) -> w
                   | Some (Error _) | None -> assert false)
          in
          if List.exists Option.is_none witnesses then
            finish
              (Ok { Gupta.queries; solution = None; stats; degraded = None })
          else begin
            let assignment =
              List.fold_left
                (fun acc w ->
                  (* Shards are variable-disjoint; union never clashes. *)
                  Eval.Binding.union
                    (fun _ v _ -> Some v)
                    acc
                    (Option.get w))
                Eval.Binding.empty witnesses
            in
            let members = List.init n Fun.id in
            finish
              (Ok
                 {
                   Gupta.queries;
                   solution = Some (Solution.make ~members ~assignment);
                   stats;
                   degraded = None;
                 })
          end)
  end

(* ------------------------------------------------------------------ *)
(* Consistent coordination: per-value tasks                           *)
(* ------------------------------------------------------------------ *)

let solve_consistent ?domains db config input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "parallel.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let t_graph = Stats.now_ns () in
  match
    Obs.with_span "parallel.prepare" (fun () ->
        Consistent.prepare db config input)
  with
  | exception Resilient.Abort reason ->
    stats.Stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    Ok (Consistent.degraded_outcome config input stats reason)
  | Error e -> Error e
  | Ok p -> (
    stats.Stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    let vs = Array.of_list (Consistent.values p) in
    let k = domain_count domains in
    let t_loop = Stats.now_ns () in
    (* One task per value v in V(Q): [survivors] is pure, so workers run
       uninstrumented and need no database view.  The results array is
       in value order whatever the steal schedule. *)
    let results =
      Obs.with_span
        ~args:(fun () ->
          [ ("domains", Obs.Int k); ("values", Obs.Int (Array.length vs)) ])
        "parallel.values_loop"
        (fun () ->
          Pool.map ~domains:k
            ~weights:(Array.make (Array.length vs) 1)
            (fun i ->
              let v = vs.(i) in
              let members, rounds = Consistent.survivors p v in
              (v, members, rounds)))
    in
    stats.Stats.unify_ns <- Int64.sub (Stats.now_ns ()) t_loop;
    let first_error =
      Array.find_opt (function Error _ -> true | Ok _ -> false) results
    in
    match first_error with
    | Some (Error (Resilient.Abort reason)) ->
      stats.Stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
      Stats.add_counters stats
        (Counters.diff ~before:counters0
           ~after:(Database.snapshot_counters db));
      Ok (Consistent.degraded_outcome config input stats reason)
    | Some (Error e) ->
      Error (Consistent.Worker_crashed (Printexc.to_string e))
    | Some (Ok _) | None ->
      let flat =
        Array.to_list results
        |> List.map (function Ok r -> r | Error _ -> assert false)
      in
      let candidates =
        List.map (fun (v, members, _) -> (v, List.length members)) flat
      in
      List.iter
        (fun (_, _, rounds) ->
          stats.Stats.cleaning_rounds <- stats.Stats.cleaning_rounds + rounds)
        flat;
      stats.Stats.candidates <- List.length flat;
      let best =
        List.fold_left
          (fun best (v, members, _) ->
            let size = List.length members in
            match best with
            | Some (_, _, best_size) when best_size >= size -> best
            | _ when size > 0 -> Some (v, members, size)
            | _ -> best)
          None flat
        |> Option.map (fun (v, members, _) -> (v, members))
      in
      let outcome =
        Obs.with_span "parallel.ground" (fun () ->
            Consistent.finalize db p ~candidates ~best stats)
      in
      outcome.Consistent.stats.Stats.total_ns <-
        Int64.sub (Stats.now_ns ()) t_start;
      Stats.add_counters outcome.Consistent.stats
        (Counters.diff ~before:counters0
           ~after:(Database.snapshot_counters db));
      Ok outcome)
