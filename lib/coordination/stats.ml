type t = {
  mutable db_probes : int;
  mutable graph_ns : int64;
  mutable unify_ns : int64;
  mutable ground_ns : int64;
  mutable total_ns : int64;
  mutable candidates : int;
  mutable cleaning_rounds : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable tuples_scanned : int;
}

let create () =
  {
    db_probes = 0;
    graph_ns = 0L;
    unify_ns = 0L;
    ground_ns = 0L;
    total_ns = 0L;
    candidates = 0;
    cleaning_rounds = 0;
    plan_hits = 0;
    plan_misses = 0;
    tuples_scanned = 0;
  }

(* The one canonical fold of one record into another.  Anything that
   accumulates solver statistics (the online engine, batch drivers) must
   go through here: a field added to [t] that is not summed below is a
   compile error only in this function, not silently dropped at every
   hand-rolled copy site. *)
let merge ~(into : t) (from : t) =
  into.db_probes <- into.db_probes + from.db_probes;
  into.graph_ns <- Int64.add into.graph_ns from.graph_ns;
  into.unify_ns <- Int64.add into.unify_ns from.unify_ns;
  into.ground_ns <- Int64.add into.ground_ns from.ground_ns;
  into.total_ns <- Int64.add into.total_ns from.total_ns;
  into.candidates <- into.candidates + from.candidates;
  into.cleaning_rounds <- into.cleaning_rounds + from.cleaning_rounds;
  into.plan_hits <- into.plan_hits + from.plan_hits;
  into.plan_misses <- into.plan_misses + from.plan_misses;
  into.tuples_scanned <- into.tuples_scanned + from.tuples_scanned

let add_counters stats (d : Relational.Counters.t) =
  stats.db_probes <- stats.db_probes + d.probes;
  stats.plan_hits <- stats.plan_hits + d.plan_hits;
  stats.plan_misses <- stats.plan_misses + d.plan_misses;
  stats.tuples_scanned <- stats.tuples_scanned + d.tuples_scanned

(* Delegates to the observability subsystem's CLOCK_MONOTONIC stub:
   gettimeofday is not monotonic, so spans could go negative under
   clock adjustment. *)
let same_counters a b =
  a.db_probes = b.db_probes
  && a.candidates = b.candidates
  && a.cleaning_rounds = b.cleaning_rounds
  && a.plan_hits = b.plan_hits
  && a.plan_misses = b.plan_misses
  && a.tuples_scanned = b.tuples_scanned

let now_ns = Obs.now_ns

let add_span stats get set span = set stats (Int64.add (get stats) span)

let timed f =
  let t0 = now_ns () in
  let x = f () in
  let t1 = now_ns () in
  (x, Int64.sub t1 t0)

let ms ns = Int64.to_float ns /. 1e6

let pp ppf s =
  Format.fprintf ppf
    "probes=%d graph=%.3fms unify=%.3fms ground=%.3fms total=%.3fms \
     candidates=%d cleaning_rounds=%d plan_hits=%d plan_misses=%d \
     tuples_scanned=%d"
    s.db_probes (ms s.graph_ns) (ms s.unify_ns) (ms s.ground_ns)
    (ms s.total_ns) s.candidates s.cleaning_rounds s.plan_hits s.plan_misses
    s.tuples_scanned

let to_row s =
  [
    ("probes", string_of_int s.db_probes);
    ("graph_ms", Printf.sprintf "%.3f" (ms s.graph_ns));
    ("unify_ms", Printf.sprintf "%.3f" (ms s.unify_ns));
    ("ground_ms", Printf.sprintf "%.3f" (ms s.ground_ns));
    ("total_ms", Printf.sprintf "%.3f" (ms s.total_ns));
    ("candidates", string_of_int s.candidates);
    ("cleaning_rounds", string_of_int s.cleaning_rounds);
    ("plan_hits", string_of_int s.plan_hits);
    ("plan_misses", string_of_int s.plan_misses);
    ("tuples_scanned", string_of_int s.tuples_scanned);
  ]
