open Relational
open Entangled

type error = Not_safe of (int * int) list

type candidate = {
  covered : int list;
  assignment : Eval.valuation;
}

type selection =
  | Largest
  | First_found
  | Preferred of (Query.t array -> candidate -> int)

type outcome = {
  queries : Query.t array;
  graph : Coordination_graph.t;
  candidates : candidate list;
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
}

type event =
  | Pruned of int list
  | Skipped of { component : int list }
  | Unify_failed of { component : int list; failure : Combine.failure }
  | Probed of {
      component : int list;
      members : int list;
      body : Relational.Cq.t;
      witness : Eval.valuation option;
    }

(* Execution events travel the process-wide Obs stream as typed
   payloads: serializing sinks (--trace) render the args, while
   Explain recovers the full payload from a memory sink — one emission
   point for both. *)
type Obs.payload += Scc_event of event

let names (queries : Query.t array) is =
  String.concat "," (List.map (fun i -> queries.(i).Query.name) is)

(* Safety restricted to live queries: a live postcondition atom must have
   at most one live candidate head. *)
let unsafe_posts_masked (graph : Coordination_graph.t) alive =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (e : Coordination_graph.edge) ->
      if alive.(e.src) && alive.(e.dst) then begin
        let key = (e.src, e.post_index) in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      end)
    graph.extended;
  Hashtbl.fold (fun key c acc -> if c > 1 then key :: acc else acc) counts []
  |> List.sort compare

let select selection queries candidates =
  let score =
    match selection with
    | Largest -> fun c -> List.length c.covered
    | First_found -> fun _ -> 0
    | Preferred f -> f queries
  in
  match candidates with
  | [] -> None
  | first :: rest -> (
    match selection with
    | First_found -> Some first
    | Largest | Preferred _ ->
      let best =
        List.fold_left
          (fun best c -> if score c > score best then c else best)
          first rest
      in
      Some best)

let solve ?(selection = Largest) ?(preprocess = true) ?(graph_only = false)
    ?(minimize = false) db input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "scc.solve"
  @@ fun () ->
  let emit name args e = Obs.event ~args ~payload:(Scc_event e) name in
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let queries = Query.rename_set input in
  let n = Array.length queries in
  let finish result =
    stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    result
  in
  (* Phase 1: graph construction, preprocessing, SCCs (Figure 6 measures
     exactly this span). *)
  let t_graph = Stats.now_ns () in
  let graph =
    Obs.with_span "scc.graph" (fun () -> Coordination_graph.build queries)
  in
  let alive = Array.make n true in
  if preprocess then
    Obs.with_span "scc.preprocess" (fun () ->
        Coordination_graph.prune_unsatisfiable graph ~alive;
        let dead = List.filter (fun i -> not alive.(i)) (List.init n Fun.id) in
        if dead <> [] then
          emit "scc.pruned"
            (fun () -> [ ("dropped", Obs.Str (names queries dead)) ])
            (Pruned dead));
  let unsafe = unsafe_posts_masked graph alive in
  if unsafe <> [] then begin
    stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    finish (Error (Not_safe unsafe))
  end
  else begin
    let scc, condensation =
      Obs.with_span "scc.condense" (fun () ->
          let scc =
            Graphs.Scc.compute_masked graph.graph ~alive:(fun v -> alive.(v))
          in
          (scc, Graphs.Scc.condensation graph.graph scc))
    in
    stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    if graph_only then
      finish
        (Ok
           {
             queries;
             graph;
             candidates = [];
             solution = None;
             stats;
             degraded = None;
           })
    else begin
    (* Phase 2: process components in reverse topological order.  Our SCC
       ids are numbered sinks-first, so ascending id order is exactly
       that. *)
    let failed = Array.make (max 1 scc.count) false in
    let covered = Array.make (max 1 scc.count) [] in
    let candidates = ref [] in
    let degraded = ref None in
    let exception Done in
    (try
    for c = 0 to scc.count - 1 do
    (* A guard abort mid-component keeps every candidate already probed:
       components from [c] on are reported unprobed, the prefix stands. *)
    try
      let successors = Graphs.Digraph.successors condensation c in
      if List.exists (fun s -> failed.(s)) successors then begin
        failed.(c) <- true;
        emit "scc.skipped"
          (fun () -> [ ("component", Obs.Str (names queries scc.members.(c))) ])
          (Skipped { component = scc.members.(c) })
      end
      else begin
        let members =
          List.sort_uniq Int.compare
            (scc.members.(c)
            @ List.concat_map (fun s -> covered.(s)) successors)
        in
        let unified, unify_ns =
          Stats.timed (fun () ->
              Obs.with_span
                ~args:(fun () ->
                  [ ("members", Obs.Str (names queries members)) ])
                "scc.unify"
                (fun () -> Combine.unify_set graph ~members))
        in
        stats.unify_ns <- Int64.add stats.unify_ns unify_ns;
        match unified with
        | Error failure ->
          failed.(c) <- true;
          emit "scc.unify_failed"
            (fun () ->
              [ ("component", Obs.Str (names queries scc.members.(c))) ])
            (Unify_failed { component = scc.members.(c); failure })
        | Ok subst -> (
          let witness, ground_ns =
            Stats.timed (fun () ->
                Obs.with_span
                  ~args:(fun () ->
                    [ ("members", Obs.Str (names queries members)) ])
                  "scc.ground"
                  (fun () -> Ground.solve ~minimize db queries ~members subst))
          in
          stats.ground_ns <- Int64.add stats.ground_ns ground_ns;
          stats.candidates <- stats.candidates + 1;
          if Obs.tracing () then
            emit "scc.probed"
              (fun () ->
                [
                  ("members", Obs.Str (names queries members));
                  ("witness", Obs.Bool (Option.is_some witness));
                ])
              (Probed
                 {
                   component = scc.members.(c);
                   members;
                   body = Combine.combined_body graph ~members subst;
                   witness;
                 });
          match witness with
          | None -> failed.(c) <- true
          | Some assignment ->
            covered.(c) <- members;
            candidates := { covered = members; assignment } :: !candidates;
            (* Under first-found selection, later components cannot
               change the answer: stop probing the database. *)
            (match selection with
            | First_found -> raise Done
            | Largest | Preferred _ -> ()))
      end
    with Resilient.Abort reason ->
      let unprobed = List.init (scc.count - c) (fun i -> scc.members.(c + i)) in
      degraded :=
        Some
          (Resilient.degraded ~unprobed
             ~note:
               (Printf.sprintf "%d of %d components unprobed"
                  (List.length unprobed) scc.count)
             reason);
      raise Done
    done
    with Done -> ());
    let candidates = List.rev !candidates in
    let solution =
      Option.map
        (fun c -> Solution.make ~members:c.covered ~assignment:c.assignment)
        (select selection queries candidates)
    in
    finish
      (Ok { queries; graph; candidates; solution; stats; degraded = !degraded })
    end
  end
