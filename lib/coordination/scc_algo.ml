open Relational
open Entangled

type error = Not_safe of (int * int) list

type candidate = {
  covered : int list;
  assignment : Eval.valuation;
}

type selection =
  | Largest
  | First_found
  | Preferred of (Query.t array -> candidate -> int)

type outcome = {
  queries : Query.t array;
  graph : Coordination_graph.t;
  candidates : candidate list;
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
}

type event =
  | Pruned of int list
  | Skipped of { component : int list }
  | Unify_failed of { component : int list; failure : Combine.failure }
  | Probed of {
      component : int list;
      members : int list;
      body : Relational.Cq.t;
      witness : Eval.valuation option;
    }

(* Execution events travel the process-wide Obs stream as typed
   payloads: serializing sinks (--trace) render the args, while
   Explain recovers the full payload from a memory sink — one emission
   point for both. *)
type Obs.payload += Scc_event of event

let names (queries : Query.t array) is =
  String.concat "," (List.map (fun i -> queries.(i).Query.name) is)

let emit name args e = Obs.event ~args ~payload:(Scc_event e) name

(* Safety restricted to live queries: a live postcondition atom must have
   at most one live candidate head. *)
let unsafe_posts_masked (graph : Coordination_graph.t) alive =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (e : Coordination_graph.edge) ->
      if alive.(e.src) && alive.(e.dst) then begin
        let key = (e.src, e.post_index) in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      end)
    graph.extended;
  Hashtbl.fold (fun key c acc -> if c > 1 then key :: acc else acc) counts []
  |> List.sort compare

let select selection queries candidates =
  let score =
    match selection with
    | Largest -> fun c -> List.length c.covered
    | First_found -> fun _ -> 0
    | Preferred f -> f queries
  in
  match candidates with
  | [] -> None
  | first :: rest -> (
    match selection with
    | First_found -> Some first
    | Largest | Preferred _ ->
      let best =
        List.fold_left
          (fun best c -> if score c > score best then c else best)
          first rest
      in
      Some best)

(* ------------------------------------------------------------------ *)
(* Phase 1: database-free analysis                                    *)
(* ------------------------------------------------------------------ *)

type analysis = {
  an_queries : Query.t array;
  an_graph : Coordination_graph.t;
  an_alive : bool array;
  an_scc : Graphs.Scc.result;
  an_cond : Graphs.Digraph.t;
}

(* Graph construction, preprocessing, safety check and SCC condensation
   on already-renamed queries (Figure 6 measures exactly this).  Pure
   with respect to the database, so the executor runs it once on the
   orchestrating domain and shares the result read-only with every
   shard. *)
let analyze ?(preprocess = true) queries =
  let n = Array.length queries in
  let graph =
    Obs.with_span "scc.graph" (fun () -> Coordination_graph.build queries)
  in
  let alive = Array.make n true in
  if preprocess then
    Obs.with_span "scc.preprocess" (fun () ->
        Coordination_graph.prune_unsatisfiable graph ~alive;
        let dead = List.filter (fun i -> not alive.(i)) (List.init n Fun.id) in
        if dead <> [] then
          emit "scc.pruned"
            (fun () -> [ ("dropped", Obs.Str (names queries dead)) ])
            (Pruned dead));
  let unsafe = unsafe_posts_masked graph alive in
  if unsafe <> [] then Error (Not_safe unsafe)
  else begin
    let scc, condensation =
      Obs.with_span "scc.condense" (fun () ->
          let scc =
            Graphs.Scc.compute_masked graph.graph ~alive:(fun v -> alive.(v))
          in
          (scc, Graphs.Scc.condensation graph.graph scc))
    in
    Ok
      {
        an_queries = queries;
        an_graph = graph;
        an_alive = alive;
        an_scc = scc;
        an_cond = condensation;
      }
  end

(* ------------------------------------------------------------------ *)
(* Phase 2: per-component probing                                     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cx_db : Database.t;
  cx_minimize : bool;
  cx_stats : Stats.t;
  (* Failure/coverage state keyed by SCC id.  Sound under sharding
     because condensation edges never cross weakly-connected components:
     a shard's context sees every predecessor-relevant entry. *)
  cx_failed : (int, unit) Hashtbl.t;
  cx_covered : (int, int list) Hashtbl.t;
}

let make_ctx ?(minimize = false) ~stats db =
  {
    cx_db = db;
    cx_minimize = minimize;
    cx_stats = stats;
    cx_failed = Hashtbl.create 32;
    cx_covered = Hashtbl.create 32;
  }

(* One component, in reverse topological order relative to its
   predecessors in the same ctx: probe the candidate set R(q), record
   failure/coverage, return the candidate when the combined query is
   satisfiable.  Raises [Resilient.Abort] through (budget aborts are the
   caller's policy decision). *)
let probe_component ctx a c =
  let queries = a.an_queries in
  let scc = a.an_scc in
  let stats = ctx.cx_stats in
  let successors = Graphs.Digraph.successors a.an_cond c in
  if List.exists (fun s -> Hashtbl.mem ctx.cx_failed s) successors then begin
    Hashtbl.replace ctx.cx_failed c ();
    emit "scc.skipped"
      (fun () -> [ ("component", Obs.Str (names queries scc.members.(c))) ])
      (Skipped { component = scc.members.(c) });
    None
  end
  else begin
    let members =
      List.sort_uniq Int.compare
        (scc.members.(c)
        @ List.concat_map
            (fun s ->
              Option.value ~default:[] (Hashtbl.find_opt ctx.cx_covered s))
            successors)
    in
    let unified, unify_ns =
      Stats.timed (fun () ->
          Obs.with_span
            ~args:(fun () -> [ ("members", Obs.Str (names queries members)) ])
            "scc.unify"
            (fun () -> Combine.unify_set a.an_graph ~members))
    in
    stats.unify_ns <- Int64.add stats.unify_ns unify_ns;
    match unified with
    | Error failure ->
      Hashtbl.replace ctx.cx_failed c ();
      emit "scc.unify_failed"
        (fun () -> [ ("component", Obs.Str (names queries scc.members.(c))) ])
        (Unify_failed { component = scc.members.(c); failure });
      None
    | Ok subst -> (
      let witness, ground_ns =
        Stats.timed (fun () ->
            Obs.with_span
              ~args:(fun () -> [ ("members", Obs.Str (names queries members)) ])
              "scc.ground"
              (fun () ->
                Ground.solve ~minimize:ctx.cx_minimize ctx.cx_db queries
                  ~members subst))
      in
      stats.ground_ns <- Int64.add stats.ground_ns ground_ns;
      stats.candidates <- stats.candidates + 1;
      if Obs.tracing () then
        emit "scc.probed"
          (fun () ->
            [
              ("members", Obs.Str (names queries members));
              ("witness", Obs.Bool (Option.is_some witness));
            ])
          (Probed
             {
               component = scc.members.(c);
               members;
               body = Combine.combined_body a.an_graph ~members subst;
               witness;
             });
      match witness with
      | None ->
        Hashtbl.replace ctx.cx_failed c ();
        None
      | Some assignment ->
        Hashtbl.replace ctx.cx_covered c members;
        Some { covered = members; assignment })
  end

(* ------------------------------------------------------------------ *)
(* The sequential solver                                              *)
(* ------------------------------------------------------------------ *)

let solve ?(selection = Largest) ?(preprocess = true) ?(graph_only = false)
    ?(minimize = false) db input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "scc.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let queries = Query.rename_set input in
  let finish result =
    stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    result
  in
  (* Phase 1: graph construction, preprocessing, SCCs (Figure 6 measures
     exactly this span). *)
  let t_graph = Stats.now_ns () in
  match analyze ~preprocess queries with
  | Error e ->
    stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    finish (Error e)
  | Ok a ->
    let graph = a.an_graph in
    let scc = a.an_scc in
    stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    if graph_only then
      finish
        (Ok
           {
             queries;
             graph;
             candidates = [];
             solution = None;
             stats;
             degraded = None;
           })
    else begin
      (* Phase 2: process components in reverse topological order.  Our
         SCC ids are numbered sinks-first, so ascending id order is
         exactly that. *)
      let ctx = make_ctx ~minimize ~stats db in
      let candidates = ref [] in
      let degraded = ref None in
      let exception Done in
      (try
         for c = 0 to scc.count - 1 do
           (* A guard abort mid-component keeps every candidate already
              probed: components from [c] on are reported unprobed, the
              prefix stands. *)
           try
             match probe_component ctx a c with
             | None -> ()
             | Some cand ->
               candidates := cand :: !candidates;
               (* Under first-found selection, later components cannot
                  change the answer: stop probing the database. *)
               (match selection with
               | First_found -> raise Done
               | Largest | Preferred _ -> ())
           with Resilient.Abort reason ->
             let unprobed =
               List.init (scc.count - c) (fun i -> scc.members.(c + i))
             in
             degraded :=
               Some
                 (Resilient.degraded ~unprobed
                    ~note:
                      (Printf.sprintf "%d of %d components unprobed"
                         (List.length unprobed) scc.count)
                    reason);
             raise Done
         done
       with Done -> ());
      let candidates = List.rev !candidates in
      let solution =
        Option.map
          (fun c -> Solution.make ~members:c.covered ~assignment:c.assignment)
          (select selection queries candidates)
      in
      finish
        (Ok
           { queries; graph; candidates; solution; stats; degraded = !degraded })
    end
