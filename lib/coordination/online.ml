open Relational
open Entangled

type t = {
  db : Database.t;
  selection : Scc_algo.selection;
  eager : bool;
  consume : bool;
  mutable pool : Query.t list;  (* reversed submission order *)
  mutable satisfied : int;
  mutable last_degradation : Resilient.degradation option;
  stats : Stats.t;
}

type coordinated = {
  queries : Query.t list;
  assignment : Eval.valuation;
}

type submission =
  | Coordinated of coordinated
  | Pending
  | Rejected_unsafe of (int * int) list

let create ?(selection = Scc_algo.Largest) ?(eager = true) ?(consume = false) db =
  {
    db;
    selection;
    eager;
    consume;
    pool = [];
    satisfied = 0;
    last_degradation = None;
    stats = Stats.create ();
  }

let pending engine = List.rev engine.pool

let pending_count engine = List.length engine.pool

let total_coordinated engine = engine.satisfied

let stats engine = engine.stats

let last_degradation engine = engine.last_degradation

let accumulate (into : Stats.t) (from : Stats.t) =
  into.db_probes <- into.db_probes + from.db_probes;
  into.graph_ns <- Int64.add into.graph_ns from.graph_ns;
  into.unify_ns <- Int64.add into.unify_ns from.unify_ns;
  into.ground_ns <- Int64.add into.ground_ns from.ground_ns;
  into.total_ns <- Int64.add into.total_ns from.total_ns;
  into.candidates <- into.candidates + from.candidates;
  into.cleaning_rounds <- into.cleaning_rounds + from.cleaning_rounds;
  into.plan_hits <- into.plan_hits + from.plan_hits;
  into.plan_misses <- into.plan_misses + from.plan_misses;
  into.tuples_scanned <- into.tuples_scanned + from.tuples_scanned

(* Weakly connected components of the pool's coordination graph, as
   lists of pool positions (ascending). *)
let components pool_array =
  let renamed = Query.rename_set (Array.to_list pool_array) in
  let graph = Coordination_graph.build renamed in
  let n = Array.length pool_array in
  let undirected = Graphs.Digraph.create n in
  Graphs.Digraph.iter_edges
    (fun u v ->
      Graphs.Digraph.add_edge undirected u v;
      Graphs.Digraph.add_edge undirected v u)
    graph.graph;
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let acc = ref [] in
      let rec dfs u =
        if not seen.(u) then begin
          seen.(u) <- true;
          acc := u :: !acc;
          List.iter dfs (Graphs.Digraph.successors undirected u)
        end
      in
      dfs v;
      comps := List.sort Int.compare !acc :: !comps
    end
  done;
  List.rev !comps

(* Book the grounded body tuples of a fired set: each tuple is one unit
   of inventory.  Two-phase for exception safety: every deletion is
   resolved (relation looked up, variables grounded) before the first
   tuple is removed, so a failure — an unbound variable, a missing
   binding — leaves the store untouched rather than half-consumed. *)
let consume_inventory db (queries : Query.t array) (solution : Solution.t) =
  let deletions =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun (a : Cq.atom) ->
            let tuple =
              Array.map
                (function
                  | Term.Const v -> v
                  | Term.Var x -> Eval.Binding.find x solution.assignment)
                a.args
            in
            match Database.relation_opt db a.rel with
            | Some r -> Some (r, tuple)
            | None -> None)
          queries.(m).Query.body.Cq.atoms)
      solution.members
  in
  List.iter (fun (r, tuple) -> ignore (Relation.delete r tuple)) deletions

(* Evaluate one component (pool positions); on success remove members
   from the pool and report them. *)
let evaluate engine pool_array positions =
  let input = List.map (fun i -> pool_array.(i)) positions in
  match Scc_algo.solve ~selection:engine.selection engine.db input with
  | Error (Scc_algo.Not_safe ws) -> Error ws
  | Ok outcome -> (
    accumulate engine.stats outcome.stats;
    (if outcome.degraded <> None then
       engine.last_degradation <- outcome.degraded);
    match outcome.solution with
    | None -> Ok None
    | Some solution ->
      (* Commit the pool/satisfied bookkeeping BEFORE consuming
         inventory: if the deletion pass failed after the pool shrank,
         the engine would stay coherent (the set genuinely fired); the
         reverse order could delete tuples for a set never recorded as
         satisfied. *)
      (* Map sub-list member indexes back to pool positions. *)
      let position_of = Array.of_list positions in
      let member_positions =
        List.map (fun i -> position_of.(i)) solution.members
      in
      let member_set = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace member_set p ()) member_positions;
      let satisfied_queries =
        List.filteri (fun p _ -> Hashtbl.mem member_set p)
          (Array.to_list pool_array)
      in
      let keep =
        List.filteri (fun p _ -> not (Hashtbl.mem member_set p))
          (Array.to_list pool_array)
      in
      engine.pool <- List.rev keep;
      engine.satisfied <- engine.satisfied + List.length satisfied_queries;
      if engine.consume then
        consume_inventory engine.db outcome.queries solution;
      Ok (Some { queries = satisfied_queries; assignment = solution.assignment }))

let submit engine query =
  Obs.with_span
    ~args:(fun () ->
      [
        ("query", Obs.Str query.Query.name);
        ("pool", Obs.Int (List.length engine.pool));
      ])
    "online.submit"
  @@ fun () ->
  engine.last_degradation <- None;
  engine.pool <- query :: engine.pool;
  if not engine.eager then Pending
  else begin
    let pool_array = Array.of_list (pending engine) in
    let new_position = Array.length pool_array - 1 in
    let component =
      List.find
        (fun c -> List.mem new_position c)
        (components pool_array)
    in
    match evaluate engine pool_array component with
    | Error ws ->
      (* Do not admit a query that makes its component unsafe. *)
      engine.pool <- List.tl engine.pool;
      Rejected_unsafe ws
    | Ok None -> Pending
    | Ok (Some c) -> Coordinated c
  end

let flush engine =
  let pool0 = List.length engine.pool in
  Obs.with_span
    ~args:(fun () ->
      [
        ("pool", Obs.Int pool0);
        ("remaining", Obs.Int (List.length engine.pool));
      ])
    "online.flush"
  @@ fun () ->
  engine.last_degradation <- None;
  let results = ref [] in
  let progress = ref true in
  (* Re-evaluate until a fixpoint: removing one satisfied set can only
     shrink components, and components that failed keep failing, so one
     pass per fired set suffices. *)
  while !progress do
    progress := false;
    let pool_array = Array.of_list (pending engine) in
    if Array.length pool_array > 0 then begin
      let comps = components pool_array in
      (* Evaluate components against the current pool snapshot; stop at
         the first fired set because positions shift afterwards. *)
      let rec try_components = function
        | [] -> ()
        | c :: rest -> (
          match evaluate engine pool_array c with
          | Ok (Some fired) ->
            results := fired :: !results;
            progress := true
          | Ok None | Error _ -> try_components rest)
      in
      try_components comps
    end
  done;
  List.rev !results
