open Relational
open Entangled

type mode = Full_rebuild | Incremental

type coordinated = {
  queries : Query.t list;
  assignment : Eval.valuation;
}

type submission =
  | Coordinated of coordinated
  | Pending
  | Rejected_unsafe of (int * int) list

(* A fired set together with the identity a sharded orchestrator needs
   to merge per-shard fire streams deterministically: [f_key] is the
   smallest live member id of the component that was EVALUATED (not of
   the subset that fired — a remnant can refire under the same key),
   which is exactly the order both sequential flush modes try
   components in. *)
type fired = { f_key : int; f_ids : int list; f_set : coordinated }

type inventory_conflict = {
  double_spent : (string * Tuple.t) list;
  missing : (string * Tuple.t) list;
}

(* Journal of state-changing effects, for a write-ahead log (see
   lib/durable).  Records describe what the engine DID — admissions,
   retirements, the deduplicated inventory deletions of the two-phase
   consume commit — never what it computed, so replaying them
   reconstructs the pool, satisfied count and store without re-running
   any evaluation (and therefore can never fire a different set or
   double-spend a tuple).  [Op_end] closes the group of records one
   public operation emitted; a durability layer uses it as the atomic
   commit boundary. *)
module Journal = struct
  type op = Submit_op | Submit_all_op | Flush_op | Withdraw_op

  type record =
    | Submitted of { id : int; query : Query.t }
    | Rejected of { id : int }  (** admitted then evicted as unsafe *)
    | Retired of { ids : int list }  (** a fired set left the pool *)
    | Consumed of { deletions : (string * Tuple.t) list }
    | Op_end of { op : op; fired : int }

  type sink = record -> unit
end

(* One pooled query.  [neighbours] stores the undirected coordination
   adjacency discovered when the entry (or a later partner) arrived, so
   a dissolved component can be re-linked locally without rebuilding any
   graph.  Ids are submission order and never reused; an id is live iff
   it is present in [entries]. *)
type entry = {
  id : int;
  query : Query.t;
  mutable neighbours : int list;
}

type t = {
  db : Database.t;
  selection : Scc_algo.selection;
  eager : bool;
  consume : bool;
  mode : mode;
  entries : (int, entry) Hashtbl.t;  (* the live pool, keyed by id *)
  mutable next_id : int;
  (* Incremental-mode state.  The two atom indexes cover the post/head
     atoms of every live entry (payload = owner id): a new arrival
     probes its posts against pooled heads and its heads against pooled
     posts to discover coordination edges without re-unifying against
     the whole pool.  [uf]/[comp_members] maintain the weakly-connected
     component partition; [dirty] the set of live ids whose component
     must be re-evaluated (a component is dirty iff any member is). *)
  posts_index : int Coordination_graph.Atom_index.t;
  heads_index : int Coordination_graph.Atom_index.t;
  uf : Graphs.Union_find.t;
  comp_members : (int, int list) Hashtbl.t;  (* uf root -> live member ids *)
  dirty : (int, unit) Hashtbl.t;
  mutable db_version : int;
  mutable satisfied : int;
  mutable last_degradation : Resilient.degradation option;
  mutable last_conflict : inventory_conflict option;
  mutable journal : Journal.sink option;
  stats : Stats.t;
}

let create ?(selection = Scc_algo.Largest) ?(eager = true) ?(consume = false)
    ?(mode = Incremental) db =
  {
    db;
    selection;
    eager;
    consume;
    mode;
    entries = Hashtbl.create 64;
    next_id = 0;
    posts_index = Coordination_graph.Atom_index.create ();
    heads_index = Coordination_graph.Atom_index.create ();
    uf = Graphs.Union_find.create ();
    comp_members = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    db_version = Database.data_version db;
    satisfied = 0;
    last_degradation = None;
    last_conflict = None;
    journal = None;
    stats = Stats.create ();
  }

let mode engine = engine.mode
let selection engine = engine.selection
let eager engine = engine.eager
let consume engine = engine.consume
let set_journal engine sink = engine.journal <- sink

let emit engine record =
  match engine.journal with None -> () | Some sink -> sink record

(* Live entries in submission (= id) order. *)
let live_entries engine =
  Hashtbl.fold (fun _ e acc -> e :: acc) engine.entries []
  |> List.sort (fun a b -> Int.compare a.id b.id)

let pending engine = List.map (fun e -> e.query) (live_entries engine)

let pending_entries engine =
  List.map (fun e -> (e.id, e.query)) (live_entries engine)

let next_id engine = engine.next_id

let pending_count engine = Hashtbl.length engine.entries

let total_coordinated engine = engine.satisfied

let stats engine = engine.stats

let last_degradation engine = engine.last_degradation

let last_inventory_conflict engine = engine.last_conflict

let mark_dirty engine id = Hashtbl.replace engine.dirty id ()

(* If the database moved since the engine last looked (external inserts
   or deletes — e.g. repl [fact] statements), every cached "this
   component cannot fire" verdict is stale: mark the whole pool dirty.
   The stamp is per-database, so only mutations of *this* engine's
   database trigger a refresh. *)
let refresh_db_version engine =
  match engine.mode with
  | Full_rebuild -> ()
  | Incremental ->
    let v = Database.data_version engine.db in
    if v <> engine.db_version then begin
      engine.db_version <- v;
      Hashtbl.iter (fun id _ -> mark_dirty engine id) engine.entries
    end

(* Absorb the engine's own inventory deletions at the end of an
   operation: conjunctive queries are monotone, so deleting tuples can
   only shrink answer sets — a component that just evaluated to
   "cannot fire" still cannot, and need not be re-dirtied. *)
let sync_db_version engine =
  if engine.mode = Incremental then
    engine.db_version <- Database.data_version engine.db

(* Every public operation starts here.  Per-operation verdicts from the
   PREVIOUS operation — a degradation, an inventory conflict — are
   cleared in one place so no entry point can forget and report (or
   journal) a stale failure after a later clean pass; then external
   database mutations are absorbed into the dirty set. *)
let begin_op engine =
  engine.last_degradation <- None;
  engine.last_conflict <- None;
  refresh_db_version engine

let index_entry engine e =
  List.iter
    (fun a -> Coordination_graph.Atom_index.add engine.posts_index a e.id)
    e.query.Query.post;
  List.iter
    (fun a -> Coordination_graph.Atom_index.add engine.heads_index a e.id)
    e.query.Query.head

let unindex_entry engine e =
  let is_me id = id = e.id in
  List.iter
    (fun a -> Coordination_graph.Atom_index.remove engine.posts_index a is_me)
    e.query.Query.post;
  List.iter
    (fun a -> Coordination_graph.Atom_index.remove engine.heads_index a is_me)
    e.query.Query.head

(* Coordination partners of [q] within the current pool: an edge exists
   when one side's postcondition is {!Coordination_graph.compatible}
   with the other side's head.  Compatibility only inspects relation
   symbols and constants, so probing the ORIGINAL (unrenamed) atoms
   finds exactly the edges a rebuilt graph over the renamed pool
   would. *)
let discover_partners engine (q : Query.t) =
  let probe_all atoms index =
    List.concat_map
      (fun a ->
        List.map snd (Coordination_graph.Atom_index.probe index a))
      atoms
  in
  let outgoing = probe_all q.Query.post engine.heads_index in
  let incoming = probe_all q.Query.head engine.posts_index in
  List.sort_uniq Int.compare (List.rev_append outgoing incoming)

(* Merge the component member lists when two roots fuse. *)
let union_ids engine a b =
  let ra = Graphs.Union_find.find engine.uf a in
  let rb = Graphs.Union_find.find engine.uf b in
  if ra <> rb then begin
    let ma =
      Option.value ~default:[] (Hashtbl.find_opt engine.comp_members ra)
    in
    let mb =
      Option.value ~default:[] (Hashtbl.find_opt engine.comp_members rb)
    in
    let r = Graphs.Union_find.union engine.uf a b in
    Hashtbl.remove engine.comp_members ra;
    Hashtbl.remove engine.comp_members rb;
    Hashtbl.replace engine.comp_members r (List.rev_append ma mb)
  end

(* Admit a query into the pool.  In incremental mode this is where all
   persistent state is maintained: probe the indexes for partners
   (before indexing the entry's own atoms, so it cannot partner with
   itself), record the adjacency on both sides, union into the
   partition, and mark the (possibly fused) component dirty.

   [admit] takes the id explicitly so recovery replay (lib/durable) can
   re-admit entries under their journaled ids; live submissions go
   through [add_entry], which allocates the next id. *)
let admit engine ~id query =
  if id >= engine.next_id then engine.next_id <- id + 1;
  let e = { id; query; neighbours = [] } in
  (match engine.mode with
  | Full_rebuild -> Hashtbl.replace engine.entries id e
  | Incremental ->
    let partners = discover_partners engine query in
    e.neighbours <- partners;
    List.iter
      (fun p ->
        let pe = Hashtbl.find engine.entries p in
        pe.neighbours <- id :: pe.neighbours)
      partners;
    Hashtbl.replace engine.entries id e;
    index_entry engine e;
    Graphs.Union_find.ensure engine.uf id;
    (* A re-attached id (shard migration round-trip) may carry a stale
       parent pointer from its retirement in this engine; reset makes it
       a singleton root again.  For a fresh id this is a no-op. *)
    Graphs.Union_find.reset engine.uf id;
    Hashtbl.replace engine.comp_members id [ id ];
    List.iter (fun p -> union_ids engine id p) partners;
    mark_dirty engine id);
  e

let add_entry engine query = admit engine ~id:engine.next_id query

(* Remove [ids] from the pool.  In incremental mode their components are
   dissolved: every surviving member is reset to a union-find singleton
   and re-unioned from its stored (still-live) adjacency, rebuilding the
   partition locally.  Survivors are marked dirty — retirement shrinks
   their component, which can newly enable a coordinating set among the
   remainder (the fired set may have been what made a candidate
   unsafe or over-constrained). *)
let retire engine ids =
  match engine.mode with
  | Full_rebuild -> List.iter (fun id -> Hashtbl.remove engine.entries id) ids
  | Incremental ->
    let roots =
      List.sort_uniq Int.compare
        (List.map (fun id -> Graphs.Union_find.find engine.uf id) ids)
    in
    let component_ids =
      List.concat_map
        (fun r ->
          Option.value ~default:[] (Hashtbl.find_opt engine.comp_members r))
        roots
    in
    List.iter
      (fun id ->
        let e = Hashtbl.find engine.entries id in
        unindex_entry engine e;
        Hashtbl.remove engine.entries id;
        Hashtbl.remove engine.dirty id)
      ids;
    List.iter (fun r -> Hashtbl.remove engine.comp_members r) roots;
    let survivors =
      List.filter (fun id -> Hashtbl.mem engine.entries id) component_ids
    in
    (* Reset every survivor first: afterwards each live node of the old
       tree is its own root, so the re-union pass below only ever links
       freshly reset roots.  Retired nodes may keep stale parent
       pointers into the old tree, but nothing ever calls [find] on a
       retired id again. *)
    List.iter
      (fun id ->
        let e = Hashtbl.find engine.entries id in
        e.neighbours <-
          List.filter (fun nb -> Hashtbl.mem engine.entries nb) e.neighbours;
        Graphs.Union_find.reset engine.uf id;
        Hashtbl.replace engine.comp_members id [ id ])
      survivors;
    List.iter
      (fun id ->
        let e = Hashtbl.find engine.entries id in
        List.iter (fun nb -> union_ids engine id nb) e.neighbours;
        mark_dirty engine id)
      survivors

(* Weakly connected components of a query array's coordination graph, as
   lists of positions (each ascending, components ordered by first
   member).  Traversal uses an explicit work stack: a recursive DFS here
   used to exhaust the call stack on deep chain-shaped pools.  Renaming
   the queries apart is unnecessary — edge existence only inspects
   relation symbols and constants, which renaming preserves. *)
let wcc (pool : Query.t array) =
  let graph = (Coordination_graph.build pool).Coordination_graph.graph in
  let n = Array.length pool in
  let undirected = Graphs.Digraph.create n in
  Graphs.Digraph.iter_edges
    (fun u v ->
      Graphs.Digraph.add_edge undirected u v;
      Graphs.Digraph.add_edge undirected v u)
    graph;
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let acc = ref [] in
      let stack = ref [ v ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          if not seen.(u) then begin
            seen.(u) <- true;
            acc := u :: !acc;
            List.iter
              (fun w -> if not seen.(w) then stack := w :: !stack)
              (Graphs.Digraph.successors undirected u)
          end
      done;
      comps := List.sort Int.compare !acc :: !comps
    end
  done;
  List.rev !comps

let components engine =
  let live = live_entries engine in
  match engine.mode with
  | Full_rebuild ->
    wcc (Array.of_list (List.map (fun e -> e.query) live))
  | Incremental ->
    let position = Hashtbl.create (2 * List.length live) in
    List.iteri (fun i e -> Hashtbl.replace position e.id i) live;
    let groups = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let r = Graphs.Union_find.find engine.uf e.id in
        let l = Option.value ~default:[] (Hashtbl.find_opt groups r) in
        Hashtbl.replace groups r (Hashtbl.find position e.id :: l))
      live;
    Hashtbl.fold (fun _ l acc -> List.rev l :: acc) groups []
    |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))

(* Book the grounded body tuples of a fired set: each tuple is one unit
   of inventory.  Two-phase for exception safety: every deletion is
   resolved (relation looked up, variables grounded) before the first
   tuple is removed, so a failure — an unbound variable, a missing
   binding — leaves the store untouched rather than half-consumed.

   The resolved list is deduplicated before deletion.  Two members of a
   fired set can ground onto the SAME tuple (one seat block serving two
   bookings), and a tuple can already be absent; silently issuing the
   deletes would hide both.  The set still fires — its members genuinely
   coordinated, and refusing here would leave them half-committed — but
   the conflict is recorded on the engine and emitted as an Obs event so
   the caller can compensate. *)
let consume_inventory engine (queries : Query.t array) (solution : Solution.t)
    =
  let deletions =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun (a : Cq.atom) ->
            let tuple =
              Array.map
                (function
                  | Term.Const v -> v
                  | Term.Var x -> Eval.Binding.find x solution.assignment)
                a.args
            in
            match Database.relation_opt engine.db a.rel with
            | Some r -> Some (a.rel, r, tuple)
            | None -> None)
          queries.(m).Query.body.Cq.atoms)
      solution.members
  in
  (* Demand count per (relation, tuple), in first-demand order. *)
  let counts = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, r, tuple) ->
      let key = (name, tuple) in
      match Hashtbl.find_opt counts key with
      | Some (n, _) -> Hashtbl.replace counts key (n + 1, r)
      | None ->
        Hashtbl.replace counts key (1, r);
        order := key :: !order)
    deletions;
  let order = List.rev !order in
  (* Journal the deduplicated deletion list — the exact tuples the
     delete pass below issues, each once — so replay re-applies the
     committed bookings verbatim and can never double-spend. *)
  if order <> [] then emit engine (Journal.Consumed { deletions = order });
  let double_spent =
    List.filter (fun key -> fst (Hashtbl.find counts key) > 1) order
  in
  let missing =
    List.filter
      (fun key ->
        let _, r = Hashtbl.find counts key in
        not (Relation.delete r (snd key)))
      order
  in
  if double_spent <> [] || missing <> [] then begin
    engine.last_conflict <- Some { double_spent; missing };
    Obs.event
      ~args:(fun () ->
        [
          ("double_spent", Obs.Int (List.length double_spent));
          ("missing", Obs.Int (List.length missing));
        ])
      "online.inventory_conflict"
  end

(* Evaluate one component, given as a list of live ids in ascending
   order; on success retire the members and report them. *)
let evaluate engine ids =
  let id_of_position = Array.of_list ids in
  let input =
    List.map (fun id -> (Hashtbl.find engine.entries id).query) ids
  in
  match Scc_algo.solve ~selection:engine.selection engine.db input with
  | Error (Scc_algo.Not_safe ws) -> Error ws
  | Ok outcome -> (
    Stats.merge ~into:engine.stats outcome.stats;
    (if outcome.degraded <> None then
       engine.last_degradation <- outcome.degraded);
    match outcome.solution with
    | None ->
      (* A complete (non-degraded) quiescent evaluation is cachable: the
         component cannot fire until its membership or the database
         changes, and both of those mark it dirty again.  A degraded
         evaluation proves nothing — some candidate was never probed —
         so it must stay dirty for the next flush. *)
      if engine.mode = Incremental && outcome.degraded = None then
        List.iter (fun id -> Hashtbl.remove engine.dirty id) ids;
      Ok None
    | Some solution ->
      (* Commit the pool/satisfied bookkeeping BEFORE consuming
         inventory: if the deletion pass failed after the pool shrank,
         the engine would stay coherent (the set genuinely fired); the
         reverse order could delete tuples for a set never recorded as
         satisfied. *)
      let member_ids = List.map (fun i -> id_of_position.(i)) solution.members in
      let satisfied_queries =
        List.map (fun id -> (Hashtbl.find engine.entries id).query) member_ids
      in
      retire engine member_ids;
      engine.satisfied <- engine.satisfied + List.length satisfied_queries;
      emit engine (Journal.Retired { ids = member_ids });
      if engine.consume then consume_inventory engine outcome.queries solution;
      Ok
        (Some
           {
             f_key = List.hd ids;
             f_ids = member_ids;
             f_set =
               { queries = satisfied_queries; assignment = solution.assignment };
           }))

(* The ids of the component containing [e], ascending. *)
let component_of engine (e : entry) =
  match engine.mode with
  | Incremental ->
    let r = Graphs.Union_find.find engine.uf e.id in
    List.sort Int.compare
      (Option.value ~default:[ e.id ]
         (Hashtbl.find_opt engine.comp_members r))
  | Full_rebuild ->
    let live = live_entries engine in
    let ids = Array.of_list (List.map (fun x -> x.id) live) in
    let positions =
      List.find
        (fun c -> List.exists (fun p -> ids.(p) = e.id) c)
        (wcc (Array.of_list (List.map (fun x -> x.query) live)))
    in
    List.map (fun p -> ids.(p)) positions

let submit ?id engine query =
  Obs.with_span
    ~args:(fun () ->
      [
        ("query", Obs.Str query.Query.name);
        ("pool", Obs.Int (Hashtbl.length engine.entries));
      ])
    "online.submit"
  @@ fun () ->
  begin_op engine;
  let e =
    match id with
    | None -> add_entry engine query
    | Some id ->
      (* A sharded orchestrator allocates ids globally and forces them
         here, so per-shard pools share one id space. *)
      if id < engine.next_id then
        invalid_arg
          (Printf.sprintf "Online.submit: forced id %d below next_id %d" id
             engine.next_id);
      admit engine ~id query
  in
  emit engine (Journal.Submitted { id = e.id; query });
  let result =
    if not engine.eager then Pending
    else
      match evaluate engine (component_of engine e) with
      | Error ws ->
        (* Do not admit a query that makes its component unsafe. *)
        retire engine [ e.id ];
        emit engine (Journal.Rejected { id = e.id });
        Rejected_unsafe ws
      | Ok None -> Pending
      | Ok (Some fr) -> Coordinated fr.f_set
  in
  emit engine
    (Journal.Op_end
       {
         op = Journal.Submit_op;
         fired =
           (match result with Coordinated c -> List.length c.queries | _ -> 0);
       });
  sync_db_version engine;
  result

(* Withdraw a pending entry by pool id — the service layer's `retire`
   verb: a client takes an offer back before it coordinates.  Journaled
   as a [Rejected] effect (the replay semantics are identical to an
   unsafe eviction: the id leaves the pool with no satisfied-count
   change).  Removal can newly enable a coordinating set among the
   remainder — the withdrawn query may have been what made its
   component unsafe or over-constrained — so survivors are marked
   dirty by [retire]; the next flush (or eager submit) re-evaluates
   them. *)
let withdraw engine id =
  Obs.with_span
    ~args:(fun () ->
      [
        ("id", Obs.Int id);
        ("pool", Obs.Int (Hashtbl.length engine.entries));
      ])
    "online.withdraw"
  @@ fun () ->
  begin_op engine;
  if not (Hashtbl.mem engine.entries id) then false
  else begin
    retire engine [ id ];
    emit engine (Journal.Rejected { id });
    emit engine (Journal.Op_end { op = Journal.Withdraw_op; fired = 0 });
    sync_db_version engine;
    true
  end

(* Full-rebuild flush: re-derive the components of the whole pool, try
   each in order, restart after a fire (positions shift).  Re-evaluate
   until a fixpoint: removing one satisfied set can newly enable
   another among the remainder. *)
let flush_full engine results =
  let progress = ref true in
  while !progress do
    progress := false;
    let live = live_entries engine in
    if live <> [] then begin
      let ids = Array.of_list (List.map (fun e -> e.id) live) in
      let comps = wcc (Array.of_list (List.map (fun e -> e.query) live)) in
      let rec try_components = function
        | [] -> ()
        | c :: rest -> (
          match evaluate engine (List.map (fun p -> ids.(p)) c) with
          | Ok (Some fired) ->
            results := fired :: !results;
            progress := true
          | Ok None | Error _ -> try_components rest)
      in
      try_components comps
    end
  done

(* Incremental flush: only dirty components are evaluated — an all-clean
   component was last evaluated (completely, to no fire) with exactly
   its current member set and database contents, so it provably cannot
   fire now.  Components are tried in order of their smallest member id,
   matching the full rebuild's position order; since clean components
   cannot fire, both modes fire the same sets in the same order. *)
let flush_incremental engine results =
  let progress = ref true in
  while !progress do
    progress := false;
    let roots = Hashtbl.create 8 in
    Hashtbl.iter
      (fun id () ->
        if Hashtbl.mem engine.entries id then
          Hashtbl.replace roots (Graphs.Union_find.find engine.uf id) ())
      engine.dirty;
    let comps =
      Hashtbl.fold
        (fun r () acc ->
          match Hashtbl.find_opt engine.comp_members r with
          | None | Some [] -> acc
          | Some ids -> List.sort Int.compare ids :: acc)
        roots []
      |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))
    in
    let rec try_components = function
      | [] -> ()
      | c :: rest -> (
        match evaluate engine c with
        | Ok (Some fired) ->
          (* Membership changed: abandon the stale component list and
             rescan (the untried components stay dirty). *)
          results := fired :: !results;
          progress := true
        | Ok None -> try_components rest
        | Error _ ->
          (* An unsafe component cannot fire until its membership or
             the database changes — both mark it dirty again — so its
             verdict caches exactly like a quiescent one. *)
          List.iter (fun id -> Hashtbl.remove engine.dirty id) c;
          try_components rest)
    in
    try_components comps
  done

let flush_core engine =
  let results = ref [] in
  (match engine.mode with
  | Full_rebuild -> flush_full engine results
  | Incremental -> flush_incremental engine results);
  List.rev !results

(* The components a flush round must (re-)evaluate, as ascending id
   lists ordered by smallest member — the order both sequential flush
   modes try them in.  Full-rebuild has no dirty tracking: every live
   component is due every round, exactly as [flush_full] re-derives
   them. *)
let dirty_components engine =
  match engine.mode with
  | Full_rebuild -> (
    match live_entries engine with
    | [] -> []
    | live ->
      let ids = Array.of_list (List.map (fun e -> e.id) live) in
      wcc (Array.of_list (List.map (fun e -> e.query) live))
      |> List.map (List.map (fun p -> ids.(p))))
  | Incremental ->
    let roots = Hashtbl.create 8 in
    Hashtbl.iter
      (fun id () ->
        if Hashtbl.mem engine.entries id then
          Hashtbl.replace roots (Graphs.Union_find.find engine.uf id) ())
      engine.dirty;
    Hashtbl.fold
      (fun r () acc ->
        match Hashtbl.find_opt engine.comp_members r with
        | None | Some [] -> acc
        | Some ids -> List.sort Int.compare ids :: acc)
      roots []
    |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))

(* Parallel flush: each round evaluates every due component
   speculatively — read-only, on unguarded worker views sharing the
   store — then walks the verdicts in the sequential order.  "Cannot
   fire" verdicts are sound to trust and cache because the store did
   not move during the round (workers only read) and conjunctive
   queries are monotone; the first "can fire" component is re-evaluated
   through the sequential [evaluate] on the engine's own database,
   which commits the retirement and inventory consumption, and the
   round restarts — so the fired sequence, the final store and the
   pending pool are exactly the sequential flush's.  Components after
   the first fire are left untouched (still dirty), like the
   sequential rescan.

   Stats: no-fire outcomes are merged as the sequential flush would
   have, and per-component probe/tuple/candidate counts are
   deterministic; only the plan-cache hit/miss split can attribute
   differently, because which concurrent evaluation compiles a shared
   shape first depends on the schedule (the hit+miss total is stable).
   Speculative evaluations of components at or beyond the first fire
   are discarded unmerged. *)
let flush_speculative engine k =
  let results = ref [] in
  Database.warm_indexes engine.db;
  let progress = ref true in
  while !progress do
    progress := false;
    let comps = dirty_components engine in
    if comps <> [] then begin
      let comp_arr = Array.of_list comps in
      let inputs =
        Array.map
          (fun ids ->
            List.map (fun id -> (Hashtbl.find engine.entries id).query) ids)
          comp_arr
      in
      let verdicts =
        Executor.Pool.map ~domains:k
          ~weights:(Array.map List.length comp_arr)
          (fun i ->
            let view = Database.worker_view engine.db in
            Scc_algo.solve ~selection:engine.selection view inputs.(i))
      in
      (* [Pool.map] joined every domain already; surface the first
         trapped crash through the canonical path (which also dumps a
         flight-recorder incident) rather than a bare raise. *)
      Executor.raise_first_crash verdicts;
      let fired_this_round = ref false in
      Array.iteri
        (fun i verdict ->
          if not !fired_this_round then
            match verdict with
            | Error _ -> assert false
            | Ok (Error _ws) ->
              (* Unsafe: the verdict caches exactly as in the
                 sequential flush. *)
              if engine.mode = Incremental then
                List.iter
                  (fun id -> Hashtbl.remove engine.dirty id)
                  comp_arr.(i)
            | Ok (Ok outcome) -> (
              match outcome.Scc_algo.solution with
              | None ->
                Stats.merge ~into:engine.stats outcome.Scc_algo.stats;
                if engine.mode = Incremental then
                  List.iter
                    (fun id -> Hashtbl.remove engine.dirty id)
                    comp_arr.(i)
              | Some _ -> (
                match evaluate engine comp_arr.(i) with
                | Ok (Some fired) ->
                  results := fired :: !results;
                  fired_this_round := true;
                  progress := true
                | Ok None | Error _ -> ())))
        verdicts
    end
  done;
  List.rev !results

let flush ?domains engine =
  let pool0 = Hashtbl.length engine.entries in
  Obs.with_span
    ~args:(fun () ->
      [
        ("pool", Obs.Int pool0);
        ("remaining", Obs.Int (Hashtbl.length engine.entries));
      ])
    "online.flush"
  @@ fun () ->
  begin_op engine;
  let fired =
    match domains with
    | None -> flush_core engine
    | Some k -> flush_speculative engine (max 1 k)
  in
  emit engine
    (Journal.Op_end { op = Journal.Flush_op; fired = List.length fired });
  sync_db_version engine;
  List.map (fun fr -> fr.f_set) fired

let submit_all engine queries =
  Obs.with_span
    ~args:(fun () ->
      [
        ("batch", Obs.Int (List.length queries));
        ("pool", Obs.Int (Hashtbl.length engine.entries));
      ])
    "online.submit_all"
  @@ fun () ->
  begin_op engine;
  List.iter
    (fun q ->
      let e = add_entry engine q in
      emit engine (Journal.Submitted { id = e.id; query = q }))
    queries;
  let fired = flush_core engine in
  emit engine
    (Journal.Op_end { op = Journal.Submit_all_op; fired = List.length fired });
  sync_db_version engine;
  List.map (fun fr -> fr.f_set) fired

(* Recovery replay (lib/durable).  These re-apply journaled effects to
   a fresh engine without evaluating anything: the journal already says
   which sets fired and which tuples were booked, so replay cannot
   diverge from the pre-crash history.  None of them emit journal
   records — recovery attaches its sink only after replay finishes. *)

let restore_submit engine ~id query =
  if id < engine.next_id then
    invalid_arg
      (Printf.sprintf "Online.restore_submit: id %d below next_id %d" id
         engine.next_id);
  ignore (admit engine ~id query)

let restore_retire engine ids =
  List.iter
    (fun id ->
      if not (Hashtbl.mem engine.entries id) then
        invalid_arg (Printf.sprintf "Online.restore_retire: id %d not live" id))
    ids;
  retire engine ids;
  engine.satisfied <- engine.satisfied + List.length ids

let restore_evict engine id =
  if not (Hashtbl.mem engine.entries id) then
    invalid_arg (Printf.sprintf "Online.restore_evict: id %d not live" id);
  retire engine [ id ]

let restore_counters engine ~satisfied ~next_id =
  if next_id < engine.next_id then
    invalid_arg "Online.restore_counters: next_id below an admitted id";
  engine.satisfied <- satisfied;
  engine.next_id <- next_id

(* Orchestrator hooks (lib/coordination/online_sharded).  A sharded
   engine runs one of these engines per shard and manages the public
   operation boundary itself: it brackets every operation with
   [prepare_op]/[finish_op] on every shard, moves whole components
   between shards with [detach]/[attach], and drives flush rounds
   through [flush_fired]/[due_components]/[evaluate_due] so it can
   merge per-shard fire streams into the sequential order.  None of
   these emit [Journal.Op_end] — the orchestrator owns the commit
   boundary. *)

let prepare_op = begin_op
let finish_op = sync_db_version
let due_components = dirty_components
let flush_fired engine = flush_core engine

let evaluate_due engine ids =
  match evaluate engine ids with
  | Error _ ->
    (* Cache the unsafe verdict exactly as [flush_incremental] does. *)
    if engine.mode = Incremental then
      List.iter (fun id -> Hashtbl.remove engine.dirty id) ids;
    `Unsafe
  | Ok None -> `Quiet
  | Ok (Some fr) -> `Fired fr

type moved = { mv_id : int; mv_query : Query.t; mv_dirty : bool }

let detach engine ids =
  let ids = List.sort_uniq Int.compare ids in
  let moved =
    List.map
      (fun id ->
        match Hashtbl.find_opt engine.entries id with
        | None ->
          invalid_arg (Printf.sprintf "Online.detach: id %d not live" id)
        | Some e ->
          {
            mv_id = id;
            mv_query = e.query;
            mv_dirty = Hashtbl.mem engine.dirty id;
          })
      ids
  in
  retire engine ids;
  moved

let attach engine moved =
  List.iter
    (fun m ->
      if Hashtbl.mem engine.entries m.mv_id then
        invalid_arg
          (Printf.sprintf "Online.attach: id %d already live" m.mv_id);
      ignore (admit engine ~id:m.mv_id m.mv_query);
      (* [admit] marks the new entry dirty; preserve the source shard's
         verdict instead — migration alone re-evaluates nothing, exactly
         as the sequential engine would not. *)
      if not m.mv_dirty then Hashtbl.remove engine.dirty m.mv_id)
    moved

let mirror_sink engine : Journal.sink = function
  | Journal.Submitted { id; query } -> restore_submit engine ~id query
  | Journal.Retired { ids } -> restore_retire engine ids
  | Journal.Rejected { id } -> restore_evict engine id
  | Journal.Consumed _ | Journal.Op_end _ ->
    (* Inventory deletions hit the shared store directly; nothing to
       mirror.  Op boundaries are the durability layer's concern. *)
    ()
