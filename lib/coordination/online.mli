(** Online (incremental) coordination.

    Section 6.1 describes how the SCC algorithm sits inside a running
    system: "when a new query arrives, the system finds the set of
    queries this query can coordinate with and updates the coordination
    graph accordingly.  The system then calls an evaluation method on
    the connected component that the query belongs to ... the system
    then deletes these queries from its data structures and continues to
    process the next query that arrives."  Section 7 asks for exactly
    this online setting.  This module implements it.

    An engine holds a pool of pending queries.  Submitting a query adds
    it to the pool and (in eager mode) evaluates only the weakly
    connected component of the coordination graph that contains it; a
    found coordinating set is reported and its members leave the pool.
    Deferred submissions accumulate until {!flush} (or arrive batched
    through {!submit_all}), which evaluates pending components — useful
    for batching, and equivalent to one {!Scc_algo.solve} per component.

    {2 Incremental vs full rebuild}

    Two observationally equivalent engine {!mode}s exist.
    [Full_rebuild] is the reference implementation: every evaluation
    rebuilds the coordination graph and re-derives the weakly-connected
    components of the {e whole} pool — O(pool²) work per submission.
    [Incremental] (the default) maintains persistent per-engine state
    instead, the shape Chen et al.'s {e enmeshed queries} system uses
    for this workload:

    - an {b atom index} keyed by relation symbol and first-argument
      constant ({!Coordination_graph.Atom_index}) over the pool's
      postcondition and head atoms, so a new arrival discovers its
      coordination edges by probing the index instead of re-unifying
      against every pooled query;
    - a {b union-find} ({!Graphs.Union_find}) maintaining the
      weakly-connected-component partition as edges are added, with
      component dissolution and local re-linking (from stored adjacency)
      only when a fired set retires its members;
    - {b dirty-component tracking}: {!flush} and {!submit_all}
      re-evaluate only components touched since their last evaluation —
      a new member, a retirement, or any database mutation
      ({!Relational.Database.data_version}) marks a component dirty;
      untouched components provably cannot fire (evaluation is
      deterministic and already found nothing), so their cached outcome
      stands.  Degraded evaluations (see {!Resilient}) stay dirty.

    Per-submission cost drops from O(pool²) to O(edges touched). *)

open Relational
open Entangled

type t

type mode =
  | Full_rebuild  (** rebuild graph + components of the whole pool per
                      evaluation (reference implementation) *)
  | Incremental   (** persistent atom index, union-find and dirty
                      tracking (default) *)

val create :
  ?selection:Scc_algo.selection ->
  ?eager:bool ->
  ?consume:bool ->
  ?mode:mode ->
  Database.t ->
  t
(** [eager] (default [true]): evaluate on every submission.  With
    [eager:false], submissions only enqueue; call {!flush}.

    [consume] (default [false]): when a set coordinates, delete the
    grounded body tuples its members used from the database — each tuple
    is one bookable unit (a flight seat block, a class section), so later
    arrivals cannot coordinate on spent inventory.

    [mode] (default [Incremental]): see the module comment.  Both modes
    produce identical coordinated sets, pool contents and satisfied
    counts for any interleaving of operations; they differ only in cost. *)

val mode : t -> mode

val selection : t -> Scc_algo.selection

val eager : t -> bool

val consume : t -> bool

type coordinated = {
  queries : Query.t list;        (** the satisfied queries, in pool order *)
  assignment : Eval.valuation;
      (** over the members' variables, renamed with the prefixes of
          their positions within the evaluated component *)
}

type submission =
  | Coordinated of coordinated  (** a set fired; its members left the pool *)
  | Pending                      (** enqueued, waiting for partners *)
  | Rejected_unsafe of (int * int) list
      (** the component became unsafe; the new query was NOT admitted *)

val submit : ?id:int -> t -> Query.t -> submission
(** Submit one query.  [?id] forces the admitted entry's pool id — the
    hook a sharded orchestrator ({!Online_sharded}) uses to keep one
    global id space across per-shard pools; it must be at least
    {!next_id}.
    @raise Invalid_argument if [id] is below {!next_id}. *)

val submit_all : t -> Query.t list -> coordinated list
(** Batched submission: enqueue the whole batch (regardless of [eager]),
    then evaluate pending components as {!flush} does.  One index/graph
    maintenance pass per query and one evaluation per touched component,
    instead of one component evaluation per submission — the batched
    counterpart of eager {!submit}.  Queries whose component is unsafe
    are left pending (there is no single arrival to reject). *)

val flush : ?domains:int -> t -> coordinated list
(** Evaluate the pending pool's weakly connected components — in
    incremental mode, only those touched since their last evaluation;
    satisfied sets leave the pool.  Returns them in discovery order.

    With [~domains:k] the due components are the shard list for the
    batch executor's pool ({!Executor.Pool}): each flush round
    evaluates every due component speculatively on read-only
    {!Relational.Database.worker_view}s across [k] domains, trusts and
    caches the "cannot fire" verdicts (sound because workers never
    write and conjunctive queries are monotone), and commits only the
    first fireable component — re-evaluated sequentially on the
    engine's database so retirement and inventory consumption are
    exactly the sequential flush's.  Fired sets, final store and
    pending pool are identical to [flush] without [domains] for any
    [k]; cumulative {!stats} match too except that the plan-cache
    hit/miss split may attribute differently (the total is stable).
    Worker views are unguarded: any {!Resilient} guard on the engine's
    database only constrains the committing evaluations. *)

val withdraw : t -> int -> bool
(** [withdraw engine id] removes the pending entry with pool id [id]
    (see {!pending_entries}) without satisfying it — the online
    counterpart of a client cancelling an offer it no longer wants.
    Returns [false] when [id] is not live (never admitted, already
    coordinated, or already withdrawn); the engine is unchanged.
    Journaled as an eviction, so a durable session replays it exactly.
    Removal can newly enable a coordinating set among the remaining
    pool members; the affected component is re-evaluated at the next
    {!flush} or eager {!submit}. *)

val pending : t -> Query.t list
(** Queries still waiting, in submission order. *)

val pending_entries : t -> (int * Query.t) list
(** Queries still waiting with their pool ids, in submission (= id)
    order.  Ids are allocated in submission order and never reused, so
    they are stable names for entries across retirements — the identity
    a write-ahead log journals and a recovery replays
    (see [lib/durable]). *)

val next_id : t -> int
(** The id the next admitted entry will receive (strictly greater than
    every id ever admitted, live or retired). *)

val pending_count : t -> int

val components : t -> int list list
(** The weakly-connected-component partition of the pending pool, as
    lists of positions into {!pending} (each sorted ascending,
    components ordered by their first member).  Exposed for diagnostics
    and differential testing; in incremental mode this reads the
    union-find instead of traversing a rebuilt graph. *)

val total_coordinated : t -> int
(** Queries satisfied over the engine's lifetime. *)

val stats : t -> Stats.t
(** Cumulative solver statistics across all evaluations (folded with
    {!Stats.merge}). *)

val last_degradation : t -> Resilient.degradation option
(** [Some _] when the most recent {!submit}, {!submit_all} or {!flush}
    hit an armed-guard limit mid-evaluation (see {!Resilient}): the
    underlying solve returned a degraded outcome, so some component may
    hold a coordinating set that was never probed.  Cleared at the start
    of the next operation.  In incremental mode a degraded component
    stays dirty and is re-evaluated by the next [flush]. *)

type inventory_conflict = {
  double_spent : (string * Tuple.t) list;
      (** tuples demanded by more than one member of the fired set:
          one unit of inventory cannot serve two bookings.  The tuple is
          deleted once; the set still fires (its members genuinely
          coordinated), but the conflict is reported so the caller can
          compensate. *)
  missing : (string * Tuple.t) list;
      (** tuples a fired member grounded onto that were already absent
          at booking time *)
}

val last_inventory_conflict : t -> inventory_conflict option
(** [Some _] when the most recent fired set's inventory booking
    (engine created with [consume:true]) double-demanded or missed a
    tuple — see {!inventory_conflict}.  Cleared at the start of the next
    {!submit}, {!submit_all} or {!flush}. *)

(** {2 Durability hooks}

    The engine itself is purely in-memory; [lib/durable] makes it
    crash-recoverable by journaling {e effects} (admissions,
    retirements, the two-phase consume commit's deduplicated deletion
    list) through a {!Journal.sink} and replaying them through the
    [restore_*] functions below.  Replay never re-evaluates a
    component: which sets fired and which tuples were booked comes from
    the journal, so a recovery cannot fire a different set or
    double-spend inventory, whatever the crash point. *)

module Journal : sig
  (** Which public operation a record group belongs to. *)
  type op = Submit_op | Submit_all_op | Flush_op | Withdraw_op

  type record =
    | Submitted of { id : int; query : Query.t }
        (** an entry joined the pool under [id] *)
    | Rejected of { id : int }
        (** eager {!submit} admitted [id], found its component unsafe
            and evicted it (no satisfied-count change) *)
    | Retired of { ids : int list }
        (** a fired set left the pool; the lifetime satisfied count
            grew by [List.length ids] *)
    | Consumed of { deletions : (string * Tuple.t) list }
        (** the deduplicated inventory deletions actually issued by the
            two-phase consume commit, in first-demand order — each
            deleted exactly once *)
    | Op_end of { op : op; fired : int }
        (** the operation finished having fired [fired] sets; the
            atomic commit boundary for everything since the previous
            [Op_end] *)

  type sink = record -> unit
end

val set_journal : t -> Journal.sink option -> unit
(** Install (or remove) the journal sink.  Records are emitted at the
    points where the engine commits state: after an admission, after a
    fired set's retirement, after the consume pass resolves its
    deletion list, and once per public operation as {!Journal.Op_end}. *)

val restore_submit : t -> id:int -> Query.t -> unit
(** Re-admit a journaled entry under its original id.  Ids must be
    replayed in increasing order.
    @raise Invalid_argument if [id] is below {!next_id}. *)

val restore_retire : t -> int list -> unit
(** Re-apply a journaled retirement: the (live) ids leave the pool and
    the lifetime satisfied count grows by their number.
    @raise Invalid_argument if any id is not live. *)

val restore_evict : t -> int -> unit
(** Re-apply a journaled unsafe rejection: the (live) id leaves the
    pool with no satisfied-count change.
    @raise Invalid_argument if the id is not live. *)

val restore_counters : t -> satisfied:int -> next_id:int -> unit
(** Restore the lifetime satisfied count and the id allocator from a
    snapshot (retired ids may exceed every live id, so neither can be
    derived from the restored pool).
    @raise Invalid_argument if [next_id] would re-issue an admitted id. *)

val mirror_sink : t -> Journal.sink
(** A sink that keeps [t] record-equivalent to another engine emitting
    the records, by applying admissions, retirements and evictions
    through the [restore_*] functions (consume deletions and op
    boundaries are skipped: the store is shared, and op grouping is the
    durability layer's concern).  This is how a re-sharded service keeps
    the recovered sequential engine alive as the snapshot source while a
    sharded engine does the work — see {!Server.shard_durable}. *)

(** {2 Sharding hooks}

    {!Online_sharded} runs one incremental engine per shard over
    {!Relational.Database.worker_view}s and owns the public-operation
    boundary itself.  These hooks expose exactly the internal steps it
    orchestrates; none of them journal an {!Journal.Op_end}. *)

type fired = {
  f_key : int;
      (** smallest live member id of the component that was {e
          evaluated} at fire time (not of the fired subset — a remnant
          can refire under the same key).  Per-engine fire streams are
          non-decreasing in [f_key] when the store does not move during
          the flush, so a stable merge by key across shards reproduces
          the sequential fire order. *)
  f_ids : int list;  (** pool ids of the fired set's members *)
  f_set : coordinated;
}

val prepare_op : t -> unit
(** The start-of-operation step every public entry point performs:
    clear the previous operation's degradation/conflict verdicts and
    absorb external database mutations into the dirty set.  An
    orchestrator calls it on {e every} shard before an operation, so a
    mutation between operations dirties each shard's pool exactly as it
    would dirty the sequential engine's whole pool. *)

val finish_op : t -> unit
(** The end-of-operation step: absorb the operation's own inventory
    deletions (monotone, so cached "cannot fire" verdicts survive).
    Call on every shard after an operation — other shards' deletions
    must not re-dirty this shard's pool, just as the sequential
    engine's own deletions do not re-dirty its pool. *)

val flush_fired : t -> fired list
(** {!flush} without the operation bracket: evaluate due components to
    fixpoint and return the fired sets with their merge keys.  The
    caller is responsible for {!prepare_op}/{!finish_op} and the
    journal boundary. *)

val due_components : t -> int list list
(** The components the next flush round must (re-)evaluate, as
    ascending id lists ordered by smallest member — the order the
    sequential flush tries them in. *)

val evaluate_due : t -> int list -> [ `Fired of fired | `Quiet | `Unsafe ]
(** Evaluate one due component (an ascending id list from
    {!due_components}), committing retirement/consumption on a fire and
    caching quiescent and unsafe verdicts exactly as the sequential
    flush would.  The consume-mode sharded flush uses this to commit
    components one at a time in the global canonical order, because
    inventory deletions couple components across shards. *)

type moved = { mv_id : int; mv_query : Query.t; mv_dirty : bool }
(** A detached entry: its pool id, query, and whether its component was
    awaiting re-evaluation when it left. *)

val detach : t -> int list -> moved list
(** Remove the given live ids from this engine and return them for
    re-admission elsewhere, preserving their dirtiness.  The ids must
    cover whole components (a migration moves components, never splits
    them); nothing is journaled and the satisfied count is unchanged.
    @raise Invalid_argument if any id is not live. *)

val attach : t -> moved list -> unit
(** Re-admit detached entries under their original ids (pass them in
    ascending id order).  Coordination edges among the attached entries
    and the existing pool are rediscovered from the atom indexes;
    entries that were clean stay clean — migration alone re-evaluates
    nothing.  Nothing is journaled.
    @raise Invalid_argument if an id is already live. *)
