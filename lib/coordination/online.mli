(** Online (incremental) coordination.

    Section 6.1 describes how the SCC algorithm sits inside a running
    system: "when a new query arrives, the system finds the set of
    queries this query can coordinate with and updates the coordination
    graph accordingly.  The system then calls an evaluation method on
    the connected component that the query belongs to ... the system
    then deletes these queries from its data structures and continues to
    process the next query that arrives."  Section 7 asks for exactly
    this online setting.  This module implements it.

    An engine holds a pool of pending queries.  Submitting a query adds
    it to the pool and (in eager mode) evaluates only the weakly
    connected component of the coordination graph that contains it; a
    found coordinating set is reported and its members leave the pool.
    Deferred submissions accumulate until {!flush}, which evaluates
    every component — useful for batching, and equivalent to one
    {!Scc_algo.solve} per component. *)

open Relational
open Entangled

type t

val create :
  ?selection:Scc_algo.selection ->
  ?eager:bool ->
  ?consume:bool ->
  Database.t ->
  t
(** [eager] (default [true]): evaluate on every submission.  With
    [eager:false], submissions only enqueue; call {!flush}.

    [consume] (default [false]): when a set coordinates, delete the
    grounded body tuples its members used from the database — each tuple
    is one bookable unit (a flight seat block, a class section), so later
    arrivals cannot coordinate on spent inventory. *)

type coordinated = {
  queries : Query.t list;        (** the satisfied queries, in pool order *)
  assignment : Eval.valuation;
      (** over the members' variables, renamed with the pool prefixes
          used at evaluation time *)
}

type submission =
  | Coordinated of coordinated  (** a set fired; its members left the pool *)
  | Pending                      (** enqueued, waiting for partners *)
  | Rejected_unsafe of (int * int) list
      (** the component became unsafe; the new query was NOT admitted *)

val submit : t -> Query.t -> submission

val flush : t -> coordinated list
(** Evaluate every weakly connected component of the pending pool;
    satisfied sets leave the pool.  Returns them in discovery order. *)

val pending : t -> Query.t list
(** Queries still waiting, in submission order. *)

val pending_count : t -> int

val total_coordinated : t -> int
(** Queries satisfied over the engine's lifetime. *)

val stats : t -> Stats.t
(** Cumulative solver statistics across all evaluations. *)

val last_degradation : t -> Resilient.degradation option
(** [Some _] when the most recent {!submit} or {!flush} hit an
    armed-guard limit mid-evaluation (see {!Resilient}): the underlying
    solve returned a degraded outcome, so some component may hold a
    coordinating set that was never probed.  Cleared at the start of the
    next [submit]/[flush]. *)
