(* Retained as the historical entry point for multi-domain consistent
   coordination; the machinery now lives in [Executor], which schedules
   one task per value on the work-stealing pool instead of static
   contiguous chunks. *)
let solve ?domains db config input =
  Executor.solve_consistent ?domains db config input
