open Relational

(* Split [xs] into [k] contiguous chunks (some possibly empty). *)
let chunk k xs =
  let n = List.length xs in
  let base = n / k and extra = n mod k in
  let rec take m xs acc =
    if m = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (m - 1) rest (x :: acc)
  in
  let rec go i xs acc =
    if i = k then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let c, rest = take size xs [] in
      go (i + 1) rest (c :: acc)
  in
  go 0 xs []

let solve ?domains db config input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "parallel.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let t_graph = Stats.now_ns () in
  match
    Obs.with_span "parallel.prepare" (fun () ->
        Consistent.prepare db config input)
  with
  | exception Resilient.Abort reason ->
    stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    Ok (Consistent.degraded_outcome config input stats reason)
  | Error e -> Error e
  | Ok p ->
    stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    let vs = Consistent.values p in
    let requested =
      match domains with
      | Some d -> max 1 d
      | None -> max 1 (Domain.recommended_domain_count ())
    in
    let k = max 1 (min requested (List.length vs)) in
    (* Each chunk returns its candidates (in order) and cleaning-round
       total; survivors is pure, so domains share [p] read-only. *)
    let work chunk () =
      List.map
        (fun v ->
          let members, rounds = Consistent.survivors p v in
          (v, members, rounds))
        chunk
    in
    let t_loop = Stats.now_ns () in
    (* The span lives on the parent domain only: Obs state is not
       domain-safe, so spawned workers run uninstrumented.  Every
       spawned domain is joined even when the parent's own chunk — or a
       sibling — raises: an unjoined domain would leak (or deadlock at
       exit), and an exception in [mine] before the joins used to do
       exactly that. *)
    let results =
      Obs.with_span
        ~args:(fun () ->
          [ ("domains", Obs.Int k); ("values", Obs.Int (List.length vs)) ])
        "parallel.values_loop"
        (fun () ->
          match chunk k vs with
          | [] -> []
          | first :: rest ->
            let handles = List.map (fun c -> Domain.spawn (work c)) rest in
            let mine = try Ok (work first ()) with e -> Error e in
            let joined =
              List.map
                (fun h -> try Ok (Domain.join h) with e -> Error e)
                handles
            in
            mine :: joined)
    in
    stats.unify_ns <- Int64.sub (Stats.now_ns ()) t_loop;
    let first_error =
      List.find_map (function Error e -> Some e | Ok _ -> None) results
    in
    match first_error with
    | Some (Resilient.Abort reason) ->
      (* Cannot happen today — the per-value kernel is pure — but a
         future probing kernel degrades instead of crashing. *)
      stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
      Stats.add_counters stats
        (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
      Ok (Consistent.degraded_outcome config input stats reason)
    | Some e -> Error (Consistent.Worker_crashed (Printexc.to_string e))
    | None ->
    let flat =
      List.concat
        (List.map (function Ok r -> r | Error _ -> assert false) results)
    in
    let candidates =
      List.map (fun (v, members, _) -> (v, List.length members)) flat
    in
    List.iter
      (fun (_, _, rounds) ->
        stats.cleaning_rounds <- stats.cleaning_rounds + rounds)
      flat;
    stats.candidates <- List.length flat;
    let best =
      List.fold_left
        (fun best (v, members, _) ->
          let size = List.length members in
          match best with
          | Some (_, _, best_size) when best_size >= size -> best
          | _ when size > 0 -> Some (v, members, size)
          | _ -> best)
        None flat
      |> Option.map (fun (v, members, _) -> (v, members))
    in
    let outcome =
      Obs.with_span "parallel.ground" (fun () ->
          Consistent.finalize db p ~candidates ~best stats)
    in
    outcome.stats.Stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters outcome.stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    Ok outcome
