open Relational
open Entangled

let max_queries = 20

let check_size n =
  if n > max_queries then
    invalid_arg
      (Printf.sprintf "Brute: %d queries exceed the limit of %d" n max_queries)

(* All (post, candidate-heads) obligations of a subset; [None] when some
   postcondition has no candidate inside the subset. *)
let obligations (graph : Coordination_graph.t) ~members =
  let in_set = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace in_set q ()) members;
  let exception No_candidate in
  try
    Some
      (List.concat_map
         (fun q ->
           List.mapi
             (fun pi (p : Cq.atom) ->
               let targets =
                 List.filter
                   (fun (d, _) -> Hashtbl.mem in_set d)
                   (Coordination_graph.post_targets graph ~src:q ~post_index:pi)
               in
               if targets = [] then raise No_candidate;
               (q, p, targets))
             graph.queries.(q).Query.post)
         members)
  with No_candidate -> None

let solve_subset db (graph : Coordination_graph.t) ~members =
  match obligations graph ~members with
  | None -> None
  | Some obligations ->
    let queries = graph.queries in
    let result = ref None in
    let rec assign subst = function
      | [] ->
        (match Ground.solve db queries ~members subst with
        | Some assignment -> result := Some assignment
        | None -> ())
      | (_, p, targets) :: rest ->
        (* Distinct candidate heads often induce the same unifier (e.g.
           ground gadget atoms); exploring duplicates multiplies the
           search for nothing. *)
        let tried = ref [] in
        List.iter
          (fun (d, hi) ->
            if !result = None then
              let h = List.nth queries.(d).Query.head hi in
              match Subst.unify_atoms subst p h with
              | None -> ()
              | Some subst' ->
                if not (List.exists (Subst.equal subst') !tried) then begin
                  tried := subst' :: !tried;
                  assign subst' rest
                end)
          targets
    in
    assign Subst.empty obligations;
    !result

(* Brute search has no phases worth timing separately; when a stats
   record is supplied we account the whole call as ground time plus the
   engine-counter delta. *)
let with_stats stats db f =
  match stats with
  | None -> f ()
  | Some stats ->
    let t0 = Stats.now_ns () in
    let counters0 = Database.snapshot_counters db in
    let finally () =
      let span = Int64.sub (Stats.now_ns ()) t0 in
      stats.Stats.ground_ns <- Int64.add stats.Stats.ground_ns span;
      stats.Stats.total_ns <- Int64.add stats.Stats.total_ns span;
      Stats.add_counters stats
        (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db))
    in
    Fun.protect ~finally f

let subsets_by_size n =
  let masks = List.init ((1 lsl n) - 1) (fun i -> i + 1) in
  let popcount m =
    let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
    loop m 0
  in
  List.stable_sort (fun a b -> Int.compare (popcount a) (popcount b)) masks

let members_of_mask n mask =
  List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)

let span_args n () = [ ("queries", Obs.Int n); ("subsets", Obs.Int ((1 lsl n) - 1)) ]

let exists_coordinating_set ?stats db queries =
  let n = Array.length queries in
  check_size n;
  Obs.with_span ~args:(span_args n) "brute.exists" @@ fun () ->
  with_stats stats db @@ fun () ->
  let graph = Obs.with_span "brute.graph" (fun () -> Coordination_graph.build queries) in
  Obs.with_span "brute.enumerate" @@ fun () ->
  List.exists
    (fun mask ->
      Option.is_some (solve_subset db graph ~members:(members_of_mask n mask)))
    (subsets_by_size n)

let maximum ?stats db queries =
  let n = Array.length queries in
  check_size n;
  Obs.with_span ~args:(span_args n) "brute.maximum" @@ fun () ->
  with_stats stats db @@ fun () ->
  let graph = Obs.with_span "brute.graph" (fun () -> Coordination_graph.build queries) in
  Obs.with_span "brute.enumerate" @@ fun () ->
  let rec loop = function
    | [] -> None
    | mask :: rest -> (
      let members = members_of_mask n mask in
      match solve_subset db graph ~members with
      | Some assignment -> Some (Solution.make ~members ~assignment)
      | None -> loop rest)
  in
  loop (List.rev (subsets_by_size n))

type outcome = {
  solution : Solution.t option;
  stats : Stats.t;
  degraded : Resilient.degradation option;
}

let solve db queries =
  let n = Array.length queries in
  check_size n;
  Obs.with_span ~args:(span_args n) "brute.solve" @@ fun () ->
  let stats = Stats.create () in
  with_stats (Some stats) db @@ fun () ->
  let graph =
    Obs.with_span "brute.graph" (fun () -> Coordination_graph.build queries)
  in
  Obs.with_span "brute.enumerate" @@ fun () ->
  let total = (1 lsl n) - 1 in
  let rec loop = function
    | [] -> { solution = None; stats; degraded = None }
    | mask :: rest -> (
      let members = members_of_mask n mask in
      match solve_subset db graph ~members with
      | Some assignment ->
        { solution = Some (Solution.make ~members ~assignment);
          stats;
          degraded = None }
      | None -> loop rest
      | exception Resilient.Abort reason ->
        (* The exhaustive tail is exponential; list only the first few
           unprobed subsets (largest first, like the search order). *)
        let remaining = mask :: rest in
        let unprobed =
          List.filteri (fun i _ -> i < 8) remaining
          |> List.map (members_of_mask n)
        in
        { solution = None;
          stats;
          degraded =
            Some
              (Resilient.degraded ~unprobed
                 ~note:
                   (Printf.sprintf "%d of %d subsets unprobed"
                      (List.length remaining) total)
                 reason) })
  in
  loop (List.rev (subsets_by_size n))

let all_coordinating_subsets ?stats db queries =
  let n = Array.length queries in
  check_size n;
  Obs.with_span ~args:(span_args n) "brute.all_subsets" @@ fun () ->
  with_stats stats db @@ fun () ->
  let graph = Obs.with_span "brute.graph" (fun () -> Coordination_graph.build queries) in
  Obs.with_span "brute.enumerate" @@ fun () ->
  List.filter_map
    (fun mask ->
      let members = members_of_mask n mask in
      match solve_subset db graph ~members with
      | Some _ -> Some members
      | None -> None)
    (subsets_by_size n)
