open Relational
open Entangled

type report = {
  outcome : Scc_algo.outcome;
  events : Scc_algo.event list;
}

(* Collect the solver's typed payloads from the process-wide Obs stream:
   install a memory sink for the duration of the call, then recover the
   [Scc_event] payloads in emission order.  Any other sinks (say a
   --trace file) keep observing the same run. *)
let trace ?selection ?preprocess ?minimize db input =
  let sink, contents = Obs.memory_sink () in
  let result =
    Obs.with_sink sink (fun () ->
        Scc_algo.solve ?selection ?preprocess ?minimize db input)
  in
  match result with
  | Error e -> Error e
  | Ok outcome ->
    let events =
      List.filter_map
        (function
          | Obs.Event { Obs.ev_payload = Scc_algo.Scc_event e; _ } -> Some e
          | Obs.Event _ | Obs.Span _ -> None)
        (contents ())
    in
    Ok { outcome; events }

let names (queries : Query.t array) is =
  String.concat ", " (List.map (fun i -> queries.(i).Query.name) is)

let pp_event db queries ppf (event : Scc_algo.event) =
  match event with
  | Scc_algo.Pruned dead ->
    Format.fprintf ppf
      "@[<v2>preprocessing dropped {%s}: unsatisfiable postconditions@]"
      (names queries dead)
  | Scc_algo.Skipped { component } ->
    Format.fprintf ppf "component {%s}: skipped, a needed component failed"
      (names queries component)
  | Scc_algo.Unify_failed { component; failure } ->
    Format.fprintf ppf "component {%s}: %a" (names queries component)
      (Combine.pp_failure queries) failure
  | Scc_algo.Probed { component; members; body; witness } ->
    let sql =
      try Sqlgen.exists db body
      with Sqlgen.Cannot_render m -> "-- cannot render: " ^ m
    in
    Format.fprintf ppf
      "@[<v2>component {%s}: candidate set {%s}@,%s@,=> %s@]"
      (names queries component) (names queries members) sql
      (match witness with
      | Some _ -> "satisfiable: candidate recorded"
      | None -> "unsatisfiable: candidate fails")

(* EXPLAIN ANALYZE: render every cached plan's observed statistics
   against its compile-time estimates.  The caller brackets the solve
   with [with_analyze] so per-step wall-clock columns are populated;
   the counter columns are always on and need no arming. *)
let pp_analyze ppf db =
  let plans = Database.cached_plans db in
  Format.fprintf ppf "@[<v>-- EXPLAIN ANALYZE (%d cached plans, backend %s) --"
    (List.length plans)
    (Database.backend_to_string (Database.backend db));
  List.iter
    (fun (_, plan) -> Format.fprintf ppf "@,%a" Plan.pp_analyze plan)
    plans;
  Format.fprintf ppf "@]"

let with_analyze f =
  Plan.set_analyze true;
  Fun.protect ~finally:(fun () -> Plan.set_analyze false) f

let pp db ppf report =
  let queries = report.outcome.Scc_algo.queries in
  Format.fprintf ppf "@[<v>-- SCC coordination trace (%d queries) --"
    (Array.length queries);
  List.iter
    (fun e -> Format.fprintf ppf "@,%a" (pp_event db queries) e)
    report.events;
  (match report.outcome.Scc_algo.solution with
  | None -> Format.fprintf ppf "@,result: no coordinating set"
  | Some s ->
    Format.fprintf ppf "@,result: %a" (Solution.pp queries) s);
  Format.fprintf ppf "@,%a@]" Stats.pp report.outcome.Scc_algo.stats
