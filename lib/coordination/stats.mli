(** Instrumentation shared by all solvers.

    The paper's experiments measure total processing time, the time spent
    in graph construction and preprocessing (Figure 6), and are driven by
    the number of database queries issued.  Every solver fills one of
    these records. *)

type t = {
  mutable db_probes : int;       (** conjunctive queries issued *)
  mutable graph_ns : int64;      (** graph build + preprocessing + SCC *)
  mutable unify_ns : int64;      (** unification work *)
  mutable ground_ns : int64;     (** database evaluation *)
  mutable total_ns : int64;      (** whole solver call *)
  mutable candidates : int;      (** candidate sets considered *)
  mutable cleaning_rounds : int; (** consistent algorithm cleaning passes *)
  mutable plan_hits : int;       (** compiled plans served from the cache *)
  mutable plan_misses : int;     (** compiled plans built from scratch *)
  mutable tuples_scanned : int;  (** tuples examined by the evaluator *)
}

val create : unit -> t

val merge : into:t -> t -> unit
(** [merge ~into from] adds every field of [from] into [into] — counts
    and timing spans alike.  This is the {e only} place a [Stats.t] is
    folded into another; accumulate through it so a newly added field
    cannot be silently dropped from cumulative totals. *)

val add_counters : t -> Relational.Counters.t -> unit
(** [add_counters stats delta] folds a query-engine counter delta
    (typically [Counters.diff] of two {!Relational.Database.snapshot_counters})
    into the solver's record: probes, plan hits/misses, tuples scanned. *)

val same_counters : t -> t -> bool
(** Equality on every deterministic (non-timing) field: probes,
    candidates, cleaning rounds, plan hits/misses, tuples scanned.  The
    executor's differential tests compare parallel and sequential runs
    with this — timing spans necessarily differ. *)

val now_ns : unit -> int64
(** Monotonic timestamp in nanoseconds (delegates to {!Obs.now_ns}, i.e.
    [CLOCK_MONOTONIC]); differences are durations, immune to wall-clock
    adjustment. *)

val add_span : t -> (t -> int64) -> (t -> int64 -> unit) -> int64 -> unit

val timed : (unit -> 'a) -> 'a * int64
(** [timed f] runs [f] and reports its wall-clock duration. *)

val pp : Format.formatter -> t -> unit

val to_row : t -> (string * string) list
(** Key/value view for the benchmark harness's tabular output. *)
