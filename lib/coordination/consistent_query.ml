open Relational
open Entangled

type config = {
  s_schema : Schema.t;
  friends : string;
  answer : string;
  coord_attrs : int list;
}

let attr_count config = Schema.arity config.s_schema - 1

let make_config ~s_schema ~friends ~answer ~coord_attrs =
  if Schema.arity s_schema < 2 then
    invalid_arg "Consistent_query.make_config: S needs a key and >=1 attribute";
  let d = Schema.arity s_schema - 1 in
  let sorted = List.sort_uniq Int.compare coord_attrs in
  if List.length sorted <> List.length coord_attrs then
    invalid_arg "Consistent_query.make_config: duplicate coordination attribute";
  List.iter
    (fun j ->
      if j < 0 || j >= d then
        invalid_arg
          (Printf.sprintf
             "Consistent_query.make_config: attribute %d out of [0,%d)" j d))
    sorted;
  { s_schema; friends; answer; coord_attrs = sorted }

type attr_spec =
  | Exact of Value.t
  | Any

type partner_spec =
  | Same
  | Free
  | Fixed of Value.t

type partner =
  | Named of Value.t
  | Any_friend
  | Any_from of string
  | K_friends of int

type t = {
  user : Value.t;
  own : attr_spec array;
  partners : (partner * partner_spec array) list;
}

let check_own config own =
  let d = attr_count config in
  if Array.length own <> d then
    invalid_arg
      (Printf.sprintf "Consistent_query: own spec has %d entries, expected %d"
         (Array.length own) d)

let make config ~user ~own ~partners =
  let own = Array.of_list own in
  check_own config own;
  let d = attr_count config in
  let spec =
    Array.init d (fun j -> if List.mem j config.coord_attrs then Same else Free)
  in
  { user; own; partners = List.map (fun p -> (p, Array.copy spec)) partners }

let make_raw config ~user ~own ~partners =
  let own = Array.of_list own in
  check_own config own;
  let d = attr_count config in
  let partners =
    List.map
      (fun (p, spec) ->
        let spec = Array.of_list spec in
        if Array.length spec <> d then
          invalid_arg "Consistent_query.make_raw: partner spec length";
        (p, spec))
      partners
  in
  { user; own; partners }

let is_coordinating _config ~attrs q =
  List.for_all
    (fun j ->
      List.for_all
        (fun (_, spec) ->
          match spec.(j) with
          | Same -> true
          | Fixed v -> (
            match q.own.(j) with Exact v' -> Value.equal v v' | Any -> false)
          | Free -> false)
        q.partners)
    attrs

let is_non_coordinating _config ~attrs q =
  List.for_all
    (fun j -> List.for_all (fun (_, spec) -> spec.(j) = Free) q.partners)
    attrs

let is_consistent config q =
  let d = attr_count config in
  let complement =
    List.filter (fun j -> not (List.mem j config.coord_attrs)) (List.init d Fun.id)
  in
  is_coordinating config ~attrs:config.coord_attrs q
  && is_non_coordinating config ~attrs:complement q

(* Variable-name conventions used by the compiled query (and relied upon
   by Consistent.to_solution): own key "x", own attribute j "a<j>",
   partner i's key "y<i>", partner i's free attribute j "b<i>_<j>",
   partner i's friend variable "f<i>". *)
let own_attr_term q j =
  match q.own.(j) with
  | Exact v -> Term.Const v
  | Any -> Term.Var (Printf.sprintf "a%d" j)

let expressible q =
  List.for_all
    (fun (p, _) -> match p with K_friends _ -> false | Named _ | Any_friend | Any_from _ -> true)
    q.partners

let to_entangled config q =
  if not (expressible q) then
    invalid_arg
      "Consistent_query.to_entangled: k-of-friends coordination is not \
       expressible as an entangled query (Section 5, Generalizations)";
  let d = attr_count config in
  let s_name = Schema.name config.s_schema in
  let own_atom =
    {
      Cq.rel = s_name;
      args =
        Array.init (d + 1) (fun c ->
            if c = 0 then Term.Var "x" else own_attr_term q (c - 1));
    }
  in
  let posts = ref [] in
  let partner_atoms = ref [] in
  let friend_atoms = ref [] in
  List.iteri
    (fun i (p, spec) ->
      let y = Term.Var (Printf.sprintf "y%d" i) in
      let friend_var rel =
        let f = Term.Var (Printf.sprintf "f%d" i) in
        friend_atoms :=
          { Cq.rel; args = [| Term.Const q.user; f |] } :: !friend_atoms;
        f
      in
      let partner_term =
        match p with
        | Named c -> Term.Const c
        | Any_friend -> friend_var config.friends
        | Any_from rel -> friend_var rel
        | K_friends _ -> assert false (* rejected by [expressible] above *)
      in
      posts := { Cq.rel = config.answer; args = [| y; partner_term |] } :: !posts;
      let atom =
        {
          Cq.rel = s_name;
          args =
            Array.init (d + 1) (fun c ->
                if c = 0 then y
                else
                  let j = c - 1 in
                  match spec.(j) with
                  | Same -> own_attr_term q j
                  | Free -> Term.Var (Printf.sprintf "b%d_%d" i j)
                  | Fixed v -> Term.Const v);
        }
      in
      partner_atoms := atom :: !partner_atoms)
    q.partners;
  let head =
    [ { Cq.rel = config.answer; args = [| Term.Var "x"; Term.Const q.user |] } ]
  in
  let body =
    (own_atom :: List.rev !friend_atoms) @ List.rev !partner_atoms
  in
  Query.make
    ~name:("u_" ^ Value.to_string q.user)
    ~post:(List.rev !posts) ~head body

let compile_set config qs =
  Query.rename_set (List.map (to_entangled config) qs)

(* Inverse of [to_entangled], up to variable naming: recognize the
   Section-5 shape in a parsed program so the CLI can route it into the
   consistent-coordination solver.  Structure, not names, drives the
   match — user programs pick their own variable names. *)
exception Reject of string

let of_entangled db queries =
  let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt in
  try
    if queries = [] then reject "empty query list";
    let parsed =
      List.map
        (fun (q : Query.t) ->
          let name = if q.Query.name = "" then "(unnamed)" else q.Query.name in
          let head =
            match q.head with
            | [ a ] -> a
            | _ -> reject "%s: head must be a single answer atom" name
          in
          let answer = head.Cq.rel in
          let x, user =
            match head.Cq.args with
            | [| Term.Var x; Term.Const u |] -> (x, u)
            | _ ->
              reject "%s: head must be %s(<key var>, <user constant>)" name
                answer
          in
          let posts =
            List.map
              (fun (p : Cq.atom) ->
                if p.Cq.rel <> answer then
                  reject "%s: postcondition over %s but head over %s" name
                    p.Cq.rel answer;
                match p.Cq.args with
                | [| Term.Var y; t |] when y <> x -> (y, t)
                | _ ->
                  reject "%s: postconditions must be %s(<partner key var>, \
                          <partner term>)"
                    name answer)
              q.post
          in
          let ys = List.map fst posts in
          if List.length (List.sort_uniq String.compare ys) <> List.length ys
          then reject "%s: postconditions reuse a partner key variable" name;
          let own_atom, rest =
            match
              List.partition
                (fun (a : Cq.atom) ->
                  Array.length a.Cq.args > 0 && a.Cq.args.(0) = Term.Var x)
                q.body.Cq.atoms
            with
            | [ a ], rest -> (a, rest)
            | atoms, _ ->
              reject
                "%s: expected exactly one body atom keyed by the head \
                 variable, found %d"
                name (List.length atoms)
          in
          let s_rel = own_atom.Cq.rel in
          let d = Array.length own_atom.Cq.args - 1 in
          if d < 1 then
            reject "%s: %s needs a key column and at least one attribute" name
              s_rel;
          let partner_atoms = Hashtbl.create 8 in
          let friend_rels = Hashtbl.create 4 in
          List.iter
            (fun (a : Cq.atom) ->
              match a.Cq.args with
              | [| Term.Const u; Term.Var f |]
                when Value.equal u user
                     && List.exists (fun (_, t) -> t = Term.Var f) posts ->
                if Hashtbl.mem friend_rels f then
                  reject "%s: partner variable %s bound by two relationship \
                          atoms"
                    name f;
                Hashtbl.add friend_rels f a.Cq.rel
              | args
                when a.Cq.rel = s_rel && Array.length args = d + 1 -> (
                match args.(0) with
                | Term.Var y when List.mem_assoc y posts ->
                  if Hashtbl.mem partner_atoms y then
                    reject "%s: two %s atoms keyed by %s" name s_rel y;
                  Hashtbl.add partner_atoms y a
                | _ ->
                  reject "%s: %s atom keyed by neither the user nor a \
                          partner"
                    name s_rel)
              | _ ->
                reject "%s: body atom over %s outside the Section 5 shape"
                  name a.Cq.rel)
            rest;
          let own_terms = Array.init d (fun j -> own_atom.Cq.args.(j + 1)) in
          let own_vars = Hashtbl.create 4 in
          Array.iter
            (function
              | Term.Var v ->
                if v = x || Hashtbl.mem own_vars v then
                  reject "%s: own attribute variables must be distinct" name;
                Hashtbl.add own_vars v ()
              | Term.Const _ -> ())
            own_terms;
          (* Occurrence counts across partner attribute slots, for the
             freshness check behind [Free]. *)
          let occurs = Hashtbl.create 8 in
          Hashtbl.iter
            (fun _ (a : Cq.atom) ->
              for j = 1 to d do
                match a.Cq.args.(j) with
                | Term.Var v ->
                  Hashtbl.replace occurs v
                    (1 + Option.value ~default:0 (Hashtbl.find_opt occurs v))
                | Term.Const _ -> ()
              done)
            partner_atoms;
          let partners =
            List.map
              (fun (y, t) ->
                let atom =
                  match Hashtbl.find_opt partner_atoms y with
                  | Some a -> a
                  | None ->
                    reject "%s: no %s atom for partner variable %s" name s_rel
                      y
                in
                let who =
                  match t with
                  | Term.Const c -> Named c
                  | Term.Var f -> (
                    match Hashtbl.find_opt friend_rels f with
                    | Some rel -> Any_from rel
                    | None ->
                      reject
                        "%s: partner variable %s has no relationship atom \
                         %s(%s, %s)"
                        name f "<rel>" (Value.to_string user) f)
                in
                let spec =
                  Array.init d (fun j ->
                      let pt = atom.Cq.args.(j + 1) in
                      if Term.equal pt own_terms.(j) then Same
                      else
                        match pt with
                        | Term.Const v -> Fixed v
                        | Term.Var b ->
                          if
                            b = x || Hashtbl.mem own_vars b
                            || List.mem_assoc b posts
                            || Hashtbl.mem friend_rels b
                            || Hashtbl.find occurs b > 1
                          then
                            reject
                              "%s: partner attribute variable %s is not \
                               fresh"
                              name b
                          else Free)
                in
                (who, spec))
              posts
          in
          (name, user, answer, s_rel, d, own_terms, partners))
        queries
    in
    let _, _, answer0, s_rel0, d0, _, _ = List.hd parsed in
    List.iter
      (fun (name, _, answer, s_rel, d, _, _) ->
        if answer <> answer0 then
          reject "%s: answer relation %s, others use %s" name answer answer0;
        if s_rel <> s_rel0 || d <> d0 then
          reject "%s: thing relation %s/%d, others use %s/%d" name s_rel d
            s_rel0 d0)
      parsed;
    let s_schema =
      match Database.relation_opt db s_rel0 with
      | Some r -> Relation.schema r
      | None -> reject "thing relation %s is not in the database" s_rel0
    in
    if Schema.arity s_schema <> d0 + 1 then
      reject "%s has arity %d in the database but %d in the queries" s_rel0
        (Schema.arity s_schema) (d0 + 1);
    let coord_attrs =
      List.filter
        (fun j ->
          List.for_all
            (fun (_, _, _, _, _, _, partners) ->
              List.for_all (fun (_, spec) -> spec.(j) = Same) partners)
            parsed)
        (List.init d0 Fun.id)
    in
    let friends =
      List.find_map
        (fun (_, _, _, _, _, _, partners) ->
          List.find_map
            (fun (p, _) ->
              match p with Any_from rel -> Some rel | _ -> None)
            partners)
        parsed
      |> Option.value ~default:"friends"
    in
    let config = make_config ~s_schema ~friends ~answer:answer0 ~coord_attrs in
    let ts =
      List.map
        (fun (name, user, _, _, _, own_terms, partners) ->
          let own =
            Array.map
              (function Term.Const v -> Exact v | Term.Var _ -> Any)
              own_terms
          in
          let q = { user; own; partners } in
          if not (is_consistent config q) then
            reject
              "%s: not A-consistent for the common coordination attributes \
               {%s} — a partner coordinates (or is pinned) on an attribute \
               other queries leave free"
              name
              (String.concat ","
                 (List.map string_of_int config.coord_attrs));
          q)
        parsed
    in
    Ok (config, ts)
  with Reject m -> Error m

let pp config ppf q =
  Format.fprintf ppf "@[<v>user %a over %s:" Value.pp q.user
    (Schema.name config.s_schema);
  Array.iteri
    (fun j spec ->
      let attr = Schema.attribute config.s_schema (j + 1) in
      match spec with
      | Exact v -> Format.fprintf ppf "@,  %s = %a" attr Value.pp v
      | Any -> Format.fprintf ppf "@,  %s = *" attr)
    q.own;
  List.iter
    (fun (p, _) ->
      match p with
      | Named c -> Format.fprintf ppf "@,  with user %a" Value.pp c
      | Any_friend -> Format.fprintf ppf "@,  with any friend"
      | Any_from rel -> Format.fprintf ppf "@,  with anyone from %s" rel
      | K_friends k -> Format.fprintf ppf "@,  with at least %d friends" k)
    q.partners;
  Format.fprintf ppf "@]"
