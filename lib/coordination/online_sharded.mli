(** The online engine, sharded by component across OCaml 5 domains.

    Distinct weakly-connected components of the coordination graph
    never interact — the coordination-avoidance principle that made the
    batch executor embarrassingly parallel — so the live pool can be
    partitioned across per-shard incremental engines ({!Online}), each
    over its own {!Relational.Database.worker_view} of one shared
    store, and stay {e observationally identical} to one sequential
    engine.

    {2 Routing and migration}

    Arrivals are routed at the granularity of
    {!Coordination_graph.Atom_index} buckets (relation symbol ×
    first-argument constant, wildcard for var-first atoms): two entries
    can only share a coordination edge when their atoms share a bucket,
    so a union-find over bucket keys — fusing the buckets that co-occur
    in one entry — yields {e bucket groups} that are a conservative
    over-approximation of components.  Each group is owned by exactly
    one shard.  An arrival whose atoms touch groups owned by two shards
    triggers a migration: every colliding group's live entries are
    {!Online.detach}ed from their shard and {!Online.attach}ed — with
    dirtiness preserved, so migration alone re-evaluates nothing — into
    the shard already holding the most involved entries (fewest entries
    move; ties to the lowest shard index).  When a group's last live
    entry leaves, the group dissolves, so co-location never outlives
    the entries that caused it.

    {2 Determinism}

    Every public operation is bracketed by {!Online.prepare_op} /
    {!Online.finish_op} on every shard, reproducing the sequential
    engine's dirty-tracking semantics exactly (external mutations dirty
    every pool; the operation's own consume deletions dirty nothing).
    Non-consume flushes run every shard's sequential flush to fixpoint
    concurrently and stable-merge the per-shard fire streams by
    {!Online.fired} key — each stream is non-decreasing in key, so the
    merge {e is} the sequential fire order.  Consume-mode flushes
    commit one component at a time in that same canonical order through
    the owning shard, because inventory deletions couple components
    through the shared store.  Fired sets, assignments, the pending
    pool, the satisfied count, the journal record stream and all
    deterministic {!Stats} counters (folded with {!Stats.merge})
    therefore equal the sequential engine's at {e every} domain count;
    the differential suite in [test/test_online_sharded.ml] asserts
    this per operation.

    Caveats, shared with the batch executor: guard-armed runs split
    budgets per shard ({!Resilient.split}/[absorb]) rather than
    spending them in global component order, so {e which} components
    degrade under a tight budget can differ from the oracle (degraded
    components stay dirty and converge on a later flush); a worker
    crash surfaces as {!Executor.Worker_crashed} only after every
    sibling domain is joined. *)

open Relational
open Entangled

type t

val create :
  ?selection:Scc_algo.selection ->
  ?eager:bool ->
  ?consume:bool ->
  ?domains:int ->
  Database.t ->
  t
(** Like {!Online.create} with [mode:Incremental], over [domains]
    shards (default {!Executor.default_domains}).
    @raise Invalid_argument if [domains < 1]. *)

val of_online : domains:int -> Database.t -> Online.t -> t
(** Re-shard a live (typically just-recovered) sequential engine's pool
    across [domains] shards: every pending entry is routed and attached
    under its original id, and the id allocator and lifetime satisfied
    count carry over.  [src] is read, not modified — a durable session
    keeps it attached as the snapshot mirror (see {!Online.mirror_sink}
    and [Server.shard_durable]).  The database must be [src]'s. *)

val domains : t -> int
val consume : t -> bool

val migrations : t -> int
(** Cross-shard component migrations performed so far (diagnostics). *)

val shard_sizes : t -> int array
(** Live entries per shard (diagnostics). *)

val submit : t -> Query.t -> Online.submission
val submit_all : t -> Query.t list -> Online.coordinated list
val flush : t -> Online.coordinated list
val withdraw : t -> int -> bool
val pending : t -> Query.t list
val pending_entries : t -> (int * Query.t) list
val next_id : t -> int
val pending_count : t -> int
val components : t -> int list list
val total_coordinated : t -> int

val stats : t -> Stats.t
(** Per-shard cumulative statistics folded through {!Stats.merge} (the
    canonical — and only — fold).  All deterministic counters equal the
    sequential engine's; timing spans are per-shard sums. *)

val last_degradation : t -> Resilient.degradation option
(** As {!Online.last_degradation}.  Sequentially-committed paths
    (submit, withdraw, consume-mode flush) report exactly the oracle's
    degradation; after a parallel flush the reported value is one
    representative of the shards that degraded this operation. *)

val last_inventory_conflict : t -> Online.inventory_conflict option

val set_journal : t -> Online.Journal.sink option -> unit
(** Install the journal sink.  The record stream — admissions in
    arrival order, retirements in the canonical fire order, consume
    deletions, one {!Online.Journal.Op_end} per public operation — is
    byte-equivalent to the sequential engine's, so [lib/durable] can
    log a sharded engine without knowing it is sharded, and a recovery
    can replay into a sequential engine and re-shard at any domain
    count. *)
