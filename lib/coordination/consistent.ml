open Relational

type error =
  | Duplicate_user of Value.t
  | Missing_relation of string
  | Bad_k of Value.t * int
  | Worker_crashed of string

let pp_error ppf = function
  | Duplicate_user u -> Format.fprintf ppf "duplicate query for user %a" Value.pp u
  | Missing_relation r -> Format.fprintf ppf "relation %s missing" r
  | Bad_k (u, k) ->
    Format.fprintf ppf "user %a asks for %d friends (need k >= 1)" Value.pp u k
  | Worker_crashed msg ->
    Format.fprintf ppf "a parallel worker domain crashed: %s" msg

type outcome = {
  config : Consistent_query.config;
  queries : Consistent_query.t array;
  options : Tuple.Set.t array;
  candidates : (Tuple.t * int) list;
  chosen_value : Tuple.t option;
  members : int list;
  choices : (Value.t * Value.t) list;
  partner_choices : (int * Value.t list list) list;
  stats : Stats.t;
  degraded : Resilient.degradation option;
}

(* Per-partner coordination requirement, resolved against the batch. *)
type requirement =
  | Named_member of int           (* the named user's query index *)
  | Named_absent                  (* named a user who submitted no query *)
  | From_pool of int array * int  (* candidate query indexes, minimum count *)

type prepared = {
  p_config : Consistent_query.config;
  p_queries : Consistent_query.t array;
  p_options : Tuple.Set.t array;
  p_alive : bool array;
  p_requirements : requirement list array;
}

let own_body_cq config (q : Consistent_query.t) ~coord_value =
  let d = Consistent_query.attr_count config in
  let s_name = Schema.name config.Consistent_query.s_schema in
  let coord_positions = config.Consistent_query.coord_attrs in
  let term_for j =
    match coord_value with
    | Some (v : Tuple.t) when List.mem j coord_positions ->
      (* position of j within the sorted coordination attributes *)
      let rec pos k = function
        | [] -> assert false
        | j' :: rest -> if j' = j then k else pos (k + 1) rest
      in
      Term.Const v.(pos 0 coord_positions)
    | _ -> (
      match q.Consistent_query.own.(j) with
      | Consistent_query.Exact v -> Term.Const v
      | Consistent_query.Any -> Term.Var (Printf.sprintf "a%d" j))
  in
  Cq.make
    [
      {
        Cq.rel = s_name;
        args =
          Array.init (d + 1) (fun c ->
              if c = 0 then Term.Var "x" else term_for (c - 1));
      };
    ]

(* V(q): distinct coordination-attribute values satisfiable for q's own
   tuple.  One database probe. *)
let options_of config db (q : Consistent_query.t) =
  let cq = own_body_cq config q ~coord_value:None in
  let valuations = Eval.find_all db cq in
  let project valuation =
    Array.of_list
      (List.map
         (fun j ->
           match q.Consistent_query.own.(j) with
           | Consistent_query.Exact v -> v
           | Consistent_query.Any ->
             Eval.Binding.find (Printf.sprintf "a%d" j) valuation)
         config.Consistent_query.coord_attrs)
  in
  List.fold_left
    (fun acc valuation -> Tuple.Set.add (project valuation) acc)
    Tuple.Set.empty valuations

(* Partner pool of [user] in binary relation [rel]: one probe. *)
let pool_of db rel user =
  let cq = Cq.make [ { Cq.rel; args = [| Term.Const user; Term.Var "f" |] } ] in
  List.fold_left
    (fun acc valuation -> Value.Set.add (Eval.Binding.find "f" valuation) acc)
    Value.Set.empty (Eval.find_all db cq)

(* Binary relations a query draws pool partners from. *)
let pool_relations config (q : Consistent_query.t) =
  List.sort_uniq String.compare
    (List.filter_map
       (fun (p, _) ->
         match p with
         | Consistent_query.Any_friend | Consistent_query.K_friends _ ->
           Some config.Consistent_query.friends
         | Consistent_query.Any_from rel -> Some rel
         | Consistent_query.Named _ -> None)
       q.Consistent_query.partners)

let prepare db config input =
  let queries = Array.of_list input in
  let n = Array.length queries in
  let failure = ref None in
  let fail e = if !failure = None then failure := Some e in
  (* Sanity: relations present, one query per user, sensible k. *)
  let s_name = Schema.name config.Consistent_query.s_schema in
  if not (Database.mem_relation db s_name) then fail (Missing_relation s_name);
  Array.iter
    (fun q ->
      List.iter
        (fun rel ->
          if not (Database.mem_relation db rel) then fail (Missing_relation rel))
        (pool_relations config q);
      List.iter
        (fun (p, _) ->
          match p with
          | Consistent_query.K_friends k when k < 1 ->
            fail (Bad_k (q.Consistent_query.user, k))
          | Consistent_query.K_friends _ | Consistent_query.Named _
          | Consistent_query.Any_friend | Consistent_query.Any_from _ -> ())
        q.Consistent_query.partners)
    queries;
  let index_of_user = Value.Hashtbl.create (max 1 n) in
  Array.iteri
    (fun i q ->
      let u = q.Consistent_query.user in
      if Value.Hashtbl.mem index_of_user u then fail (Duplicate_user u)
      else Value.Hashtbl.add index_of_user u i)
    queries;
  match !failure with
  | Some e -> Error e
  | None ->
    (* Step 1: option lists V(q).  Step 2: partner pools. *)
    let options = Array.map (options_of config db) queries in
    let pools =
      Array.map
        (fun q ->
          List.map
            (fun rel -> (rel, pool_of db rel q.Consistent_query.user))
            (pool_relations config q))
        queries
    in
    (* Step 3: pruned coordination graph as per-partner requirements,
       restricted to queries with non-empty option lists. *)
    let alive = Array.map (fun o -> not (Tuple.Set.is_empty o)) options in
    let live_index u =
      match Value.Hashtbl.find_opt index_of_user u with
      | Some j when alive.(j) -> Some j
      | Some _ | None -> None
    in
    let pool_members i rel =
      let pool =
        Option.value ~default:Value.Set.empty (List.assoc_opt rel pools.(i))
      in
      Value.Set.fold
        (fun u acc ->
          match live_index u with
          | Some j when j <> i -> j :: acc
          | Some _ | None -> acc)
        pool []
      |> Array.of_list
    in
    let requirements =
      Array.mapi
        (fun i q ->
          List.map
            (fun (p, _) ->
              match p with
              | Consistent_query.Named c -> (
                match live_index c with
                | Some j -> Named_member j
                | None -> Named_absent)
              | Consistent_query.Any_friend ->
                From_pool (pool_members i config.Consistent_query.friends, 1)
              | Consistent_query.Any_from rel ->
                From_pool (pool_members i rel, 1)
              | Consistent_query.K_friends k ->
                From_pool (pool_members i config.Consistent_query.friends, k))
            q.Consistent_query.partners)
        queries
    in
    Ok
      {
        p_config = config;
        p_queries = queries;
        p_options = options;
        p_alive = alive;
        p_requirements = requirements;
      }

let values p =
  Tuple.Set.elements
    (Array.fold_left
       (fun acc o -> Tuple.Set.union acc o)
       Tuple.Set.empty p.p_options)

(* Step 4 kernel: restrict to Gv and clean to a fixpoint.  Pure — safe
   to run from multiple domains — and written allocation-free in the hot
   loop: with OCaml 5's stop-the-world minor collections, an allocating
   kernel would serialise the parallel value loop on GC syncs. *)
let requirement_holds present = function
  | Named_member j -> present.(j)
  | Named_absent -> false
  | From_pool (js, k) ->
    let live = ref 0 in
    let m = Array.length js in
    let i = ref 0 in
    while !live < k && !i < m do
      if present.(js.(!i)) then incr live;
      incr i
    done;
    !live >= k

let survivors p v =
  let n = Array.length p.p_queries in
  let present =
    Array.mapi (fun i live -> live && Tuple.Set.mem v p.p_options.(i)) p.p_alive
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      if
        present.(i)
        && not (List.for_all (requirement_holds present) p.p_requirements.(i))
      then begin
        present.(i) <- false;
        changed := true
      end
    done
  done;
  let members = ref [] in
  for i = n - 1 downto 0 do
    if present.(i) then members := i :: !members
  done;
  (!members, !rounds)

let finalize db p ~candidates ~best stats =
  let config = p.p_config and queries = p.p_queries in
  (* Step 5: ground the winning set — one probe per member.  A guard
     abort mid-grounding keeps the member set (its survival was proved
     by the pure cleaning phase) but leaves [choices] empty: the keys
     were never fetched. *)
  let t_ground = Stats.now_ns () in
  let ground members v =
    List.map
      (fun i ->
        let q = queries.(i) in
        let cq = own_body_cq config q ~coord_value:(Some v) in
        match Eval.find_first db cq with
        | Some valuation ->
          (q.Consistent_query.user, Eval.Binding.find "x" valuation)
        | None ->
          (* v came from V(q), so the body is satisfiable. *)
          assert false)
      members
  in
  let chosen_value, members, choices, degraded =
    match best with
    | None -> (None, [], [], None)
    | Some (v, members) -> (
      match ground members v with
      | choices -> (Some v, members, choices, None)
      | exception Resilient.Abort reason ->
        ( Some v,
          members,
          [],
          Some
            (Resilient.degraded ~unprobed:[ members ]
               ~note:"winning set not grounded to keys" reason) ))
  in
  stats.Stats.ground_ns <-
    Int64.add stats.Stats.ground_ns (Int64.sub (Stats.now_ns ()) t_ground);
  (* Partner witnesses, for re-expression in the general formalism. *)
  let member_set = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace member_set i ()) members;
  let partner_choices =
    List.map
      (fun i ->
        let witnesses =
          List.map
            (function
              | Named_member j -> [ queries.(j).Consistent_query.user ]
              | Named_absent -> assert false
              | From_pool (js, k) ->
                Array.to_list js
                |> List.filter (fun j -> Hashtbl.mem member_set j)
                |> List.filteri (fun idx _ -> idx < k)
                |> List.map (fun j -> queries.(j).Consistent_query.user))
            p.p_requirements.(i)
        in
        (i, witnesses))
      members
  in
  {
    config;
    queries;
    options = p.p_options;
    candidates;
    chosen_value;
    members;
    choices;
    partner_choices;
    stats;
    degraded;
  }

(* What a solve degrades to when the guard aborts inside [prepare]: no
   option list was completed, so nothing downstream can run.  Shared
   with {!Parallel.solve}. *)
let degraded_outcome config input stats reason =
  let queries = Array.of_list input in
  let n = Array.length queries in
  {
    config;
    queries;
    options = Array.make n Tuple.Set.empty;
    candidates = [];
    chosen_value = None;
    members = [];
    choices = [];
    partner_choices = [];
    stats;
    degraded =
      Some
        (Resilient.degraded
           ~unprobed:(List.init n (fun i -> [ i ]))
           ~note:"aborted while probing option lists and partner pools"
           reason);
  }

let solve ?(selection = `Largest) db config input =
  Obs.with_span
    ~args:(fun () -> [ ("queries", Obs.Int (List.length input)) ])
    "consistent.solve"
  @@ fun () ->
  let stats = Stats.create () in
  let t_start = Stats.now_ns () in
  let counters0 = Database.snapshot_counters db in
  let finish outcome =
    outcome.stats.Stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Stats.add_counters outcome.stats
      (Counters.diff ~before:counters0 ~after:(Database.snapshot_counters db));
    Ok outcome
  in
  let t_graph = Stats.now_ns () in
  match Obs.with_span "consistent.prepare" (fun () -> prepare db config input) with
  | exception Resilient.Abort reason ->
    finish (degraded_outcome config input stats reason)
  | Error e ->
    stats.total_ns <- Int64.sub (Stats.now_ns ()) t_start;
    Error e
  | Ok p ->
    stats.graph_ns <- Int64.sub (Stats.now_ns ()) t_graph;
    let candidates = ref [] in
    let best = ref None in
    (* The value loop's duration is recorded in [unify_ns] (the slot is
       otherwise unused by this algorithm) so the parallel ablation can
       report the parallelisable fraction. *)
    let t_loop = Stats.now_ns () in
    Obs.with_span
      ~args:(fun () ->
        [
          ("values", Obs.Int stats.candidates);
          ("cleaning_rounds", Obs.Int stats.cleaning_rounds);
        ])
      "consistent.values_loop"
      (fun () ->
        try
          List.iter
            (fun v ->
              stats.candidates <- stats.candidates + 1;
              let members, rounds = survivors p v in
              stats.cleaning_rounds <- stats.cleaning_rounds + rounds;
              let size = List.length members in
              candidates := (v, size) :: !candidates;
              (match !best with
              | Some (_, _, best_size) when best_size >= size -> ()
              | _ when size > 0 -> best := Some (v, members, size)
              | _ -> ());
              if selection = `First && size > 0 then raise Exit)
            (values p)
        with Exit -> ());
    stats.unify_ns <- Int64.sub (Stats.now_ns ()) t_loop;
    let best = Option.map (fun (v, members, _) -> (v, members)) !best in
    finish
      (Obs.with_span "consistent.ground" (fun () ->
           finalize db p ~candidates:(List.rev !candidates) ~best stats))

let to_solution db outcome =
  match outcome.chosen_value with
  | None -> None
  | Some _ when outcome.degraded <> None ->
    (* A degraded outcome may know its members without their grounded
       keys; there is no full Definition-1 assignment to build. *)
    None
  | Some _ ->
    if not (Array.for_all Consistent_query.expressible outcome.queries) then
      None
    else begin
      let config = outcome.config in
      let compiled =
        Consistent_query.compile_set config (Array.to_list outcome.queries)
      in
      let key_of_user u = List.assoc u outcome.choices in
      let s_rel =
        Database.relation db (Schema.name config.Consistent_query.s_schema)
      in
      let tuple_of_key k =
        match Relation.find_matching s_rel ~col:0 k with
        | Some t -> t
        | None -> assert false
      in
      let assignment = ref Eval.Binding.empty in
      let bind i local v =
        assignment :=
          Eval.Binding.add (Printf.sprintf "q%d.%s" i local) v !assignment
      in
      List.iter
        (fun i ->
          let q = outcome.queries.(i) in
          let user = q.Consistent_query.user in
          let own_key = key_of_user user in
          let own_tuple = tuple_of_key own_key in
          bind i "x" own_key;
          Array.iteri
            (fun j spec ->
              match spec with
              | Consistent_query.Any ->
                bind i (Printf.sprintf "a%d" j) own_tuple.(j + 1)
              | Consistent_query.Exact _ -> ())
            q.Consistent_query.own;
          let witnesses = List.assoc i outcome.partner_choices in
          List.iteri
            (fun k ((p, spec), slot_witnesses) ->
              let witness_user =
                match slot_witnesses with
                | w :: _ -> w
                | [] -> assert false
              in
              let partner_key = key_of_user witness_user in
              let partner_tuple = tuple_of_key partner_key in
              bind i (Printf.sprintf "y%d" k) partner_key;
              (match p with
              | Consistent_query.Any_friend | Consistent_query.Any_from _ ->
                bind i (Printf.sprintf "f%d" k) witness_user
              | Consistent_query.Named _ -> ()
              | Consistent_query.K_friends _ -> assert false);
              Array.iteri
                (fun j s ->
                  match s with
                  | Consistent_query.Free ->
                    bind i (Printf.sprintf "b%d_%d" k j) partner_tuple.(j + 1)
                  | Consistent_query.Same | Consistent_query.Fixed _ -> ())
                spec)
            (List.combine q.Consistent_query.partners witnesses))
        outcome.members;
      Some
        ( compiled,
          Entangled.Solution.make ~members:outcome.members
            ~assignment:!assignment )
    end
