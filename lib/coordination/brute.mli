(** Exact (exponential) search for coordinating sets.

    Ground truth for tests and for the hardness reductions: enumerates
    subsets of the query set and, within a subset, backtracks over which
    head atom serves each postcondition (so it handles unsafe sets, which
    the deterministic {!Entangled.Combine.unify_set} cannot).  Guarded to
    small inputs. *)

open Relational
open Entangled

val max_queries : int
(** Inputs larger than this raise [Invalid_argument] (subset enumeration
    is exponential). *)

val solve_subset :
  Database.t -> Coordination_graph.t -> members:int list -> Eval.valuation option
(** Does this exact subset coordinate?  Tries every assignment of heads
    to postconditions; on the first unifiable choice whose combined body
    is satisfiable, returns the full Definition-1 assignment. *)

val exists_coordinating_set : ?stats:Stats.t -> Database.t -> Query.t array -> bool
(** Is there any non-empty coordinating subset?  The queries must be
    renamed apart ({!Query.rename_set}).  When [stats] is given, the
    call's duration and engine-counter deltas (probes, plan cache,
    tuples scanned) are folded into it. *)

val maximum : ?stats:Stats.t -> Database.t -> Query.t array -> Solution.t option
(** A maximum-size coordinating set, or [None] when no subset
    coordinates.  This is the (NP-hard) EntangledMax problem of
    Definition 5, solved exactly. *)

type outcome = {
  solution : Solution.t option;  (** maximum coordinating set found *)
  stats : Stats.t;
  degraded : Resilient.degradation option;
      (** [Some _] when an armed guard aborted the enumeration; the
          degradation lists (a prefix of) the subsets never probed *)
}

val solve : Database.t -> Query.t array -> outcome
(** Like {!maximum} but resilient: an armed-guard abort
    ({!Resilient.Abort}) is caught and reported as a degraded outcome
    instead of escaping.  The legacy entry points above let the abort
    propagate to the caller. *)

val all_coordinating_subsets :
  ?stats:Stats.t -> Database.t -> Query.t array -> int list list
(** Every coordinating subset (as sorted index lists), smallest first —
    exhaustive, for property tests on tiny instances. *)
