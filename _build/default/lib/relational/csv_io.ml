exception Parse_error of int * string

let parse_string input =
  let n = String.length input in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let field_pending = ref false in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf;
    field_pending := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= n then begin
      if !field_pending || !fields <> [] || Buffer.length buf > 0 then flush_row ()
    end
    else
      match input.[i] with
      | ',' ->
        flush_field ();
        field_pending := true;
        plain (i + 1)
      | '\n' ->
        flush_row ();
        incr line;
        plain (i + 1)
      | '\r' when i + 1 < n && input.[i + 1] = '\n' ->
        flush_row ();
        incr line;
        plain (i + 2)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        field_pending := true;
        plain (i + 1)
  and quoted i =
    if i >= n then raise (Parse_error (!line, "unterminated quoted field"))
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' ->
        field_pending := true;
        plain (i + 1)
      | '\n' ->
        incr line;
        Buffer.add_char buf '\n';
        quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let load_file path =
  let ic = open_in_bin path in
  let content =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in ic;
      raise e
  in
  close_in ic;
  parse_string content

let load_relation db ~schema ~path =
  let rows = load_file path in
  match rows with
  | [] -> raise (Parse_error (1, "empty file: " ^ path))
  | header :: data ->
    let expected = Array.to_list (Schema.attributes schema) in
    if header <> expected then
      raise
        (Parse_error
           ( 1,
             Printf.sprintf "header mismatch for %s: got [%s], expected [%s]"
               (Schema.name schema) (String.concat "; " header)
               (String.concat "; " expected) ));
    let r = Database.create_table db schema in
    List.iteri
      (fun i fields ->
        if List.length fields <> Schema.arity schema then
          raise
            (Parse_error
               ( i + 2,
                 Printf.sprintf "row has %d fields, expected %d"
                   (List.length fields) (Schema.arity schema) ));
        ignore
          (Relation.insert r (Tuple.make (List.map Value.of_string fields))))
      data;
    r

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let write_string rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun fields ->
      Buffer.add_string buf (String.concat "," (List.map escape_field fields));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let value_field v =
  match v with
  | Value.Str s -> s
  | Value.Int _ | Value.Bool _ -> Value.to_string v

let save_relation r ~path =
  let header = Array.to_list (Schema.attributes (Relation.schema r)) in
  let rows =
    Relation.fold
      (fun acc t -> List.map value_field (Array.to_list t) :: acc)
      [] r
  in
  let oc = open_out_bin path in
  output_string oc (write_string (header :: List.rev rows));
  close_out oc
