(** Tuples: fixed-arity arrays of values. *)

type t = Value.t array

val make : Value.t list -> t

val arity : t -> int

val get : t -> int -> Value.t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order; shorter tuples first. *)

val hash : t -> int

val project : t -> int list -> t
(** [project t cols] keeps the listed columns, in the given order.
    @raise Invalid_argument on an out-of-bounds column. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(v1, v2, ...)]. *)

module Set : Set.S with type elt = t
module Hashtbl : Hashtbl.S with type key = t
