type t =
  | Var of string
  | Const of Value.t

let var x = Var x
let const v = Const v
let int n = Const (Value.Int n)
let str s = Const (Value.Str s)

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Const u, Const v -> Value.compare u v
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const v -> Value.pp ppf v

let rename f = function Var x -> Var (f x) | Const _ as t -> t

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
