type atom = {
  rel : string;
  args : Term.t array;
}

type t = { atoms : atom list }

let atom rel args = { rel; args = Array.of_list args }

let make atoms = { atoms }

let conjoin a b = { atoms = a.atoms @ b.atoms }

let atom_variables a =
  Array.fold_left
    (fun acc t -> match t with Term.Var x -> x :: acc | Term.Const _ -> acc)
    [] a.args
  |> List.rev

let variables q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            out := x :: !out
          end)
        (atom_variables a))
    q.atoms;
  List.rev !out

let is_ground q =
  List.for_all
    (fun a -> Array.for_all Term.is_const a.args)
    q.atoms

let rename_variables f q =
  {
    atoms =
      List.map (fun a -> { a with args = Array.map (Term.rename f) a.args }) q.atoms;
  }

let substitute_atom f a =
  let subst_term = function
    | Term.Var x as t -> Option.value ~default:t (f x)
    | Term.Const _ as t -> t
  in
  { a with args = Array.map subst_term a.args }

let substitute f q = { atoms = List.map (substitute_atom f) q.atoms }

let pp_atom ppf a =
  Format.fprintf ppf "%s(%s)" a.rel
    (String.concat ", "
       (Array.to_list (Array.map (Format.asprintf "%a" Term.pp) a.args)))

let pp ppf q =
  match q.atoms with
  | [] -> Format.pp_print_string ppf "true"
  | atoms ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
      pp_atom ppf atoms

let compare_atom a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    if la <> lb then Int.compare la lb
    else
      let rec loop i =
        if i = la then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

let equal_atom a b = compare_atom a b = 0
