type t = Value.t array

let make vs = Array.of_list vs

let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Tuple.get: index %d of arity %d" i (arity t));
  t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let project t cols = Array.of_list (List.map (fun c -> get t c) cols)

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_string t)))

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ordered)
module Hashtbl = Stdlib.Hashtbl.Make (Hashed)
