(** Database values.

    The active domain of all instances in this library is built from these
    values.  Entangled-query constants and tuple fields share this type, so
    unification and grounding can compare them directly. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

val compare : t -> t -> int
(** Total order: [Int _ < Str _ < Bool _], then the natural order within
    each constructor. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** [pp] prints values the way the paper writes constants: integers and
    booleans bare, strings unquoted when they look like identifiers and
    single-quoted otherwise. *)

val to_string : t -> string

val of_string : string -> t
(** [of_string s] parses [s] back into a value: decimal integers become
    [Int], ["true"]/["false"] become [Bool], anything else is [Str].
    Inverse of [to_string] on identifier-looking strings and numbers. *)

val int : int -> t
val str : string -> t
val bool : bool -> t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Hashtbl : Hashtbl.S with type key = t
