(** Conjunctive-query homomorphisms, containment, and minimization.

    Combined queries produced by unifying entangled queries accumulate
    redundant atoms — e.g. Chris's [F(x1, x)] next to Guy's
    [F(x1, Paris)] once [x] is forced to [Paris].  The classical theory
    (Chandra & Merlin) says every CQ has a unique core up to renaming,
    obtained by folding the query into itself; evaluating the core gives
    the same answers with fewer joins.

    All procedures here are exponential in query size in the worst case
    (containment is NP-complete); combined coordination queries are
    small, and {!minimize} is exposed as an optional optimizer pass. *)

exception Too_large of int
(** Raised by {!homomorphism} and friends when the source query has more
    than {!max_atoms} atoms. *)

val max_atoms : int
(** Guard for the exponential search (32). *)

val homomorphism : Cq.t -> Cq.t -> (string * Term.t) list option
(** [homomorphism q1 q2] is a mapping of [q1]'s variables to terms of
    [q2] sending every atom of [q1] to an atom of [q2] (constants fixed),
    or [None].  Existence means [q2]'s answers are contained in [q1]'s
    (over the shared variables). *)

val contained_in : Cq.t -> Cq.t -> bool
(** [contained_in q1 q2]: every instance satisfying [q1] satisfies [q2],
    i.e. there is a homomorphism from [q2] into [q1]. *)

val equivalent : Cq.t -> Cq.t -> bool

val minimize : ?protect:string list -> Cq.t -> Cq.t
(** The core of the query: a minimal subquery equivalent to the input.
    Variables listed in [protect] (e.g. variables referenced by heads or
    postconditions) are kept as themselves — they may not be collapsed
    into other terms, so the minimized query still binds them.
    Returns the input unchanged when it exceeds {!max_atoms}. *)

val minimize_with_retraction :
  ?protect:string list -> Cq.t -> Cq.t * (string * Term.t) list
(** Like {!minimize}, also returning the retraction: a mapping defined on
    every variable of the input, into terms of the core, such that any
    satisfying valuation [h] of the core extends to the full query by
    [x -> h(retraction x)].  This is how choose-1 grounding recovers
    values for variables the core no longer mentions. *)
