(** Conjunctive queries over a database instance.

    A conjunctive query here is a conjunction of relational atoms; we do
    not model a head/projection because the coordination algorithms only
    need (a) satisfiability probes and (b) a single witnessing valuation
    (the paper's choose-1 semantics).  Projections are handled by the
    caller on the returned valuation. *)

type atom = {
  rel : string;            (** database relation name *)
  args : Term.t array;
}

type t = { atoms : atom list }

val atom : string -> Term.t list -> atom

val make : atom list -> t

val conjoin : t -> t -> t

val variables : t -> string list
(** Distinct variables, in first-occurrence order. *)

val atom_variables : atom -> string list

val is_ground : t -> bool

val rename_variables : (string -> string) -> t -> t

val substitute_atom : (string -> Term.t option) -> atom -> atom
(** Replace each variable [x] by [f x] when [f x] is [Some _]. *)

val substitute : (string -> Term.t option) -> t -> t

val pp_atom : Format.formatter -> atom -> unit

val pp : Format.formatter -> t -> unit
(** Prints as [R(x, 1), S(y)]; the empty query prints as [true]. *)

val equal_atom : atom -> atom -> bool

val compare_atom : atom -> atom -> int
