(** Terms: variables and constants.

    Shared between conjunctive-query atoms and entangled-query atoms.
    There are no function symbols — the term language of the paper is
    flat, which is what makes unification of atoms linear-time. *)

type t =
  | Var of string
  | Const of Value.t

val var : string -> t
val const : Value.t -> t
val int : int -> t
val str : string -> t

val is_var : t -> bool
val is_const : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Variables print bare; constants print via {!Value.pp}. *)

val rename : (string -> string) -> t -> t
(** [rename f t] applies [f] to the name of a variable, leaves constants
    unchanged. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
