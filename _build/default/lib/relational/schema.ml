type t = {
  name : string;
  attrs : string array;
  positions : (string, int) Hashtbl.t;
}

let make name attrs =
  if name = "" then invalid_arg "Schema.make: empty relation name";
  if attrs = [] then invalid_arg "Schema.make: empty attribute list";
  let positions = Hashtbl.create (List.length attrs) in
  List.iteri
    (fun i a ->
      if Hashtbl.mem positions a then
        invalid_arg
          (Printf.sprintf "Schema.make: duplicate attribute %S in %s" a name);
      Hashtbl.add positions a i)
    attrs;
  { name; attrs = Array.of_list attrs; positions }

let name s = s.name

let arity s = Array.length s.attrs

let attributes s = Array.copy s.attrs

let attribute s i =
  if i < 0 || i >= Array.length s.attrs then
    invalid_arg (Printf.sprintf "Schema.attribute: index %d in %s" i s.name);
  s.attrs.(i)

let index_of s a =
  match Hashtbl.find_opt s.positions a with
  | Some i -> i
  | None -> raise Not_found

let mem_attribute s a = Hashtbl.mem s.positions a

let equal a b = a.name = b.name && a.attrs = b.attrs

let pp ppf s =
  Format.fprintf ppf "%s(%s)" s.name
    (String.concat ", " (Array.to_list s.attrs))
