exception Too_large of int

let max_atoms = 32

let check_size (q : Cq.t) =
  let n = List.length q.atoms in
  if n > max_atoms then raise (Too_large n)

(* Backtracking search for a homomorphism sending every atom of [src]
   to some atom of [dst], extending [seed] (a partial variable map). *)
let homomorphism_with ~seed (src : Cq.t) (dst : Cq.t) =
  check_size src;
  let mapping : (string, Term.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (x, t) -> Hashtbl.replace mapping x t) seed;
  let dst_atoms = Array.of_list dst.atoms in
  let rec map_atoms = function
    | [] -> true
    | (a : Cq.atom) :: rest ->
      let try_target (b : Cq.atom) =
        if a.rel <> b.rel || Array.length a.args <> Array.length b.args then
          false
        else begin
          let undo = ref [] in
          let ok = ref true in
          let n = Array.length a.args in
          let i = ref 0 in
          while !ok && !i < n do
            (match (a.args.(!i), b.args.(!i)) with
            | Term.Const u, Term.Const v -> if not (Value.equal u v) then ok := false
            | Term.Const _, Term.Var _ ->
              (* A constant maps only to itself. *)
              ok := false
            | Term.Var x, t -> (
              match Hashtbl.find_opt mapping x with
              | Some t' -> if not (Term.equal t t') then ok := false
              | None ->
                Hashtbl.add mapping x t;
                undo := x :: !undo));
            incr i
          done;
          if !ok && map_atoms rest then true
          else begin
            List.iter (Hashtbl.remove mapping) !undo;
            false
          end
        end
      in
      Array.exists try_target dst_atoms
  in
  if map_atoms src.atoms then
    Some (Hashtbl.fold (fun x t acc -> (x, t) :: acc) mapping [])
  else None

let homomorphism src dst = homomorphism_with ~seed:[] src dst

(* q1 is contained in q2 iff there is a homomorphism from q2 into q1
   (Chandra–Merlin, for boolean CQs / shared free variables frozen by
   the caller via [protect] in minimize). *)
let contained_in q1 q2 = Option.is_some (homomorphism q2 q1)

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let minimize_with_retraction ?(protect = []) (q : Cq.t) =
  let identity = List.map (fun x -> (x, Term.Var x)) (Cq.variables q) in
  if List.length q.atoms > max_atoms then (q, identity)
  else begin
    let seed = List.map (fun x -> (x, Term.Var x)) protect in
    (* Try to drop one atom of [kept]: equivalence needs a retraction of
       the full query into the smaller one fixing protected variables
       (dropping an atom only weakens a CQ, so the other containment
       direction is trivial). *)
    let removable kept removed_candidate =
      let q_full = Cq.make kept in
      let q_small =
        Cq.make (List.filter (fun a -> a != removed_candidate) kept)
      in
      if q_small.Cq.atoms = [] then None
      else
        Option.map
          (fun h -> (q_small.Cq.atoms, h))
          (homomorphism_with ~seed q_full q_small)
    in
    let apply_hom h t =
      match t with
      | Term.Const _ -> t
      | Term.Var y -> ( match List.assoc_opt y h with Some t' -> t' | None -> t)
    in
    let rec shrink atoms retraction =
      let rec find_removal = function
        | [] -> None
        | a :: rest -> (
          match removable atoms a with
          | Some result -> Some result
          | None -> find_removal rest)
      in
      match find_removal atoms with
      | None -> (atoms, retraction)
      | Some (smaller, h) ->
        shrink smaller
          (List.map (fun (x, t) -> (x, apply_hom h t)) retraction)
    in
    match q.atoms with
    | [] -> (q, identity)
    | atoms ->
      let kept, retraction = shrink atoms identity in
      (Cq.make kept, retraction)
  end

let minimize ?protect q = fst (minimize_with_retraction ?protect q)
