(** Minimal CSV reading/writing for loading tables from disk.

    Supports the subset of RFC 4180 the workload files need: comma
    separation, double-quote quoting with doubled quotes inside quoted
    fields, and both LF and CRLF line endings. *)

exception Parse_error of int * string
(** [Parse_error (line, message)], lines counted from 1. *)

val parse_string : string -> string list list
(** Rows of fields.  Empty trailing line is ignored. *)

val load_file : string -> string list list

val load_relation : Database.t -> schema:Schema.t -> path:string -> Relation.t
(** Creates [schema]'s table in the database and fills it from the file,
    converting fields with {!Value.of_string}.  The first row must be a
    header matching the schema's attribute names.
    @raise Parse_error on malformed input or a header mismatch. *)

val write_string : string list list -> string

val save_relation : Relation.t -> path:string -> unit
(** Writes a header row of attribute names followed by all tuples. *)
