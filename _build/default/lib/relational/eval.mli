(** Conjunctive-query evaluation.

    A backtracking join: at each step the evaluator picks the cheapest
    remaining atom under the current partial valuation (ground atoms are
    membership tests, atoms with a bound column use that column's hash
    index, everything else is a scan) and extends the valuation tuple by
    tuple.

    Each top-level call counts as one database probe
    ({!Database.count_probe}), mirroring "one SQL query" in the paper's
    experiments. *)

module Binding : Map.S with type key = string
(** Valuations: finite maps from variable names to values. *)

type valuation = Value.t Binding.t

exception Unknown_relation of string
(** Raised when a query mentions a relation absent from the instance. *)

exception Arity_mismatch of string * int * int
(** [Arity_mismatch (rel, got, expected)]. *)

type plan =
  | Greedy_indexed
      (** default: cheapest atom next, hash-index access paths *)
  | Fixed_indexed
      (** atoms in syntactic order, still index-backed — isolates the
          benefit of dynamic ordering in the ablation benchmarks *)
  | Fixed_scan
      (** atoms in syntactic order, full scans only — what evaluation
          costs without any index *)

val find_first : ?plan:plan -> Database.t -> Cq.t -> valuation option
(** Choose-1 semantics: the first satisfying valuation, if any.  The empty
    query succeeds with the empty valuation. *)

val satisfiable : ?plan:plan -> Database.t -> Cq.t -> bool

val find_all : ?plan:plan -> ?limit:int -> Database.t -> Cq.t -> valuation list
(** All satisfying valuations (up to [limit] when given), in search order.
    Two valuations agreeing on all variables of the query are returned
    once. *)

val count : Database.t -> Cq.t -> int
(** Number of distinct satisfying valuations. *)

val distinct_projections : Database.t -> Cq.t -> string list -> Tuple.Set.t
(** [distinct_projections db q vars] is the set of distinct tuples of
    values the listed variables take over all satisfying valuations.
    @raise Invalid_argument if some listed variable does not occur in [q]. *)

val check_ground : Database.t -> Cq.t -> bool
(** [check_ground db q] for a variable-free query: true iff every atom's
    tuple is present.  Counts as one probe. *)

val pp_valuation : Format.formatter -> valuation -> unit

(** {2 Plan introspection} *)

type plan_step = {
  atom : Cq.atom;
  access : [ `Membership | `Index of int * Value.t | `Bound_index of int | `Scan ];
      (** [`Index]: lookup on a constant column; [`Bound_index]: lookup
          on a column whose variable an earlier step binds (value known
          only at run time); [`Scan]: no usable column. *)
  estimated_rows : int;
      (** index-size estimate for [`Index], relation cardinality for
          [`Scan] and [`Bound_index] (a pre-execution upper bound), 0
          for [`Membership]. *)
}

val explain : Database.t -> Cq.t -> plan_step list
(** The order and access paths the greedy planner would choose before
    any tuple is read: constants drive index choices, variables become
    bound as atoms are placed.  The dynamic planner can deviate at run
    time (it re-plans with actual bindings); this is the static
    approximation, for logging and tuning. *)

val pp_plan : Format.formatter -> plan_step list -> unit

module Naive : sig
  val find_all : Database.t -> Cq.t -> valuation list
  (** Reference semantics: enumerate the full cross product of candidate
      tuples for each atom and filter.  Exponential; for tests only. *)
end
